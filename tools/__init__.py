"""Developer tooling package (makes ``python -m tools.checks`` work
from the repo root; the scripts here are not part of the library)."""
