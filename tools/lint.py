"""Repository lint driver: `make lint` / the CI lint job.

Four layers, matching what the environment can guarantee:

1. **Compile check** (always): byte-compile every Python file under the
   source trees — catches syntax errors, tab/space damage, and
   encoding breakage without importing anything.  Bytecode is written
   to a throwaway cache dir (``sys.pycache_prefix``), so linting never
   litters ``__pycache__`` into the tree (it used to end up inside CI
   artifacts).
2. **pyflakes** (when importable): undefined names, unused imports,
   redefinitions.  The offline dev container does not ship pyflakes,
   so its absence downgrades to the compile check locally — but with
   ``LINT_REQUIRE_PYFLAKES=1`` (set by the CI lint job, which installs
   the ``[test]`` extra) a missing pyflakes is a hard failure, so the
   silent downgrade can never mask undefined names on CI.
3. **API-surface check** (tools/api_surface.py): the exported
   names/signatures must match the frozen tools/api_surface.json —
   accidental public-API breakage fails the lint job.
4. **Determinism & concurrency checks** (tools/checks/, also
   ``make check``): kernel determinism lint, fan-out closure-race
   detection, pass-DAG effect checking.  See docs/determinism.md.

Exit status is non-zero on any finding, so the Make target and the CI
job gate on it.
"""

from __future__ import annotations

import compileall
import os
import subprocess
import sys
import tempfile
from pathlib import Path

TARGETS = ["src", "tests", "benchmarks", "examples", "tools", "setup.py"]


def compile_check(root: Path) -> bool:
    ok = True
    with tempfile.TemporaryDirectory(prefix="repro-lint-pyc-") as cache:
        # Redirect bytecode out of the tree: compileall otherwise drops
        # __pycache__ dirs everywhere it looks, and those ended up in
        # CI artifacts (PEP 405 pycache_prefix, py3.8+).
        previous = sys.pycache_prefix
        sys.pycache_prefix = cache
        try:
            for target in TARGETS:
                path = root / target
                if not path.exists():
                    continue
                if path.is_file():
                    ok &= bool(
                        compileall.compile_file(
                            str(path), quiet=1, force=True
                        )
                    )
                else:
                    ok &= bool(
                        compileall.compile_dir(str(path), quiet=1, force=True)
                    )
        finally:
            sys.pycache_prefix = previous
    return bool(ok)


def pyflakes_check(root: Path) -> bool:
    try:
        from pyflakes.api import checkRecursive
        from pyflakes.reporter import Reporter
    except ImportError:
        if os.environ.get("LINT_REQUIRE_PYFLAKES", "").strip() == "1":
            print(
                "lint: pyflakes unavailable but LINT_REQUIRE_PYFLAKES=1 "
                "(CI installs it via the [test] extra) — failing instead "
                "of silently downgrading"
            )
            return False
        print("lint: pyflakes unavailable; compile check only")
        return True
    paths = [str(root / target) for target in TARGETS if (root / target).exists()]
    reporter = Reporter(sys.stdout, sys.stderr)
    return checkRecursive(paths, reporter) == 0


def api_surface_check(root: Path) -> bool:
    """The frozen public-API snapshot must match (tools/api_surface.py)."""
    src = root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    if str(root / "tools") not in sys.path:
        sys.path.insert(0, str(root / "tools"))
    import api_surface

    return api_surface.check() == 0


def determinism_check(root: Path) -> bool:
    """tools/checks in a subprocess (same invocation as `make check`),
    so lint and check cannot drift apart."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.checks",
            "--json", "CHECK_findings.json",
        ],
        cwd=root,
    )
    return proc.returncode == 0


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    ok = compile_check(root)
    if not ok:
        print("lint: compile check failed")
        return 1
    if not pyflakes_check(root):
        print("lint: pyflakes findings")
        return 1
    if not api_surface_check(root):
        print("lint: public API surface drifted")
        return 1
    if not determinism_check(root):
        print("lint: determinism/concurrency check findings (make check)")
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
