"""Repository lint driver: `make lint` / the CI lint job.

Two layers, matching what the environment can guarantee:

1. **Compile check** (always): byte-compile every Python file under the
   source trees — catches syntax errors, tab/space damage, and
   encoding breakage without importing anything.
2. **pyflakes** (when importable): undefined names, unused imports,
   redefinitions.  The offline dev container does not ship pyflakes,
   so its absence downgrades to the compile check rather than failing;
   CI behaves the same way, keeping local and CI lint identical.
3. **API-surface check** (tools/api_surface.py): the exported
   names/signatures must match the frozen tools/api_surface.json —
   accidental public-API breakage fails the lint job.

Exit status is non-zero on any finding, so the Make target and the CI
job gate on it.
"""

from __future__ import annotations

import compileall
import sys
from pathlib import Path

TARGETS = ["src", "tests", "benchmarks", "examples", "tools", "setup.py"]


def compile_check(root: Path) -> bool:
    ok = True
    for target in TARGETS:
        path = root / target
        if not path.exists():
            continue
        if path.is_file():
            ok &= compileall.compile_file(str(path), quiet=1, force=True)
        else:
            ok &= compileall.compile_dir(str(path), quiet=1, force=True)
    return bool(ok)


def pyflakes_check(root: Path) -> bool:
    try:
        from pyflakes.api import checkRecursive
        from pyflakes.reporter import Reporter
    except ImportError:
        print("lint: pyflakes unavailable; compile check only")
        return True
    paths = [str(root / target) for target in TARGETS if (root / target).exists()]
    reporter = Reporter(sys.stdout, sys.stderr)
    return checkRecursive(paths, reporter) == 0


def api_surface_check(root: Path) -> bool:
    """The frozen public-API snapshot must match (tools/api_surface.py)."""
    src = root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    if str(root / "tools") not in sys.path:
        sys.path.insert(0, str(root / "tools"))
    import api_surface

    return api_surface.check() == 0


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    ok = compile_check(root)
    if not ok:
        print("lint: compile check failed")
        return 1
    if not pyflakes_check(root):
        print("lint: pyflakes findings")
        return 1
    if not api_surface_check(root):
        print("lint: public API surface drifted")
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
