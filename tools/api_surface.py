"""Public-API surface snapshot: freeze the exported names + signatures.

The unified decomposition API is a contract — downstream code depends
on ``repro.decompose(graph, task=..., config=...)`` keeping its shape.
This tool computes the current surface (every ``repro.__all__`` export:
callables with their full signature string, classes with their public
method signatures, dataclasses with their field list) and compares it
against the frozen snapshot in ``tools/api_surface.json``.

* check (default, also run by ``make lint`` and
  ``tests/test_api_surface.py``): exit non-zero with a name-by-name
  diff on any drift, so accidental breakage fails the lint job;
* ``--regen``: re-freeze after an *intentional* surface change — the
  diff then shows up in review next to the code that caused it.

Run:    PYTHONPATH=src python tools/api_surface.py [--regen]
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import os
import sys

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "api_surface.json")

# Class attributes that are protocol plumbing, not API surface.
_SKIP_MEMBERS = {"__init__"}  # __init__ is reported as the class signature


def _signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(cls) -> dict:
    entry = {"type": "class", "signature": _signature_of(cls)}
    if dataclasses.is_dataclass(cls):
        entry["fields"] = [
            field.name for field in dataclasses.fields(cls)
        ]
    methods = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            methods[name] = "property"
        elif isinstance(member, (staticmethod, classmethod)):
            methods[name] = _signature_of(member.__func__)
        elif callable(member):
            methods[name] = _signature_of(member)
    if methods:
        entry["methods"] = methods
    return entry


def compute_surface() -> dict:
    """The current public surface of ``import repro``, as a JSON dict."""
    import repro

    surface = {}
    for name in sorted(set(repro.__all__)):
        if name == "__version__":
            continue  # version moves every release; not surface
        obj = getattr(repro, name)
        if inspect.isclass(obj):
            surface[name] = _describe_class(obj)
        elif callable(obj):
            surface[name] = {
                "type": "function",
                "signature": _signature_of(obj),
            }
        elif inspect.ismodule(obj):
            surface[name] = {"type": "module"}
        else:
            surface[name] = {"type": type(obj).__name__}
    return surface


def load_snapshot() -> dict:
    if not os.path.exists(SNAPSHOT_PATH):
        return {}
    with open(SNAPSHOT_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_snapshot(surface: dict) -> None:
    with open(SNAPSHOT_PATH, "w", encoding="utf-8") as handle:
        json.dump(surface, handle, indent=2, sort_keys=True)
        handle.write("\n")


def diff_surface(frozen: dict, current: dict):
    """Human-readable drift lines between two surface dicts."""
    lines = []
    for name in sorted(set(frozen) | set(current)):
        if name not in current:
            lines.append(f"- removed export: {name}")
        elif name not in frozen:
            lines.append(f"+ new export (freeze it with --regen): {name}")
        elif frozen[name] != current[name]:
            lines.append(f"~ changed: {name}")
            lines.append(f"    frozen:  {json.dumps(frozen[name], sort_keys=True)}")
            lines.append(f"    current: {json.dumps(current[name], sort_keys=True)}")
    return lines


def check() -> int:
    frozen = load_snapshot()
    if not frozen:
        print(
            "api-surface: no snapshot found; freeze one with "
            "`python tools/api_surface.py --regen`"
        )
        return 1
    current = compute_surface()
    drift = diff_surface(frozen, current)
    if drift:
        print("api-surface: public surface drifted from tools/api_surface.json")
        for line in drift:
            print(line)
        print(
            "If this change is intentional, re-freeze with "
            "`python tools/api_surface.py --regen` and commit the diff."
        )
        return 1
    print(f"api-surface: OK ({len(current)} exports match the snapshot)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--regen" in argv:
        surface = compute_surface()
        save_snapshot(surface)
        print(f"api-surface: froze {len(surface)} exports to {SNAPSHOT_PATH}")
        return 0
    return check()


if __name__ == "__main__":
    sys.exit(main())
