"""Repo-specific static analysis: determinism & concurrency checks.

Run as ``python -m tools.checks`` (or ``make check``).  See
``docs/determinism.md`` for the contract, the rule catalog, and the
pragma/baseline workflow.
"""

from .cli import all_rules, main, run_checks
from .core import CheckReport, Finding, Rule

__all__ = [
    "CheckReport",
    "Finding",
    "Rule",
    "all_rules",
    "main",
    "run_checks",
]
