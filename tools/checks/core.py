"""Shared infrastructure for the repo's static determinism checks.

The framework is deliberately small and stdlib-only (``ast`` + ``re``):

* :class:`Finding` — one (rule, file, line) diagnostic;
* :class:`SourceModule` — a parsed file plus the scope flags rules key
  off (``is_kernel`` for the determinism rules, which only police the
  wave/graph/decomposition/pipeline kernel packages);
* :class:`Rule` — the visitor contract every rule implements;
* pragma handling — ``# repro: allow(rule-id) — reason`` suppresses a
  finding on its line (or, for a comment-only line, on the next code
  line); the reason string is mandatory and unused pragmas are
  themselves findings, so suppressions cannot rot;
* baseline handling — ``tools/checks/baseline.json`` grandfathers
  pre-existing findings keyed by ``(rule, path, line)``.  The baseline
  may only shrink: a stale entry (finding no longer produced) fails the
  check until the entry is deleted.

Rules live in :mod:`tools.checks.determinism`, :mod:`tools.checks.fanout`
and :mod:`tools.checks.effects`; the CLI driver in
:mod:`tools.checks.cli` wires them into ``make check`` / ``make lint``
and emits ``CHECK_findings.json`` for the CI artifact.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: packages whose modules are "kernel" scope: they implement the
#: deterministic substrate (wave engine, CSR kernel, decomposition
#: algorithms, pass scheduler), so the determinism rules apply in full.
KERNEL_PACKAGES = (
    "repro/parallel",
    "repro/graph",
    "repro/decomposition",
    "repro/pipeline",
)

#: the only functions allowed to read the process environment: every
#: other callsite must go through them so each knob is read exactly
#: once (the PR 5 pool-lifecycle rule).
SANCTIONED_ENV_READERS = frozenset(
    {"_env_flag", "_env_default_workers", "_env_mp_workers"}
)

PRAGMA_RULE = "pragma"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(([^)]*)\)\s*(?:—|--|:)?\s*(.*)$"
)
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a file/line."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.rule, self.path, self.line)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class Pragma:
    """One parsed ``# repro: allow(...)`` comment."""

    line: int  # line the pragma suppresses findings on
    rules: Tuple[str, ...]
    reason: str
    used: bool = False


class SourceModule:
    """A parsed source file plus the metadata rules dispatch on."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=relpath)
        self.is_kernel = any(pkg in relpath for pkg in KERNEL_PACKAGES)
        self.pragmas: List[Pragma] = []
        self.pragma_errors: List[Finding] = []
        self._scan_pragmas()

    def _scan_pragmas(self) -> None:
        for idx, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
            reason = match.group(2).strip()
            target = idx
            if _COMMENT_ONLY_RE.match(line):
                # a comment-only pragma covers the next *code* line
                # (comment blocks may continue the reason over several
                # lines; blanks are skipped too)
                target = idx + 1
                while target <= len(self.lines) and (
                    not self.lines[target - 1].strip()
                    or _COMMENT_ONLY_RE.match(self.lines[target - 1])
                ):
                    target += 1
            if not rules:
                self.pragma_errors.append(Finding(
                    PRAGMA_RULE, self.relpath, idx, 0,
                    "pragma names no rule: use "
                    "`# repro: allow(rule-id) — reason`",
                ))
                continue
            if len(reason) < 10:
                self.pragma_errors.append(Finding(
                    PRAGMA_RULE, self.relpath, idx, 0,
                    "pragma reason missing or too short (>= 10 chars): "
                    "every suppression must say WHY it is safe",
                ))
                continue
            self.pragmas.append(Pragma(target, rules, reason))

    def pragma_for(self, finding: Finding) -> Optional[Pragma]:
        for pragma in self.pragmas:
            if pragma.line == finding.line and finding.rule in pragma.rules:
                return pragma
        return None


class Rule:
    """One check: visit a module, yield findings.

    Subclasses set ``id``/``summary`` and implement :meth:`check`.
    ``kernel_only`` rules skip non-kernel modules up front.
    """

    id: str = ""
    summary: str = ""
    kernel_only: bool = False

    def applies(self, module: SourceModule) -> bool:
        return module.is_kernel or not self.kernel_only

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            self.id,
            module.relpath,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            message,
        )


@dataclass
class CheckReport:
    """The outcome of one analysis run, before/after suppression."""

    active: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Pragma]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.active and not self.stale_baseline

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "ok": self.ok,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [
                dict(f.to_json(), status="active") for f in self.active
            ] + [
                dict(
                    f.to_json(),
                    status="suppressed",
                    reason=pragma.reason,
                )
                for f, pragma in self.suppressed
            ] + [
                dict(f.to_json(), status="baselined")
                for f in self.baselined
            ],
            "stale_baseline": self.stale_baseline,
        }


def collect_modules(
    root: Path, targets: Sequence[str]
) -> List[SourceModule]:
    """Parse every ``*.py`` under the target dirs (repo-relative)."""
    modules: List[SourceModule] = []
    for target in targets:
        base = root / target
        if base.is_file():
            paths = [base]
        elif base.is_dir():
            paths = sorted(base.rglob("*.py"))
        else:
            continue
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            modules.append(
                SourceModule(path, relpath, path.read_text(encoding="utf-8"))
            )
    return modules


def load_baseline(path: Path) -> List[Dict[str, object]]:
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    return list(data.get("findings", []))


def baseline_key(entry: Dict[str, object]) -> Tuple[str, str, int]:
    return (str(entry["rule"]), str(entry["path"]), int(entry["line"]))


def run_rules(
    modules: Sequence[SourceModule],
    rules: Sequence[Rule],
    baseline: Sequence[Dict[str, object]] = (),
) -> CheckReport:
    """Run every rule over every module; fold in pragmas + baseline."""
    report = CheckReport()
    raw: List[Tuple[SourceModule, Finding]] = []
    for module in modules:
        for error in module.pragma_errors:
            raw.append((module, error))
        for rule in rules:
            if not rule.applies(module):
                continue
            for finding in rule.check(module):
                raw.append((module, finding))

    baseline_keys = {baseline_key(entry) for entry in baseline}
    seen_keys: Set[Tuple[str, str, int]] = set()
    for module, finding in raw:
        pragma = (
            module.pragma_for(finding)
            if finding.rule != PRAGMA_RULE
            else None
        )
        if pragma is not None:
            pragma.used = True
            report.suppressed.append((finding, pragma))
            continue
        if finding.key in baseline_keys:
            seen_keys.add(finding.key)
            report.baselined.append(finding)
            continue
        report.active.append(finding)

    # unused pragmas rot into lies; they are findings themselves
    for module in modules:
        for pragma in module.pragmas:
            if not pragma.used:
                report.active.append(Finding(
                    PRAGMA_RULE, module.relpath, pragma.line, 0,
                    "unused pragma: no finding of "
                    f"{', '.join(pragma.rules)} on this line — delete it",
                ))

    # the baseline may only shrink: stale entries must be removed
    for entry in baseline:
        if baseline_key(entry) not in seen_keys:
            report.stale_baseline.append(entry)

    report.active.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
