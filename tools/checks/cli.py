"""Driver for the determinism & concurrency checks.

Usage (from the repo root)::

    python -m tools.checks                   # check src, human output
    python -m tools.checks --json CHECK_findings.json
    python -m tools.checks --regen-baseline  # re-freeze the baseline
    python -m tools.checks --list-rules

Exit status is 0 only when there are no active findings AND no stale
baseline entries (the baseline may only shrink).  ``make check`` runs
this with ``--json CHECK_findings.json`` so CI can archive the full
finding set (active + suppressed + baselined) as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

if __package__ in (None, ""):  # script mode: python tools/checks/cli.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))
    from tools.checks.core import (  # type: ignore[no-redef]
        CheckReport, Rule, collect_modules, load_baseline, run_rules,
    )
    from tools.checks.determinism import DETERMINISM_RULES  # type: ignore
    from tools.checks.effects import EFFECT_RULES  # type: ignore
    from tools.checks.fanout import FANOUT_RULES  # type: ignore
else:
    from .core import (
        CheckReport, Rule, collect_modules, load_baseline, run_rules,
    )
    from .determinism import DETERMINISM_RULES
    from .effects import EFFECT_RULES
    from .fanout import FANOUT_RULES

DEFAULT_TARGETS = ("src",)
BASELINE_NAME = "baseline.json"


def all_rules() -> List[Rule]:
    return list(DETERMINISM_RULES) + list(FANOUT_RULES) + list(EFFECT_RULES)


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / BASELINE_NAME


def run_checks(
    root: Optional[Path] = None,
    targets: Sequence[str] = DEFAULT_TARGETS,
    baseline_path: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> CheckReport:
    """Programmatic entry point (used by tools/lint.py and the tests)."""
    root = root or repo_root()
    if baseline_path is None:
        baseline_path = default_baseline_path()
    modules = collect_modules(root, targets)
    baseline = load_baseline(baseline_path) if baseline_path else []
    return run_rules(modules, rules or all_rules(), baseline)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools.checks",
        description="repo-specific determinism & concurrency checks",
    )
    parser.add_argument(
        "targets", nargs="*", default=list(DEFAULT_TARGETS),
        help="repo-relative dirs/files to check (default: src)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full finding report (JSON) to PATH",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file (default: tools/checks/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--regen-baseline", action="store_true",
        help="rewrite the baseline from the current active findings "
        "(for grandfathering; the baseline may only shrink afterwards)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = "kernel" if rule.kernel_only else "src"
            print(f"{rule.id:24s} [{scope:6s}] {rule.summary}")
        return 0

    root = repo_root()
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )

    if args.regen_baseline:
        report = run_checks(root, args.targets, baseline_path=None)
        payload = {
            "comment": (
                "Grandfathered findings: tolerated by `make check` but "
                "may only shrink. Remove entries as the code they point "
                "at is fixed; stale entries fail the check."
            ),
            "findings": [f.to_json() for f in report.active],
        }
        baseline_path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"check: baseline regenerated with {len(report.active)} "
            f"finding(s) -> {baseline_path}"
        )
        return 0

    report = run_checks(root, args.targets, baseline_path)

    if args.json:
        out = Path(args.json)
        out.write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )

    for finding in report.active:
        print(finding.render())
    for entry in report.stale_baseline:
        print(
            f"{entry['path']}:{entry['line']}: [baseline] stale entry "
            f"for rule {entry['rule']} — the finding is gone; delete it "
            "from tools/checks/baseline.json (the baseline may only "
            "shrink)"
        )
    summary = (
        f"check: {len(report.active)} active, "
        f"{len(report.suppressed)} suppressed (pragma), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.stale_baseline)} stale baseline"
    )
    print(summary)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
