"""Pass-effect checker: declared ``reads``/``writes`` vs. the body.

The stage scheduler (PR 7) trusts each :class:`repro.pipeline.Pass`'s
declared ``writes`` to decide which passes may overlap: passes sharing
a DAG level must have disjoint writes.  A runner that writes a context
key it never declared silently breaks that contract — the DAG stays
green while the concurrent schedule races.  These rules make the
declarations provably honest, the way the paper's round-by-round LOCAL
model makes per-round effects explicit.

For every ``Pass(name, runner, reads=…, writes=…)`` whose runner is a
module-level function, the checker walks the runner body and records
accesses to its context parameter (the first argument):

* **reads** — ``ctx["k"]`` loads, ``ctx.get("k")``, ``"k" in ctx``;
* **direct writes** — ``ctx["k"] = …`` / ``del ctx["k"]`` /
  augmented assignment, ``ctx.update({...})`` literal keys, and
  write-through mutation: ``ctx["k"].attr = …``, ``ctx["k"][i] = …``,
  ``ctx["k"].update(...)``-style mutating method calls.

Rules:

* ``effect-undeclared-write`` — a direct write to a key missing from
  the declared ``writes``.  This is the hard failure: the scheduler
  cannot see it.
* ``effect-dead-decl`` — a declared read or write whose key never
  appears in the body at all.  Dead declarations overconstrain the
  DAG (fake conflicts serialize passes) and rot into documentation
  lies.

Honest limitations, by design (the dynamic equivalence corpora remain
the backstop): aliasing (``d = ctx["k"]; d[x] = …``) and mutation
inside helpers called with ``ctx["k"]`` are invisible, so a declared
write that only happens through a helper argument still counts as
"mentioned" and does not trip the dead-declaration rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Finding, Rule, SourceModule
from .fanout import MUTATING_METHODS

__all__ = ["PassEffectRule", "EFFECT_RULES"]


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            value = _const_str(element)
            if value is None:
                return None
            out.append(value)
        return tuple(out)
    value = _const_str(node)
    if value is not None:
        return (value,)
    return None


class _PassDecl:
    def __init__(
        self,
        name: str,
        runner: str,
        reads: Tuple[str, ...],
        writes: Tuple[str, ...],
        node: ast.Call,
    ) -> None:
        self.name = name
        self.runner = runner
        self.reads = reads
        self.writes = writes
        self.node = node


def _pass_decls(tree: ast.Module) -> List[_PassDecl]:
    decls: List[_PassDecl] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name_ok = (isinstance(func, ast.Name) and func.id == "Pass") or (
            isinstance(func, ast.Attribute) and func.attr == "Pass"
        )
        if not name_ok or len(node.args) < 2:
            continue
        pass_name = _const_str(node.args[0])
        runner = node.args[1]
        if pass_name is None or not isinstance(runner, ast.Name):
            continue
        reads: Tuple[str, ...] = ()
        writes: Tuple[str, ...] = ()
        literal = True
        for kw in node.keywords:
            if kw.arg == "reads":
                parsed = _str_tuple(kw.value)
                if parsed is None:
                    literal = False
                else:
                    reads = parsed
            elif kw.arg == "writes":
                parsed = _str_tuple(kw.value)
                if parsed is None:
                    literal = False
                else:
                    writes = parsed
        if not literal:
            continue  # computed declarations are out of lexical reach
        decls.append(_PassDecl(pass_name, runner.id, reads, writes, node))
    return decls


class _CtxAccesses(ast.NodeVisitor):
    """Context-key accesses of one runner body (``ctx`` = first param)."""

    def __init__(self, ctx_name: str) -> None:
        self.ctx_name = ctx_name
        self.reads: Set[str] = set()
        #: key -> first write site
        self.writes: Dict[str, ast.AST] = {}

    def _note_write(self, key: str, node: ast.AST) -> None:
        self.writes.setdefault(key, node)

    def _ctx_key(self, node: ast.AST) -> Optional[str]:
        """``ctx["k"]`` → ``"k"``."""
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.ctx_name
        ):
            sl = node.slice
            # py<3.9 wraps subscript slices in ast.Index
            if sl.__class__.__name__ == "Index":
                sl = sl.value  # type: ignore[attr-defined]
            return _const_str(sl)
        return None

    def visit_Subscript(self, node: ast.Subscript) -> None:
        key = self._ctx_key(node)
        if key is not None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                self._note_write(key, node)
            else:
                self.reads.add(key)
        else:
            # write-through: ctx["k"][i] = v
            inner = self._ctx_key(node.value)
            if inner is not None and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self._note_write(inner, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # write-through: ctx["k"].attr = v
        key = self._ctx_key(node.value)
        if key is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._note_write(key, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        key = self._ctx_key(node.target)
        if key is not None:
            self._note_write(key, node)
            self.reads.add(key)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # ctx.get("k") / ctx.update({...})
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == self.ctx_name
            ):
                if func.attr == "get" and node.args:
                    key = _const_str(node.args[0])
                    if key is not None:
                        self.reads.add(key)
                elif func.attr == "update" and node.args:
                    mapping = node.args[0]
                    if isinstance(mapping, ast.Dict):
                        for key_node in mapping.keys:
                            key = (
                                _const_str(key_node)
                                if key_node is not None
                                else None
                            )
                            if key is not None:
                                self._note_write(key, node)
            else:
                # write-through: ctx["k"].append(...) etc.
                key = self._ctx_key(func.value)
                if key is not None and func.attr in MUTATING_METHODS:
                    self._note_write(key, node)
                    self.reads.add(key)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # "k" in ctx
        for op, comparator in zip(node.ops, node.comparators):
            if (
                isinstance(op, (ast.In, ast.NotIn))
                and isinstance(comparator, ast.Name)
                and comparator.id == self.ctx_name
            ):
                key = _const_str(node.left)
                if key is not None:
                    self.reads.add(key)
        self.generic_visit(node)


class PassEffectRule(Rule):
    """Registered twice, once per rule id (shared traversal)."""

    kernel_only = False

    def __init__(self, rule_id: str) -> None:
        self.id = rule_id
        self.summary = (
            "runner writes a context key missing from the Pass's "
            "declared writes"
            if rule_id == "effect-undeclared-write"
            else "declared read/write key the runner body never touches"
        )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for finding in _scan_module(module):
            if finding.rule == self.id:
                yield finding


def _scan_module(module: SourceModule) -> List[Finding]:
    cache = getattr(module, "_effect_findings", None)
    if cache is not None:
        return cache
    findings: List[Finding] = []
    functions: Dict[str, ast.FunctionDef] = {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, ast.FunctionDef)
    }
    accesses_cache: Dict[str, _CtxAccesses] = {}

    for decl in _pass_decls(module.tree):
        runner = functions.get(decl.runner)
        if runner is None or not runner.args.args:
            continue  # imported/opaque runner: out of lexical reach
        accesses = accesses_cache.get(decl.runner)
        if accesses is None:
            accesses = _CtxAccesses(runner.args.args[0].arg)
            accesses.visit(runner)
            accesses_cache[decl.runner] = accesses

        mentioned = accesses.reads | set(accesses.writes)
        for key, site in sorted(
            accesses.writes.items(), key=lambda kv: kv[1].lineno
        ):
            if key not in decl.writes:
                findings.append(Finding(
                    "effect-undeclared-write", module.relpath,
                    site.lineno, site.col_offset,
                    f"pass '{decl.name}' ({decl.runner}) writes context "
                    f"key '{key}' but declares writes={decl.writes!r}: "
                    "the scheduler cannot see this effect",
                ))
        for key in decl.writes:
            if key not in mentioned:
                findings.append(Finding(
                    "effect-dead-decl", module.relpath,
                    decl.node.lineno, decl.node.col_offset,
                    f"pass '{decl.name}' declares write '{key}' but "
                    f"{decl.runner} never touches it",
                ))
        for key in decl.reads:
            if key not in mentioned:
                findings.append(Finding(
                    "effect-dead-decl", module.relpath,
                    decl.node.lineno, decl.node.col_offset,
                    f"pass '{decl.name}' declares read '{key}' but "
                    f"{decl.runner} never touches it",
                ))

    module._effect_findings = findings  # type: ignore[attr-defined]
    return findings


EFFECT_RULES = [
    PassEffectRule("effect-undeclared-write"),
    PassEffectRule("effect-dead-decl"),
]
