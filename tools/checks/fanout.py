"""Fan-out race detector.

Closures handed to the concurrency seams — ``ctx.fan_out`` thunks,
``engine.gather``/``wave``/``scan_shards``/``map_ranges`` kernels, pool
``submit`` — may run on wave-engine threads.  The engine's determinism
contract requires them to *only read frozen shared state*: all writes
to shared state belong in the reconcile phase (or the in-order loop
over returned thunk results).  PR 7's star-forest bug was exactly a
fanned thunk accumulating ``stats.dummy_slots`` through its closure —
correct serially, a lost-update race concurrently; the fix moved the
accumulation into thunk return values.

Two rules:

* ``race-closure-write`` — a fanned callable stores into (or calls a
  mutating method on) a name captured from an enclosing scope, or
  declares ``nonlocal``/``global``.  Mutating *locals* and *parameters*
  is fine (per-call state); mutating captures is the bug class.
  ``RoundCounter.charge`` counts as a mutation: the counter is shared
  and not thread-safe, so charging belongs outside the fanned region.
* ``race-rng`` — a fanned callable draws from an RNG (``rng.sample``,
  ``child_rng(...)``, …).  Stream consumption order then depends on
  thread scheduling, so "seeded" runs stop reproducing.  Draws belong
  before the fan-out, in fixed order (the PR 7 star-forest fix keeps
  them outside the fanned region).

Both rules are purely lexical: a callable is "fanned" when it appears
(directly, via a local name, or inside a list/comprehension) as the
fanned argument of one of the seam calls.  ``wave(work, kernel,
reconcile)`` exempts the reconcile — it is *defined* as the single
writer of shared state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .core import Finding, Rule, SourceModule

__all__ = ["FanOutRaceRule", "FANOUT_RULES"]

#: seam-method name -> index of the fanned callable argument (also
#: accepted as the matching keyword).
FANOUT_SEAMS: Dict[str, Tuple[int, str]] = {
    "fan_out": (0, "thunks"),
    "gather": (0, "kernel"),
    "wave": (1, "kernel"),
    "scan_shards": (0, "kernel"),
    "map_ranges": (0, "fn"),
    "submit": (0, "fn"),
}

#: method names that mutate their receiver (plus the shared
#: RoundCounter's charge, which is not thread-safe).
MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse", "fill",
    "put", "itemset", "charge",
})

#: random.Random draw methods.
RNG_METHODS = frozenset({
    "random", "randrange", "randint", "sample", "shuffle", "choice",
    "choices", "getrandbits", "gauss", "uniform", "betavariate",
    "normalvariate", "expovariate", "triangular",
})

#: repro.rng helpers that consume the parent stream.
RNG_HELPERS = frozenset({
    "child_rng", "make_rng", "coin", "sample_subset",
    "random_partition_index",
})


def _bound_names(func: ast.AST) -> Set[str]:
    """Every name bound inside the callable subtree: parameters,
    assignment/loop/with/comprehension targets, nested defs.  Names
    outside this set that the body stores through are closure
    captures."""
    bound: Set[str] = set()

    def add_args(arguments: ast.arguments) -> None:
        for arg in (
            list(getattr(arguments, "posonlyargs", []))
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        ):
            bound.add(arg.arg)
        if arguments.vararg:
            bound.add(arguments.vararg.arg)
        if arguments.kwarg:
            bound.add(arguments.kwarg.arg)

    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        add_args(func.args)

    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            add_args(node.args)
        elif isinstance(node, ast.Lambda):
            add_args(node.args)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _base_name(node: ast.AST) -> Optional[str]:
    """The root Name of an attribute/subscript chain (``a.b[c]`` → a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _ScopeStack:
    """Maps names to locally defined callables, per lexical scope."""

    def __init__(self) -> None:
        self.stack: List[Dict[str, ast.AST]] = []

    def push(self, body: List[ast.stmt]) -> None:
        defs: Dict[str, ast.AST] = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Lambda
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defs[target.id] = stmt.value
        self.stack.append(defs)

    def pop(self) -> None:
        self.stack.pop()

    def resolve(self, name: str) -> Optional[ast.AST]:
        for defs in reversed(self.stack):
            if name in defs:
                return defs[name]
        return None


class FanOutRaceRule(Rule):
    """Both race rules share one traversal; ``check`` dispatches on the
    finding's rule id, so the class is registered twice (see
    :data:`FANOUT_RULES`)."""

    kernel_only = False

    def __init__(self, rule_id: str) -> None:
        self.id = rule_id
        self.summary = (
            "closure-captured state written inside a fanned region"
            if rule_id == "race-closure-write"
            else "RNG draw inside a fanned region"
        )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for finding in _scan_module(module):
            if finding.rule == self.id:
                yield finding


def _scan_module(module: SourceModule) -> List[Finding]:
    cache = getattr(module, "_fanout_findings", None)
    if cache is not None:
        return cache
    findings: List[Finding] = []
    scopes = _ScopeStack()

    def visit_body(body: List[ast.stmt]) -> None:
        scopes.push(body)
        for stmt in body:
            visit_node(stmt)
        scopes.pop()

    def visit_node(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_body(node.body)
            return
        if isinstance(node, ast.Call):
            seam = _seam_of(node)
            if seam is not None:
                for func in _fanned_callables(node, seam, scopes):
                    findings.extend(_check_callable(module, func, seam))
        for child in ast.iter_child_nodes(node):
            visit_node(child)

    visit_body(list(module.tree.body))
    module._fanout_findings = findings  # type: ignore[attr-defined]
    return findings


def _seam_of(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in FANOUT_SEAMS:
        return func.attr
    return None


def _fanned_callables(
    call: ast.Call, seam: str, scopes: _ScopeStack
) -> Iterator[ast.AST]:
    index, keyword = FANOUT_SEAMS[seam]
    expr: Optional[ast.AST] = None
    if len(call.args) > index:
        expr = call.args[index]
    else:
        for kw in call.keywords:
            if kw.arg == keyword:
                expr = kw.value
    if expr is None:
        return
    yield from _callables_in(expr, scopes)


def _callables_in(
    expr: ast.AST, scopes: _ScopeStack
) -> Iterator[ast.AST]:
    if isinstance(expr, ast.Lambda):
        yield expr
    elif isinstance(expr, ast.Name):
        resolved = scopes.resolve(expr.id)
        if resolved is not None:
            yield resolved
    elif isinstance(expr, (ast.List, ast.Tuple)):
        for element in expr.elts:
            yield from _callables_in(element, scopes)
    elif isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        yield from _callables_in(expr.elt, scopes)
    # anything else (call results, attributes) is opaque to the rule


def _check_callable(
    module: SourceModule, func: ast.AST, seam: str
) -> Iterator[Finding]:
    bound = _bound_names(func)
    where = f"callable fanned through {seam}()"

    for node in ast.walk(func):
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            kind = "nonlocal" if isinstance(node, ast.Nonlocal) else "global"
            yield Finding(
                "race-closure-write", module.relpath, node.lineno,
                node.col_offset,
                f"{kind} declaration in a {where}: rebinding enclosing-"
                "scope state from worker threads is a lost-update race",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = _base_name(target)
                    if base is not None and base not in bound:
                        yield Finding(
                            "race-closure-write", module.relpath,
                            target.lineno, target.col_offset,
                            f"store into closure-captured '{base}' in a "
                            f"{where}: the PR 7 bug class — return the "
                            "value and reconcile in the in-order loop",
                        )
        elif isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Attribute):
                base = _base_name(callee.value)
                is_free = base is not None and base not in bound
                if is_free and callee.attr in MUTATING_METHODS:
                    yield Finding(
                        "race-closure-write", module.relpath,
                        node.lineno, node.col_offset,
                        f"'{base}.{callee.attr}(...)' mutates closure-"
                        f"captured state in a {where}: writes belong in "
                        "the reconcile phase",
                    )
                if is_free and callee.attr in RNG_METHODS and (
                    base is not None
                    and ("rng" in base.lower() or base == "random")
                ):
                    yield Finding(
                        "race-rng", module.relpath,
                        node.lineno, node.col_offset,
                        f"'{base}.{callee.attr}(...)' draws from a "
                        f"captured RNG in a {where}: stream order would "
                        "depend on thread scheduling — draw before "
                        "fanning out, in fixed order",
                    )
            elif (
                isinstance(callee, ast.Name)
                and callee.id in RNG_HELPERS
                and callee.id not in bound
            ):
                yield Finding(
                    "race-rng", module.relpath,
                    node.lineno, node.col_offset,
                    f"'{callee.id}(...)' consumes the parent RNG stream "
                    f"in a {where}: derive child streams before fanning "
                    "out",
                )


FANOUT_RULES = [
    FanOutRaceRule("race-closure-write"),
    FanOutRaceRule("race-rng"),
]
