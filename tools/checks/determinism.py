"""Determinism lint: rules over the kernel packages.

The library's core guarantee is that every decomposition is
bit-identical across backends × workers × shards × schedules.  These
rules flag the constructs that historically (or structurally) break it:

* ``det-hash`` — ``hash()`` on anything.  ``hash(str)`` is randomized
  per process by ``PYTHONHASHSEED`` (the PR 2 ``child_rng`` bug: seeded
  runs flaked across processes); integer hashes are stable but the
  builtin is banned wholesale in kernel modules so nobody has to argue
  about operand types in review — use ``hashlib.blake2b`` digests.
* ``det-id`` — ``id()``.  CPython addresses vary run to run, so any
  ordering or keying by ``id`` is irreproducible.
* ``det-set-order`` — iterating a set (literal, comprehension,
  ``set()``/``frozenset()`` call, or a local variable bound to one)
  without ``sorted(...)``.  Set iteration order depends on element
  hashes — randomized for strings — so any set-ordered loop that feeds
  output ordering is a latent reproducibility bug.  Dict iteration is
  insertion-ordered and therefore allowed.
* ``det-wallclock`` — ``time.*`` / ``random.*`` / ``datetime.now()``-
  style ambient nondeterminism in kernel modules.  Randomness must
  flow through :mod:`repro.rng` seeds; wall-clock reads are only
  legitimate for observability (PassStats timing) and need a pragma
  saying so.
* ``det-env`` — ``os.environ`` / ``os.getenv`` outside the sanctioned
  single-read helpers (:data:`~tools.checks.core.SANCTIONED_ENV_READERS`).
  Scattered env reads made the PR 4 pools re-read knobs mid-run; every
  knob is read exactly once, in one named place.

``det-env`` applies to all of ``src``; the others are kernel-only
(``src/repro/{parallel,graph,decomposition,pipeline}``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set

from .core import Finding, Rule, SANCTIONED_ENV_READERS, SourceModule

__all__ = [
    "HashCallRule",
    "IdCallRule",
    "SetIterationRule",
    "WallclockRule",
    "EnvReadRule",
    "DETERMINISM_RULES",
]


class HashCallRule(Rule):
    id = "det-hash"
    summary = (
        "builtin hash() in a kernel module (PYTHONHASHSEED-randomized "
        "for str/bytes; use hashlib.blake2b)"
    )
    kernel_only = True

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module, node,
                    "hash() is process-randomized for str/bytes "
                    "(PYTHONHASHSEED) — the PR 2 child_rng bug class; "
                    "use a hashlib.blake2b digest",
                )


class IdCallRule(Rule):
    id = "det-id"
    summary = "builtin id() in a kernel module (addresses vary per run)"
    kernel_only = True

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield self.finding(
                    module, node,
                    "id() values vary run to run; ordering or keying by "
                    "object identity is irreproducible",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _FunctionSets(ast.NodeVisitor):
    """Names bound to set-valued expressions within one scope (single
    straight-line inference: a rebind to a non-set expression clears
    the mark)."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value):
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value):
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)
        self.generic_visit(node)

    # nested scopes track their own bindings
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class SetIterationRule(Rule):
    id = "det-set-order"
    summary = (
        "iterating a set without sorted() in a kernel module "
        "(hash-ordered; randomized for str elements)"
    )
    kernel_only = True

    _ORDER_SINKS = ("list", "tuple", "enumerate", "iter", "reversed")

    def check(self, module: SourceModule) -> Iterable[Finding]:
        # scopes: module body + every function body
        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _scope_body_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(
        self, module: SourceModule, scope: ast.AST
    ) -> Iterator[Finding]:
        inference = _FunctionSets()
        for child in ast.iter_child_nodes(scope):
            inference.visit(child)
        set_names = inference.set_names

        def is_set_like(expr: ast.AST) -> bool:
            if _is_set_expr(expr):
                return True
            return isinstance(expr, ast.Name) and expr.id in set_names

        for node in self._scope_body_nodes(scope):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            # SetComp is exempt: iterating a set to build another set
            # cannot leak iteration order into the result.
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SINKS
                and node.args
            ):
                iters.append(node.args[0])
            for expr in iters:
                if is_set_like(expr):
                    yield self.finding(
                        module, expr,
                        "set iteration order is hash-dependent "
                        "(PYTHONHASHSEED-randomized for strings); wrap "
                        "in sorted(...) before it can feed output "
                        "ordering",
                    )


class WallclockRule(Rule):
    id = "det-wallclock"
    summary = (
        "ambient nondeterminism (time/random/datetime/np.random) in a "
        "kernel module"
    )
    kernel_only = True

    _MODULES = ("time", "random", "datetime")
    _TIME_NAMES = frozenset({
        "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
        "time_ns", "process_time",
    })

    def check(self, module: SourceModule) -> Iterable[Finding]:
        from_imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in self._MODULES:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = node.module
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                if isinstance(value, ast.Name) and value.id in self._MODULES:
                    yield self.finding(
                        module, node,
                        f"{value.id}.{node.attr}: wall-clock/ambient "
                        "randomness in a kernel module; seed through "
                        "repro.rng (pragma observability-only timing)",
                    )
                # np.random / numpy.random
                elif (
                    isinstance(value, ast.Name)
                    and value.id in ("np", "numpy")
                    and node.attr == "random"
                ):
                    yield self.finding(
                        module, node,
                        "np.random draws from global process state; "
                        "seed through repro.rng",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in from_imports
            ):
                origin = from_imports[node.func.id]
                yield self.finding(
                    module, node,
                    f"{node.func.id}() (from {origin}): wall-clock/"
                    "ambient randomness in a kernel module; seed "
                    "through repro.rng (pragma observability-only "
                    "timing)",
                )


class EnvReadRule(Rule):
    id = "det-env"
    summary = (
        "environment read outside the sanctioned single-read helpers"
    )
    kernel_only = False

    def check(self, module: SourceModule) -> Iterable[Finding]:
        sanctioned_spans: List[range] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in SANCTIONED_ENV_READERS
            ):
                end = getattr(node, "end_lineno", node.lineno)
                sanctioned_spans.append(range(node.lineno, end + 1))

        def sanctioned(line: int) -> bool:
            return any(line in span for span in sanctioned_spans)

        for node in ast.walk(module.tree):
            hit = None
            if isinstance(node, ast.Attribute):
                value = node.value
                if (
                    isinstance(value, ast.Name)
                    and value.id == "os"
                    and node.attr in ("environ", "getenv")
                ):
                    hit = f"os.{node.attr}"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getenv"
            ):
                hit = "getenv"
            if hit is None:
                continue
            if sanctioned(getattr(node, "lineno", 0)):
                continue
            yield self.finding(
                module, node,
                f"{hit}: knobs are read exactly once via the sanctioned "
                "helpers (" + ", ".join(sorted(SANCTIONED_ENV_READERS))
                + "); scattered reads let mid-run env changes perturb "
                "results",
            )


DETERMINISM_RULES = [
    HashCallRule(),
    IdCallRule(),
    SetIterationRule(),
    WallclockRule(),
    EnvReadRule(),
]
