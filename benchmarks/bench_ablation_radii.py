"""Ablation — search radius R' vs locality violations.

Theorem 3.2 promises augmenting sequences within O(log n/ε) of the
uncolored edge *provided CUT succeeded*; Algorithm 2 therefore caps the
search at R'.  This ablation shrinks R' below the safe value and counts
how often the capped search fails (falling back to a global search),
how the leftover grows, and what the rounds trade-off looks like — the
empirical justification for the default radii.
"""

import math

from repro.core import algorithm2
from repro.graph.generators import line_multigraph, uniform_palette
from repro.local import RoundCounter

from harness import emit, format_table, once

SEED = 67
ALPHA = 3
LENGTH = 100
EPSILON = 1.0


def bench_ablation_radii(benchmark):
    rows = []

    def run():
        graph = line_multigraph(LENGTH, ALPHA)
        palettes = uniform_palette(
            graph, range(math.ceil((1 + EPSILON) * ALPHA))
        )
        for radius in (2, 4, 8, 16):
            rc = RoundCounter()
            result = algorithm2(
                graph, palettes, EPSILON, ALPHA,
                radius=radius, search_radius=radius, seed=SEED, rounds=rc,
            )
            assert not result.state.uncolored_edges()
            rows.append(
                [
                    radius,
                    result.stats.clusters_processed,
                    result.stats.locality_violations,
                    result.stats.max_sequence_length,
                    len(result.leftover),
                    result.stats.bad_cuts,
                    rc.total,
                ]
            )

    once(benchmark, run)
    table = format_table(
        f"Ablation: radii R = R' (line multigraph l={LENGTH}, "
        f"alpha={ALPHA}, eps={EPSILON})",
        [
            "R", "clusters", "locality violations", "max |P|",
            "|leftover|", "bad cuts", "charged rounds",
        ],
        rows,
    )
    emit("ablation_radii", table)
    # Shape: at and above the default-scale radius the capped search
    # never needs the global fallback.
    assert rows[-1][2] == 0
    # Smaller radii mean more clusters.
    clusters = [r[1] for r in rows]
    assert clusters == sorted(clusters, reverse=True)
