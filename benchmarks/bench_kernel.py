"""Flat-array kernel vs. dict-backed graph on the decomposition hot paths.

Measures ``h_partition`` (threshold peeling) and ``degeneracy_ordering``
(delete-min peeling) under both backends on the generator suite, at
sizes where the kernel matters (n >= 2000).  Asserts the kernel's
claim: at n >= 2000 the combined hot-path time improves by >= 2x, with
identical outputs (checked here on every row; exhaustively in
``tests/test_kernel_equivalence.py``).

Run directly:  PYTHONPATH=src python benchmarks/bench_kernel.py
"""

import time

from repro.decomposition.degeneracy import degeneracy_ordering
from repro.decomposition.hpartition import h_partition
from repro.graph.generators import (
    erdos_renyi,
    preferential_attachment,
    union_of_random_forests,
)

from harness import emit, format_table

REPEATS = 5

WORKLOADS = [
    ("forests n=500 a=4", False, lambda: union_of_random_forests(500, 4, seed=11)),
    ("forests n=2000 a=4", True, lambda: union_of_random_forests(2000, 4, seed=12)),
    ("forests n=8000 a=6", True, lambda: union_of_random_forests(8000, 6, seed=13)),
    ("er n=4000 p=.002", True, lambda: erdos_renyi(4000, 0.002, seed=14)),
    ("pref n=3000 d=5", True, lambda: preferential_attachment(3000, 5, seed=15)),
]


def _best(func):
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times)


def run_kernel_comparison():
    rows = []
    asserted = []
    for name, assertable, make in WORKLOADS:
        graph = make()
        d, _ = degeneracy_ordering(graph)
        threshold = max(1, d)

        partition_dict = h_partition(graph, threshold, backend="dict")
        partition_csr = h_partition(graph, threshold, backend="csr")
        assert partition_csr.classes == partition_dict.classes
        order_dict = degeneracy_ordering(graph, backend="dict")
        order_csr = degeneracy_ordering(graph, backend="csr")
        assert order_csr == order_dict

        hp_dict = _best(lambda: h_partition(graph, threshold, backend="dict"))
        hp_csr = _best(lambda: h_partition(graph, threshold, backend="csr"))
        dg_dict = _best(lambda: degeneracy_ordering(graph, backend="dict"))
        dg_csr = _best(lambda: degeneracy_ordering(graph, backend="csr"))
        combined = (hp_dict + dg_dict) / (hp_csr + dg_csr)
        rows.append(
            (
                name,
                graph.n,
                graph.m,
                f"{hp_dict * 1e3:.1f}",
                f"{hp_csr * 1e3:.1f}",
                f"{hp_dict / hp_csr:.1f}x",
                f"{dg_dict * 1e3:.1f}",
                f"{dg_csr * 1e3:.1f}",
                f"{dg_dict / dg_csr:.1f}x",
                f"{combined:.2f}x",
            )
        )
        if assertable:
            asserted.append((name, combined))

    emit(
        "kernel",
        format_table(
            "Flat-array kernel vs dict backend (hot-path peeling)",
            [
                "workload",
                "n",
                "m",
                "hpart dict ms",
                "hpart csr ms",
                "speedup",
                "degen dict ms",
                "degen csr ms",
                "speedup",
                "combined",
            ],
            rows,
        ),
    )

    for name, combined in asserted:
        assert combined >= 2.0, (
            f"{name}: combined hot-path speedup {combined:.2f}x < 2x — "
            "the kernel's reason to exist"
        )
    return rows


def bench_kernel(benchmark=None):
    if benchmark is None:
        run_kernel_comparison()
    else:
        from harness import once

        once(benchmark, run_kernel_comparison)


if __name__ == "__main__":
    bench_kernel()
