"""Flat-array kernel vs. dict-backed graph on the decomposition hot paths.

Two sections, one per substrate port:

* ``bench_kernel`` — the PR-1 peeling paths: ``h_partition`` (threshold
  peeling) and ``degeneracy_ordering`` (delete-min peeling).
* ``bench_traversal`` — the PR-2 traversal/network-decomposition paths:
  ``power_graph`` (the former bottleneck), multi-source
  ``bfs_distances``, ``connected_components``, the ball-carving
  ``network_decomposition`` consuming the power graph, and the MPX
  ``partial_network_decomposition`` sweep.

Both sections check dict/csr output equality on every workload, assert
the kernel's reason to exist (>= 2x at n >= 2000; skipped when
``BENCH_SNAPSHOT=1`` — shared CI runners time too noisily to gate on),
and archive machine-readable ``BENCH_*.json`` next to the text tables
(schema: benchmarks/README.md).

Run directly:  PYTHONPATH=src python benchmarks/bench_kernel.py
Snapshot mode: BENCH_SNAPSHOT=1 PYTHONPATH=src python benchmarks/bench_kernel.py
"""

import time

from repro.decomposition.degeneracy import degeneracy_ordering
from repro.decomposition.hpartition import h_partition
from repro.decomposition.network_decomposition import (
    network_decomposition,
    partial_network_decomposition,
)
from repro.graph.csr import snapshot_of
from repro.graph.generators import (
    erdos_renyi,
    preferential_attachment,
    union_of_random_forests,
)
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    power_graph,
)

from harness import SNAPSHOT_MODE, emit, emit_json, format_table

REPEATS = 5
TRAVERSAL_REPEATS = 3
SPEEDUP_FLOOR = 2.0

WORKLOADS = [
    ("forests n=500 a=4", False, lambda: union_of_random_forests(500, 4, seed=11)),
    ("forests n=2000 a=4", True, lambda: union_of_random_forests(2000, 4, seed=12)),
    ("forests n=8000 a=6", True, lambda: union_of_random_forests(8000, 6, seed=13)),
    ("er n=4000 p=.002", True, lambda: erdos_renyi(4000, 0.002, seed=14)),
    ("pref n=3000 d=5", True, lambda: preferential_attachment(3000, 5, seed=15)),
]

# Traversal workloads sit at the n >= 2000 scale the tentpole targets;
# the power radius keeps the dict reference path finishable while still
# producing the dense ``G^r`` the network decomposition consumes.
TRAVERSAL_WORKLOADS = [
    ("er n=2000 p=.003 r=3", True, 3, lambda: erdos_renyi(2000, 0.003, seed=21)),
    ("forests n=2000 a=4 r=2", True, 2, lambda: union_of_random_forests(2000, 4, seed=22)),
    ("pref n=2500 d=4 r=2", True, 2, lambda: preferential_attachment(2500, 4, seed=23)),
]


def _best(func, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times)


def run_kernel_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, make in WORKLOADS:
        graph = make()
        d, _ = degeneracy_ordering(graph)
        threshold = max(1, d)

        partition_dict = h_partition(graph, threshold, backend="dict")
        partition_csr = h_partition(graph, threshold, backend="csr")
        assert partition_csr.classes == partition_dict.classes
        order_dict = degeneracy_ordering(graph, backend="dict")
        order_csr = degeneracy_ordering(graph, backend="csr")
        assert order_csr == order_dict

        hp_dict = _best(lambda: h_partition(graph, threshold, backend="dict"))
        hp_csr = _best(lambda: h_partition(graph, threshold, backend="csr"))
        dg_dict = _best(lambda: degeneracy_ordering(graph, backend="dict"))
        dg_csr = _best(lambda: degeneracy_ordering(graph, backend="csr"))
        combined = (hp_dict + dg_dict) / (hp_csr + dg_csr)
        rows.append(
            (
                name,
                graph.n,
                graph.m,
                f"{hp_dict * 1e3:.1f}",
                f"{hp_csr * 1e3:.1f}",
                f"{hp_dict / hp_csr:.1f}x",
                f"{dg_dict * 1e3:.1f}",
                f"{dg_csr * 1e3:.1f}",
                f"{dg_dict / dg_csr:.1f}x",
                f"{combined:.2f}x",
            )
        )
        for op, t_dict, t_csr in (
            ("h_partition", hp_dict, hp_csr),
            ("degeneracy_ordering", dg_dict, dg_csr),
        ):
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": op,
                    "dict_ms": round(t_dict * 1e3, 3),
                    "csr_ms": round(t_csr * 1e3, 3),
                    "speedup": round(t_dict / t_csr, 3),
                }
            )
        if assertable:
            asserted.append((name, combined))

    emit(
        "kernel",
        format_table(
            "Flat-array kernel vs dict backend (hot-path peeling)",
            [
                "workload",
                "n",
                "m",
                "hpart dict ms",
                "hpart csr ms",
                "speedup",
                "degen dict ms",
                "degen csr ms",
                "speedup",
                "combined",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_kernel",
        {
            "bench": "kernel",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "combined_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, combined in asserted:
            assert combined >= SPEEDUP_FLOOR, (
                f"{name}: combined hot-path speedup {combined:.2f}x < "
                f"{SPEEDUP_FLOOR}x — the kernel's reason to exist"
            )
    return rows


def _check_traversal_equivalence(graph, sources):
    """dict/csr output equality for one workload (cheap ops only; the
    exhaustive sweep lives in tests/test_kernel_equivalence.py)."""
    assert bfs_distances(graph, sources, backend="csr") == bfs_distances(
        graph, sources, backend="dict"
    )
    assert connected_components(graph, backend="csr") == connected_components(
        graph, backend="dict"
    )
    heads_dict = partial_network_decomposition(graph, 0.3, seed=7, backend="dict")
    heads_csr = partial_network_decomposition(graph, 0.3, seed=7, backend="csr")
    assert heads_dict == heads_csr


def run_traversal_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, radius, make in TRAVERSAL_WORKLOADS:
        graph = make()
        snapshot = snapshot_of(graph)
        sources = graph.vertices()[:4]
        _check_traversal_equivalence(graph, sources)

        power_dict = _best(
            lambda: power_graph(graph, radius, backend="dict"), TRAVERSAL_REPEATS
        )
        power_csr = _best(
            lambda: snapshot.power_csr(radius), TRAVERSAL_REPEATS
        )
        bfs_dict = _best(
            lambda: bfs_distances(graph, sources, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        bfs_csr = _best(
            lambda: bfs_distances(snapshot, sources, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        cc_dict = _best(
            lambda: connected_components(graph, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        cc_csr = _best(
            lambda: connected_components(snapshot, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        # Ball carving consumes the power graph, each on its substrate.
        power_ref = power_graph(graph, radius, backend="dict")
        power_snap = snapshot.power_csr(radius)
        assert (
            network_decomposition(power_ref, backend="dict").classes
            == network_decomposition(power_snap, backend="csr").classes
        )
        nd_dict = _best(
            lambda: network_decomposition(power_ref, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        nd_csr = _best(
            lambda: network_decomposition(power_snap, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        mpx_dict = _best(
            lambda: partial_network_decomposition(graph, 0.3, seed=7, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        mpx_csr = _best(
            lambda: partial_network_decomposition(snapshot, 0.3, seed=7, backend="csr"),
            TRAVERSAL_REPEATS,
        )

        ops = [
            (f"power_graph[r={radius}]", power_dict, power_csr),
            ("bfs_distances", bfs_dict, bfs_csr),
            ("connected_components", cc_dict, cc_csr),
            ("network_decomposition[power]", nd_dict, nd_csr),
            ("partial_network_decomposition", mpx_dict, mpx_csr),
        ]
        total_dict = sum(t for _op, t, _c in ops)
        total_csr = sum(c for _op, _t, c in ops)
        combined = total_dict / total_csr
        for op, t_dict, t_csr in ops:
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    op,
                    f"{t_dict * 1e3:.1f}",
                    f"{t_csr * 1e3:.1f}",
                    f"{t_dict / t_csr:.1f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": op,
                    "dict_ms": round(t_dict * 1e3, 3),
                    "csr_ms": round(t_csr * 1e3, 3),
                    "speedup": round(t_dict / t_csr, 3),
                }
            )
        rows.append((name, graph.n, graph.m, "COMBINED", "", "", f"{combined:.2f}x"))
        if assertable:
            asserted.append((name, combined))

    emit(
        "traversal",
        format_table(
            "CSR traversal + network decomposition vs dict backend",
            ["workload", "n", "m", "op", "dict ms", "csr ms", "speedup"],
            rows,
        ),
    )
    emit_json(
        "BENCH_traversal",
        {
            "bench": "traversal",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "combined_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, combined in asserted:
            assert combined >= SPEEDUP_FLOOR, (
                f"{name}: combined traversal speedup {combined:.2f}x < "
                f"{SPEEDUP_FLOOR}x at n >= 2000 — the port's reason to exist"
            )
    return rows


def bench_kernel(benchmark=None):
    if benchmark is None:
        run_kernel_comparison()
    else:
        from harness import once

        once(benchmark, run_kernel_comparison)


def bench_traversal(benchmark=None):
    if benchmark is None:
        run_traversal_comparison()
    else:
        from harness import once

        once(benchmark, run_traversal_comparison)


if __name__ == "__main__":
    bench_kernel()
    bench_traversal()
