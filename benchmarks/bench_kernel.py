"""Flat-array kernel vs. dict-backed graph on the decomposition hot paths.

Seven sections, one per substrate milestone:

* ``bench_kernel`` — the PR-1 peeling paths: ``h_partition`` (threshold
  peeling) and ``degeneracy_ordering`` (delete-min peeling).
* ``bench_traversal`` — the PR-2 traversal/network-decomposition paths:
  ``power_graph`` (the former bottleneck), multi-source
  ``bfs_distances``, ``connected_components``, the ball-carving
  ``network_decomposition`` consuming the power graph, and the MPX
  ``partial_network_decomposition`` sweep.
* ``bench_session`` — the unified-API ``Session``: the graph-prep phase
  (CSR snapshot + exact arboricity + pseudoarboricity) a *second*
  decomposition task pays on the same session, vs. what a fresh run
  pays.  Asserts the session's reason to exist (>= 1.5x faster warm
  prep at n >= 2000; in practice the warm path is pure cache hits).
* ``bench_shard`` — the sharded multi-worker peeling backend vs. the
  serial csr kernel at n >= 50k, workers in {1, 2, 4}.  Asserts
  >= 1.5x on the wave-cascade workloads (many peel waves — the serial
  path's worst case, where it rescans all n vertices per wave) and
  verifies bit-identical classes everywhere; wave-poor workloads are
  reported unasserted (sharding is deliberately ~1x there).
* ``bench_parallel_bfs`` — the PR-5 engine-backed BFS paths vs. the
  serial csr sweeps at n >= 50k, workers in {1, 2, 4}.  Asserts
  >= 1.5x on the dense-frontier workloads (multi-seed reachability,
  per-color-class sub-CSR scans: the engine reconcile scatter-dedups
  each wave in O(n + h) where the serial sweep sorts in
  O(h log h)) with outputs asserted bit-identical for every worker
  count; sparse-frontier BFS and the sequential ball carving are
  reported unasserted (~1x single-core by design, thread fan-out adds
  on multi-core).
* ``bench_passes`` — the pass scheduler's concurrent color-class
  batching (``schedule="concurrent"``) vs. the serial per-class sweep
  on ``depth_cut`` at n >= 50k, workers in {1, 2, 4}.  The serial
  schedule roots each color forest with its own union-find + BFS; the
  concurrent schedule stacks every array-eligible class into one
  ``rooted_forest_class_depths`` call (single-CPU win: the speedup is
  algorithmic batching, not thread fan-out).  Asserts best-over-workers
  >= 1.3x with kept/deleted/deletion_tail asserted bit-identical to
  the serial reference for every worker count — the pipeline
  determinism contract.
* ``bench_carve`` — the simultaneous carve rule
  (``carve_rule="simultaneous"``) vs. the doubling rule's sequential
  ball-at-a-time carve at n >= 50k.  The doubling rule grows one ball
  per BFS level per *cluster* (the very sequential path the section
  above leaves unasserted); the simultaneous rule grows every live
  ball one level per wave, so a class finishes in O(log n) array-wide
  waves.  Asserts best-over-workers >= 1.5x vs. the doubling csr
  carve (in practice the win is algorithmic and large), with classes
  asserted bit-identical across serial and every worker count.

* ``bench_mp`` — the shared-memory multiprocess backend
  (``backend="mp"``) vs. the serial csr peel, workers in {1, 2, 4},
  with bit-identical classes asserted everywhere and a real
  process-dispatch assertion at n >= 262144.  The >= 1.5x floor is
  gated on ``os.cpu_count() >= 2`` (process fan-out cannot beat the
  serial kernel on one core).  Plus the out-of-core leg: a 10^7-edge
  graph streamed through ``CSRGraph.from_edge_iter(mmap_dir=...)``
  into ``decompose()`` in a fresh subprocess, asserting peak RSS stays
  within ~2x the snapshot's on-disk footprint.

All sections check output equality where applicable, assert their
speedup floors (skipped when ``BENCH_SNAPSHOT=1`` — shared CI runners
time too noisily to gate on), and archive machine-readable
``BENCH_*.json`` next to the text tables (schema: benchmarks/README.md).

Run directly:  PYTHONPATH=src python benchmarks/bench_kernel.py
Snapshot mode: BENCH_SNAPSHOT=1 PYTHONPATH=src python benchmarks/bench_kernel.py
"""

import os
import random
import time

from repro.core import DecompositionConfig, Session, depth_cut
from repro.decomposition.degeneracy import degeneracy_ordering
from repro.decomposition.hpartition import h_partition
from repro.decomposition.network_decomposition import (
    network_decomposition,
    partial_network_decomposition,
)
from repro.graph import MultiGraph
from repro.graph.csr import snapshot_of
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    preferential_attachment,
    union_of_random_forests,
)
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    power_graph,
)

from harness import SNAPSHOT_MODE, emit, emit_json, format_table

REPEATS = 5
TRAVERSAL_REPEATS = 3
SPEEDUP_FLOOR = 2.0

WORKLOADS = [
    ("forests n=500 a=4", False, lambda: union_of_random_forests(500, 4, seed=11)),
    ("forests n=2000 a=4", True, lambda: union_of_random_forests(2000, 4, seed=12)),
    ("forests n=8000 a=6", True, lambda: union_of_random_forests(8000, 6, seed=13)),
    ("er n=4000 p=.002", True, lambda: erdos_renyi(4000, 0.002, seed=14)),
    ("pref n=3000 d=5", True, lambda: preferential_attachment(3000, 5, seed=15)),
]

# Traversal workloads sit at the n >= 2000 scale the tentpole targets;
# the power radius keeps the dict reference path finishable while still
# producing the dense ``G^r`` the network decomposition consumes.
TRAVERSAL_WORKLOADS = [
    ("er n=2000 p=.003 r=3", True, 3, lambda: erdos_renyi(2000, 0.003, seed=21)),
    ("forests n=2000 a=4 r=2", True, 2, lambda: union_of_random_forests(2000, 4, seed=22)),
    ("pref n=2500 d=4 r=2", True, 2, lambda: preferential_attachment(2500, 4, seed=23)),
]


def _best(func, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times)


def run_kernel_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, make in WORKLOADS:
        graph = make()
        d, _ = degeneracy_ordering(graph)
        threshold = max(1, d)

        partition_dict = h_partition(graph, threshold, backend="dict")
        partition_csr = h_partition(graph, threshold, backend="csr")
        assert partition_csr.classes == partition_dict.classes
        order_dict = degeneracy_ordering(graph, backend="dict")
        order_csr = degeneracy_ordering(graph, backend="csr")
        assert order_csr == order_dict

        hp_dict = _best(lambda: h_partition(graph, threshold, backend="dict"))
        hp_csr = _best(lambda: h_partition(graph, threshold, backend="csr"))
        dg_dict = _best(lambda: degeneracy_ordering(graph, backend="dict"))
        dg_csr = _best(lambda: degeneracy_ordering(graph, backend="csr"))
        combined = (hp_dict + dg_dict) / (hp_csr + dg_csr)
        rows.append(
            (
                name,
                graph.n,
                graph.m,
                f"{hp_dict * 1e3:.1f}",
                f"{hp_csr * 1e3:.1f}",
                f"{hp_dict / hp_csr:.1f}x",
                f"{dg_dict * 1e3:.1f}",
                f"{dg_csr * 1e3:.1f}",
                f"{dg_dict / dg_csr:.1f}x",
                f"{combined:.2f}x",
            )
        )
        for op, t_dict, t_csr in (
            ("h_partition", hp_dict, hp_csr),
            ("degeneracy_ordering", dg_dict, dg_csr),
        ):
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": op,
                    "dict_ms": round(t_dict * 1e3, 3),
                    "csr_ms": round(t_csr * 1e3, 3),
                    "speedup": round(t_dict / t_csr, 3),
                }
            )
        if assertable:
            asserted.append((name, combined))

    emit(
        "kernel",
        format_table(
            "Flat-array kernel vs dict backend (hot-path peeling)",
            [
                "workload",
                "n",
                "m",
                "hpart dict ms",
                "hpart csr ms",
                "speedup",
                "degen dict ms",
                "degen csr ms",
                "speedup",
                "combined",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_kernel",
        {
            "bench": "kernel",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "combined_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, combined in asserted:
            assert combined >= SPEEDUP_FLOOR, (
                f"{name}: combined hot-path speedup {combined:.2f}x < "
                f"{SPEEDUP_FLOOR}x — the kernel's reason to exist"
            )
    return rows


def _check_traversal_equivalence(graph, sources):
    """dict/csr output equality for one workload (cheap ops only; the
    exhaustive sweep lives in tests/test_kernel_equivalence.py)."""
    assert bfs_distances(graph, sources, backend="csr") == bfs_distances(
        graph, sources, backend="dict"
    )
    assert connected_components(graph, backend="csr") == connected_components(
        graph, backend="dict"
    )
    heads_dict = partial_network_decomposition(graph, 0.3, seed=7, backend="dict")
    heads_csr = partial_network_decomposition(graph, 0.3, seed=7, backend="csr")
    assert heads_dict == heads_csr


def run_traversal_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, radius, make in TRAVERSAL_WORKLOADS:
        graph = make()
        snapshot = snapshot_of(graph)
        sources = graph.vertices()[:4]
        _check_traversal_equivalence(graph, sources)

        power_dict = _best(
            lambda: power_graph(graph, radius, backend="dict"), TRAVERSAL_REPEATS
        )
        power_csr = _best(
            lambda: snapshot.power_csr(radius), TRAVERSAL_REPEATS
        )
        bfs_dict = _best(
            lambda: bfs_distances(graph, sources, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        bfs_csr = _best(
            lambda: bfs_distances(snapshot, sources, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        cc_dict = _best(
            lambda: connected_components(graph, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        cc_csr = _best(
            lambda: connected_components(snapshot, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        # Ball carving consumes the power graph, each on its substrate.
        power_ref = power_graph(graph, radius, backend="dict")
        power_snap = snapshot.power_csr(radius)
        assert (
            network_decomposition(power_ref, backend="dict").classes
            == network_decomposition(power_snap, backend="csr").classes
        )
        nd_dict = _best(
            lambda: network_decomposition(power_ref, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        nd_csr = _best(
            lambda: network_decomposition(power_snap, backend="csr"),
            TRAVERSAL_REPEATS,
        )
        mpx_dict = _best(
            lambda: partial_network_decomposition(graph, 0.3, seed=7, backend="dict"),
            TRAVERSAL_REPEATS,
        )
        mpx_csr = _best(
            lambda: partial_network_decomposition(snapshot, 0.3, seed=7, backend="csr"),
            TRAVERSAL_REPEATS,
        )

        ops = [
            (f"power_graph[r={radius}]", power_dict, power_csr),
            ("bfs_distances", bfs_dict, bfs_csr),
            ("connected_components", cc_dict, cc_csr),
            ("network_decomposition[power]", nd_dict, nd_csr),
            ("partial_network_decomposition", mpx_dict, mpx_csr),
        ]
        total_dict = sum(t for _op, t, _c in ops)
        total_csr = sum(c for _op, _t, c in ops)
        combined = total_dict / total_csr
        for op, t_dict, t_csr in ops:
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    op,
                    f"{t_dict * 1e3:.1f}",
                    f"{t_csr * 1e3:.1f}",
                    f"{t_dict / t_csr:.1f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": op,
                    "dict_ms": round(t_dict * 1e3, 3),
                    "csr_ms": round(t_csr * 1e3, 3),
                    "speedup": round(t_dict / t_csr, 3),
                }
            )
        rows.append((name, graph.n, graph.m, "COMBINED", "", "", f"{combined:.2f}x"))
        if assertable:
            asserted.append((name, combined))

    emit(
        "traversal",
        format_table(
            "CSR traversal + network decomposition vs dict backend",
            ["workload", "n", "m", "op", "dict ms", "csr ms", "speedup"],
            rows,
        ),
    )
    emit_json(
        "BENCH_traversal",
        {
            "bench": "traversal",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "combined_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, combined in asserted:
            assert combined >= SPEEDUP_FLOOR, (
                f"{name}: combined traversal speedup {combined:.2f}x < "
                f"{SPEEDUP_FLOOR}x at n >= 2000 — the port's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Session reuse: graph-prep phase, first vs. subsequent task
# ----------------------------------------------------------------------

SESSION_SPEEDUP_FLOOR = 1.5
SESSION_REPEATS = 3

SESSION_WORKLOADS = [
    ("forests n=2500 a=4", True, lambda: union_of_random_forests(2500, 4, seed=31)),
    ("er n=2000 p=.002", True, lambda: erdos_renyi(2000, 0.002, seed=32)),
]


def run_session_comparison():
    """Cold vs. warm graph prep on one Session.

    ``Session.prepare()`` is exactly the graph-prep phase every task
    runs implicitly: CSR snapshot + memoized exact arboricity +
    pseudoarboricity.  Cold = a fresh graph and session (what the first
    task pays); warm = ``prepare()`` again on the same session (what
    every subsequent task pays — fingerprint-keyed cache hits).  Fresh
    graphs are regenerated per repeat so no instance-level snapshot
    cache leaks into the cold timings.
    """
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, make in SESSION_WORKLOADS:
        # One cold measurement: the exact-arboricity ground truth takes
        # seconds at this scale, and the asserted floor (1.5x) sits
        # orders of magnitude below the observed ratio, so min-of-N
        # would only slow the bench down.
        graph = make()
        session = Session(graph)
        start = time.perf_counter()
        session.prepare()  # the first task's prep
        cold = time.perf_counter() - start
        warm = _best(lambda: session.prepare(), SESSION_REPEATS)
        speedup = cold / max(warm, 1e-9)

        # End-to-end demonstration: the same cheap query twice on one
        # session — the second run's prep is all cache hits (the
        # compute itself is identical, so the delta *is* the prep).
        config = DecompositionConfig(epsilon=0.5, seed=41)
        fresh_graph = make()
        fresh_session = Session(fresh_graph)
        start = time.perf_counter()
        first = fresh_session.decompose(
            "orientation", config, method="hpartition"
        )
        task1 = time.perf_counter() - start
        start = time.perf_counter()
        second = fresh_session.decompose(
            "orientation", config, method="hpartition"
        )
        task2 = time.perf_counter() - start
        assert first.coloring == second.coloring  # reuse changes nothing

        rows.append(
            (
                name,
                graph.n,
                graph.m,
                f"{cold * 1e3:.1f}",
                f"{warm * 1e3:.3f}",
                f"{speedup:.0f}x",
                f"{task1 * 1e3:.1f}",
                f"{task2 * 1e3:.1f}",
            )
        )
        json_rows.append(
            {
                "workload": name,
                "n": graph.n,
                "m": graph.m,
                "cold_prep_ms": round(cold * 1e3, 3),
                "warm_prep_ms": round(warm * 1e3, 5),
                "prep_speedup": round(speedup, 3),
                "first_task_ms": round(task1 * 1e3, 3),
                "second_task_ms": round(task2 * 1e3, 3),
            }
        )
        if assertable:
            asserted.append((name, speedup))

    emit(
        "session",
        format_table(
            "Session reuse: graph-prep phase, first vs. subsequent task",
            [
                "workload",
                "n",
                "m",
                "cold prep ms",
                "warm prep ms",
                "speedup",
                "task1 ms",
                "task2 ms",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_session",
        {
            "bench": "session",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SESSION_SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "prep_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, speedup in asserted:
            assert speedup >= SESSION_SPEEDUP_FLOOR, (
                f"{name}: warm graph-prep only {speedup:.2f}x faster < "
                f"{SESSION_SPEEDUP_FLOOR}x — Session caching is broken"
            )
    return rows


# ----------------------------------------------------------------------
# Sharded multi-worker peeling vs. the serial csr kernel
# ----------------------------------------------------------------------

SHARD_SPEEDUP_FLOOR = 1.5
SHARD_REPEATS = 5
SHARD_WORKER_COUNTS = (1, 2, 4)

# (name, asserted, threshold, factory).  The asserted workloads are
# wave cascades: peeling proceeds frontier by frontier (hundreds of
# waves), so the serial kernel pays a full O(n) scan per wave while the
# sharded backend's reconcile hands each wave its exact work-list.
# The unasserted ones are wave-poor (a handful of waves) — there both
# backends do the same bulk work and sharding is honestly ~1x; they are
# reported so the trade-off stays visible in the artifacts.
SHARD_WORKLOADS = [
    ("grid 320x320 cascade t=2", True, 2,
     lambda: grid_graph(320, 320)),
    ("grid 400x400 cascade t=2", True, 2,
     lambda: grid_graph(400, 400)),
    ("pref n=120k d=4 t=4", False, 4,
     lambda: preferential_attachment(120000, 4, seed=51)),
    ("forests n=60k a=5 t=12", False, 12,
     lambda: union_of_random_forests(60000, 5, seed=52)),
]


def run_shard_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, threshold, make in SHARD_WORKLOADS:
        graph = make()
        snapshot = snapshot_of(graph)
        reference = h_partition(
            graph, threshold, backend="csr", snapshot=snapshot
        )
        csr_ms = _best(
            lambda: h_partition(
                graph, threshold, backend="csr", snapshot=snapshot
            ),
            SHARD_REPEATS,
        )
        best_speedup = 0.0
        for workers in SHARD_WORKER_COUNTS:
            sharded = h_partition(
                graph, threshold, backend="sharded",
                snapshot=snapshot, workers=workers,
            )
            # The backend's contract: bit-identical classes for every
            # worker count.
            assert sharded.classes == reference.classes
            sharded_ms = _best(
                lambda: h_partition(
                    graph, threshold, backend="sharded",
                    snapshot=snapshot, workers=workers,
                ),
                SHARD_REPEATS,
            )
            speedup = csr_ms / sharded_ms
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    reference.num_classes,
                    workers,
                    f"{csr_ms * 1e3:.1f}",
                    f"{sharded_ms * 1e3:.1f}",
                    f"{speedup:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": "h_partition",
                    "waves": reference.num_classes,
                    "workers": workers,
                    "csr_ms": round(csr_ms * 1e3, 3),
                    "sharded_ms": round(sharded_ms * 1e3, 3),
                    "speedup": round(speedup, 3),
                }
            )
        if assertable:
            asserted.append((name, best_speedup))

    emit(
        "shard",
        format_table(
            "Sharded multi-worker peeling vs serial csr kernel (n >= 50k)",
            [
                "workload",
                "n",
                "m",
                "waves",
                "workers",
                "csr ms",
                "sharded ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_shard",
        {
            "bench": "shard",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": SHARD_SPEEDUP_FLOOR,
            "worker_counts": list(SHARD_WORKER_COUNTS),
            "rows": json_rows,
            "asserted": [
                {"workload": name, "best_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, best in asserted:
            assert best >= SHARD_SPEEDUP_FLOOR, (
                f"{name}: best sharded speedup {best:.2f}x < "
                f"{SHARD_SPEEDUP_FLOOR}x at n >= 50k — the sharded "
                "backend's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Engine-backed parallel BFS vs. the serial csr kernel
# ----------------------------------------------------------------------

PARALLEL_BFS_SPEEDUP_FLOOR = 1.5
PARALLEL_BFS_REPEATS = 5
PARALLEL_BFS_WORKER_COUNTS = (1, 2, 4)

# (name, asserted, kind, factory).  The asserted workloads are
# dense-frontier BFS sweeps (multi-seed reachability and per-color-
# class scans): the serial csr sweep dedups every wave with a sort
# (O(h log h)) while the engine reconcile scatter-dedups in O(n + h),
# so the parallel path wins even single-core — mirroring the sharded
# peel's frontier-proportional story.  Sparse-frontier BFS (grid) and
# the ball carving are reported unasserted: their per-wave arrays are
# small, the engine is honestly ~1x there on one core, and the thread
# fan-out only adds on multi-core machines.
PARALLEL_BFS_WORKLOADS = [
    ("pref n=120k d=5 multi-seed bfs", True, "bfs",
     lambda: preferential_attachment(120000, 5, seed=51)),
    ("forests n=100k a=5 color-class bfs", True, "color_bfs",
     lambda: union_of_random_forests(100000, 5, seed=52)),
    ("grid 350x350 multi-seed bfs", False, "bfs",
     lambda: grid_graph(350, 350)),
    ("pref n=120k d=5 ball carving", False, "carving",
     lambda: preferential_attachment(120000, 5, seed=51)),
]


def _parallel_bfs_case(graph, kind):
    """``(serial_fn, parallel_fn_for_workers)`` for one workload."""
    from repro.graph.csr import bfs_distance_array
    from repro.parallel import engine_for, engine_for_offsets
    from repro.parallel import parallel_bfs_distance_array

    snap = snapshot_of(graph)
    if kind == "bfs":
        n = snap.num_vertices
        seeds = [0, n // 3, (2 * n) // 3]
        offsets, nbr = snap.vertex_offsets, snap.neighbor_ids

        def serial():
            return bfs_distance_array(offsets, nbr, n, seeds)

        def parallel(workers):
            return parallel_bfs_distance_array(
                offsets, nbr, n, seeds, engine=engine_for(snap, workers)
            )

    elif kind == "color_bfs":
        # One color class of the forest union (every 5th edge position
        # approximates a per-color subset) extracted as a sub-CSR over
        # the host indices — the Session.sub_csr shape.
        eids = snap.edge_id.tolist()[::5]
        offsets, nbr, _eids = snap.edge_subset_csr_arrays(eids)
        n = snap.num_vertices
        seeds = [0, n // 2]

        def serial():
            return bfs_distance_array(offsets, nbr, n, seeds)

        def parallel(workers):
            return parallel_bfs_distance_array(
                offsets, nbr, n, seeds,
                engine=engine_for_offsets(offsets, workers),
            )

    else:  # carving
        def serial():
            return network_decomposition(graph, backend="csr").classes

        def parallel(workers):
            return network_decomposition(
                graph, backend="parallel", workers=workers
            ).classes

    return serial, parallel


def run_parallel_bfs_comparison():
    import numpy as np

    rows = []
    json_rows = []
    asserted = []
    for name, assertable, kind, make in PARALLEL_BFS_WORKLOADS:
        graph = make()
        serial, parallel = _parallel_bfs_case(graph, kind)
        reference = serial()
        csr_ms = _best(serial, PARALLEL_BFS_REPEATS)
        best_speedup = 0.0
        for workers in PARALLEL_BFS_WORKER_COUNTS:
            result = parallel(workers)
            # The engine's contract: bit-identical outputs for every
            # worker count.
            if isinstance(reference, np.ndarray):
                assert np.array_equal(result, reference)
            else:
                assert result == reference
            parallel_ms = _best(lambda: parallel(workers), PARALLEL_BFS_REPEATS)
            speedup = csr_ms / parallel_ms
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    kind,
                    workers,
                    f"{csr_ms * 1e3:.1f}",
                    f"{parallel_ms * 1e3:.1f}",
                    f"{speedup:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": kind,
                    "workers": workers,
                    "csr_ms": round(csr_ms * 1e3, 3),
                    "parallel_ms": round(parallel_ms * 1e3, 3),
                    "speedup": round(speedup, 3),
                }
            )
        if assertable:
            asserted.append((name, best_speedup))

    emit(
        "parallel_bfs",
        format_table(
            "Engine-backed parallel BFS vs serial csr kernel (n >= 50k)",
            [
                "workload",
                "n",
                "m",
                "op",
                "workers",
                "csr ms",
                "parallel ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_parallel_bfs",
        {
            "bench": "parallel_bfs",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": PARALLEL_BFS_SPEEDUP_FLOOR,
            "worker_counts": list(PARALLEL_BFS_WORKER_COUNTS),
            "rows": json_rows,
            "asserted": [
                {"workload": name, "best_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, best in asserted:
            assert best >= PARALLEL_BFS_SPEEDUP_FLOOR, (
                f"{name}: best parallel speedup {best:.2f}x < "
                f"{PARALLEL_BFS_SPEEDUP_FLOOR}x at n >= 50k — the "
                "engine-backed BFS path's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Simultaneous carve rule vs the doubling carve (PR-6)
# ----------------------------------------------------------------------

CARVE_REPEATS = 3
CARVE_SPEEDUP_FLOOR = 1.5
CARVE_WORKER_COUNTS = (1, 2, 4)

# Grids are the doubling rule's worst case at scale: balls stay small
# (planar growth never doubles for long), so the sequential carve pays
# ~n ball setups per class while the simultaneous carve finishes the
# class in O(log n) whole-frontier waves.
CARVE_WORKLOADS = [
    ("grid 250x200", True, lambda: grid_graph(250, 200)),
    ("grid 320x400", True, lambda: grid_graph(320, 400)),
]


def run_carve_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, make in CARVE_WORKLOADS:
        graph = make()

        def doubling():
            return network_decomposition(graph, backend="csr").classes

        def simultaneous(workers):
            return network_decomposition(
                graph,
                backend="parallel",
                workers=workers,
                carve_rule="simultaneous",
            ).classes

        # One timed shot for the baseline: it is tens of times slower
        # than the thing it baselines, so repeat-noise is irrelevant
        # and repeats would dominate the bench's runtime.
        start = time.perf_counter()
        doubling()
        doubling_ms = (time.perf_counter() - start) * 1e3

        reference = network_decomposition(
            graph, backend="csr", carve_rule="simultaneous"
        ).classes
        best_speedup = 0.0
        for workers in CARVE_WORKER_COUNTS:
            # Bit-identical classes for every worker count — the
            # simultaneous rule's determinism contract.
            assert simultaneous(workers) == reference
            sim_ms = _best(lambda: simultaneous(workers), CARVE_REPEATS) * 1e3
            speedup = doubling_ms / sim_ms
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    workers,
                    f"{doubling_ms:.1f}",
                    f"{sim_ms:.1f}",
                    f"{speedup:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "workers": workers,
                    "doubling_ms": round(doubling_ms, 3),
                    "simultaneous_ms": round(sim_ms, 3),
                    "speedup": round(speedup, 3),
                }
            )
        if assertable:
            asserted.append((name, best_speedup))

    emit(
        "carve",
        format_table(
            "Simultaneous carve rule vs doubling csr carve (n >= 50k)",
            [
                "workload",
                "n",
                "m",
                "workers",
                "doubling ms",
                "simultaneous ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_carve",
        {
            "bench": "carve",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": CARVE_SPEEDUP_FLOOR,
            "worker_counts": list(CARVE_WORKER_COUNTS),
            "rows": json_rows,
            "asserted": [
                {"workload": name, "best_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, best in asserted:
            assert best >= CARVE_SPEEDUP_FLOOR, (
                f"{name}: best simultaneous-carve speedup {best:.2f}x < "
                f"{CARVE_SPEEDUP_FLOOR}x at n >= 50k — the simultaneous "
                "rule's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Concurrent pass schedule vs serial per-class sweep (PR-7)
# ----------------------------------------------------------------------

PASSES_REPEATS = 3
PASSES_SPEEDUP_FLOOR = 1.3
PASSES_WORKER_COUNTS = (1, 2, 4)
PASSES_Z = 37
PASSES_SEED = 5


def forest_coloring_graph(n, k, seed):
    """``k`` overlaid random forests on ``n`` vertices, each a color
    class — the shape ``depth_cut`` sees from the forest pipelines."""
    rng = random.Random(seed)
    graph = MultiGraph.with_vertices(n)
    coloring = {}
    for cls in range(k):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(1, n):
            if rng.random() < 0.9:
                parent = perm[rng.randrange(i)]
                eid = graph.add_edge(perm[i], parent)
                coloring[eid] = cls
    return graph, coloring


# Many mid-sized classes are the serial schedule's worst case: each
# class pays its own union-find rooting + per-class BFS, while the
# concurrent schedule stacks them all into one array pass.
PASSES_WORKLOADS = [
    (
        "forest-classes n=60k k=8",
        True,
        lambda: forest_coloring_graph(60_000, 8, seed=1),
    ),
    (
        "forest-classes n=50k k=12",
        True,
        lambda: forest_coloring_graph(50_000, 12, seed=2),
    ),
]


def run_passes_comparison():
    rows = []
    json_rows = []
    asserted = []
    for name, assertable, make in PASSES_WORKLOADS:
        graph, coloring = make()

        def serial():
            return depth_cut(
                graph,
                coloring,
                PASSES_Z,
                seed=PASSES_SEED,
                backend="csr",
                schedule="serial",
            )

        def concurrent(workers):
            return depth_cut(
                graph,
                coloring,
                PASSES_Z,
                seed=PASSES_SEED,
                backend="parallel",
                workers=workers,
                schedule="concurrent",
            )

        reference = serial()
        serial_ms = _best(serial, PASSES_REPEATS) * 1e3
        best_speedup = 0.0
        for workers in PASSES_WORKER_COUNTS:
            # Bit-identical cuts for every worker count — the pipeline
            # determinism contract (serial is the reference schedule).
            result = concurrent(workers)
            assert result.kept == reference.kept
            assert result.deleted == reference.deleted
            assert result.deletion_tail == reference.deletion_tail
            conc_ms = _best(lambda: concurrent(workers), PASSES_REPEATS) * 1e3
            speedup = serial_ms / conc_ms
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    workers,
                    f"{serial_ms:.1f}",
                    f"{conc_ms:.1f}",
                    f"{speedup:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "workers": workers,
                    "serial_ms": round(serial_ms, 3),
                    "concurrent_ms": round(conc_ms, 3),
                    "speedup": round(speedup, 3),
                }
            )
        if assertable:
            asserted.append((name, best_speedup))

    emit(
        "passes",
        format_table(
            "Concurrent pass schedule vs serial depth_cut sweep (n >= 50k)",
            [
                "workload",
                "n",
                "m",
                "workers",
                "serial ms",
                "concurrent ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_passes",
        {
            "bench": "passes",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": PASSES_SPEEDUP_FLOOR,
            "worker_counts": list(PASSES_WORKER_COUNTS),
            "rows": json_rows,
            "asserted": [
                {"workload": name, "best_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, best in asserted:
            assert best >= PASSES_SPEEDUP_FLOOR, (
                f"{name}: best concurrent-schedule speedup {best:.2f}x < "
                f"{PASSES_SPEEDUP_FLOOR}x at n >= 50k — the concurrent "
                "schedule's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Delta engine vs full recompute per mutation batch (PR-8)
# ----------------------------------------------------------------------

DELTA_REPEATS = 2
DELTA_SPEEDUP_FLOOR = 3.0
DELTA_BATCHES = 6
DELTA_BATCH_SIZE = 4

# A sparse forest union at n >= 50k is the delta engine's home turf:
# the H-partition wave fixed point is *locally* stable (a random edit
# dirties a handful of vertices), while a from-scratch recompute
# re-pays the full graph prep (CSR snapshot build), the whole peel,
# and the O(m) orientation dict.  (A grid is deliberately NOT used
# here: its nested-square wave gradient is globally coupled — one
# degree bump can cascade to a quarter of the graph — which is
# exactly the dirty-fraction fallback's job, covered by the corpus
# tests, not a maintenance showcase.)
DELTA_WORKLOADS = [
    (
        "forests n=60k a=4",
        True,
        lambda: union_of_random_forests(60_000, 4, seed=31),
    ),
]

DELTA_WATCH_KWARGS = {"method": "hpartition", "pseudoarboricity": 4}


def _delta_batches(graph, seed):
    """Deterministic mixed batches: local inserts + existing deletes."""
    rng = random.Random(seed)
    n = graph.n
    ids = graph.edge_ids()
    batches = []
    used = set()
    for _ in range(DELTA_BATCHES):
        inserts = []
        for _ in range(DELTA_BATCH_SIZE):
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v:
                inserts.append((u, v))
        deletes = []
        while len(deletes) < DELTA_BATCH_SIZE:
            eid = ids[rng.randrange(len(ids))]
            if eid not in used:
                used.add(eid)
                deletes.append(eid)
        batches.append((inserts, deletes))
    return batches


def run_delta_comparison():
    rows = []
    json_rows = []
    asserted = []
    cfg = DecompositionConfig(backend="csr", validation="none")
    for name, assertable, make in DELTA_WORKLOADS:
        graph = make()
        batches = _delta_batches(graph, seed=31)
        session = Session(graph, cfg)
        session.watch("orientation", **DELTA_WATCH_KWARGS)

        delta_ms_total = 0.0
        full_ms_total = 0.0
        incremental = 0
        for inserts, deletes in batches:
            start = time.perf_counter()
            report = session.apply_delta(inserts, deletes)
            delta_ms = (time.perf_counter() - start) * 1e3
            delta_ms_total += delta_ms
            incremental += int(report.mode == "incremental")

            # Full-recompute baseline on the *same* mutated graph: a
            # fresh session on a copy (copy untimed) so no oracle or
            # snapshot cache leaks into the baseline.
            baseline_graph = graph.copy()
            best_full = None
            for _ in range(DELTA_REPEATS):
                fresh = Session(baseline_graph.copy(), cfg)
                start = time.perf_counter()
                result = fresh.decompose(
                    "orientation", **DELTA_WATCH_KWARGS
                )
                elapsed = (time.perf_counter() - start) * 1e3
                best_full = (
                    elapsed if best_full is None else min(best_full, elapsed)
                )
            full_ms_total += best_full
            # bit-identity of the maintained result, every batch
            assert session.current("orientation").coloring == result.coloring

        per_batch_delta = delta_ms_total / len(batches)
        per_batch_full = full_ms_total / len(batches)
        speedup = per_batch_full / per_batch_delta
        rows.append(
            (
                name,
                graph.n,
                graph.m,
                f"{incremental}/{len(batches)}",
                f"{per_batch_full:.1f}",
                f"{per_batch_delta:.1f}",
                f"{speedup:.2f}x",
            )
        )
        json_rows.append(
            {
                "workload": name,
                "n": graph.n,
                "m": graph.m,
                "batches": len(batches),
                "batch_size": DELTA_BATCH_SIZE,
                "incremental_batches": incremental,
                "full_ms": round(per_batch_full, 3),
                "delta_ms": round(per_batch_delta, 3),
                "speedup": round(speedup, 3),
            }
        )
        if assertable:
            asserted.append((name, speedup))

    emit(
        "delta",
        format_table(
            "Delta engine vs full recompute per mutation batch (n >= 50k)",
            [
                "workload",
                "n",
                "m",
                "incremental",
                "full ms",
                "delta ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_delta",
        {
            "bench": "delta",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": DELTA_SPEEDUP_FLOOR,
            "rows": json_rows,
            "asserted": [
                {"workload": name, "speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        for name, speedup in asserted:
            assert speedup >= DELTA_SPEEDUP_FLOOR, (
                f"{name}: delta-engine speedup {speedup:.2f}x < "
                f"{DELTA_SPEEDUP_FLOOR}x vs full recompute at n >= 50k — "
                "the delta engine's reason to exist"
            )
    return rows


# ----------------------------------------------------------------------
# Shared-memory multiprocess backend + out-of-core ingest (PR-10)
# ----------------------------------------------------------------------

MP_REPEATS = 2
MP_SPEEDUP_FLOOR = 1.5
MP_WORKER_COUNTS = (1, 2, 4)

# (name, asserted, threshold, factory).  The asserted workload is a
# bulk peel: nearly every vertex falls inside the first few waves, so
# each wave's scan crosses the mp fan-out gates (n >= 262144) and the
# numpy kernel work genuinely splits across worker processes — the
# only shape where paying ~1ms per process dispatch can win.  The
# cascade grid is the opposite: hundreds of tiny frontiers that the
# gates deliberately keep inline (mp == sharded there); it is reported
# unasserted to keep the trade-off visible.
MP_WORKLOADS = [
    ("pref n=280k d=4 bulk t=8", True, 8,
     lambda: preferential_attachment(280_000, 4, seed=61)),
    ("grid 520x520 cascade t=2", False, 2,
     lambda: grid_graph(520, 520)),
]

#: out-of-core leg: edge count of the streamed graph (override to
#: shrink locally; the acceptance scale is 10^7).
OOC_EDGES = int(os.environ.get("REPRO_BENCH_OOC_EDGES", str(10_000_000)))
#: RSS allowance for the bare interpreter + numpy + result arrays on
#: top of the ~2x on-disk-footprint budget for the snapshot itself.
OOC_RSS_BASE_BYTES = 256 * 1024 * 1024

# The out-of-core measurement runs in a fresh subprocess so its
# ru_maxrss is the leg's own peak, not whatever earlier sections of
# this bench happened to allocate.
_OOC_CHILD = r"""
import json, os, sys, tempfile, time
import numpy as np
import repro
from repro.graph.csr import CSRGraph

def peak_rss_bytes():
    # NOT ru_maxrss: getrusage's high-water mark survives fork+exec on
    # Linux, so a child spawned from a large bench parent would report
    # the parent's peak.  VmHWM is reset with the fresh mm at exec.
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    return 0

m, n = int(sys.argv[1]), int(sys.argv[2])
rng = np.random.default_rng(97)

def chunks():
    left = m
    while left:
        k = min(1 << 20, left)
        u = rng.integers(0, n, size=k, dtype=np.int64)
        v = rng.integers(0, n - 1, size=k, dtype=np.int64)
        v = np.where(v >= u, v + 1, v)  # no self-loops
        yield np.stack((u, v), axis=1)
        left -= k

with tempfile.TemporaryDirectory() as root:
    mmap_dir = os.path.join(root, "csr")
    t0 = time.perf_counter()
    snap = CSRGraph.from_edge_iter(chunks(), n=n, mmap_dir=mmap_dir)
    ingest_s = time.perf_counter() - t0
    disk = sum(
        os.path.getsize(os.path.join(mmap_dir, f))
        for f in os.listdir(mmap_dir)
    )
    # the out-of-core recipe: h-partition orientation with a pinned
    # pseudoarboricity (no exact-flow pass, no per-edge dict state)
    config = repro.DecompositionConfig(
        backend="csr",
        options={"method": "hpartition", "pseudoarboricity": 24},
    )
    t0 = time.perf_counter()
    result = repro.decompose(snap, task="orientation", config=config)
    decompose_s = time.perf_counter() - t0
    payload = {
        "n": n,
        "m": m,
        "bound": int(result.bound),
        "oriented_edges": len(result.coloring),
        "ingest_s": round(ingest_s, 3),
        "decompose_s": round(decompose_s, 3),
        "disk_bytes": int(disk),
        "peak_rss_bytes": peak_rss_bytes(),
    }
print(json.dumps(payload))
"""


def _run_ooc_leg():
    import json
    import subprocess
    import sys

    out = subprocess.run(
        [sys.executable, "-c", _OOC_CHILD, str(OOC_EDGES), str(OOC_EDGES // 10)],
        check=True,
        capture_output=True,
        text=True,
    )
    return json.loads(out.stdout)


def run_mp_comparison():
    from repro.parallel.shm import mp_pool_stats

    rows = []
    json_rows = []
    asserted = []
    for name, assertable, threshold, make in MP_WORKLOADS:
        graph = make()
        snapshot = snapshot_of(graph)
        reference = h_partition(
            graph, threshold, backend="csr", snapshot=snapshot
        )
        csr_ms = _best(
            lambda: h_partition(
                graph, threshold, backend="csr", snapshot=snapshot
            ),
            MP_REPEATS,
        )
        best_speedup = 0.0
        for workers in MP_WORKER_COUNTS:
            before = mp_pool_stats()["mp_dispatches"]
            result = h_partition(
                graph, threshold, backend="mp",
                snapshot=snapshot, workers=workers,
            )
            # The backend's contract: bit-identical classes for every
            # worker/process count.
            assert result.classes == reference.classes
            dispatched = mp_pool_stats()["mp_dispatches"] - before
            if workers > 1 and graph.n >= 262_144:
                # the scan gate reads only wave content, so at this n
                # the first wave must have crossed the process boundary
                assert dispatched > 0, (
                    f"{name}: no mp dispatch at workers={workers}"
                )
            mp_ms = _best(
                lambda: h_partition(
                    graph, threshold, backend="mp",
                    snapshot=snapshot, workers=workers,
                ),
                MP_REPEATS,
            )
            speedup = csr_ms / mp_ms
            best_speedup = max(best_speedup, speedup)
            rows.append(
                (
                    name,
                    graph.n,
                    graph.m,
                    workers,
                    f"{csr_ms * 1e3:.1f}",
                    f"{mp_ms * 1e3:.1f}",
                    f"{speedup:.2f}x",
                )
            )
            json_rows.append(
                {
                    "workload": name,
                    "n": graph.n,
                    "m": graph.m,
                    "op": "h_partition",
                    "workers": workers,
                    "csr_ms": round(csr_ms * 1e3, 3),
                    "mp_ms": round(mp_ms * 1e3, 3),
                    "speedup": round(speedup, 3),
                }
            )
        if assertable:
            asserted.append((name, best_speedup))

    ooc = _run_ooc_leg()
    rows.append(
        (
            f"out-of-core er m={ooc['m']}",
            ooc["n"],
            ooc["m"],
            "-",
            f"ingest {ooc['ingest_s']:.1f}s",
            f"decompose {ooc['decompose_s']:.1f}s",
            f"rss {ooc['peak_rss_bytes'] / 2**20:.0f}MB / "
            f"disk {ooc['disk_bytes'] / 2**20:.0f}MB",
        )
    )

    emit(
        "mp",
        format_table(
            "Multiprocess shared-memory peel vs serial csr + out-of-core",
            [
                "workload",
                "n",
                "m",
                "workers",
                "csr ms",
                "mp ms",
                "speedup",
            ],
            rows,
        ),
    )
    emit_json(
        "BENCH_mp",
        {
            "bench": "mp",
            "schema_version": 1,
            "mode": "snapshot" if SNAPSHOT_MODE else "assert",
            "threshold": MP_SPEEDUP_FLOOR,
            "cpu_count": os.cpu_count() or 1,
            "worker_counts": list(MP_WORKER_COUNTS),
            "rows": json_rows,
            "out_of_core": ooc,
            "asserted": [
                {"workload": name, "best_speedup": round(value, 3)}
                for name, value in asserted
            ],
        },
    )

    if not SNAPSHOT_MODE:
        # Out-of-core acceptance: the decomposition's working set stays
        # within ~2x the snapshot's on-disk footprint (plus a fixed
        # interpreter/numpy allowance) — the backing arrays are paged,
        # not resident.
        budget = 2.0 * ooc["disk_bytes"] + OOC_RSS_BASE_BYTES
        assert ooc["peak_rss_bytes"] <= budget, (
            f"out-of-core peak RSS {ooc['peak_rss_bytes'] / 2**20:.0f}MB "
            f"exceeds budget {budget / 2**20:.0f}MB "
            f"(disk {ooc['disk_bytes'] / 2**20:.0f}MB)"
        )
        # The >= 1.5x claim is a multi-core claim: process fan-out
        # cannot beat the serial kernel on one core (dispatch +
        # result-pickling overhead with zero added compute bandwidth),
        # so the floor is gated on the machine actually having cores.
        if (os.cpu_count() or 1) >= 2:
            for name, best in asserted:
                assert best >= MP_SPEEDUP_FLOOR, (
                    f"{name}: best mp speedup {best:.2f}x < "
                    f"{MP_SPEEDUP_FLOOR}x on a {os.cpu_count()}-core "
                    "machine — the process backend's reason to exist"
                )
    return rows


def bench_kernel(benchmark=None):
    if benchmark is None:
        run_kernel_comparison()
    else:
        from harness import once

        once(benchmark, run_kernel_comparison)


def bench_traversal(benchmark=None):
    if benchmark is None:
        run_traversal_comparison()
    else:
        from harness import once

        once(benchmark, run_traversal_comparison)


def bench_session(benchmark=None):
    if benchmark is None:
        run_session_comparison()
    else:
        from harness import once

        once(benchmark, run_session_comparison)


def bench_shard(benchmark=None):
    if benchmark is None:
        run_shard_comparison()
    else:
        from harness import once

        once(benchmark, run_shard_comparison)


def bench_parallel_bfs(benchmark=None):
    if benchmark is None:
        run_parallel_bfs_comparison()
    else:
        from harness import once

        once(benchmark, run_parallel_bfs_comparison)


def bench_carve(benchmark=None):
    if benchmark is None:
        run_carve_comparison()
    else:
        from harness import once

        once(benchmark, run_carve_comparison)


def bench_passes(benchmark=None):
    if benchmark is None:
        run_passes_comparison()
    else:
        from harness import once

        once(benchmark, run_passes_comparison)


def bench_delta(benchmark=None):
    if benchmark is None:
        run_delta_comparison()
    else:
        from harness import once

        once(benchmark, run_delta_comparison)


def bench_mp(benchmark=None):
    if benchmark is None:
        run_mp_comparison()
    else:
        from harness import once

        once(benchmark, run_mp_comparison)


if __name__ == "__main__":
    bench_kernel()
    bench_traversal()
    bench_session()
    bench_shard()
    bench_parallel_bfs()
    bench_carve()
    bench_passes()
    bench_delta()
    bench_mp()
