"""Corollary 1.2 — star-arboricity bounds.

Claims: (a) αstar ≤ 2α for multigraphs (classical, via tree
two-coloring); (b) for simple graphs αstar ≤ α + O(√log Δ + log α)
(new); (c) list star-arboricity ≤ 4α − 2 (via Theorem 2.2 machinery).
The bench measures exact αstar on small ground-truth instances against
the bounds, and the colors achieved by our constructions on larger
graphs.
"""

from repro.core import star_forest_decomposition_amr, two_coloring_star_forests
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.nashwilliams import (
    exact_arboricity,
    exact_forest_decomposition,
    exact_star_arboricity,
)
from repro.verify import check_star_forest_decomposition

from harness import emit, forest_workload, format_table, once

SEED = 19


def bench_cor12(benchmark):
    exact_rows = []
    construct_rows = []

    def run():
        # Exact ground truth on tiny graphs: alpha <= alphastar <= 2 alpha.
        for name, graph in (
            ("P4 (3-edge path)", path_graph(4)),
            ("C5", cycle_graph(5)),
            ("K4", complete_graph(4)),
            ("K5", complete_graph(5)),
            ("grid 3x3", grid_graph(3, 3)),
        ):
            alpha = exact_arboricity(graph)
            astar = exact_star_arboricity(graph)
            exact_rows.append([name, alpha, astar, 2 * alpha])
            assert alpha <= astar <= 2 * alpha

        # Constructions on larger simple graphs.
        for alpha in (3, 5, 7):
            graph = forest_workload(60, alpha, seed=SEED + alpha, simple=True)
            true_alpha = exact_arboricity(graph)
            # 2-coloring-trees baseline: exactly <= 2 alpha colors.
            fd = exact_forest_decomposition(graph)
            baseline = two_coloring_star_forests(graph, fd)
            base_count = check_star_forest_decomposition(
                graph, baseline, max_colors=2 * true_alpha
            )
            # AMR construction: alpha + excess colors.
            result = star_forest_decomposition_amr(
                graph, epsilon=0.4, alpha=true_alpha, seed=SEED
            )
            check_star_forest_decomposition(graph, result.coloring)
            construct_rows.append(
                [
                    alpha,
                    true_alpha,
                    graph.max_degree(),
                    base_count,
                    result.colors_used,
                    result.colors_used - true_alpha,
                ]
            )

    once(benchmark, run)
    table1 = format_table(
        "Corollary 1.2 reproduction (exact, tiny graphs): "
        "alpha <= alphastar <= 2 alpha",
        ["graph", "alpha", "alphastar (exact)", "2 alpha"],
        exact_rows,
    )
    table2 = format_table(
        "Corollary 1.2 reproduction (constructions, n=60 simple)",
        [
            "built alpha", "alpha", "max degree", "2-coloring colors",
            "AMR colors", "AMR excess",
        ],
        construct_rows,
    )
    emit("cor12_star_arboricity", table1 + "\n\n" + table2)

    # Shape: AMR excess grows sublinearly with alpha (the O(sqrt log D +
    # log a) claim) — relative excess shrinks as alpha grows.
    rel = [row[5] / row[1] for row in construct_rows]
    assert rel[-1] <= rel[0] + 0.5
