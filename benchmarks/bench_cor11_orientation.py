"""Corollary 1.1 — (1+ε)α-orientations with linear 1/ε dependence.

Claims reproduced: (a) the augmentation-based orientation achieves
out-degree ≤ (1+ε)α, beating the H-partition baseline's (2+ε)α*;
(b) charged rounds grow linearly in 1/ε (the paper stresses this is
the first linear-in-1/ε bound, vs earlier 1/ε²-style algorithms).
"""

import math

from repro.core import low_outdegree_orientation
from repro.local import RoundCounter
from repro.verify import check_orientation

from harness import emit, forest_workload, format_table, once

SEED = 17
N = 60
ALPHA = 4


def bench_cor11(benchmark):
    rows = []
    rounds_by_eps = {}

    def run():
        for epsilon in (1.0, 0.5, 0.25):
            for method in ("augmentation", "hpartition", "exact"):
                graph = forest_workload(N, ALPHA, seed=SEED)
                rc = RoundCounter()
                orientation, bound = low_outdegree_orientation(
                    graph, epsilon, alpha=ALPHA, method=method,
                    seed=SEED, rounds=rc,
                )
                observed = check_orientation(graph, orientation, bound)
                rows.append(
                    [method, f"{epsilon}", bound, observed, rc.total]
                )
                if method == "augmentation":
                    rounds_by_eps[epsilon] = rc.total

    once(benchmark, run)
    table = format_table(
        f"Corollary 1.1 reproduction: orientations (n={N}, alpha={ALPHA})",
        ["method", "eps", "out-degree bound", "observed max", "charged rounds"],
        rows,
    )
    emit("cor11_orientation", table)

    # Shape 1: augmentation beats the (2+eps)alpha* baseline at each eps.
    for epsilon in (1.0, 0.5, 0.25):
        ours = next(
            r for r in rows if r[0] == "augmentation" and r[1] == f"{epsilon}"
        )
        base = next(
            r for r in rows if r[0] == "hpartition" and r[1] == f"{epsilon}"
        )
        assert ours[2] < base[2], f"augmentation no better at eps={epsilon}"
        assert ours[2] <= math.ceil((1 + epsilon) * ALPHA)

    # Shape 2: rounds scale ~linearly in 1/eps — going 1.0 -> 0.25 (4x)
    # must stay well under a quadratic blow-up (16x).
    ratio = rounds_by_eps[0.25] / max(rounds_by_eps[1.0], 1)
    assert ratio <= 8.0, f"rounds grew {ratio}x for 4x tighter eps"
