"""Scaling — charged LOCAL rounds vs n for the main algorithms.

The paper's round bounds are polylogarithmic in n (Table 1: O(log³n/ε)
to O(log⁴n/ε)).  This bench fixes ε and α and doubles n repeatedly,
reporting charged rounds for the H-partition baseline, Theorem 2.3
LSFD, and Algorithm 2 — the reproduction check is that round growth per
doubling is an additive/polylog increment, not multiplicative in n.
"""

import math

import repro
from repro.core import forest_decomposition_algorithm2
from repro.decomposition import (
    list_star_forest_decomposition,
    lsfd_palette_requirement,
)
from repro.graph.generators import uniform_palette
from repro.local import RoundCounter
from repro.nashwilliams import exact_pseudoarboricity

from harness import emit, forest_workload, format_table, once

SEED = 73
ALPHA = 3
EPSILON = 1.0


def bench_scaling_rounds(benchmark):
    rows = []

    def run():
        for n in (50, 100, 200, 400):
            graph = forest_workload(n, ALPHA, seed=SEED + n)

            rc_base = RoundCounter()
            repro.barenboim_elkin_forest_decomposition(
                graph, EPSILON, rounds=rc_base
            )

            rc_lsfd = RoundCounter()
            pseudo = exact_pseudoarboricity(graph)
            required = lsfd_palette_requirement(pseudo, EPSILON)
            palettes = uniform_palette(graph, range(required))
            list_star_forest_decomposition(
                graph, palettes, pseudo, EPSILON, rc_lsfd
            )

            rc_alg2 = RoundCounter()
            forest_decomposition_algorithm2(
                graph, EPSILON, alpha=ALPHA, seed=SEED, rounds=rc_alg2,
                radius=8, search_radius=8,
            )

            rows.append(
                [
                    n,
                    math.ceil(math.log2(n)),
                    rc_base.total,
                    rc_lsfd.total,
                    rc_alg2.total,
                ]
            )

    once(benchmark, run)
    table = format_table(
        f"Scaling: charged rounds vs n (alpha={ALPHA}, eps={EPSILON}, "
        "R=R'=8 for Algorithm 2)",
        ["n", "log2 n", "[BE10] H-partition", "Thm 2.3 LSFD", "Algorithm 2"],
        rows,
    )
    emit("scaling_rounds", table)
    # Shape: 8x larger n costs each algorithm well under 8x the rounds
    # (polylog growth, not linear).
    for column in (2, 3, 4):
        first, last = rows[0][column], rows[-1][column]
        assert last <= 6 * max(first, 1), (
            f"column {column} grew {last}/{first} over 8x n"
        )