"""Barenboim–Elkin Open Problem 11.10 — fewer than 2α forests.

The question the paper answers: "Devise or rule out an efficient
distributed algorithm for computing a decomposition of a graph with
arboricity α into less than 2α forests."  The bench compares, on shared
workloads: the exact centralized α-FD (ground truth), the (2+ε)α
H-partition baseline [BE10], and the paper's (1+ε)α Algorithm 2 — the
crossing of the 2α barrier is the headline reproduction.
"""

import math

import repro
from repro.core import forest_decomposition_algorithm2
from repro.local import RoundCounter
from repro.nashwilliams import exact_forest_partition
from repro.verify import check_forest_decomposition

from harness import emit, forest_workload, format_table, once

SEED = 53
EPSILON = 0.5


def bench_baseline_comparison(benchmark):
    rows = []

    def run():
        for alpha in (2, 4, 6, 8):
            graph = forest_workload(60, alpha, seed=SEED + alpha)
            exact = exact_forest_partition(graph)

            rc_base = RoundCounter()
            base_coloring, base_colors = repro.barenboim_elkin_forest_decomposition(
                graph, EPSILON, rounds=rc_base
            )
            check_forest_decomposition(graph, base_coloring)

            rc_ours = RoundCounter()
            ours = forest_decomposition_algorithm2(
                graph, EPSILON, alpha=alpha, seed=SEED, rounds=rc_ours
            )
            check_forest_decomposition(graph, ours.coloring)

            rows.append(
                [
                    alpha,
                    exact.num_forests,
                    base_colors,
                    ours.colors_used,
                    2 * exact.num_forests,
                    rc_base.total,
                    rc_ours.total,
                ]
            )

    once(benchmark, run)
    table = format_table(
        "Open Problem 11.10 reproduction: colors on forest-union "
        f"workloads (n=60, eps={EPSILON})",
        [
            "alpha", "exact (GW92)", "[BE10] (2+eps)a", "ours (1+eps)a",
            "2 alpha barrier", "[BE10] rounds", "our rounds",
        ],
        rows,
    )
    emit("baseline_comparison", table)
    for row in rows:
        # Headline: we must break the 2 alpha barrier the baseline cannot.
        assert row[3] < row[4], f"ours did not beat 2 alpha: {row}"
        assert row[3] <= math.ceil((1 + EPSILON) * row[0])
        assert row[2] >= row[4] - 1  # baseline sits at ~2 alpha or above
        # And never below the exact optimum.
        assert row[3] >= row[1]
