"""Theorems 4.9 / 4.10 — list-forest decomposition via color splitting.

Claims: the vertex-color-splitting yields per-edge main palettes
k0 ≥ (1+ε/2)α and reserve palettes k1 ≥ εα/20 (cluster variant, w.h.p.
for α ≥ Ω(log n)); the full pipeline outputs a valid (1+ε)α-LFD with
diameter O(log n/ε).  The bench reports splitting sizes against the
theorem floors and validates the end-to-end LFD.
"""

import math

from repro.core import cluster_correlated_splitting, list_forest_decomposition
from repro.graph.generators import random_palettes
from repro.local import RoundCounter
from repro.verify import (
    check_forest_decomposition,
    check_palettes_respected,
    forest_diameter_of_coloring,
)

from harness import emit, forest_workload, format_table, once

SEED = 41
EPSILON = 1.0


def bench_thm410(benchmark):
    split_rows = []
    lfd_rows = []

    def run():
        # Theorem 4.9(1) splitting sizes, sweeping alpha.
        for alpha in (4, 8, 12):
            graph = forest_workload(60, alpha, seed=SEED + alpha)
            size = math.ceil((1 + EPSILON) * alpha)
            palettes = random_palettes(graph, 3 * size, 9 * size, seed=SEED)
            split = cluster_correlated_splitting(
                graph, palettes, EPSILON, seed=SEED
            )
            floor0 = math.ceil((1 + EPSILON / 2) * alpha)
            floor1 = EPSILON * alpha / 20.0
            split_rows.append(
                [alpha, 3 * size, split.k0, floor0, split.k1, f"{floor1:.1f}"]
            )

        # Theorem 4.10 end-to-end.
        for alpha in (3, 5):
            graph = forest_workload(50, alpha, seed=SEED + 100 + alpha)
            size = 3 * math.ceil((1 + EPSILON) * alpha)
            palettes = random_palettes(graph, size, 3 * size, seed=SEED)
            rc = RoundCounter()
            result = list_forest_decomposition(
                graph, palettes, EPSILON, alpha=alpha, seed=SEED, rounds=rc
            )
            check_forest_decomposition(graph, result.coloring)
            check_palettes_respected(result.coloring, palettes)
            diameter = forest_diameter_of_coloring(graph, result.coloring)
            lfd_rows.append(
                [
                    alpha,
                    size,
                    result.stats.k0,
                    result.stats.k1,
                    result.stats.leftover_size,
                    diameter,
                    rc.total,
                ]
            )

    once(benchmark, run)
    table1 = format_table(
        "Theorem 4.9 reproduction: cluster-correlated splitting sizes "
        f"(n=60, eps={EPSILON}, palettes = 3(1+eps)alpha)",
        [
            "alpha", "|Q|", "k0 (measured)", "(1+eps/2)a floor",
            "k1 (measured)", "eps a/20 floor",
        ],
        split_rows,
    )
    table2 = format_table(
        "Theorem 4.10 reproduction: end-to-end LFD (n=50)",
        [
            "alpha", "|Q|", "k0", "k1", "leftover", "forest diameter",
            "charged rounds",
        ],
        lfd_rows,
    )
    emit("thm410_lfd", table1 + "\n\n" + table2)
    # Shape: k0 clears its floor at every alpha (palettes are 3x the
    # minimum, so this holds comfortably); k1 grows with alpha.
    for row in split_rows:
        assert row[2] >= row[3], f"k0 below floor: {row}"
    assert split_rows[-1][4] >= split_rows[0][4]
