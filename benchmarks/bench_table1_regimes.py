"""Table 1 — (1+ε)α-FD and (1+ε)α-LFD algorithms across regimes.

The paper's Table 1 lists, per regime: the excess-color requirement,
whether lists are supported, the runtime shape, and the forest
diameter.  Absolute round counts are asymptotic; the reproduction
checks each row's *guarantees* on concrete workloads — total colors
within (1+ε)α, forest diameters within the row's bound, and the charged
LOCAL rounds — and prints the measured table alongside the paper's
claims.
"""

import math

from repro.core import forest_decomposition_algorithm2, list_forest_decomposition
from repro.graph.generators import random_palettes
from repro.local import RoundCounter
from repro.verify import (
    check_forest_decomposition,
    check_palettes_respected,
    forest_diameter_of_coloring,
)

from harness import emit, forest_workload, format_table, once

N = 70
EPSILON = 1.0
SEED = 2021


def _run_fd_row(label, alpha, diameter_mode, cut_rule, paper_diameter):
    graph = forest_workload(N, alpha, seed=SEED + alpha)
    rc = RoundCounter()
    result = forest_decomposition_algorithm2(
        graph,
        EPSILON,
        alpha=alpha,
        diameter_mode=diameter_mode,
        cut_rule=cut_rule,
        seed=SEED,
        rounds=rc,
    )
    check_forest_decomposition(graph, result.coloring)
    diameter = forest_diameter_of_coloring(graph, result.coloring)
    budget = math.ceil((1 + EPSILON) * alpha)
    assert result.colors_used <= budget, (
        f"{label}: {result.colors_used} colors > (1+eps)alpha = {budget}"
    )
    return [
        label,
        alpha,
        "No",
        result.colors_used,
        budget,
        diameter,
        paper_diameter,
        rc.total,
    ]


def _run_lfd_row(label, alpha, splitting, paper_diameter, factor=3):
    graph = forest_workload(N, alpha, seed=SEED + 17 + alpha)
    size = factor * math.ceil((1 + EPSILON) * alpha)
    palettes = random_palettes(graph, size, 3 * size, seed=SEED)
    rc = RoundCounter()
    result = list_forest_decomposition(
        graph,
        palettes,
        EPSILON,
        alpha=alpha,
        splitting=splitting,
        reserve_probability=0.3 if splitting == "independent" else None,
        seed=SEED,
        rounds=rc,
    )
    check_forest_decomposition(graph, result.coloring)
    check_palettes_respected(result.coloring, palettes)
    diameter = forest_diameter_of_coloring(graph, result.coloring)
    colors = len(set(result.coloring.values()))
    return [label, alpha, "Yes", colors, size, diameter, paper_diameter, rc.total]


def bench_table1(benchmark):
    rows = []

    def run_all():
        rows.append(
            _run_fd_row(
                "alpha>=Omega(log n), depth-residue", 6, "strong",
                "depth_residue", "O(1/eps)",
            )
        )
        rows.append(
            _run_fd_row(
                "alpha>=Omega(log D), safe diameter", 4, "safe",
                "depth_residue", "O(log n/eps)",
            )
        )
        rows.append(
            _run_fd_row(
                "alpha=Omega(1), conditioned sampling", 3, "safe",
                "conditioned_sampling", "O(log n/eps)",
            )
        )
        rows.append(
            _run_fd_row(
                "small alpha, unbounded diameter", 2, None,
                "depth_residue", "<= n",
            )
        )
        rows.append(
            _run_lfd_row("lists, alpha>=Omega(log n)", 4, "cluster", "O(log n/eps)")
        )
        rows.append(
            _run_lfd_row(
                "lists, eps^2 alpha>=Omega(log D)", 3, "independent",
                "O(log n/eps^2)", factor=8,
            )
        )

    once(benchmark, run_all)
    table = format_table(
        f"Table 1 reproduction (n={N}, eps={EPSILON}; forest-union workloads)",
        [
            "regime", "alpha", "lists?", "colors", "(1+eps)a budget",
            "diameter", "paper diameter", "charged rounds",
        ],
        rows,
    )
    emit("table1_regimes", table)
    # Shape assertions: every FD row is within budget (asserted inside);
    # diameter-bounded rows must beat the unbounded row's diameter
    # whenever the unbounded row actually has deep trees.
    assert len(rows) == 6
