"""Ablation — CUT rule choice (Theorem 4.2 design space).

DESIGN.md calls out CUT as the central load-balancing design decision:
the depth-residue rule is deterministic-good but touches every color
class; conditioned sampling touches few edges but needs repair outside
its w.h.p. regime.  This ablation quantifies the trade on a shared
workload: leftover volume, leftover sparsity, repair volume, and
goodness, across ε.
"""

import math
import random

from repro.core import CutController, PartialListForestDecomposition, is_cut_good
from repro.core.augmenting import augment_edge
from repro.decomposition import acyclic_orientation, h_partition
from repro.graph import neighborhood
from repro.graph.generators import line_multigraph, uniform_palette
from repro.nashwilliams import exact_pseudoarboricity

from harness import emit, format_table, once

SEED = 61
ALPHA = 3
LENGTH = 100


def _fresh_state():
    graph = line_multigraph(LENGTH, ALPHA)
    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(ALPHA + 1))
    )
    order = graph.edge_ids()
    random.Random(SEED).shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    return graph, state


def _run(rule, epsilon, probability):
    graph, state = _fresh_state()
    orientation = None
    if rule == "conditioned_sampling":
        partition = h_partition(graph, 3 * exact_pseudoarboricity(graph))
        orientation = acyclic_orientation(graph, partition)
    controller = CutController(
        state, epsilon, ALPHA, rule=rule, orientation=orientation,
        probability=probability, seed=SEED,
    )
    rng = random.Random(SEED + 1)
    radius = 8
    good = 0
    for _ in range(8):
        core = neighborhood(graph, [rng.randrange(graph.n)], 2)
        controller.cut(core, radius)
        good += int(is_cut_good(state, core, radius))
    leftover = state.leftover_edges()
    sparsity = (
        exact_pseudoarboricity(graph.edge_subgraph(leftover)) if leftover else 0
    )
    return [
        rule if probability is None else f"{rule} (p={probability})",
        f"{epsilon}",
        f"{good}/8",
        len(leftover),
        sparsity,
        math.ceil(epsilon * ALPHA),
        controller.stats.fallback_removed,
        controller.stats.max_load,
    ]


def bench_ablation_cut_rules(benchmark):
    rows = []

    def run():
        for epsilon in (1.0, 0.5):
            rows.append(_run("depth_residue", epsilon, None))
            rows.append(_run("conditioned_sampling", epsilon, 0.2))
            rows.append(_run("conditioned_sampling", epsilon, 0.6))

    once(benchmark, run)
    table = format_table(
        f"Ablation: CUT rules (line multigraph l={LENGTH}, alpha={ALPHA}, "
        "8 invocations, R=8)",
        [
            "rule", "eps", "good", "|leftover|", "leftover alpha*",
            "budget", "repair edges", "max vertex load",
        ],
        rows,
    )
    emit("ablation_cut_rules", table)
    for row in rows:
        assert row[2] == "8/8"  # both rules always end good (repair)
        assert row[4] <= row[5]  # sparsity within budget
    # Depth-residue removes more edges but needs no repair.
    depth = [r for r in rows if r[0] == "depth_residue"]
    for row in depth:
        assert row[6] == 0
