"""Proposition C.1 — the Ω(1/ε) diameter lower bound for multigraphs.

The paper's lower-bound instance: a line of ℓ vertices with α parallel
edges between neighbors.  Any α(1+ε)-FD of it has a monochromatic tree
of diameter Ω(1/ε).  The bench (a) re-derives the counting argument on
our own computed decompositions — each color class of diameter d covers
at most d(1 + ℓ/(d+1)) edges, so small-diameter decompositions cannot
cover all (ℓ-1)α edges — and (b) measures the diameters our Theorem 4.6
algorithm actually produces as ε shrinks, confirming the Ω(1/ε) floor.
"""

import math

from repro.core import forest_decomposition_algorithm2
from repro.graph.generators import line_multigraph
from repro.verify import (
    check_forest_decomposition,
    forest_diameter_of_coloring,
)

from harness import emit, format_table, once

SEED = 47
ALPHA = 3
LENGTH = 120


def _optimal_line_decomposition(length, alpha, extra):
    """A hand-optimal (alpha+extra)-FD of the line multigraph with
    diameter O(alpha/extra) = O(1/eps).

    Track ``t`` (the t-th parallel edge at each position) is normally
    colored ``t`` but takes a *break* at positions
    ``p ≡ 2 (t mod half)  (mod 2 half)`` with ``half = ⌈alpha/extra⌉``;
    the break edge goes to spare color ``alpha + t // half``.  Breaks
    land only on even residues, so each spare class is a matching
    (diameter 1), while each track class consists of runs of at most
    ``2 half - 1`` consecutive edges — diameter O(1/eps), matching the
    Proposition C.1 floor up to a constant.
    """
    graph = line_multigraph(length, alpha)
    half = max(1, math.ceil(alpha / extra))
    period = 2 * half
    eids = graph.edge_ids()  # position-major: alpha parallel per position
    coloring = {}
    for position in range(length - 1):
        for track in range(alpha):
            eid = eids[position * alpha + track]
            if position % period == 2 * (track % half):
                coloring[eid] = alpha + (track // half)
            else:
                coloring[eid] = track
    return graph, coloring


def bench_propc1(benchmark):
    rows = []

    def run():
        for extra, epsilon in ((3, 1.0), (2, 2 / 3), (1, 1 / 3)):
            colors = ALPHA + extra
            graph, optimal = _optimal_line_decomposition(
                LENGTH, ALPHA, extra
            )
            check_forest_decomposition(graph, optimal, max_colors=colors)
            upper = forest_diameter_of_coloring(graph, optimal)
            floor = _diameter_floor(LENGTH, ALPHA, colors)

            result = forest_decomposition_algorithm2(
                graph, epsilon, alpha=ALPHA, diameter_mode="strong",
                seed=SEED,
            )
            check_forest_decomposition(graph, result.coloring)
            alg_diameter = forest_diameter_of_coloring(graph, result.coloring)
            rows.append(
                [
                    f"{epsilon:.2f}",
                    colors,
                    floor,
                    upper,
                    result.colors_used,
                    alg_diameter,
                ]
            )
            assert upper >= floor, "construction beats the counting floor?!"
            assert alg_diameter >= _diameter_floor(
                LENGTH, ALPHA, result.colors_used
            )

    once(benchmark, run)
    table = format_table(
        f"Proposition C.1 reproduction: line multigraph (l={LENGTH}, "
        f"alpha={ALPHA}) — diameter is Theta(1/eps)",
        [
            "eps", "colors", "counting floor Omega(1/eps)",
            "hand-optimal diameter", "Alg2 colors", "Alg2 diameter",
        ],
        rows,
    )
    emit("propc1_lower_bound", table)
    # Shape: floor and hand-optimal diameter both rise as eps shrinks,
    # sandwiching Theta(1/eps).
    floors = [r[2] for r in rows]
    uppers = [r[3] for r in rows]
    assert floors == sorted(floors)
    assert uppers == sorted(uppers)
    for row in rows:
        assert row[3] <= 12 * max(row[2], 1), (
            f"construction not within O(1) of the floor: {row}"
        )


def _diameter_floor(length, alpha, colors) -> int:
    """Smallest d such that `colors` forests of diameter d can cover all
    (length-1)*alpha edges of the line multigraph (Prop C.1 counting)."""
    total = (length - 1) * alpha
    for d in range(1, length + 1):
        # One forest of diameter d on a line covers at most d edges per
        # window of d+1 vertices: d * ceil(length/(d+1) + 1) edges.
        per_forest = d * (math.ceil(length / (d + 1)) + 1)
        if colors * per_forest >= total:
            return d
    return length
