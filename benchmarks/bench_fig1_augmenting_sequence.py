"""Figure 1 — an augmenting sequence before and after augmentation.

The paper's Figure 1 illustrates an augmenting sequence and the
recolored state after applying it.  The bench reproduces the object
itself: on saturated partial colorings it finds sequences, verifies
properties (A1)-(A5), applies them, and re-verifies the forest
invariant — printing a worked example plus aggregate statistics over
many random instances.
"""

import random

from repro.core import (
    AugmentationStats,
    PartialListForestDecomposition,
    apply_augmentation,
    find_almost_augmenting_sequence,
    is_augmenting_sequence,
    shortcut_sequence,
)
from repro.graph.generators import uniform_palette, union_of_random_forests

from harness import emit, format_table, once

SEED = 7


def _saturate(graph, colors, seed):
    """Color edges one by one via augmentation; return state and the log
    of sequence lengths."""
    from repro.core.augmenting import augment_edge

    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(colors))
    )
    order = graph.edge_ids()
    random.Random(seed).shuffle(order)
    lengths = []
    for eid in order:
        stats = AugmentationStats()
        augment_edge(state, eid, stats=stats)
        lengths.append(stats.sequence_length)
    state.assert_valid()
    return state, lengths


def bench_fig1(benchmark):
    rows = []
    example_lines = []

    def run():
        # Worked example: alpha colors exactly, so displacement occurs.
        g = union_of_random_forests(20, 3, seed=SEED)
        state = PartialListForestDecomposition(
            g, uniform_palette(g, range(3))
        )
        from repro.core.augmenting import augment_edge

        order = g.edge_ids()
        random.Random(SEED).shuffle(order)
        longest = None
        for eid in order:
            stats = AugmentationStats()
            almost = find_almost_augmenting_sequence(state, eid, stats=stats)
            assert almost is not None
            sequence = shortcut_sequence(state, almost)
            assert is_augmenting_sequence(state, sequence)
            if longest is None or len(sequence) > len(longest):
                longest = list(sequence)
                before = {e: state.color_of(e) for e, _ in sequence}
            apply_augmentation(state, sequence)
            state.assert_valid()
        example_lines.append(
            "Longest observed augmenting sequence "
            f"(length {len(longest)}):"
        )
        for eid, color in longest:
            example_lines.append(
                f"  edge {eid} {state.graph.endpoints(eid)}: "
                f"{before[eid]} -> {color}"
            )
        # Aggregate across instances: length distribution by #colors.
        for extra in (0, 1, 2):
            g2 = union_of_random_forests(30, 3, seed=SEED + extra + 1)
            _state, lengths = _saturate(g2, 3 + extra, SEED + extra)
            rows.append(
                [
                    f"alpha + {extra} colors",
                    len(lengths),
                    max(lengths),
                    round(sum(lengths) / len(lengths), 2),
                ]
            )

    once(benchmark, run)
    table = format_table(
        "Figure 1 reproduction: augmenting sequences (n=30, alpha=3)",
        ["palette size", "#augmentations", "max length", "mean length"],
        rows,
    )
    emit("fig1_augmenting_sequence", "\n".join(example_lines) + "\n\n" + table)
    # Shape: more excess colors => shorter sequences.
    assert rows[0][2] >= rows[-1][2]
