"""Theorem 4.5 — Algorithm 2's E0/E1 split.

Claims: with palettes of size ⌈(1+ε)α⌉, Algorithm 2 partitions
E = E0 ⊔ E1 with a valid list-forest decomposition on E0 and leftover
E1 of pseudo-arboricity ≤ ⌈εα⌉; runtime shape O(log³-⁴ n/ε) by regime.
The bench runs realistic multi-cluster executions (radii small enough
that the network decomposition is non-trivial) and reports the split.
"""

import math

from repro.core import algorithm2
from repro.graph.generators import line_multigraph, uniform_palette
from repro.local import RoundCounter
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import check_forest_decomposition, check_palettes_respected

from harness import emit, forest_workload, format_table, once

SEED = 37


def _run(name, graph, epsilon, alpha, radius, search_radius):
    palettes = uniform_palette(
        graph, range(max(1, math.ceil((1 + epsilon) * alpha)))
    )
    rc = RoundCounter()
    result = algorithm2(
        graph, palettes, epsilon, alpha,
        radius=radius, search_radius=search_radius, seed=SEED, rounds=rc,
    )
    check_forest_decomposition(graph, result.colored, partial=True)
    check_palettes_respected(result.colored, palettes)
    assert not result.state.uncolored_edges()
    leftover = result.leftover
    measured = (
        exact_pseudoarboricity(graph.edge_subgraph(leftover)) if leftover else 0
    )
    budget = math.ceil(epsilon * alpha)
    return [
        name,
        graph.n,
        f"{epsilon}",
        result.stats.clusters_processed,
        len(result.colored),
        len(leftover),
        measured,
        budget,
        result.stats.good_cuts,
        result.stats.bad_cuts,
        result.stats.locality_violations,
        rc.total,
    ], measured, budget


def bench_thm45(benchmark):
    rows = []

    def run():
        for name, graph, alpha, radius in (
            ("line x3, len 60", line_multigraph(60, 3), 3, 4),
            ("line x3, len 120", line_multigraph(120, 3), 3, 4),
            ("forest union a=4", forest_workload(80, 4, SEED), 4, 6),
        ):
            row, measured, budget = _run(
                name, graph, 1.0, alpha, radius, radius
            )
            rows.append(row)
            assert measured <= budget, f"E1 pseudo-arboricity over budget: {row}"

    once(benchmark, run)
    table = format_table(
        "Theorem 4.5 reproduction: Algorithm 2 E0/E1 split (eps=1.0, "
        "multi-cluster radii)",
        [
            "graph", "n", "eps", "clusters", "|E0|", "|E1|",
            "E1 alpha*", "ceil(eps a)", "good cuts", "bad cuts",
            "fallbacks", "charged rounds",
        ],
        rows,
    )
    emit("thm45_algorithm2", table)
    # Shape: all cuts good, no locality violations at these radii.
    for row in rows:
        assert row[9] == 0
