"""Theorem 2.1 — the H-partition toolbox.

Claims: (1) O(log n/ε) classes with per-vertex forward degree ≤ t;
(2) acyclic t-orientation; (3) 3t-star-forest decomposition;
(4) t-list-forest decomposition.  The bench sweeps n to show the
logarithmic class growth and validates each output at t = ⌊(2+ε)α*⌋.
"""

import math

from repro.decomposition import (
    acyclic_orientation,
    default_threshold,
    h_partition,
    list_forest_decomposition_via_hpartition,
    star_forest_decomposition_via_hpartition,
)
from repro.graph.generators import random_palettes
from repro.local import RoundCounter
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import (
    check_forest_decomposition,
    check_hpartition,
    check_orientation,
    check_palettes_respected,
    check_star_forest_decomposition,
)

from harness import emit, forest_workload, format_table, once

SEED = 23
EPSILON = 0.5
ALPHA = 3


def bench_thm21(benchmark):
    rows = []

    def run():
        for n in (40, 80, 160, 320):
            graph = forest_workload(n, ALPHA, seed=SEED + n)
            pseudo = exact_pseudoarboricity(graph)
            t = default_threshold(pseudo, EPSILON)
            rc = RoundCounter()
            partition = h_partition(graph, t, rc)
            check_hpartition(graph, partition.classes, t)

            orientation = acyclic_orientation(graph, partition, rc)
            check_orientation(graph, orientation, t, require_acyclic=True)

            star = star_forest_decomposition_via_hpartition(graph, partition, rc)
            star_colors = check_star_forest_decomposition(
                graph, star, max_colors=3 * t
            )

            palettes = random_palettes(graph, t, 3 * t, seed=SEED)
            lfd = list_forest_decomposition_via_hpartition(
                graph, partition, palettes, rc
            )
            check_forest_decomposition(graph, lfd)
            check_palettes_respected(lfd, palettes)

            rows.append(
                [
                    n,
                    pseudo,
                    t,
                    partition.num_classes,
                    math.ceil(math.log2(n)),
                    star_colors,
                    3 * t,
                    rc.total,
                ]
            )

    once(benchmark, run)
    table = format_table(
        f"Theorem 2.1 reproduction (alpha={ALPHA}, eps={EPSILON})",
        [
            "n", "alpha*", "t", "H-classes", "log2 n", "3t-SFD colors",
            "3t cap", "charged rounds",
        ],
        rows,
    )
    emit("thm21_hpartition", table)
    # Shape: class count grows logarithmically — doubling n adds O(1).
    deltas = [rows[i + 1][3] - rows[i][3] for i in range(len(rows) - 1)]
    assert all(d <= 4 for d in deltas), f"class growth not logarithmic: {deltas}"
