"""Figure 3 / Theorem 4.2 — CUT severs escape paths within budget.

Figure 3 depicts ``H_c[C'']`` and the requirement that CUT disconnect
the cluster ball ``C'`` from all vertices at distance R.  The bench
reproduces the quantitative claims of Theorem 4.2: after CUT, (a) the
execution is good (no monochromatic escape), and (b) the leftover edges
have pseudo-arboricity at most ⌈εα⌉ — for both rules.
"""

import math
import random

from repro.core import CutController, PartialListForestDecomposition, is_cut_good
from repro.core.augmenting import augment_edge
from repro.decomposition import acyclic_orientation, h_partition
from repro.graph import neighborhood
from repro.graph.generators import line_multigraph, uniform_palette
from repro.nashwilliams import exact_pseudoarboricity, orientation_exists

from harness import emit, format_table, once

SEED = 13


def _colored_line(length, multiplicity, seed):
    graph = line_multigraph(length, multiplicity)
    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(multiplicity + 1))
    )
    order = graph.edge_ids()
    random.Random(seed).shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    return graph, state


def _leftover_pseudoarboricity(graph, leftover):
    if not leftover:
        return 0
    return exact_pseudoarboricity(graph.edge_subgraph(leftover))


def _run_rule(rule, epsilon, alpha, radius):
    graph, state = _colored_line(80, alpha, SEED)
    orientation = None
    if rule == "conditioned_sampling":
        pseudo = exact_pseudoarboricity(graph)
        partition = h_partition(graph, 3 * pseudo)
        orientation = acyclic_orientation(graph, partition)
    controller = CutController(
        state,
        epsilon,
        alpha,
        rule=rule,
        orientation=orientation,
        probability=0.4 if rule == "conditioned_sampling" else None,
        seed=SEED + 1,
    )
    rng = random.Random(SEED + 2)
    good = 0
    invocations = 6
    for _ in range(invocations):
        center = rng.randrange(graph.n)
        core = neighborhood(graph, [center], 2)
        controller.cut(core, radius)
        if is_cut_good(state, core, radius):
            good += 1
    leftover = state.leftover_edges()
    budget = math.ceil(epsilon * alpha)
    measured = _leftover_pseudoarboricity(graph, leftover)
    return [
        rule,
        f"{epsilon}",
        alpha,
        radius,
        f"{good}/{invocations}",
        len(leftover),
        measured,
        budget,
        controller.stats.fallback_removed,
    ]


def bench_fig3(benchmark):
    rows = []

    def run():
        rows.append(_run_rule("depth_residue", 1.0, 3, 8))
        rows.append(_run_rule("depth_residue", 0.5, 3, 10))
        rows.append(_run_rule("conditioned_sampling", 1.0, 3, 8))

    once(benchmark, run)
    table = format_table(
        "Figure 3 / Theorem 4.2 reproduction: CUT on line multigraphs "
        "(length 80)",
        [
            "rule", "eps", "alpha", "R", "good cuts", "|leftover|",
            "leftover alpha*", "ceil(eps alpha)", "fallback edges",
        ],
        rows,
    )
    emit("fig3_cut", table)
    for row in rows:
        good, total = row[4].split("/")
        assert good == total, f"cut not always good: {row}"
        assert row[6] <= row[7], f"leftover exceeds budget: {row}"
