"""Figure 2 / Proposition 3.3 — exponential growth of Algorithm 1.

The proof of Proposition 3.3 (illustrated by Figure 2's bridge/
contraction construction) shows each iteration of Algorithm 1 grows the
explored edge set by a factor (1+ε), so an almost augmenting sequence
is found within O(log n / ε) iterations and the sequence lies within an
O(log n / ε) neighborhood (Theorem 3.2).  The bench measures iteration
counts and growth factors across n and ε.
"""

import math
import random

from repro.core import AugmentationStats, PartialListForestDecomposition
from repro.core.augmenting import augment_edge
from repro.graph.generators import uniform_palette, union_of_random_forests

from harness import emit, format_table, once

SEED = 11


def _measure(graph, alpha, extra_colors, seed):
    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(alpha + extra_colors))
    )
    order = graph.edge_ids()
    random.Random(seed).shuffle(order)
    iterations = []
    lengths = []
    growths = []
    for eid in order:
        stats = AugmentationStats()
        augment_edge(state, eid, stats=stats)
        iterations.append(stats.iterations)
        lengths.append(stats.sequence_length)
        growths.extend(stats.growth_factors())
    state.assert_valid()
    return iterations, lengths, growths


def bench_fig2(benchmark):
    rows = []

    def run():
        for n in (20, 40, 80, 160):
            # extra = 0 is the matroid-partition limit: displacement is
            # forced and the search grows deepest; extra >= 1 is the
            # paper's regime, where growth ends in O(log n / eps) rounds.
            for extra in (0, 1, 2):
                graph = union_of_random_forests(n, 3, seed=SEED + n)
                iterations, lengths, growths = _measure(
                    graph, 3, extra, SEED + n
                )
                if extra > 0:
                    epsilon = extra / 3.0
                    bound = math.ceil(
                        math.log(max(n, 2)) / math.log(1 + epsilon)
                    )
                    eps_label = f"{epsilon:.2f}"
                else:
                    bound = "-"
                    eps_label = "0 (exact)"
                rows.append(
                    [
                        n,
                        eps_label,
                        max(iterations),
                        bound,
                        max(lengths),
                        round(
                            sum(growths) / len(growths), 2
                        ) if growths else "-",
                    ]
                )

    once(benchmark, run)
    table = format_table(
        "Figure 2 / Prop 3.3 reproduction: Algorithm 1 growth (alpha=3)",
        [
            "n", "eps", "max iterations", "log_{1+eps}(n) bound",
            "max |P|", "mean growth",
        ],
        rows,
    )
    emit("fig2_growth", table)
    # Shape: in-regime (eps > 0) iteration counts stay within the
    # log_{1+eps} n bound.
    for row in rows:
        if row[3] != "-":
            assert row[2] <= row[3] + 1, f"iterations exceed bound in {row}"
    # Shape: iterations grow at most logarithmically in n (ratio of
    # extremes stays small while n grows 8x) for each eps column.
    for eps_label in ("0 (exact)", "0.33", "0.67"):
        column = [r[2] for r in rows if r[1] == eps_label]
        assert column[-1] <= max(4 * column[0], column[0] + 8), (
            f"iteration growth too fast for eps={eps_label}: {column}"
        )
