"""Proposition 2.4 / Corollary 2.5 — diameter reduction.

Claims: a k-FD converts to a (k + ⌈εα⌉)-FD of diameter O(log n/ε), and
O(1/ε) when α is large.  Also Proposition C.1's complement: diameter
cannot go below Ω(1/ε).  The bench sweeps ε and reports achieved
diameter and extra-color cost, plus the per-vertex deletion load that
drives the ⌈εα⌉ bound.
"""

import math

from repro.core import reduce_diameter
from repro.nashwilliams import exact_forest_decomposition
from repro.verify import (
    check_forest_decomposition,
    forest_diameter_of_coloring,
)

from harness import emit, forest_workload, format_table, once

SEED = 31
N = 150
ALPHA = 4


def bench_prop24(benchmark):
    rows = []

    def run():
        graph = forest_workload(N, ALPHA, seed=SEED)
        base = exact_forest_decomposition(graph)
        base_diameter = forest_diameter_of_coloring(graph, base)
        for epsilon in (1.0, 0.5, 0.25):
            for mode in ("strong", "safe"):
                result = reduce_diameter(
                    graph, base, epsilon, ALPHA, mode=mode, seed=SEED
                )
                check_forest_decomposition(graph, result.kept, partial=True)
                achieved = forest_diameter_of_coloring(graph, result.kept)
                rows.append(
                    [
                        f"{epsilon}",
                        mode,
                        base_diameter,
                        achieved,
                        result.target_diameter,
                        len(result.deleted),
                        result.max_deletion_out_degree(),
                        math.ceil(epsilon * ALPHA),
                    ]
                )
                assert achieved <= result.target_diameter

    once(benchmark, run)
    table = format_table(
        f"Prop 2.4 / Cor 2.5 reproduction (n={N}, alpha={ALPHA}, "
        "input: exact alpha-FD)",
        [
            "eps", "mode", "input diam", "achieved diam", "target",
            "deleted", "max vertex load", "ceil(eps alpha)",
        ],
        rows,
    )
    emit("prop24_diameter", table)
    # Shape: smaller eps => larger achieved diameter (1/eps scaling).
    strong = [r for r in rows if r[1] == "strong"]
    assert strong[0][4] <= strong[-1][4]
    # Load stays within small-multiple of the budget at every eps.
    for row in rows:
        assert row[6] <= max(2 * row[7], 4), f"load blow-up: {row}"
