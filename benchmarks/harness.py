"""Shared benchmark harness.

Every bench reproduces one table or figure of the paper: it runs the
experiment, asserts the claim's *shape* (who wins, by what factor,
where thresholds sit), prints the paper-style rows, and archives them
under ``benchmarks/results/`` so EXPERIMENTS.md can quote stable
artifacts.  Timing itself is delegated to pytest-benchmark.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Timing-snapshot mode: record timings and emit JSON, but skip hard
# speedup asserts (shared CI runners have noisy clocks).  See
# benchmarks/README.md for the consumer contract.
SNAPSHOT_MODE = os.environ.get("BENCH_SNAPSHOT", "") not in ("", "0")


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table, paper style."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print a result block and archive it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def emit_json(name: str, payload: dict) -> str:
    """Archive a machine-readable result under benchmarks/results/.

    ``name`` becomes ``benchmarks/results/<name>.json``; CI uploads
    every ``BENCH_*.json`` as a build artifact so the perf trajectory
    is trackable PR-over-PR (schema: benchmarks/README.md).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def forest_workload(n: int, alpha: int, seed: int, simple: bool = False):
    """Union of ``alpha`` random spanning forests: arboricity exactly
    ``alpha`` at full density (the benches' canonical known-α input)."""
    from repro.graph.generators import union_of_random_forests

    return union_of_random_forests(n, alpha, seed=seed, simple=simple)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Heavy experiments cannot afford pytest-benchmark's auto-calibrated
    repetition; ``pedantic`` with one round keeps the timing column
    honest without re-running the experiment dozens of times.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
