"""Theorem 5.4 / Lemmas 5.2-5.3 — star-forest decompositions.

Claims: (1) (1+ε)α-SFD for simple graphs with α ≥ Ω(√log Δ + log α):
per-vertex matchings of size ≥ t − 2εα; (2) (1+ε)α-LSFD for
α ≥ Ω(log Δ): perfect matchings.  The bench sweeps α, reporting
matching deficits against the 2εα budget, total colors against
(1+ε)α + recolor overhead, and LLL resampling effort.
"""

import math

from repro.core import (
    list_star_forest_decomposition_amr,
    star_forest_decomposition_amr,
)
from repro.graph.generators import random_palettes
from repro.verify import (
    check_palettes_respected,
    check_star_forest_decomposition,
)

from harness import emit, forest_workload, format_table, once

SEED = 43
EPSILON = 0.4
N = 70


def bench_thm54(benchmark):
    sfd_rows = []
    lsfd_rows = []

    def run():
        for alpha in (3, 6, 9, 12):
            graph = forest_workload(N, alpha, seed=SEED + alpha, simple=True)
            result = star_forest_decomposition_amr(
                graph, EPSILON, alpha=alpha, seed=SEED
            )
            check_star_forest_decomposition(graph, result.coloring)
            budget = math.ceil((1 + EPSILON) * alpha)
            deficit_budget = math.ceil(2 * EPSILON * alpha)
            sfd_rows.append(
                [
                    alpha,
                    graph.max_degree(),
                    result.stats.orientation_bound,
                    result.stats.max_deficit,
                    deficit_budget,
                    result.stats.leftover_size,
                    result.colors_used,
                    budget,
                    result.stats.lll_rounds,
                ]
            )

        for alpha in (4, 8):
            graph = forest_workload(N, alpha, seed=SEED + 50 + alpha, simple=True)
            t = math.ceil((1 + 0.5) * alpha)
            palettes = random_palettes(graph, 6 * t, 12 * t, seed=SEED)
            result = list_star_forest_decomposition_amr(
                graph, palettes, epsilon=0.5, alpha=alpha, seed=SEED
            )
            check_star_forest_decomposition(graph, result.coloring)
            check_palettes_respected(result.coloring, palettes)
            lsfd_rows.append(
                [
                    alpha,
                    graph.max_degree(),
                    6 * t,
                    result.stats.max_deficit,
                    result.colors_used,
                    result.stats.lll_rounds,
                ]
            )

    once(benchmark, run)
    table1 = format_table(
        f"Theorem 5.4(1) reproduction: AMR SFD (n={N}, eps={EPSILON})",
        [
            "alpha", "max deg", "t", "max deficit", "2 eps a budget",
            "leftover", "colors", "(1+eps)a", "LLL rounds",
        ],
        sfd_rows,
    )
    table2 = format_table(
        f"Theorem 5.4(2) reproduction: AMR LSFD (n={N}, eps=0.5, "
        "palettes 6t of space 12t)",
        ["alpha", "max deg", "|Q|", "max deficit", "distinct colors", "LLL rounds"],
        lsfd_rows,
    )
    emit("thm54_star_forest", table1 + "\n\n" + table2)

    # Shape: matching deficits within the 2 eps alpha budget after LLL.
    for row in sfd_rows:
        assert row[3] <= row[4], f"deficit above budget: {row}"
    # Shape: LSFD matchings are perfect (deficit 0) in-regime.
    for row in lsfd_rows:
        assert row[3] == 0
    # Shape: relative excess (colors/alpha) decreases with alpha.
    first = sfd_rows[0][6] / sfd_rows[0][0]
    last = sfd_rows[-1][6] / sfd_rows[-1][0]
    assert last <= first + 0.25
