"""Theorem 2.3 — ⌊(4+ε)α* − 1⌋-list-star-forest decomposition.

Claims: palettes of size ⌊(4+ε)α*−1⌋ always suffice, for multigraphs,
with rounds O(log³n/ε) in the network-decomposition variant.  The bench
validates the decomposition across graph families and shows the charged
round scaling with n.
"""

import math

from repro.decomposition import (
    list_star_forest_decomposition,
    lsfd_palette_requirement,
)
from repro.graph.generators import (
    grid_graph,
    line_multigraph,
    random_palettes,
)
from repro.local import RoundCounter
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import (
    check_palettes_respected,
    check_star_forest_decomposition,
)

from harness import emit, forest_workload, format_table, once

SEED = 29
EPSILON = 0.5


def _run(name, graph):
    pseudo = max(1, exact_pseudoarboricity(graph))
    required = max(1, lsfd_palette_requirement(pseudo, EPSILON))
    palettes = random_palettes(graph, required, 3 * required, seed=SEED)
    rc = RoundCounter()
    coloring = list_star_forest_decomposition(
        graph, palettes, pseudo, EPSILON, rc
    )
    check_star_forest_decomposition(graph, coloring)
    check_palettes_respected(coloring, palettes)
    distinct = len(set(coloring.values()))
    return [name, graph.n, graph.m, pseudo, required, distinct, rc.total]


def bench_thm23(benchmark):
    rows = []

    def run():
        rows.append(_run("forest union a=3, n=50", forest_workload(50, 3, SEED)))
        rows.append(_run("forest union a=3, n=100", forest_workload(100, 3, SEED)))
        rows.append(_run("forest union a=3, n=200", forest_workload(200, 3, SEED)))
        rows.append(_run("line multigraph x4", line_multigraph(40, 4)))
        rows.append(_run("grid 8x8", grid_graph(8, 8)))

    once(benchmark, run)
    table = format_table(
        f"Theorem 2.3 reproduction: (4+{EPSILON})alpha*-LSFD "
        "(palette sizes = the theorem's requirement exactly)",
        [
            "graph", "n", "m", "alpha*", "palette size", "distinct colors",
            "charged rounds",
        ],
        rows,
    )
    emit("thm23_lsfd", table)
    # Shape: rounds grow polylogarithmically in n on the same family.
    r50 = rows[0][6]
    r200 = rows[2][6]
    assert r200 <= 4 * r50, "round growth faster than polylog shape"
