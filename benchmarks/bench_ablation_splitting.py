"""Ablation — vertex-color-splitting variants (Theorem 4.9 design space).

The cluster-correlated splitting wastes almost no palette (endpoints
agree by construction inside clusters) but needs α ≥ Ω(log n) for the
reserve floor; the independent splitting works under ε²α ≥ Ω(log Δ)
but pays a (1-p)² agreement tax on every edge.  This ablation measures
k0/k1 and the palette-waste fraction of both on shared instances.
"""

from repro.core import cluster_correlated_splitting, independent_splitting
from repro.graph.generators import random_palettes

from harness import emit, forest_workload, format_table, once

SEED = 71
EPSILON = 1.0


def _waste(palettes, split):
    total = sum(len(p) for p in palettes.values())
    kept = sum(len(p) for p in split.palettes_0.values()) + sum(
        len(p) for p in split.palettes_1.values()
    )
    return 1.0 - kept / total


def bench_ablation_splitting(benchmark):
    rows = []

    def run():
        for alpha in (4, 8):
            graph = forest_workload(60, alpha, seed=SEED + alpha)
            size = 6 * alpha
            palettes = random_palettes(graph, size, 3 * size, seed=SEED)

            cluster = cluster_correlated_splitting(
                graph, palettes, EPSILON, seed=SEED
            )
            rows.append(
                [
                    "cluster-correlated", alpha, size,
                    cluster.k0, cluster.k1,
                    f"{_waste(palettes, cluster):.2%}",
                ]
            )

            # p must satisfy p^2 |Q| >> 1 for the reserve floor (the
            # theorem's eps^2 alpha >= Omega(log Delta) regime); 0.4
            # puts these instances inside it.
            independent = independent_splitting(
                graph, palettes, EPSILON,
                reserve_probability=0.4, min_k1=1, seed=SEED,
            )
            rows.append(
                [
                    "independent (p=0.4)", alpha, size,
                    independent.k0, independent.k1,
                    f"{_waste(palettes, independent):.2%}",
                ]
            )

    once(benchmark, run)
    table = format_table(
        f"Ablation: color-splitting variants (n=60, eps={EPSILON}, "
        "|Q| = 6 alpha)",
        ["variant", "alpha", "|Q|", "k0", "k1", "palette waste"],
        rows,
    )
    emit("ablation_splitting", table)
    # Shape: the cluster variant wastes less palette than independent.
    for i in range(0, len(rows), 2):
        cluster_waste = float(rows[i][5].rstrip("%"))
        indep_waste = float(rows[i + 1][5].rstrip("%"))
        assert cluster_waste < indep_waste
