"""Tests for Theorem 2.1: H-partition and its corollaries."""

import pytest

from repro.errors import DecompositionError, PaletteError
from repro.graph import MultiGraph, is_forest, is_star_forest
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    line_multigraph,
    path_graph,
    random_palettes,
    star_graph,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import RoundCounter, run_distributed_hpartition
from repro.decomposition import (
    acyclic_orientation,
    default_threshold,
    h_partition,
    list_forest_decomposition_via_hpartition,
    rooted_forests_from_orientation,
    star_forest_decomposition_via_hpartition,
)
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import (
    check_forest_decomposition,
    check_hpartition,
    check_orientation,
    check_palettes_respected,
    check_star_forest_decomposition,
)


def make_workload(seed=0):
    g = union_of_random_forests(40, 3, seed=seed)
    pseudo = exact_pseudoarboricity(g)
    t = default_threshold(pseudo, 0.5)
    return g, pseudo, t


def test_h_partition_property():
    g, _pseudo, t = make_workload()
    partition = h_partition(g, t)
    check_hpartition(g, partition.classes, t)
    assert partition.num_classes >= 1


def test_h_partition_matches_distributed():
    """Centralized peeling produces the same classes as the genuine
    message-passing node program."""
    g, _pseudo, t = make_workload(seed=5)
    central = h_partition(g, t)
    distributed, _rounds = run_distributed_hpartition(g, t)
    assert central.classes == distributed


def test_h_partition_charges_rounds():
    g, _pseudo, t = make_workload()
    rc = RoundCounter()
    partition = h_partition(g, t, rounds=rc)
    assert rc.total == partition.num_classes  # one round per wave


def test_h_partition_stalls_on_small_threshold():
    g = complete_graph(8)  # min degree 7
    with pytest.raises(DecompositionError):
        h_partition(g, 2)


def test_h_partition_members():
    g = star_graph(5)
    partition = h_partition(g, 2)
    assert sorted(partition.members(1)) == [1, 2, 3, 4]
    assert partition.members(2) == [0]


def test_acyclic_orientation():
    g, _pseudo, t = make_workload(seed=1)
    partition = h_partition(g, t)
    orientation = acyclic_orientation(g, partition)
    check_orientation(g, orientation, t, require_acyclic=True)


def test_orientation_out_degree_tight_on_line_multigraph():
    g = line_multigraph(6, 2)  # alpha* = 2
    t = default_threshold(2, 0.5)
    partition = h_partition(g, t)
    orientation = acyclic_orientation(g, partition)
    check_orientation(g, orientation, t, require_acyclic=True)


def test_rooted_forests_from_orientation():
    g, _pseudo, t = make_workload(seed=2)
    partition = h_partition(g, t)
    orientation = acyclic_orientation(g, partition)
    forests = rooted_forests_from_orientation(g, orientation)
    assert sum(len(f) for f in forests) == g.m
    assert len(forests) <= t
    for eids in forests:
        assert is_forest(g, eids)


def test_star_forest_decomposition_thm213():
    g, _pseudo, t = make_workload(seed=3)
    partition = h_partition(g, t)
    coloring = star_forest_decomposition_via_hpartition(g, partition)
    # At most 3t star forests (Theorem 2.1(3)).
    count = check_star_forest_decomposition(g, coloring, max_colors=3 * t)
    assert count >= 1


def test_star_forest_decomposition_on_multigraph():
    g = line_multigraph(8, 3)
    t = default_threshold(exact_pseudoarboricity(g), 0.5)
    partition = h_partition(g, t)
    coloring = star_forest_decomposition_via_hpartition(g, partition)
    check_star_forest_decomposition(g, coloring, max_colors=3 * t)


def test_list_forest_decomposition_thm214():
    g, _pseudo, t = make_workload(seed=4)
    partition = h_partition(g, t)
    palettes = random_palettes(g, t, 3 * t, seed=9)
    coloring = list_forest_decomposition_via_hpartition(g, partition, palettes)
    check_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)


def test_list_forest_decomposition_uniform_palette():
    g = cycle_graph(10)
    t = default_threshold(1, 0.5)  # alpha* of a cycle is 1 -> t = 2
    partition = h_partition(g, t)
    palettes = uniform_palette(g, range(t))
    coloring = list_forest_decomposition_via_hpartition(g, partition, palettes)
    count = check_forest_decomposition(g, coloring, max_colors=t)
    assert count <= t


def test_list_forest_decomposition_small_palette_fails():
    g = complete_graph(6)
    partition = h_partition(g, 5)
    palettes = uniform_palette(g, [0])  # hopeless: out-degrees up to 5
    with pytest.raises(PaletteError):
        list_forest_decomposition_via_hpartition(g, partition, palettes)


def test_default_threshold():
    assert default_threshold(4, 0.5) == 10
    assert default_threshold(1, 0.01) == 2


def test_h_partition_class_count_logarithmic():
    for n in (50, 200):
        g = union_of_random_forests(n, 2, seed=n)
        partition = h_partition(g, default_threshold(2, 1.0))
        # O(log n / eps) classes; very generous empirical cap.
        assert partition.num_classes <= 30
