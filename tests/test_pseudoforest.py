"""Tests for pseudoforest validation and the public pseudoforest API."""

import pytest

import repro
from repro.errors import ValidationError
from repro.graph import MultiGraph
from repro.graph.generators import (
    cycle_graph,
    line_multigraph,
    path_graph,
    union_of_random_forests,
)
from repro.verify import check_pseudoforest_decomposition, is_pseudoforest


def test_path_is_pseudoforest():
    g = path_graph(5)
    assert is_pseudoforest(g, g.edge_ids())


def test_single_cycle_is_pseudoforest():
    g = cycle_graph(5)
    assert is_pseudoforest(g, g.edge_ids())


def test_two_cycles_sharing_component_not_pseudoforest():
    # Theta graph: two vertices joined by three parallel paths -> 2 cycles.
    g = MultiGraph.with_vertices(2)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    assert not is_pseudoforest(g, g.edge_ids())


def test_two_disjoint_cycles_are_pseudoforest():
    g = MultiGraph.with_vertices(6)
    eids = [
        g.add_edge(0, 1), g.add_edge(1, 2), g.add_edge(2, 0),
        g.add_edge(3, 4), g.add_edge(4, 5), g.add_edge(5, 3),
    ]
    assert is_pseudoforest(g, eids)


def test_cycle_with_attached_cycle_not_pseudoforest():
    g = MultiGraph.with_vertices(5)
    eids = [
        g.add_edge(0, 1), g.add_edge(1, 2), g.add_edge(2, 0),  # triangle
        g.add_edge(2, 3), g.add_edge(3, 4), g.add_edge(4, 2),  # triangle
    ]
    assert not is_pseudoforest(g, eids)


def test_check_pseudoforest_decomposition():
    g = cycle_graph(6)
    coloring = {eid: 0 for eid in g.edge_ids()}
    assert check_pseudoforest_decomposition(g, coloring) == 1


def test_check_pseudoforest_detects_violation():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
    coloring = {eid: 0 for eid in g.edge_ids()}
    with pytest.raises(ValidationError):
        check_pseudoforest_decomposition(g, coloring)


def test_check_pseudoforest_requires_total():
    g = path_graph(3)
    with pytest.raises(ValidationError):
        check_pseudoforest_decomposition(g, {0: 0})


def test_pseudoforest_decomposition_api():
    g = union_of_random_forests(40, 3, seed=1)
    coloring, bound = repro.pseudoforest_decomposition(
        g, epsilon=0.5, alpha=3, seed=2
    )
    count = check_pseudoforest_decomposition(g, coloring, max_colors=bound)
    assert count <= bound <= 5  # ceil(1.5 * 3)


def test_pseudoforest_on_cycle_single_class():
    g = cycle_graph(8)
    coloring, bound = repro.pseudoforest_decomposition(
        g, epsilon=0.5, alpha=2, method="exact", seed=3
    )
    # alpha* of a cycle is 1: a 1-orientation makes one pseudoforest...
    # via the exact method bound = (1+eps) alpha = 3, but the witness
    # orientation has out-degree 1, so at most 1 class is used... allow
    # the validator to confirm whatever was produced.
    check_pseudoforest_decomposition(g, coloring, max_colors=bound)


def test_line_multigraph_pseudoforests():
    g = line_multigraph(10, 4)
    coloring, bound = repro.pseudoforest_decomposition(
        g, epsilon=0.25, alpha=4, method="exact", seed=4
    )
    check_pseudoforest_decomposition(g, coloring, max_colors=bound)
