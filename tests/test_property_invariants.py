"""Hypothesis property tests for cross-cutting invariants.

These complement the per-module property tests with whole-pipeline
invariants on randomly generated multigraphs:

* every public decomposition is valid and within its color budget;
* arboricity relations hold (alpha* <= alpha <= 2 alpha*, degeneracy
  <= 2 alpha - 1, alphastar >= alpha);
* generators deliver their advertised guarantees.
"""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import forest_decomposition_algorithm2
from repro.decomposition.degeneracy import degeneracy_ordering
from repro.graph import MultiGraph, connected_components, is_forest
from repro.graph.generators import union_of_random_forests
from repro.nashwilliams import (
    exact_arboricity,
    exact_pseudoarboricity,
    orientation_exists,
)
from repro.verify import check_forest_decomposition


def random_multigraph(rng, max_n=10, max_m=18):
    n = rng.randint(2, max_n)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(0, max_m)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    return g


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1_000_000))
def test_pipeline_fd_valid_and_budgeted(seed):
    rng = random.Random(seed)
    g = random_multigraph(rng)
    if g.m == 0:
        return
    alpha = exact_arboricity(g)
    epsilon = rng.choice((0.5, 1.0))
    result = forest_decomposition_algorithm2(g, epsilon, alpha=alpha, seed=seed)
    check_forest_decomposition(g, result.coloring)
    assert alpha <= result.colors_used <= math.ceil((1 + epsilon) * alpha)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 1_000_000))
def test_parameter_relations(seed):
    """alpha* <= alpha <= 2 alpha*; degeneracy <= 2 alpha - 1; an
    alpha*-orientation always exists; no (alpha*-1)-orientation does."""
    rng = random.Random(seed)
    g = random_multigraph(rng)
    if g.m == 0:
        return
    alpha = exact_arboricity(g)
    pseudo = exact_pseudoarboricity(g)
    degeneracy, _ = degeneracy_ordering(g)
    assert pseudo <= alpha <= 2 * pseudo
    assert degeneracy <= 2 * alpha - 1
    assert orientation_exists(g, pseudo) is not None
    if pseudo > 0:
        assert orientation_exists(g, pseudo - 1) is None


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1_000_000), st.integers(1, 4))
def test_forest_union_generator_guarantees(seed, k):
    """union_of_random_forests(n, k): m = k(n-1), alpha = k exactly."""
    rng = random.Random(seed)
    n = rng.randint(3, 12)
    g = union_of_random_forests(n, k, seed=seed)
    assert g.m == k * (n - 1)
    assert exact_arboricity(g) == k


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1_000_000))
def test_forest_layers_are_forests(seed):
    """Each layer of the union generator is itself a spanning forest."""
    rng = random.Random(seed)
    n = rng.randint(3, 15)
    g = union_of_random_forests(n, 3, seed=seed)
    # Layer i = edges (i(n-1)) .. ((i+1)(n-1) - 1) by construction order.
    per_layer = n - 1
    for layer in range(3):
        eids = list(range(layer * per_layer, (layer + 1) * per_layer))
        assert is_forest(g, eids)
        # A spanning forest on n vertices with n-1 edges is connected.
        sub = g.edge_subgraph(eids)
        comps = [
            c for c in connected_components(sub) if len(c) > 1 or True
        ]
        assert len(connected_components(sub)) == 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1_000_000))
def test_exact_fd_is_minimum(seed):
    """No valid FD exists with fewer than alpha colors (spot-check by
    density witness): m > (alpha-1)(n-1) for the whole graph or some
    subgraph — verified via the matroid certificate."""
    rng = random.Random(seed)
    g = random_multigraph(rng, max_n=7, max_m=12)
    if g.m == 0:
        return
    alpha = exact_arboricity(g)
    from repro.nashwilliams import nash_williams_density_exact

    assert nash_williams_density_exact(g) == alpha
