"""Tests for diameter reduction (Proposition 2.4 / Corollary 2.5)."""

import pytest

from repro.errors import DecompositionError
from repro.graph import MultiGraph
from repro.graph.generators import path_graph, union_of_random_forests
from repro.core import depth_cut, random_sparse_cut, reduce_diameter
from repro.decomposition import acyclic_orientation, h_partition
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import (
    check_forest_decomposition,
    forest_diameter_of_coloring,
)


def long_path_coloring(n=80):
    g = path_graph(n)
    return g, {eid: 0 for eid in g.edge_ids()}


def test_depth_cut_bounds_diameter():
    g, coloring = long_path_coloring()
    result = depth_cut(g, coloring, z=5, seed=1)
    assert forest_diameter_of_coloring(g, result.kept) <= result.target_diameter
    assert result.target_diameter == 8
    # Deletions + kept partition the original edge set.
    assert len(result.kept) + len(result.deleted) == g.m


def test_depth_cut_records_tails():
    g, coloring = long_path_coloring(30)
    result = depth_cut(g, coloring, z=4, seed=2)
    for eid in result.deleted:
        assert result.deletion_tail[eid] in g.endpoints(eid)
    assert result.max_deletion_out_degree() <= 1  # path: one parent edge each


def test_depth_cut_z_one_deletes_everything():
    g, coloring = long_path_coloring(10)
    result = depth_cut(g, coloring, z=1, seed=3)
    assert not result.kept
    assert len(result.deleted) == g.m


def test_depth_cut_invalid_z():
    g, coloring = long_path_coloring(5)
    with pytest.raises(DecompositionError):
        depth_cut(g, coloring, z=0)


def test_depth_cut_multicolor_load():
    """Per-vertex deletion load ~ (#colors)/z across many colors."""
    g = union_of_random_forests(60, 4, seed=4)
    from repro.nashwilliams import exact_forest_decomposition

    coloring = exact_forest_decomposition(g)
    result = depth_cut(g, coloring, z=8, seed=5)
    check_forest_decomposition(g, result.kept, partial=True)
    assert forest_diameter_of_coloring(g, result.kept) <= 14
    # 4 colors, z=8: expected load 0.5; assert a generous whp-style cap.
    assert result.max_deletion_out_degree() <= 4


def test_reduce_diameter_strong_mode():
    g, coloring = long_path_coloring(100)
    result = reduce_diameter(g, coloring, epsilon=0.5, alpha=1, mode="strong", seed=6)
    # z = ceil(20/eps) = 40 -> diameter <= 78.
    assert forest_diameter_of_coloring(g, result.kept) <= 78


def test_reduce_diameter_safe_mode():
    g, coloring = long_path_coloring(100)
    result = reduce_diameter(g, coloring, epsilon=0.5, alpha=1, mode="safe", seed=7)
    assert forest_diameter_of_coloring(g, result.kept) <= result.target_diameter


def test_reduce_diameter_auto_and_bad_mode():
    g, coloring = long_path_coloring(20)
    reduce_diameter(g, coloring, 0.5, alpha=100, mode="auto", seed=8)
    with pytest.raises(DecompositionError):
        reduce_diameter(g, coloring, 0.5, alpha=1, mode="bogus")


def test_random_sparse_cut():
    g = union_of_random_forests(50, 3, seed=9)
    from repro.nashwilliams import exact_forest_decomposition

    coloring = exact_forest_decomposition(g)
    pseudo = exact_pseudoarboricity(g)
    partition = h_partition(g, 3 * pseudo)
    orientation = acyclic_orientation(g, partition)
    target = 12
    result = random_sparse_cut(
        g, coloring, epsilon=1.0, alpha=3, orientation=orientation,
        target_diameter=target, seed=10,
    )
    assert forest_diameter_of_coloring(g, result.kept) <= target
    check_forest_decomposition(g, result.kept, partial=True)
    assert len(result.kept) + len(result.deleted) == g.m


def test_deleted_edges_form_sparse_graph():
    """Deleted edges' pseudo-arboricity is bounded by the recorded
    out-degree (the orientation witness)."""
    g = union_of_random_forests(40, 3, seed=11)
    from repro.nashwilliams import exact_forest_decomposition

    coloring = exact_forest_decomposition(g)
    result = depth_cut(g, coloring, z=6, seed=12)
    if result.deleted:
        bound = max(1, result.max_deletion_out_degree())
        from repro.verify import pseudoarboricity_upper_bound_check

        pseudoarboricity_upper_bound_check(g, result.deleted, bound)
