"""Tests for Theorem 2.3: (4+eps)alpha*-list-star-forest decomposition."""

import pytest

from repro.errors import PaletteError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    line_multigraph,
    path_graph,
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.decomposition import (
    list_star_forest_decomposition,
    lsfd_palette_requirement,
)
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import (
    check_palettes_respected,
    check_star_forest_decomposition,
    count_colors,
)


def run_lsfd(graph, epsilon=0.5, seed=0, color_space_factor=3):
    pseudo = max(1, exact_pseudoarboricity(graph))
    required = max(1, lsfd_palette_requirement(pseudo, epsilon))
    palettes = random_palettes(
        graph, required, color_space_factor * required, seed=seed
    )
    coloring = list_star_forest_decomposition(
        graph, palettes, pseudo, epsilon
    )
    check_star_forest_decomposition(graph, coloring)
    check_palettes_respected(coloring, palettes)
    return coloring


def test_lsfd_forest_union():
    run_lsfd(union_of_random_forests(40, 3, seed=1))


def test_lsfd_grid():
    run_lsfd(grid_graph(6, 6))


def test_lsfd_cycle():
    run_lsfd(cycle_graph(12))


def test_lsfd_multigraph():
    run_lsfd(line_multigraph(8, 3))


def test_lsfd_complete_graph():
    run_lsfd(complete_graph(10))


def test_lsfd_uniform_palettes_color_count():
    g = union_of_random_forests(30, 2, seed=3)
    pseudo = max(1, exact_pseudoarboricity(g))
    required = lsfd_palette_requirement(pseudo, 0.5)
    palettes = uniform_palette(g, range(required))
    coloring = list_star_forest_decomposition(g, palettes, pseudo, 0.5)
    count = check_star_forest_decomposition(g, coloring, max_colors=required)
    assert count <= required


def test_lsfd_empty_graph():
    from repro.graph import MultiGraph

    g = MultiGraph.with_vertices(3)
    assert list_star_forest_decomposition(g, {}, 1) == {}


def test_lsfd_palette_too_small():
    g = complete_graph(8)
    palettes = uniform_palette(g, [0, 1])  # far below (4+eps)alpha*-1
    with pytest.raises(PaletteError):
        list_star_forest_decomposition(g, palettes, exact_pseudoarboricity(g))


def test_lsfd_rounds_charged():
    g = union_of_random_forests(25, 2, seed=5)
    pseudo = max(1, exact_pseudoarboricity(g))
    required = lsfd_palette_requirement(pseudo, 0.5)
    palettes = uniform_palette(g, range(required))
    rc = RoundCounter()
    list_star_forest_decomposition(g, palettes, pseudo, 0.5, rounds=rc)
    assert rc.total > 0
    assert any("h-partition" in key for key in rc.by_phase())


def test_palette_requirement_values():
    assert lsfd_palette_requirement(1, 0.5) == 3  # floor(4.5 - 1)
    assert lsfd_palette_requirement(3, 1.0) == 14


def test_lsfd_skewed_palettes():
    from repro.graph.generators import skewed_palettes

    g = union_of_random_forests(30, 2, seed=7)
    pseudo = max(1, exact_pseudoarboricity(g))
    required = lsfd_palette_requirement(pseudo, 0.5)
    palettes = skewed_palettes(g, required, 2 * required, seed=8)
    coloring = list_star_forest_decomposition(g, palettes, pseudo, 0.5)
    check_star_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)
