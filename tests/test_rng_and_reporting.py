"""Tests for the RNG helpers and the decomposition summary reporter."""

import random

import pytest

from repro.errors import ValidationError
from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.nashwilliams import exact_forest_decomposition
from repro.rng import (
    child_rng,
    coin,
    make_rng,
    maybe_seeded,
    random_partition_index,
    sample_subset,
)
from repro.verify import summarize_decomposition


def test_make_rng_from_int_deterministic():
    a, b = make_rng(5), make_rng(5)
    assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]


def test_make_rng_passthrough():
    rng = random.Random(1)
    assert make_rng(rng) is rng


def test_child_rng_labels_diverge():
    parent_a, parent_b = make_rng(7), make_rng(7)
    child_x = child_rng(parent_a, "x")
    child_y = child_rng(parent_b, "y")
    # Different labels from identical parents give different streams.
    assert [child_x.random() for _ in range(4)] != [
        child_y.random() for _ in range(4)
    ]


def test_child_rng_reproducible():
    a = child_rng(make_rng(9), "cut")
    b = child_rng(make_rng(9), "cut")
    assert a.random() == b.random()


def test_coin_extremes():
    rng = make_rng(0)
    assert coin(rng, 0.0) is False
    assert coin(rng, 1.0) is True
    assert coin(rng, -1) is False
    assert coin(rng, 2.0) is True


def test_coin_distribution():
    rng = make_rng(3)
    hits = sum(coin(rng, 0.3) for _ in range(4000))
    assert 1000 < hits < 1450  # ~1200 expected


def test_sample_subset():
    rng = make_rng(4)
    items = list(range(10))
    sub = sample_subset(rng, items, 4)
    assert len(sub) == 4
    assert set(sub) <= set(items)
    assert sample_subset(rng, items, 99) == items


def test_random_partition_index():
    rng = make_rng(5)
    values = {random_partition_index(rng, 3) for _ in range(60)}
    assert values == {0, 1, 2}
    with pytest.raises(ValueError):
        random_partition_index(rng, 0)


def test_maybe_seeded():
    a = maybe_seeded(None, default_seed=11)
    b = maybe_seeded(None, default_seed=11)
    assert a.random() == b.random()
    c = maybe_seeded(7, default_seed=11)
    d = make_rng(7)
    assert c.random() == d.random()


# ----------------------------------------------------------------------
# summarize_decomposition
# ----------------------------------------------------------------------


def test_summary_forest():
    g = cycle_graph(6)
    coloring = exact_forest_decomposition(g)
    report = summarize_decomposition(g, coloring, "forest")
    assert "valid forest decomposition" in report
    assert "colors used: 2" in report
    assert "max tree diameter" in report


def test_summary_star():
    g = star_graph(5)
    coloring = {eid: 0 for eid in g.edge_ids()}
    report = summarize_decomposition(g, coloring, "star")
    assert "valid star decomposition" in report


def test_summary_pseudoforest():
    g = cycle_graph(5)
    coloring = {eid: 0 for eid in g.edge_ids()}
    report = summarize_decomposition(g, coloring, "pseudoforest")
    assert "valid pseudoforest decomposition" in report
    assert "colors used: 1" in report


def test_summary_rejects_invalid():
    g = cycle_graph(3)
    coloring = {eid: 0 for eid in g.edge_ids()}  # a cycle is no forest
    with pytest.raises(ValidationError):
        summarize_decomposition(g, coloring, "forest")
    with pytest.raises(ValidationError):
        summarize_decomposition(g, coloring, "bogus-kind")


def test_summary_cli_report_flag(tmp_path, capsys):
    from repro.__main__ import main as cli_main
    from repro.graph.generators import union_of_random_forests
    from repro.graph.io import write_edge_list

    g = union_of_random_forests(15, 2, seed=1)
    path = str(tmp_path / "g.txt")
    write_edge_list(g, path)
    assert cli_main(["fd", path, "--alpha", "2", "--report"]) == 0
    out = capsys.readouterr().out
    assert "valid forest decomposition" in out