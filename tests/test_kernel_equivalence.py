"""Property-based equivalence: flat-array kernel vs. dict-backed graph.

For ~200 seeded random multigraphs — varying vertex count, density,
parallel-edge rate, vertex-id gaps, and deleted edges (non-contiguous
edge ids) — assert that

* the :class:`CSRGraph` snapshot agrees with :class:`MultiGraph` on
  degrees, neighbor multisets, edge ids and endpoints;
* the ported algorithms (``h_partition``, ``degeneracy_ordering``,
  ``degeneracy_orientation``, ``acyclic_orientation``,
  ``low_outdegree_orientation``) return results identical to the
  dict-backed reference implementations, including charged rounds;
* the traversal layer (``bfs_distances``, ``neighborhood``,
  ``power_graph``, ``connected_components``,
  ``diameter_of_component``) and the network-decomposition machinery
  (``network_decomposition``, ``partial_network_decomposition``,
  ``cut_edges_of_clustering``) return identical values on both
  backends, including cluster and head orderings;
* the per-color sub-CSR path of
  :class:`~repro.core.partial_coloring.PartialListForestDecomposition`
  answers every path/component/connectivity query exactly like the
  dict walk under an identical mutation history;
* :func:`rooted_forest_arrays` reproduces :class:`RootedForest`'s
  rooting (depths, parent edges, root choice) on forest subsets.

Instances are derived deterministically from the parametrized seed, so
a failure always reproduces.
"""

import random

import numpy as np
import pytest

from repro.errors import GraphError, ValidationError
from repro.graph import CSRGraph, MultiGraph, RootedForest, rooted_forest_arrays
from repro.graph.csr import bfs_distance_array, resolve_backend, snapshot_of
from repro.graph.shard import ShardPlan, ShardedPeelingView, plan_of
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    diameter_of_component,
    neighborhood,
    power_graph,
)
from repro.core.orientation import low_outdegree_orientation
from repro.core.partial_coloring import PartialListForestDecomposition
from repro.decomposition.degeneracy import (
    degeneracy_ordering,
    degeneracy_orientation,
)
from repro.decomposition.hpartition import acyclic_orientation, h_partition
from repro.decomposition.network_decomposition import (
    cut_edges_of_clustering,
    network_decomposition,
    partial_network_decomposition,
)
from repro.local import RoundCounter

SEEDS = range(200)


def random_multigraph(seed: int) -> MultiGraph:
    """A seeded random multigraph exercising every snapshot code path."""
    rng = random.Random(seed * 7919 + 13)
    n = rng.randint(2, 16) if seed % 3 == 0 else rng.randint(2, 80)
    graph = MultiGraph()
    if seed % 5 == 3:
        # Non-contiguous vertex ids: the snapshot must renumber.
        ids = sorted(rng.sample(range(3 * n + 2), n))
        rng.shuffle(ids)
        for vertex in ids:
            graph.add_vertex(vertex)
    else:
        for _ in range(n):
            graph.add_vertex()
    vertices = graph.vertices()
    density = rng.uniform(0.3, 3.5)
    parallel_rate = rng.choice((0.0, 0.1, 0.5))
    pairs = []
    for _ in range(int(n * density)):
        if pairs and rng.random() < parallel_rate:
            u, v = rng.choice(pairs)  # parallel copy of an existing pair
        else:
            u, v = rng.sample(vertices, 2)
        pairs.append((u, v))
        graph.add_edge(u, v)
    if graph.m and seed % 4 == 1:
        # Deleted edges: the snapshot must handle id gaps.
        for eid in rng.sample(graph.edge_ids(), max(1, graph.m // 5)):
            graph.remove_edge(eid)
    return graph


@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_matches_multigraph(seed):
    graph = random_multigraph(seed)
    snap = CSRGraph.from_multigraph(graph)

    assert snap.num_vertices == graph.n
    assert snap.num_edges == graph.m
    assert set(snap.edge_id.tolist()) == set(graph.edge_ids())

    for vertex in graph.vertices():
        index = snap.index_of(vertex)
        assert int(snap.vertex_ids[index]) == vertex
        assert snap.degree(vertex) == graph.degree(vertex)
        start, stop = snap.incident_slice(index)
        mine = sorted(
            (int(eid), int(snap.vertex_ids[int(j)]))
            for eid, j in zip(snap.edge_ids[start:stop], snap.neighbor_ids[start:stop])
        )
        assert mine == sorted(graph.incident(vertex))

    for eid in graph.edge_ids():
        assert snap.endpoints(eid) == graph.endpoints(eid)

    u_of, v_of = snap.endpoint_maps()
    for eid in graph.edge_ids():
        assert (u_of[eid], v_of[eid]) == graph.endpoints(eid)


@pytest.mark.parametrize("seed", SEEDS)
def test_ported_algorithms_match_reference(seed):
    graph = random_multigraph(seed)

    ref_d, ref_order = degeneracy_ordering(graph, backend="dict")
    csr_d, csr_order = degeneracy_ordering(graph, backend="csr")
    assert (csr_d, csr_order) == (ref_d, ref_order)

    ref_pair = degeneracy_orientation(graph, backend="dict")
    csr_pair = degeneracy_orientation(graph, backend="csr")
    assert csr_pair == ref_pair

    # Peeling with threshold >= degeneracy can never stall.
    threshold = max(1, ref_d)
    ref_rounds, csr_rounds = RoundCounter(), RoundCounter()
    ref_partition = h_partition(graph, threshold, ref_rounds, backend="dict")
    csr_partition = h_partition(graph, threshold, csr_rounds, backend="csr")
    assert csr_partition.classes == ref_partition.classes
    assert csr_partition.threshold == ref_partition.threshold
    assert csr_rounds.total == ref_rounds.total

    ref_orient = acyclic_orientation(graph, ref_partition, backend="dict")
    csr_orient = acyclic_orientation(graph, csr_partition, backend="csr")
    assert csr_orient == ref_orient


@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_low_outdegree_orientation_matches_reference(seed):
    graph = random_multigraph(seed)
    if graph.m == 0:
        pytest.skip("empty instance")
    ref = low_outdegree_orientation(graph, 0.5, method="hpartition", backend="dict")
    csr = low_outdegree_orientation(graph, 0.5, method="hpartition", backend="csr")
    assert csr == ref


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_rooted_forest_arrays_match_rooted_forest(seed):
    graph = random_multigraph(seed)
    snap = CSRGraph.from_multigraph(graph)

    # A spanning-forest subset via union-find-free greedy: add edges
    # that RootedForest accepts (it validates acyclicity itself).
    rng = random.Random(seed)
    eids = []
    for eid in graph.edge_ids():
        if rng.random() < 0.7:
            eids.append(eid)
    # Drop edges until acyclic.
    while True:
        try:
            reference = RootedForest(graph, eids)
            break
        except GraphError:
            eids.pop(rng.randrange(len(eids)))

    arrays = rooted_forest_arrays(snap, eids)
    assert arrays.max_depth == reference.max_depth()
    assert sorted(int(snap.vertex_ids[i]) for i in arrays.roots) == sorted(
        reference.roots
    )
    for vertex, eid in reference.parent_edge.items():
        index = snap.index_of(vertex)
        expected = -1 if eid is None else eid
        assert int(arrays.parent_eid[index]) == expected
        assert int(arrays.depth[index]) == reference.depth[vertex]

    # Preferred roots change the rooting exactly like RootedForest.
    preferred = set(rng.sample(graph.vertices(), max(1, graph.n // 3)))
    reference_pref = RootedForest(graph, eids, roots=preferred)
    arrays_pref = rooted_forest_arrays(snap, eids, preferred_roots=preferred)
    assert sorted(int(snap.vertex_ids[i]) for i in arrays_pref.roots) == sorted(
        reference_pref.roots
    )
    for vertex in reference_pref.depth:
        index = snap.index_of(vertex)
        assert int(arrays_pref.depth[index]) == reference_pref.depth[vertex]


@pytest.mark.parametrize("seed", range(0, 200, 3))
def test_traversal_matches_reference(seed):
    graph = random_multigraph(seed)
    rng = random.Random(seed * 31 + 7)
    sources = rng.sample(graph.vertices(), max(1, graph.n // 4))

    for radius in (None, 0, 1, 3):
        ref = bfs_distances(graph, sources, radius, backend="dict")
        csr = bfs_distances(graph, sources, radius, backend="csr")
        assert csr == ref
    assert neighborhood(graph, sources, 2, backend="csr") == neighborhood(
        graph, sources, 2, backend="dict"
    )

    ref_components = connected_components(graph, backend="dict")
    assert connected_components(graph, backend="csr") == ref_components
    # A snapshot input routes through the csr path under "auto" too.
    assert connected_components(snapshot_of(graph)) == ref_components

    largest = max(ref_components, key=len)
    assert diameter_of_component(
        graph, largest, backend="csr"
    ) == diameter_of_component(graph, largest, backend="dict")


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_power_graph_matches_reference(seed):
    graph = random_multigraph(seed)
    snap = snapshot_of(graph)
    for radius in (1, 2, 4):
        ref = power_graph(graph, radius, backend="dict")
        csr = power_graph(graph, radius, backend="csr")
        assert isinstance(ref, MultiGraph)
        assert isinstance(csr, CSRGraph)
        assert csr.vertices() == ref.vertices()
        assert csr.m == ref.m  # both simple: one edge per joined pair
        for vertex in graph.vertices():
            assert sorted(csr.neighbors(vertex)) == sorted(ref.neighbors(vertex))
        # "auto" keeps the input's representation.
        assert isinstance(power_graph(graph, radius), MultiGraph)
        assert isinstance(power_graph(snap, radius), CSRGraph)


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_network_decomposition_matches_reference(seed):
    graph = random_multigraph(seed)
    ref_rounds, csr_rounds = RoundCounter(), RoundCounter()
    ref = network_decomposition(graph, ref_rounds, radius_cost=3, backend="dict")
    csr = network_decomposition(graph, csr_rounds, radius_cost=3, backend="csr")
    assert csr.classes == ref.classes
    assert csr_rounds.total == ref_rounds.total

    # End to end across substrates: the ball carving applied to the
    # power graph must not care which backend produced it.
    power_ref = power_graph(graph, 2, backend="dict")
    power_csr = power_graph(graph, 2, backend="csr")
    assert (
        network_decomposition(power_csr, backend="csr").classes
        == network_decomposition(power_ref, backend="dict").classes
    )


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_simultaneous_carve_matches_reference(seed):
    graph = random_multigraph(seed)
    ref = network_decomposition(
        graph, backend="dict", carve_rule="simultaneous"
    )
    csr = network_decomposition(
        graph, backend="csr", carve_rule="simultaneous"
    )
    assert csr.classes == ref.classes


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_partial_network_decomposition_matches_reference(seed):
    graph = random_multigraph(seed)
    for beta in (0.2, 0.6):
        ref = partial_network_decomposition(
            graph, beta, seed=seed, backend="dict"
        )
        csr = partial_network_decomposition(
            graph, beta, seed=seed, backend="csr"
        )
        assert csr == ref
        assert list(csr) == list(ref)  # insertion order preserved too
        assert cut_edges_of_clustering(
            graph, ref, backend="csr"
        ) == cut_edges_of_clustering(graph, ref, backend="dict")


@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_partial_coloring_backends_match(seed):
    """An identical mutation history on the dict and forced-csr color
    backends must agree on every success/failure, path, and component."""
    graph = random_multigraph(seed)
    if graph.m == 0:
        pytest.skip("empty instance")
    palette = range(4)
    palettes = {eid: palette for eid in graph.edge_ids()}
    ref = PartialListForestDecomposition(graph, palettes, backend="dict")
    ker = PartialListForestDecomposition(graph, palettes, backend="csr")

    rng = random.Random(seed * 131 + 5)
    for eid in graph.edge_ids():
        color = rng.randrange(4)
        outcomes = []
        for state in (ref, ker):
            try:
                state.set_color(eid, color)
                outcomes.append(True)
            except ValidationError:
                outcomes.append(False)
        assert outcomes[0] == outcomes[1]
        if rng.random() < 0.25:
            ref.uncolor(eid)
            ker.uncolor(eid)
    assert ref.coloring() == ker.coloring()

    for eid in graph.edge_ids():
        for color in palette:
            assert ref.color_path(eid, color) == ker.color_path(eid, color)
    for vertex in graph.vertices():
        for color in palette:
            assert ref.color_component_vertices(
                vertex, color
            ) == ker.color_component_vertices(vertex, color)
    ref.assert_valid()
    ker.assert_valid()


def test_partial_coloring_rejects_unknown_backend():
    graph = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    with pytest.raises(ValidationError):
        PartialListForestDecomposition(
            graph, {eid: range(2) for eid in graph.edge_ids()}, backend="dcit"
        )


def test_traversal_rejects_unknown_backend():
    graph = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    with pytest.raises(GraphError):
        bfs_distances(graph, [0], backend="dcit")


def test_snapshot_cache_invalidates_on_mutation():
    graph = MultiGraph.from_edges(4, [(0, 1), (1, 2)])
    first = snapshot_of(graph)
    assert snapshot_of(graph) is first  # cache hit while unmutated
    graph.add_edge(2, 3)
    second = snapshot_of(graph)
    assert second is not first
    assert second.m == graph.m
    eid = graph.edge_ids()[0]
    graph.remove_edge(eid)
    third = snapshot_of(graph)
    assert third is not second and third.m == graph.m


def test_mask_of_rejects_unknown_vertices():
    graph = MultiGraph.from_edges(4, [(0, 1), (2, 3)])
    snap = CSRGraph.from_multigraph(graph)
    with pytest.raises(GraphError):
        snap.mask_of({-1})  # must not wrap around via negative indexing
    with pytest.raises(GraphError):
        snap.mask_of({7})


def test_rooted_forest_arrays_empty_edge_set():
    graph = MultiGraph.with_vertices(3)
    snap = CSRGraph.from_multigraph(graph)
    arrays = rooted_forest_arrays(snap, [])
    assert arrays.max_depth == 0  # matches RootedForest.max_depth()
    assert arrays.roots == []


def test_low_outdegree_orientation_rejects_unknown_backend():
    from repro.errors import DecompositionError

    graph = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    with pytest.raises(DecompositionError):
        low_outdegree_orientation(graph, 0.5, method="hpartition", backend="dcit")


def test_rooted_forest_arrays_rejects_cycles():
    graph = MultiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    snap = CSRGraph.from_multigraph(graph)
    with pytest.raises(GraphError):
        rooted_forest_arrays(snap, graph.edge_ids())


# ----------------------------------------------------------------------
# Sharded multi-worker peeling backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 200, 5))
def test_sharded_peeling_matches_reference(seed):
    """dict == csr == sharded H-partition classes and charged rounds,
    for every worker count and shard granularity — the backend's
    bit-identity contract.  The corpus includes parallel-edge and
    gappy-id instances; tiny shard counts make every wave cross shard
    boundaries."""
    graph = random_multigraph(seed)
    d, _ = degeneracy_ordering(graph)
    threshold = max(1, d)
    ref_rounds = RoundCounter()
    ref = h_partition(graph, threshold, ref_rounds, backend="dict")
    csr_partition = h_partition(graph, threshold, backend="csr")
    assert csr_partition.classes == ref.classes
    snap = snapshot_of(graph)
    for workers in (1, 2, 4):
        for num_shards in (1, 3, 7):
            plan = ShardPlan.from_snapshot(snap, num_shards)
            rounds = RoundCounter()
            sharded = h_partition(
                graph, threshold, rounds, backend="sharded",
                snapshot=snap, workers=workers, shard_plan=plan,
            )
            assert sharded.classes == ref.classes
            assert sharded.threshold == ref.threshold
            assert rounds.total == ref_rounds.total


def test_sharded_boundary_heavy_parallel_edges():
    """Parallel edges straddling every shard boundary: multiplicities
    must decrement once per copy across the reconcile, with one shard
    per vertex (all decrements are boundary decrements)."""
    graph = MultiGraph.with_vertices(12)
    for i in range(11):
        for _ in range(1 + i % 3):  # 1-3 parallel copies per pair
            graph.add_edge(i, i + 1)
    ref = h_partition(graph, 3, backend="dict")
    assert ref.num_classes > 1  # a real wave cascade, not one wave
    snap = snapshot_of(graph)
    for num_shards in (2, 6, 12):
        plan = ShardPlan.from_snapshot(snap, num_shards)
        for workers in (1, 2, 4):
            sharded = h_partition(
                graph, 3, backend="sharded", snapshot=snap,
                workers=workers, shard_plan=plan,
            )
            assert sharded.classes == ref.classes


def test_sharded_view_interleaves_disciplines():
    """pop_min after sharded peel_leq (and a wave after pop_min) stays
    consistent: the scalar-mode fallback must see the updated state and
    the stale wave work-list must be discarded."""
    graph = MultiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (2, 4)])
    snap = CSRGraph.from_multigraph(graph)
    reference = snap.peeling_view()
    view = ShardedPeelingView(snap, ShardPlan.from_snapshot(snap, 3), 2)
    assert view.peel_leq(1).tolist() == reference.peel_leq(1).tolist()
    assert view.pop_min() == reference.pop_min()
    assert view.peel_leq(5).tolist() == reference.peel_leq(5).tolist()
    assert view.alive_count == reference.alive_count == 0


def test_sharded_view_threshold_changes_between_waves():
    """The wave work-list is threshold-specific; changing the threshold
    between waves must trigger a fresh shard scan, not reuse of the old
    candidate set."""
    rng = random.Random(77)
    graph = MultiGraph.with_vertices(40)
    for _ in range(90):
        u, v = rng.sample(range(40), 2)
        graph.add_edge(u, v)
    snap = snapshot_of(graph)
    reference = snap.peeling_view()
    view = ShardedPeelingView(snap, ShardPlan.from_snapshot(snap, 5), 2)
    for threshold in (1, 3, 2, 6, 4, 100):
        assert view.peel_leq(threshold).tolist() == \
            reference.peel_leq(threshold).tolist()
        assert view.alive_count == reference.alive_count
        if view.alive_count == 0:
            break
    assert view.alive_count == 0


def test_shard_plan_properties():
    graph = random_multigraph(7)
    snap = snapshot_of(graph)
    for num_shards in (1, 2, 5, snap.num_vertices):
        plan = ShardPlan.from_snapshot(snap, num_shards)
        bounds = plan.boundaries
        assert bounds[0] == 0 and bounds[-1] == snap.num_vertices
        assert np.all(np.diff(bounds) >= 0)
        assert plan.num_shards == min(num_shards, snap.num_vertices)
        for index in range(snap.num_vertices):
            shard = plan.shard_of(index)
            assert bounds[shard] <= index < bounds[shard + 1]
    # split() partitions an ascending index array along the boundaries
    plan = ShardPlan.from_snapshot(snap, 4)
    indices = np.arange(snap.num_vertices, dtype=np.int64)
    parts = plan.split(indices)
    assert len(parts) == plan.num_shards
    assert np.concatenate(parts).tolist() == indices.tolist()


def test_shard_plan_default_is_cached_on_snapshot():
    graph = random_multigraph(11)
    snap = snapshot_of(graph)
    assert plan_of(snap) is plan_of(snap)
    assert plan_of(snap, 3) is not plan_of(snap, 3)  # explicit = fresh


def test_sharded_plan_mismatch_rejected():
    small = snapshot_of(MultiGraph.with_vertices(3))
    large = snapshot_of(MultiGraph.with_vertices(9))
    with pytest.raises(GraphError):
        ShardedPeelingView(large, plan_of(small))


def test_resolve_backend_sharded_size_fallback(monkeypatch):
    from repro.graph.csr import SHARDED_AUTO_CUTOFF

    # Pin the forced-backend env off: the CI leg that sets
    # REPRO_FORCE_PARALLEL reroutes csr-resolved traversal callsites,
    # which is exactly what this test pins down for the default env.
    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_FORCE_MP", raising=False)
    small = MultiGraph.with_vertices(10)
    assert resolve_backend(small, "sharded", peeling=True) == "csr"

    class _FakeBig:
        n = SHARDED_AUTO_CUTOFF

    assert resolve_backend(_FakeBig(), "sharded", peeling=True) == "sharded"
    assert resolve_backend(_FakeBig(), "parallel", peeling=True) == "sharded"
    # Non-peeling layers (traversal, network decomposition, color
    # classes) route to the engine-backed parallel path at scale and
    # to the csr kernel below — never the dict reference path, never
    # the peeling-only "sharded" substrate.
    assert resolve_backend(_FakeBig(), "sharded") == "parallel"
    assert resolve_backend(_FakeBig(), "parallel") == "parallel"
    assert resolve_backend(small, "sharded") == "csr"
    assert resolve_backend(small, "parallel") == "csr"


def test_traversal_accepts_sharded_backend_on_kernel_path():
    """Regression: bfs_distances(backend="sharded") must run the CSR
    kernel (identical results), not the dict reference loop."""
    graph = random_multigraph(3)
    sources = graph.vertices()[:2]
    assert bfs_distances(graph, sources, backend="sharded") == \
        bfs_distances(graph, sources, backend="csr")


def test_h_partition_sharded_empty_and_tiny_graphs():
    empty = MultiGraph()
    assert h_partition(empty, 1, backend="sharded").classes == {}
    single = MultiGraph.with_vertices(1)
    assert h_partition(single, 1, backend="sharded").classes == \
        h_partition(single, 1, backend="dict").classes


# ----------------------------------------------------------------------
# BFS seed validation (regression: negative seeds used to wrap around)
# ----------------------------------------------------------------------


def test_bfs_distance_array_rejects_out_of_range_seeds():
    graph = MultiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    snap = snapshot_of(graph)
    with pytest.raises(GraphError, match="out of range"):
        bfs_distance_array(
            snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices, [-1]
        )
    with pytest.raises(GraphError, match="out of range"):
        snap.distance_array([0, 4])
    # Regression: a negative seed previously meant "start from vertex
    # n-1" via numpy wraparound — silently wrong distances, no error.
    with pytest.raises(GraphError, match="out of range"):
        snap.distance_array([-1])
    # In-range seeds still work, and the empty seed set stays legal.
    assert snap.distance_array([0]).tolist() == [0, 1, 2, 3]
    assert snap.distance_array([]).tolist() == [-1, -1, -1, -1]


def test_peeling_view_interleaves_disciplines():
    """pop_min after peel_leq sees the updated degrees (shared state)."""
    graph = MultiGraph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (2, 4)])
    snap = CSRGraph.from_multigraph(graph)
    view = snap.peeling_view()
    removed = view.peel_leq(1)  # vertices 0 and... only degree-1 vertices: 0
    assert [int(i) for i in removed] == [0]
    index, deg = view.pop_min()  # vertex 1 now has remaining degree 1
    assert (int(snap.vertex_ids[index]), deg) == (1, 1)
    rest = view.peel_leq(5)
    assert view.alive_count == 0
    assert sorted(int(snap.vertex_ids[i]) for i in rest) == [2, 3, 4]


# ----------------------------------------------------------------------
# Parallel (wave-engine) backend equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_parallel_traversal_matches_reference(seed, monkeypatch):
    """dict == csr == parallel for the BFS-shaped entry points, with
    the engine forced on so even corpus-sized graphs run real waves."""
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    graph = random_multigraph(seed)
    vertices = graph.vertices()
    sources = vertices[: max(1, len(vertices) // 4)]

    assert bfs_distances(graph, sources, backend="parallel") == \
        bfs_distances(graph, sources, backend="dict")
    assert neighborhood(graph, sources[:1], 2, backend="parallel") == \
        neighborhood(graph, sources[:1], 2, backend="dict")
    assert connected_components(graph, backend="parallel") == \
        connected_components(graph, backend="dict")

    nd_ref = network_decomposition(graph, backend="dict")
    nd_par = network_decomposition(graph, backend="parallel", workers=2)
    assert nd_par.classes == nd_ref.classes

    for comp in connected_components(graph, backend="dict")[:2]:
        assert diameter_of_component(graph, comp, backend="parallel") == \
            diameter_of_component(graph, comp, backend="dict")


@pytest.mark.parametrize("seed", range(3, 200, 16))
def test_depth_cut_backends_identical(seed, monkeypatch):
    """depth_cut's arrays path (and the engine-backed rooting) cuts
    exactly the dict RootedForest path's edges, same RNG stream."""
    from repro.core.diameter_reduction import depth_cut
    import repro.core.diameter_reduction as dr

    graph = random_multigraph(seed)
    if graph.m == 0:
        pytest.skip("edgeless corpus instance")
    # A proper forest coloring: split edges into forests greedily.
    from repro.graph.union_find import UnionFind

    coloring = {}
    finders = []
    for eid in sorted(graph.edge_ids()):
        u, v = graph.endpoints(eid)
        for color, uf in enumerate(finders):
            if uf.union(u, v):
                coloring[eid] = color
                break
        else:
            uf = UnionFind()
            uf.union(u, v)
            finders.append(uf)
            coloring[eid] = len(finders) - 1

    reference = depth_cut(graph, coloring, z=3, seed=seed, backend="dict")
    # Drop the gate so every class exercises the arrays path.
    monkeypatch.setattr(dr, "DEPTH_CUT_ARRAYS_MIN_EDGES", 0)
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    for backend in ("csr", "parallel"):
        got = depth_cut(
            graph, coloring, z=3, seed=seed, backend=backend, workers=2
        )
        assert got.kept == reference.kept
        assert got.deleted == reference.deleted
        assert got.deletion_tail == reference.deletion_tail


@pytest.mark.parametrize("seed", range(5, 120, 18))
def test_color_class_parallel_backend_matches_dict(seed):
    """PartialListForestDecomposition path/component queries agree
    between the dict walk and the engine-backed parallel sweeps under
    an identical mutation history."""
    graph = random_multigraph(seed)
    if graph.m == 0:
        pytest.skip("edgeless corpus instance")
    palettes = {eid: (0, 1, 2) for eid in graph.edge_ids()}
    rng = random.Random(seed)
    states = {
        "dict": PartialListForestDecomposition(graph, palettes, "dict"),
        "parallel": PartialListForestDecomposition(
            graph, palettes, "parallel", workers=2
        ),
    }
    for eid in sorted(graph.edge_ids()):
        color = rng.choice((0, 1, 2))
        outcomes = {}
        for name, state in states.items():
            try:
                state.set_color(eid, color)
                outcomes[name] = "ok"
            except ValidationError:
                outcomes[name] = "cycle"
        assert outcomes["dict"] == outcomes["parallel"]
        probe = rng.choice(sorted(graph.edge_ids()))
        assert states["dict"].color_path(probe, color) == \
            states["parallel"].color_path(probe, color)
        start = rng.choice(graph.vertices())
        assert states["dict"].color_component_vertices(start, color) == \
            states["parallel"].color_component_vertices(start, color)
