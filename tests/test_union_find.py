"""Unit and property tests for union-find structures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.union_find import RollbackUnionFind, UnionFind


def test_basic_union_find():
    uf = UnionFind(range(4))
    assert uf.components == 4
    assert uf.union(0, 1)
    assert not uf.union(0, 1)
    assert uf.connected(0, 1)
    assert not uf.connected(0, 2)
    assert uf.components == 3


def test_lazy_insertion():
    uf = UnionFind()
    assert uf.union("a", "b")
    assert uf.connected("a", "b")
    assert "a" in uf
    assert "z" not in uf
    assert len(uf) == 2


def test_groups():
    uf = UnionFind(range(5))
    uf.union(0, 1)
    uf.union(2, 3)
    groups = sorted(sorted(g) for g in uf.groups())
    assert groups == [[0, 1], [2, 3], [4]]


def test_transitive_connectivity():
    uf = UnionFind(range(10))
    for i in range(9):
        uf.union(i, i + 1)
    assert uf.connected(0, 9)
    assert uf.components == 1


def test_rollback_basic():
    uf = RollbackUnionFind(range(4))
    mark = uf.checkpoint()
    uf.union(0, 1)
    uf.union(1, 2)
    assert uf.connected(0, 2)
    uf.rollback(mark)
    assert not uf.connected(0, 1)
    assert not uf.connected(1, 2)
    assert uf.components == 4


def test_rollback_partial():
    uf = RollbackUnionFind(range(4))
    uf.union(0, 1)
    mark = uf.checkpoint()
    uf.union(2, 3)
    uf.rollback(mark)
    assert uf.connected(0, 1)
    assert not uf.connected(2, 3)


def test_rollback_noop_unions():
    uf = RollbackUnionFind(range(3))
    uf.union(0, 1)
    mark = uf.checkpoint()
    uf.union(0, 1)  # no-op
    uf.union(1, 2)
    uf.rollback(mark)
    assert uf.connected(0, 1)
    assert not uf.connected(1, 2)


def test_rollback_bad_checkpoint():
    uf = RollbackUnionFind(range(2))
    with pytest.raises(ValueError):
        uf.rollback(10)


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=0, max_size=60
    ),
    split=st.integers(0, 60),
)
def test_rollback_matches_replay(ops, split):
    """Rolling back to a checkpoint must equal replaying the prefix."""
    split = min(split, len(ops))
    rb = RollbackUnionFind(range(20))
    for a, b in ops[:split]:
        rb.union(a, b)
    mark = rb.checkpoint()
    for a, b in ops[split:]:
        rb.union(a, b)
    rb.rollback(mark)

    ref = UnionFind(range(20))
    for a, b in ops[:split]:
        ref.union(a, b)

    for a in range(20):
        for b in range(a + 1, 20):
            assert rb.connected(a, b) == ref.connected(a, b)
    assert rb.components == ref.components


@settings(max_examples=30)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)), min_size=0, max_size=40
    )
)
def test_union_find_matches_bruteforce(ops):
    """UnionFind connectivity must match a brute-force reachability check."""
    uf = UnionFind(range(15))
    adj = {i: set() for i in range(15)}
    for a, b in ops:
        uf.union(a, b)
        adj[a].add(b)
        adj[b].add(a)

    def reachable(s, t):
        seen, stack = {s}, [s]
        while stack:
            v = stack.pop()
            if v == t:
                return True
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return s == t

    rng = random.Random(0)
    for _ in range(30):
        a, b = rng.randrange(15), rng.randrange(15)
        assert uf.connected(a, b) == reachable(a, b)
