"""The public-API surface must match the frozen snapshot.

``tools/api_surface.py`` freezes every ``repro.__all__`` export with
its signature; this test (and the lint job) fails on accidental
breakage.  Intentional changes: re-freeze with

    PYTHONPATH=src python tools/api_surface.py --regen

and commit the ``tools/api_surface.json`` diff alongside the change.
"""

import os
import sys

TOOLS_DIR = os.path.join(os.path.dirname(__file__), "..", "tools")
sys.path.insert(0, os.path.abspath(TOOLS_DIR))

import api_surface  # noqa: E402


def test_snapshot_exists():
    assert os.path.exists(api_surface.SNAPSHOT_PATH), (
        "no frozen API surface; run tools/api_surface.py --regen"
    )


def test_surface_matches_snapshot():
    frozen = api_surface.load_snapshot()
    current = api_surface.compute_surface()
    drift = api_surface.diff_surface(frozen, current)
    assert not drift, (
        "public API surface drifted:\n" + "\n".join(drift)
        + "\nIf intentional: PYTHONPATH=src python tools/api_surface.py --regen"
    )


def test_surface_covers_unified_api():
    surface = api_surface.load_snapshot()
    for name in (
        "decompose", "Session", "DecompositionConfig",
        "register_task", "register_backend",
        "forest_decomposition", "low_outdegree_orientation",
    ):
        assert name in surface, name


def test_diff_reports_changes():
    drift = api_surface.diff_surface(
        {"a": {"type": "function", "signature": "(x)"}, "gone": {"type": "module"}},
        {"a": {"type": "function", "signature": "(x, y)"}, "new": {"type": "module"}},
    )
    text = "\n".join(drift)
    assert "removed export: gone" in text
    assert "new export" in text and "new" in text
    assert "changed: a" in text
