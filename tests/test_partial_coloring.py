"""Tests for the partial list-forest decomposition state."""

import pytest

from repro.errors import PaletteError, ValidationError
from repro.graph import MultiGraph
from repro.graph.generators import cycle_graph, path_graph, uniform_palette
from repro.core import PartialListForestDecomposition


def fresh_state(graph, colors=(0, 1, 2)):
    return PartialListForestDecomposition(graph, uniform_palette(graph, colors))


def test_initially_uncolored():
    g = path_graph(4)
    state = fresh_state(g)
    assert state.uncolored_edges() == g.edge_ids()
    assert state.colored_edges() == {}
    assert state.used_colors() == set()


def test_set_and_get_color():
    g = path_graph(4)
    state = fresh_state(g)
    state.set_color(0, 1)
    assert state.color_of(0) == 1
    assert state.used_colors() == {1}
    assert 0 not in state.uncolored_edges()


def test_palette_enforced():
    g = path_graph(3)
    state = fresh_state(g, colors=(0, 1))
    with pytest.raises(PaletteError):
        state.set_color(0, 99)
    state.set_color(0, 99, check_palette=False)  # explicit override allowed
    assert state.color_of(0) == 99


def test_cycle_refused():
    g = cycle_graph(3)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(1, 0)
    with pytest.raises(ValidationError):
        state.set_color(2, 0)
    # State unchanged after the failed attempt.
    assert state.color_of(2) is None
    state.set_color(2, 1)
    state.assert_valid()


def test_parallel_edges_cycle_refused():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    state = fresh_state(g)
    state.set_color(0, 0)
    with pytest.raises(ValidationError):
        state.set_color(1, 0)
    state.set_color(1, 1)


def test_recolor_moves_edge():
    g = path_graph(3)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(0, 1)
    assert state.color_of(0) == 1
    assert state.class_edges(0) == []
    assert state.class_edges(1) == [0]


def test_recolor_failed_restores_old_color():
    g = cycle_graph(3)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(1, 0)
    state.set_color(2, 1)
    with pytest.raises(ValidationError):
        state.set_color(2, 0)
    assert state.color_of(2) == 1  # restored


def test_uncolor():
    g = path_graph(3)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.uncolor(0)
    assert state.color_of(0) is None
    assert state.class_edges(0) == []


def test_color_path_queries():
    g = path_graph(5)  # edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4)
    state = fresh_state(g)
    state.set_color(1, 0)
    state.set_color(2, 0)
    # C(e, 0) for edge 3 = (3,4): vertices 3 and 4: 4 not in color-0 -> empty.
    assert state.color_path(3, 0) is None
    # Add edge 0 so color 0 spans 0-1-2-3; C for an edge joining 0 and 3?
    state.set_color(0, 0)
    # Fake query via an actual edge: recolor edge 3 irrelevant; query C(e,c)
    # for edge 1 in color 0 is the edge itself.
    assert state.color_path(1, 0) == [1]


def test_color_path_between_endpoints():
    # Triangle: color two edges 0, path between endpoints of the third.
    g = cycle_graph(3)  # edges 0:(0,1) 1:(1,2) 2:(2,0)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(1, 0)
    path = state.color_path(2, 0)
    assert sorted(path) == [0, 1]


def test_color_component_vertices():
    g = path_graph(5)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(1, 0)
    assert state.color_component_vertices(0, 0) == {0, 1, 2}
    assert state.color_component_vertices(4, 0) == {4}


def test_leftover_handling():
    g = path_graph(4)
    state = fresh_state(g)
    state.set_color(1, 0)
    state.remove_to_leftover(1, tail=1)
    assert state.is_leftover(1)
    assert state.color_of(1) is None
    assert state.leftover_edges() == [1]
    assert state.leftover_orientation() == {1: 1}
    assert 1 not in state.uncolored_edges()
    with pytest.raises(ValidationError):
        state.set_color(1, 0)


def test_leftover_bad_tail():
    g = path_graph(4)
    state = fresh_state(g)
    with pytest.raises(ValidationError):
        state.remove_to_leftover(0, tail=3)


def test_assert_valid_detects_tampering():
    g = cycle_graph(3)
    state = fresh_state(g)
    state.set_color(0, 0)
    state.set_color(1, 0)
    # Bypass the guard to fabricate a cycle.
    state._color[2] = 0
    state._attach(2, 0)
    with pytest.raises(ValidationError):
        state.assert_valid()


def test_coloring_snapshot_is_copy():
    g = path_graph(3)
    state = fresh_state(g)
    snap = state.coloring()
    snap[0] = 99
    assert state.color_of(0) is None
