"""Tests for the exact list-forest backtracking solver and Seymour's
theorem (empirically: alpha-size palettes always admit an alpha-LFD)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import MultiGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    line_multigraph,
    uniform_palette,
)
from repro.nashwilliams import exact_arboricity
from repro.nashwilliams.list_forest_exact import (
    exact_list_forest_decomposition,
    seymour_holds,
)
from repro.verify import check_forest_decomposition, check_palettes_respected


def test_triangle_two_colors():
    g = cycle_graph(3)
    palettes = uniform_palette(g, [0, 1])
    result = exact_list_forest_decomposition(g, palettes)
    assert result is not None
    check_forest_decomposition(g, result)
    check_palettes_respected(result, palettes)


def test_triangle_one_color_impossible():
    g = cycle_graph(3)
    palettes = uniform_palette(g, [0])
    assert exact_list_forest_decomposition(g, palettes) is None


def test_disjoint_palettes():
    # Two parallel edges with disjoint singleton palettes: feasible.
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    palettes = {0: [7], 1: [9]}
    result = exact_list_forest_decomposition(g, palettes)
    assert result == {0: 7, 1: 9}


def test_conflicting_singleton_palettes():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    palettes = {0: [7], 1: [7]}
    assert exact_list_forest_decomposition(g, palettes) is None


def test_size_guard():
    g = complete_graph(10)
    with pytest.raises(GraphError):
        exact_list_forest_decomposition(g, uniform_palette(g, range(5)))


def test_empty_graph():
    g = MultiGraph.with_vertices(2)
    assert exact_list_forest_decomposition(g, {}) == {}


def test_seymour_requires_alpha_palettes():
    g = cycle_graph(4)
    palettes = uniform_palette(g, [0])
    with pytest.raises(GraphError):
        seymour_holds(g, palettes, alpha=2)


def test_seymour_line_multigraph():
    g = line_multigraph(4, 2)
    alpha = exact_arboricity(g)
    palettes = {
        eid: [eid % 3, (eid + 1) % 3] for eid in g.edge_ids()
    }
    assert seymour_holds(g, palettes, alpha)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1_000_000))
def test_seymour_theorem_empirical(seed):
    """[Sey98]: any palettes of size alpha admit an alpha-LFD.

    Random tiny multigraphs, random alpha-size palettes from a small
    color space (small spaces maximize conflicts).
    """
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(1, 10)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    if g.m == 0:
        return
    alpha = exact_arboricity(g)
    space = alpha + rng.randint(1, 3)
    palettes = {
        eid: sorted(rng.sample(range(space), alpha)) for eid in g.edge_ids()
    }
    assert seymour_holds(g, palettes, alpha), (
        f"Seymour counterexample?! seed={seed}"
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1_000_000))
def test_augmentation_matches_exact_feasibility(seed):
    """If the exact solver finds an LFD with (alpha+1)-size palettes,
    the augmentation framework must too (Theorem 3.2 regime)."""
    from repro.core import PartialListForestDecomposition
    from repro.core.augmenting import augment_edge

    rng = random.Random(seed)
    n = rng.randint(2, 6)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(1, 9)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    if g.m == 0:
        return
    alpha = exact_arboricity(g)
    size = alpha + 1
    space = size + 2
    palettes = {
        eid: sorted(rng.sample(range(space), size)) for eid in g.edge_ids()
    }
    state = PartialListForestDecomposition(g, palettes)
    order = g.edge_ids()
    rng.shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    state.assert_valid()
    assert not state.uncolored_edges()