"""The shared-memory multiprocess backend (``backend="mp"``).

Three layers, bottom up:

* the :mod:`repro.parallel.shm` primitives — array publication
  (inline / segment / publication cache), shared mutable state with
  master-side writes visible to workers, kernel pickling rules, the
  process-pool dispatch path and its infrastructure-failure fallback;
* the :class:`~repro.parallel.engine.MPWaveEngine` wave primitives
  (``gather`` / ``scan_shards`` / ``map_ranges``), asserted
  bit-identical to the serial/thread :class:`WaveEngine` with the
  fan-out gates zeroed so the small test graphs genuinely dispatch to
  worker processes;
* end to end: mp :class:`~repro.graph.shard.ShardedPeelingView` waves
  reproduce the serial :class:`~repro.graph.csr.PeelingView` peel
  order exactly, for workers in {1, 2, 4} x multi-shard plans — the
  same contract the thread backend proves in
  ``test_kernel_equivalence``, here over real spawn-context processes;

plus the segment lifecycle: every test ends with ``/dev/shm`` clean
(the PR 8 pool-reclaim guarantee extended to shm segments).
"""

import os

import numpy as np
import pytest

import _shm_kernels as kern
from test_kernel_equivalence import random_multigraph

from repro.errors import GraphError
from repro.graph import CSRGraph
from repro.graph.csr import PeelingView
from repro.graph.shard import ShardPlan, ShardedPeelingView
from repro.parallel import engine as engine_mod
from repro.parallel.engine import (
    MPWaveEngine,
    WaveEngine,
    engine_for,
    engine_for_offsets,
)
from repro.parallel.shm import (
    MAX_INLINE_BYTES,
    MP_FAN_OUT_MIN_HALF_EDGES,
    MP_FAN_OUT_MIN_SCAN_VERTICES,
    SharedKernel,
    map_on_mp_pool,
    mp_pool_stats,
    owned_segments,
    release_shared,
    resolve_mp_workers,
    share_array,
    shared_state,
)


def _shm_files():
    """``/dev/shm`` entries owned by this process's segment namespace."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-tmpfs platform
        return []
    prefix = f"repro-shm-{os.getpid()}-"
    return sorted(f for f in os.listdir(root) if f.startswith(prefix))


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Segments created by a test must be reclaimed by
    ``release_shared`` — and actually disappear from ``/dev/shm``.
    (Process pools stay warm across tests; only segments are per-test.)
    """
    yield
    release_shared()
    assert owned_segments() == []
    assert _shm_files() == []


# ----------------------------------------------------------------------
# shm primitives
# ----------------------------------------------------------------------


def test_resolve_mp_workers():
    assert resolve_mp_workers(3) == 3
    assert resolve_mp_workers(0) >= 1
    with pytest.raises(GraphError):
        resolve_mp_workers(-1)


def test_shared_kernel_rejects_non_module_level_functions():
    values = np.arange(4, dtype=np.int64)

    def nested(arrays, part):  # pragma: no cover - never called
        return arrays["values"]

    with pytest.raises(GraphError):
        SharedKernel(nested, {"values": values})
    with pytest.raises(GraphError):
        SharedKernel(lambda arrays, part: None, {"values": values})


def test_share_array_inlines_small_and_segments_large():
    small = np.arange(8, dtype=np.int64)
    assert small.nbytes <= MAX_INLINE_BYTES
    before = owned_segments()
    ref_small = share_array(small)
    assert ref_small.kind == "inline"
    assert owned_segments() == before  # no segment for inline arrays

    large = np.arange(MAX_INLINE_BYTES, dtype=np.int64)  # 8x the cutoff
    ref_large = share_array(large)
    assert ref_large.kind == "shm"
    assert ref_large.where in owned_segments()
    assert _shm_files()  # segment is a real /dev/shm file

    # publication cache: same array object -> same descriptor, no new
    # segment
    assert share_array(large) is ref_large
    assert len(owned_segments()) == len(before) + 1


def test_shared_kernel_inline_call_matches_plain_function():
    values = np.arange(40, dtype=np.int64)
    ranged = SharedKernel(kern.double_slice, {"values": values})
    assert np.array_equal(ranged(3, 17), values[3:17] * 2)

    gather = SharedKernel(kern.gather_vals, {"values": values})
    work = np.array([1, 5, 7, 30], dtype=np.int64)
    assert np.array_equal(gather(work), values[work])

    offset = SharedKernel(kern.offset_slice, {"values": values})
    assert np.array_equal(
        offset.with_args(100)(0, 10), values[:10] + 100
    )
    # with_args reuses the publications, only the scalars change
    assert offset.with_args(5).refs is offset.refs


@pytest.mark.parametrize("workers", [1, 2])
def test_map_on_mp_pool_matches_inline(workers):
    values = np.arange(10_000, dtype=np.int64) * 3
    kernel = SharedKernel(kern.double_slice, {"values": values})
    parts = [(0, 2_500), (2_500, 6_000), (6_000, 10_000)]
    before = mp_pool_stats()["mp_dispatches"]
    results = map_on_mp_pool(workers, kernel, parts)
    assert results is not None
    assert mp_pool_stats()["mp_dispatches"] == before + 1
    for (lo, hi), out in zip(parts, results):
        assert np.array_equal(out, values[lo:hi] * 2)

    gather = SharedKernel(kern.gather_vals, {"values": values})
    groups = [
        np.array([0, 7, 11], dtype=np.int64),
        np.array([5_000, 9_999], dtype=np.int64),
    ]
    results = map_on_mp_pool(workers, gather, groups)
    assert results is not None
    for group, out in zip(groups, results):
        assert np.array_equal(out, values[group])


def test_shared_state_master_writes_visible_to_workers():
    state = shared_state(np.zeros(6_000, dtype=np.int64))
    assert owned_segments()  # state always gets a segment
    kernel = SharedKernel(kern.read_state, {"state": state})

    (out,) = map_on_mp_pool(1, kernel, [(0, 6_000)])
    assert not out.any()

    state[...] = 7  # the master's reconcile-phase write
    (out,) = map_on_mp_pool(1, kernel, [(0, 6_000)])
    assert (out == 7).all()


def test_kernel_exceptions_propagate():
    values = np.arange(16, dtype=np.int64)
    kernel = SharedKernel(kern.raise_value_error, {"values": values})
    with pytest.raises(ValueError, match="kernel failure propagates"):
        map_on_mp_pool(1, kernel, [(0, 16)])
    # the pool survives a kernel error: next dispatch works
    ok = SharedKernel(kern.double_slice, {"values": values})
    (out,) = map_on_mp_pool(1, ok, [(0, 16)])
    assert np.array_equal(out, values * 2)


def test_broken_pool_returns_none_and_recovers():
    # workers=3 so the pool we break is not the one other tests reuse
    values = np.arange(16, dtype=np.int64)
    killer = SharedKernel(kern.kill_worker, {"values": values})
    assert map_on_mp_pool(3, killer, [(0, 16)]) is None
    # the broken pool was evicted; a fresh one serves the next wave
    ok = SharedKernel(kern.double_slice, {"values": values})
    (out,) = map_on_mp_pool(3, ok, [(0, 16)])
    assert np.array_equal(out, values * 2)


# ----------------------------------------------------------------------
# MPWaveEngine primitives
# ----------------------------------------------------------------------


def _mp_engine(n, workers, num_shards):
    """An MPWaveEngine over a synthetic uniform-degree offset array,
    gates zeroed so tiny waves genuinely dispatch to processes."""
    offsets = np.arange(0, 4 * (n + 1), 4, dtype=np.int64)
    engine = engine_for_offsets(offsets, workers, num_shards, mp=True)
    engine.min_gather_work = 0
    engine.min_scan_items = 0
    serial = engine_for_offsets(offsets, 1, num_shards)
    return engine, serial


def test_engine_for_flags_and_gate_defaults():
    snap = CSRGraph.from_multigraph(random_multigraph(2))
    thread = engine_for(snap, workers=2)
    proc = engine_for(snap, workers=2, mp=True)
    assert isinstance(proc, MPWaveEngine) and proc.mp
    assert type(thread) is WaveEngine and not thread.mp
    assert proc.workers == 2
    # mp dispatch costs ~20x a thread dispatch; the gates say so
    assert proc.min_gather_work == MP_FAN_OUT_MIN_HALF_EDGES
    assert proc.min_scan_items == MP_FAN_OUT_MIN_SCAN_VERTICES
    assert proc.min_gather_work > thread.min_gather_work


def test_mp_engine_gather_scan_map_match_serial():
    n = 600
    values = np.arange(n, dtype=np.int64) - 100  # mixed signs for scans
    engine, serial = _mp_engine(n, workers=2, num_shards=5)

    gather = SharedKernel(kern.gather_vals, {"values": values})
    work = np.arange(0, n, 3, dtype=np.int64)
    before = mp_pool_stats()["mp_dispatches"]
    assert np.array_equal(
        engine.gather(gather, work, cost=int(work.size)),
        serial.gather(gather, work, cost=int(work.size)),
    )

    scan = SharedKernel(kern.positive_scan, {"values": values})
    assert np.array_equal(
        engine.scan_shards(scan), serial.scan_shards(scan)
    )

    ranged = SharedKernel(kern.double_slice, {"values": values})
    assert np.array_equal(
        np.concatenate(engine.map_ranges(ranged, n, cost=n)),
        np.concatenate(serial.map_ranges(ranged, n, cost=n)),
    )
    # all three waves actually crossed the process boundary
    assert mp_pool_stats()["mp_dispatches"] >= before + 3
    assert engine.dispatches >= 3


def test_mp_engine_closures_fall_through_to_thread_path():
    n = 200
    values = np.arange(n, dtype=np.int64)
    engine, _ = _mp_engine(n, workers=2, num_shards=3)
    before = mp_pool_stats()["mp_dispatches"]

    def scan(lo, hi):
        return np.arange(lo, hi, dtype=np.int64)

    out = engine.scan_shards(scan)
    assert np.array_equal(out, np.arange(n, dtype=np.int64))

    def gather(part):
        return values[part]

    work = np.arange(n, dtype=np.int64)
    assert np.array_equal(
        engine.gather(gather, work, cost=n), values
    )
    # closures never ship to processes (they cannot pickle by path)
    assert mp_pool_stats()["mp_dispatches"] == before


# ----------------------------------------------------------------------
# End to end: mp peeling == serial peeling, real process dispatch
# ----------------------------------------------------------------------


def _peel_all(view):
    """Peel to exhaustion at ascending thresholds; the full wave
    transcript (threshold, removed-indices) identifies the run."""
    waves = []
    threshold = 0
    while view.alive_count:
        removed = view.peel_leq(threshold)
        if removed.size == 0:
            threshold += 1
            continue
        waves.append((threshold, removed.copy()))
    return waves


@pytest.mark.parametrize("seed", [0, 1, 3, 5, 7, 11, 42, 199])
def test_mp_peeling_matches_serial(seed):
    snap = CSRGraph.from_multigraph(random_multigraph(seed))
    reference = _peel_all(PeelingView(snap))

    for workers in (1, 2, 4):
        for num_shards in (1, 3):
            plan = ShardPlan.from_snapshot(snap, num_shards)
            view = ShardedPeelingView(snap, plan, workers, mp=True)
            assert view.engine.mp
            # zero the gates: these graphs are far below the real
            # cutoffs, and the point is to cross the process boundary
            view.engine.min_gather_work = 0
            view.engine.min_scan_items = 0
            waves = _peel_all(view)
            assert len(waves) == len(reference)
            for (t_ref, r_ref), (t_mp, r_mp) in zip(reference, waves):
                assert t_ref == t_mp
                assert np.array_equal(r_ref, r_mp)


def test_mp_peeling_dispatches_to_processes():
    snap = CSRGraph.from_multigraph(random_multigraph(4))
    plan = ShardPlan.from_snapshot(snap, 3)
    view = ShardedPeelingView(snap, plan, workers=2, mp=True)
    view.engine.min_gather_work = 0
    view.engine.min_scan_items = 0
    before = mp_pool_stats()["mp_dispatches"]
    _peel_all(view)
    after = mp_pool_stats()
    assert after["mp_dispatches"] > before  # real process round-trips
    assert after["mp_pools"] >= 1
    assert after["shm_segments"] >= 2  # alive + remaining state


def test_engine_shutdown_reclaims_pools_and_segments():
    snap = CSRGraph.from_multigraph(random_multigraph(9))
    view = ShardedPeelingView(snap, workers=2, mp=True)
    view.engine.min_gather_work = 0
    view.engine.min_scan_items = 0
    view.peel_leq(1)
    assert mp_pool_stats()["shm_segments"] >= 2
    assert _shm_files()

    engine_mod.shutdown()

    stats = mp_pool_stats()
    assert stats["mp_pools"] == 0
    assert stats["shm_segments"] == 0
    assert owned_segments() == []
    assert _shm_files() == []
