"""Shared pytest wiring: the golden ``--regen`` flag.

The ``slow`` marker is registered in pyproject.toml (the single source
of pytest configuration).  The quick development loop is
``pytest -m "not slow"`` (see Makefile's ``test-fast``); the full suite
— including the two multi-minute example sweeps — remains the tier-1
gate.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json from the current implementation "
        "instead of comparing against the frozen values",
    )


@pytest.fixture
def regen(request):
    """True when the run should rewrite the golden files."""
    return request.config.getoption("--regen")
