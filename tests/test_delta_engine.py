"""Delta-engine equivalence corpus (repro.service.delta).

The hard contract under test: after ``Session.apply_delta``, every
watched decomposition is **bit-identical** to recomputing the task
from scratch on the mutated graph — for every backend, worker count,
delta mode, and mutation mix.  The corpus drives ~200 seeded mutation
streams (insert-only / delete-only / mixed, plus dirty-fraction
threshold crossings that force the fallback path) and checks each
batch against a fresh session on a copy of the graph.

Alongside the corpus: unit equivalence of the repaired H-partition
waves, byte-equality of the patched CSR snapshot, the O(|delta|)
content digest vs a from-scratch rehash, the config knobs' validation
and JSON round-trip, and the watch/unwatch/current session surface.
"""

import numpy as np
import pytest

import repro
from repro import DecompositionConfig, GraphError, ValidationError
from repro.graph.csr import CSRGraph, snapshot_of
from repro.graph.generators import union_of_random_forests
from repro.parallel import segment_kth_largest
from repro.service.delta import (
    JOURNAL_CHAIN_SEED,
    chain_digest,
    ensure_delta_state,
    patched_snapshot,
)


# ----------------------------------------------------------------------
# Stream machinery
# ----------------------------------------------------------------------


def random_graph(rng, n, m):
    graph = repro.MultiGraph.with_vertices(n)
    for _ in range(m):
        u = rng.integers(0, n)
        v = rng.integers(0, n)
        if u != v:
            graph.add_edge(int(u), int(v))
    return graph


def random_batch(rng, graph, kind, size):
    """One (inserts, deletes) batch of the requested mix."""
    inserts, deletes = [], []
    if kind in ("insert", "mixed"):
        n = graph.n
        for _ in range(size):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v:
                inserts.append((u, v))
    if kind in ("delete", "mixed"):
        ids = graph.edge_ids()
        take = min(size, len(ids))
        if take:
            picks = rng.choice(len(ids), size=take, replace=False)
            deletes = [ids[int(i)] for i in picks]
    return inserts, deletes


WATCHES = (
    ("orientation", {"method": "hpartition"}),
    ("pseudoforest", {"method": "hpartition"}),
)


def assert_matches_scratch(session, cfg, watches=WATCHES):
    """Every watched result equals a from-scratch recompute on a copy
    of the mutated graph (fresh session: no oracle, no delta state)."""
    for task, kwargs in watches:
        maintained = session.current(task)
        fresh = repro.Session(session.graph.copy(), cfg).decompose(
            task, **kwargs
        )
        assert maintained.coloring == fresh.coloring, (
            f"{task}: maintained coloring diverged from scratch recompute"
        )
        for attr in ("bound", "k"):
            assert getattr(maintained, attr, None) == getattr(
                fresh, attr, None
            ), f"{task}: {attr} diverged"


def run_stream(seed, kind, cfg, batches=3, batch_size=4, n=40, m=90,
               watches=WATCHES):
    """One seeded mutation stream; returns the delta reports."""
    rng = np.random.default_rng(seed)
    graph = random_graph(rng, n, m)
    session = repro.Session(graph, cfg)
    for task, kwargs in watches:
        session.watch(task, **kwargs)
    reports = []
    for _ in range(batches):
        inserts, deletes = random_batch(rng, graph, kind, batch_size)
        reports.append(session.apply_delta(inserts, deletes))
        assert_matches_scratch(session, cfg, watches)
    return reports


# ----------------------------------------------------------------------
# The corpus: ~200 seeded streams
# ----------------------------------------------------------------------

# Fast tier: 3 mutation mixes x 2 substrates x 10 seeds = 60 streams.
@pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
@pytest.mark.parametrize("backend", ["dict", "csr"])
@pytest.mark.parametrize("seed", range(10))
def test_stream_corpus_fast(kind, backend, seed):
    cfg = DecompositionConfig(backend=backend, validation="basic")
    reports = run_stream(seed * 7 + 1, kind, cfg)
    assert [r.seq for r in reports] == [1, 2, 3]


# Engine tier: wave-engine substrates x workers {1, 2, 4} x 20 seeds
# = 120 streams (the sharded/parallel backends must see the same
# bytes as dict/csr for every worker count).
@pytest.mark.slow
@pytest.mark.parametrize("backend", ["sharded", "parallel"])
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("seed", range(20))
def test_stream_corpus_engine(backend, workers, seed):
    cfg = DecompositionConfig(
        backend=backend, workers=workers, validation="basic"
    )
    run_stream(seed * 13 + 3, "mixed", cfg, batches=2)


# Threshold tier: 20 streams with a tiny dirty-fraction budget and
# heavy batches, so repairs keep crossing into the fallback path.
@pytest.mark.parametrize("seed", range(20))
def test_stream_corpus_threshold_crossing(seed):
    cfg = DecompositionConfig(
        backend="csr", validation="basic", delta_threshold=0.02
    )
    reports = run_stream(
        seed * 31 + 5, "mixed", cfg, batches=3, batch_size=10
    )
    modes = {w.mode for r in reports for w in r.watches}
    # With a 2% budget on n=40 every real cascade must fall back;
    # the contract holds either way (assert_matches_scratch above).
    assert "full" in modes or all(
        r.dirty_vertices <= 0.02 * 40 for r in reports
    )


def test_corpus_exercises_both_paths():
    """Pin a stream that provably repairs incrementally and one that
    provably falls back, so a silent regression in either path cannot
    hide behind the corpus's randomness."""
    from repro.graph.generators import grid_graph

    cfg = DecompositionConfig(backend="csr", validation="basic")
    reports = run_stream(2, "mixed", cfg, batches=4, batch_size=2)
    assert any(
        w.mode == "incremental" for r in reports for w in r.watches
    )
    # A grid with pseudoarboricity pinned to 1 peels as a long wave
    # gradient: deleting an interior edge changes waves, and a zero
    # dirty budget turns any change into a forced fallback.
    grid = grid_graph(10, 10)
    cfg_tight = DecompositionConfig(
        backend="csr", validation="basic", delta_threshold=0.0
    )
    session = repro.Session(grid, cfg_tight)
    session.watch("orientation", method="hpartition", pseudoarboricity=1)
    # joining two degree-2 corners pushes both above the threshold, so
    # their wave values must change: the repair cannot stay at zero
    # dirty vertices, and the zero budget forces the fallback
    corners = [v for v in grid.vertices() if grid.degree(v) == 2]
    report = session.apply_delta(inserts=[(corners[0], corners[-1])])
    watch = report.watches[0]
    assert watch.mode == "full" and watch.reason == "refresher fell back"
    fresh = repro.Session(grid.copy(), cfg_tight).decompose(
        "orientation", method="hpartition", pseudoarboricity=1
    )
    assert session.current("orientation").coloring == fresh.coloring
    # the dropped oracle entry re-records, so the next batch repairs
    report = session.apply_delta(
        inserts=[(0, 1)], config=DecompositionConfig(
            backend="csr", validation="basic", delta_threshold=0.5
        )
    )
    assert report.watches[0].mode == "incremental"


@pytest.mark.parametrize("mode", ["auto", "incremental", "full"])
def test_delta_mode_never_changes_results(mode):
    cfg = DecompositionConfig(
        backend="csr", validation="basic", delta_mode=mode
    )
    reports = run_stream(17, "mixed", cfg, batches=3)
    if mode == "full":
        assert all(
            w.mode == "full" for r in reports for w in r.watches
        )


def test_watch_without_refresher_falls_back_full():
    cfg = DecompositionConfig(backend="csr", validation="basic")
    watches = (("forest", {}),) + WATCHES
    reports = run_stream(5, "mixed", cfg, batches=2, watches=watches)
    forest = [
        w for r in reports for w in r.watches if w.task == "forest"
    ]
    assert forest and all(w.mode == "full" for w in forest)
    assert all(w.reason == "no incremental refresher" for w in forest)


# ----------------------------------------------------------------------
# Wave repair and snapshot patching units
# ----------------------------------------------------------------------


def test_repaired_waves_equal_fresh_peel():
    """The oracle's repaired H-partition equals a fresh peel's classes
    exactly (uniqueness of the wave fixed point makes this a hard
    equality, not an approximation)."""
    from repro.decomposition.hpartition import h_partition

    rng = np.random.default_rng(3)
    graph = random_graph(rng, 50, 120)
    session = repro.Session(graph, DecompositionConfig(backend="csr"))
    session.watch("orientation", method="hpartition")
    state = ensure_delta_state(session)
    for _ in range(5):
        ins, dels = random_batch(rng, graph, "mixed", 4)
        session.apply_delta(ins, dels)
        for threshold, entry in state.oracle.entries.items():
            fresh = h_partition(graph.copy(), threshold)
            assert entry.classes == fresh.classes, (
                f"threshold {threshold}: repaired classes != fresh peel"
            )


def test_patched_snapshot_matches_full_rebuild():
    rng = np.random.default_rng(9)
    graph = random_graph(rng, 30, 70)
    old = CSRGraph.from_multigraph(graph)
    dels = []
    for eid in graph.edge_ids()[:5]:
        u, v = graph.endpoints(eid)
        dels.append((eid, u, v))
        graph.remove_edge(eid)
    ins = []
    for _ in range(6):
        u, v = int(rng.integers(0, 30)), int(rng.integers(0, 30))
        if u != v:
            ins.append((graph.add_edge(u, v), u, v))
    patched, kept = patched_snapshot(old, graph, ins, dels)
    full = CSRGraph.from_multigraph(graph)
    for attr in (
        "vertex_offsets", "neighbor_ids", "edge_ids", "edge_id",
        "edge_u", "edge_v", "edge_u_ids", "edge_v_ids", "vertex_ids",
    ):
        assert np.array_equal(
            getattr(patched, attr), getattr(full, attr)
        ), f"snapshot array {attr} diverged"
    assert kept is not None and kept.sum() == old.num_edges - len(dels)


def test_segment_kth_largest_matches_reference():
    rng = np.random.default_rng(21)
    lengths = rng.integers(0, 7, size=40)
    values = rng.integers(0, 100, size=int(lengths.sum()))
    for k in (0, 1, 2, 4):
        got = segment_kth_largest(values, lengths, k, fill=-1)
        pos = 0
        for i, length in enumerate(lengths):
            seg = sorted(values[pos:pos + length], reverse=True)
            pos += length
            expected = seg[k] if length > k else -1
            assert got[i] == expected


# ----------------------------------------------------------------------
# Content digest + journal chain
# ----------------------------------------------------------------------


def test_content_digest_incremental_equals_scratch():
    rng = np.random.default_rng(4)
    graph = random_graph(rng, 40, 80)
    session = repro.Session(graph, DecompositionConfig(backend="csr"))
    session.watch("orientation", method="hpartition")
    baseline = session.content_digest()
    assert baseline == repro.Session(graph.copy()).content_digest()
    for _ in range(4):
        ins, dels = random_batch(rng, graph, "mixed", 3)
        session.apply_delta(ins, dels)
        # maintained in O(|delta|) — equal to rehashing from scratch
        assert (
            session.content_digest()
            == repro.Session(graph.copy()).content_digest()
        )
    assert session.content_digest() != baseline


def test_content_digest_resyncs_after_out_of_band_mutation():
    graph = union_of_random_forests(30, 2, seed=1)
    session = repro.Session(graph)
    before = session.content_digest()
    graph.add_edge(0, 1)  # bypasses apply_delta entirely
    after = session.content_digest()
    assert after != before
    assert after == repro.Session(graph.copy()).content_digest()


def test_journal_chain_links_batches():
    graph = union_of_random_forests(20, 2, seed=2)
    session = repro.Session(graph)
    session.watch("orientation", method="hpartition")
    r1 = session.apply_delta(inserts=[(0, 5)])
    r2 = session.apply_delta(deletes=[r1.inserted[0]])
    expected = chain_digest(
        JOURNAL_CHAIN_SEED,
        {"seq": 1, "inserts": [[0, 5]], "deletes": []},
    )
    assert r1.chain == expected
    expected = chain_digest(
        expected,
        {"seq": 2, "inserts": [], "deletes": [r1.inserted[0]]},
    )
    assert r2.chain == expected


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------


def test_delta_knobs_validation():
    with pytest.raises(ValidationError):
        DecompositionConfig(delta_mode="sometimes")
    with pytest.raises(ValidationError):
        DecompositionConfig(delta_threshold=1.5)
    with pytest.raises(ValidationError):
        DecompositionConfig(delta_threshold=-0.1)
    with pytest.raises(ValidationError):
        DecompositionConfig(delta_threshold=True)


def test_delta_knobs_json_round_trip():
    cfg = DecompositionConfig(delta_mode="incremental", delta_threshold=0.4)
    payload = cfg.to_json()
    assert payload["delta_mode"] == "incremental"
    assert payload["delta_threshold"] == 0.4
    back = DecompositionConfig.from_json(payload)
    assert back.delta_mode == "incremental"
    assert back.delta_threshold == 0.4
    assert back == cfg


def test_per_call_config_overrides_session_default():
    cfg = DecompositionConfig(backend="csr", validation="basic")
    rng = np.random.default_rng(6)
    graph = random_graph(rng, 40, 90)
    session = repro.Session(graph, cfg)
    session.watch("orientation", method="hpartition")
    forced = DecompositionConfig(
        backend="csr", validation="basic", delta_mode="full"
    )
    report = session.apply_delta(inserts=[(0, 1)], config=forced)
    assert report.delta_mode == "full"
    assert all(w.mode == "full" for w in report.watches)
    assert_matches_scratch(session, cfg, (("orientation",
                                           {"method": "hpartition"}),))


# ----------------------------------------------------------------------
# Session surface: watch / unwatch / current / atomicity / reports
# ----------------------------------------------------------------------


def test_watch_unwatch_current():
    graph = union_of_random_forests(25, 2, seed=3)
    session = repro.Session(graph)
    with pytest.raises(ValidationError):
        session.current("orientation")
    result = session.watch("orientation", method="hpartition")
    assert session.current("orientation") is result
    assert session.watched() == ("orientation",)
    session.watch("pseudoforest", method="hpartition")
    assert session.watched() == ("orientation", "pseudoforest")
    session.unwatch("orientation")
    assert session.watched() == ("pseudoforest",)
    session.unwatch()
    assert session.watched() == ()


def test_bad_batch_is_atomic():
    graph = union_of_random_forests(20, 2, seed=4)
    session = repro.Session(graph)
    session.watch("orientation", method="hpartition")
    m_before = graph.m
    digest_before = session.content_digest()
    with pytest.raises(GraphError):
        session.apply_delta(inserts=[(0, 1)], deletes=[10 ** 9])
    with pytest.raises(GraphError):
        session.apply_delta(inserts=[(3, 3)])  # self-loop
    with pytest.raises(GraphError):
        session.apply_delta(inserts=[(0, 10 ** 6)])  # missing vertex
    eid = graph.edge_ids()[0]
    with pytest.raises(GraphError):
        session.apply_delta(deletes=[eid, eid])  # duplicate delete
    assert graph.m == m_before
    assert session.content_digest() == digest_before
    # the engine still works after rejected batches
    report = session.apply_delta(inserts=[(0, 1)])
    assert report.seq == 1


def test_delta_reports_accumulate_and_expose_shard_dirty():
    cfg = DecompositionConfig(backend="csr", validation="basic")
    rng = np.random.default_rng(8)
    graph = random_graph(rng, 60, 140)
    session = repro.Session(graph, cfg)
    session.watch("orientation", method="hpartition")
    for _ in range(3):
        ins, dels = random_batch(rng, graph, "mixed", 3)
        session.apply_delta(ins, dels)
    reports = session.delta_reports()
    assert [r.seq for r in reports] == [1, 2, 3]
    for report in reports:
        if report.shard_dirty:
            assert sum(report.shard_dirty) == report.dirty_vertices
        payload = report.to_json()
        assert payload["seq"] == report.seq
        assert payload["mode"] in ("incremental", "full")
    info = session.cache_info()
    assert info["delta"]["seq"] == 3
    assert info["delta"]["watches"] == 1


def test_oracle_reused_across_unrelated_queries():
    """A plain decompose between deltas rides the repaired oracle
    instead of re-peeling (the seam that makes full re-runs cheap)."""
    cfg = DecompositionConfig(backend="csr", validation="basic")
    graph = union_of_random_forests(40, 3, seed=9)
    session = repro.Session(graph, cfg)
    session.watch("orientation", method="hpartition")
    state = ensure_delta_state(session)
    hits_before = state.oracle.hits
    session.decompose("orientation", method="hpartition")
    assert state.oracle.hits > hits_before
