"""Tests for vertex-color-splitting (Theorem 4.9 / Proposition 4.8)."""

import pytest

from repro.errors import ConvergenceError, DecompositionError
from repro.graph.generators import (
    grid_graph,
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.core import (
    cluster_correlated_splitting,
    combine_colorings,
    independent_splitting,
)


def check_splitting_consistency(graph, palettes, split):
    """Q0 and Q1 partition-compatible: a color never serves an edge on
    both sides, and each induced palette only contains palette colors."""
    for eid, u, v in graph.edges():
        q0 = set(split.palettes_0[eid])
        q1 = set(split.palettes_1[eid])
        assert q0 <= set(palettes[eid])
        assert q1 <= set(palettes[eid])
        assert not (q0 & q1)
        for color in q0:
            assert split.side(u, color) == 0 and split.side(v, color) == 0
        for color in q1:
            assert split.side(u, color) == 1 and split.side(v, color) == 1


def test_cluster_splitting_basic():
    g = union_of_random_forests(40, 3, seed=1)
    palettes = uniform_palette(g, range(8))
    split = cluster_correlated_splitting(g, palettes, epsilon=0.5, seed=2)
    check_splitting_consistency(g, palettes, split)
    # Side 0 keeps the lion's share.
    assert split.k0 >= 4


def test_cluster_splitting_reserve_nonempty_on_average():
    g = grid_graph(6, 6)
    palettes = uniform_palette(g, range(30))
    total_reserve = 0
    for seed in range(5):
        split = cluster_correlated_splitting(g, palettes, epsilon=1.0, seed=seed)
        total_reserve += sum(len(p) for p in split.palettes_1.values())
    assert total_reserve > 0  # epsilon/10 of 30 colors over 5 seeds


def test_independent_splitting_enforces_floors():
    g = union_of_random_forests(30, 2, seed=3)
    palettes = uniform_palette(g, range(40))
    split = independent_splitting(
        g, palettes, epsilon=1.0, min_k0=15, min_k1=1,
        reserve_probability=0.3, seed=4,
    )
    check_splitting_consistency(g, palettes, split)
    assert split.k0 >= 15
    assert split.k1 >= 1


def test_independent_splitting_infeasible_floors():
    g = union_of_random_forests(20, 2, seed=5)
    palettes = uniform_palette(g, range(4))
    with pytest.raises(ConvergenceError):
        independent_splitting(
            g, palettes, epsilon=0.5, min_k0=4, min_k1=1, seed=6, max_rounds=20
        )


def test_independent_splitting_with_list_palettes():
    g = union_of_random_forests(25, 2, seed=7)
    palettes = random_palettes(g, 30, 60, seed=8)
    split = independent_splitting(
        g, palettes, epsilon=1.0, min_k0=10, min_k1=1,
        reserve_probability=0.3, seed=9,
    )
    check_splitting_consistency(g, palettes, split)


def test_combine_colorings():
    merged = combine_colorings({0: 1, 1: 2}, {2: 3})
    assert merged == {0: 1, 1: 2, 2: 3}


def test_combine_colorings_overlap_rejected():
    with pytest.raises(DecompositionError):
        combine_colorings({0: 1}, {0: 2})


def test_proposition_48_overlay_is_forest():
    """End-to-end Proposition 4.8: color E0 from Q0 and E1 from Q1 with
    a hand-built vertex-color-splitting (colors 0-4 on side 1, 5-14 on
    side 0 at every vertex) and check the overlay is a valid LFD."""
    import random

    from repro.core import PartialListForestDecomposition
    from repro.core.augmenting import augment_edge
    from repro.verify import check_forest_decomposition, check_palettes_respected

    g = union_of_random_forests(30, 2, seed=10)
    palettes = uniform_palette(g, range(15))
    q0 = {eid: list(range(5, 15)) for eid in g.edge_ids()}
    q1 = {eid: list(range(5)) for eid in g.edge_ids()}

    edges = g.edge_ids()
    rng = random.Random(12)
    rng.shuffle(edges)
    half = len(edges) // 2
    e0, e1 = edges[:half], edges[half:]

    sub0 = g.edge_subgraph(e0)
    state0 = PartialListForestDecomposition(sub0, {eid: q0[eid] for eid in e0})
    for eid in e0:
        augment_edge(state0, eid)

    sub1 = g.edge_subgraph(e1)
    state1 = PartialListForestDecomposition(sub1, {eid: q1[eid] for eid in e1})
    for eid in e1:
        augment_edge(state1, eid)

    combined = combine_colorings(state0.colored_edges(), state1.colored_edges())
    check_forest_decomposition(g, combined)
    check_palettes_respected(combined, palettes)
