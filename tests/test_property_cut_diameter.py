"""Property tests: CUT goodness and diameter reduction invariants.

The depth-residue CUT must be good *deterministically* (Theorem 4.2(2)
holds with probability one for disconnection; only the load bound is
probabilistic), and depth_cut must respect its diameter target on any
forest decomposition — these are the load-bearing safety properties of
Algorithm 2, so they get adversarially random inputs.
"""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CutController,
    PartialListForestDecomposition,
    depth_cut,
    is_cut_good,
)
from repro.core.augmenting import augment_edge
from repro.graph import MultiGraph, neighborhood
from repro.graph.generators import uniform_palette, union_of_random_forests
from repro.nashwilliams import exact_forest_decomposition
from repro.verify import (
    check_forest_decomposition,
    forest_diameter_of_coloring,
)


def build_colored_state(seed):
    rng = random.Random(seed)
    n = rng.randint(10, 40)
    k = rng.randint(1, 3)
    graph = union_of_random_forests(n, k, seed=seed)
    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(k + 1))
    )
    order = graph.edge_ids()
    rng.shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    return rng, graph, state, k


@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(0, 1_000_000))
def test_depth_residue_cut_always_good(seed):
    rng, graph, state, k = build_colored_state(seed)
    controller = CutController(
        state, epsilon=1.0, alpha=k, rule="depth_residue", seed=seed
    )
    for _ in range(rng.randint(1, 4)):
        center = rng.randrange(graph.n)
        core_radius = rng.randint(0, 2)
        radius = rng.randint(2, 8)
        core = neighborhood(graph, [center], core_radius)
        removed = controller.cut(core, radius)
        # Goodness holds deterministically for depth-residue.
        assert is_cut_good(state, core, radius)
        # Removals come only from the permitted ring.
        for eid in removed:
            u, v = graph.endpoints(eid)
            assert not (u in core and v in core)
    state.assert_valid()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1_000_000), st.integers(2, 12))
def test_depth_cut_diameter_contract(seed, z):
    rng = random.Random(seed)
    n = rng.randint(8, 40)
    k = rng.randint(1, 3)
    graph = union_of_random_forests(n, k, seed=seed)
    coloring = exact_forest_decomposition(graph)
    result = depth_cut(graph, coloring, z, seed=seed)
    # Contract 1: the kept coloring is a valid partial FD.
    check_forest_decomposition(graph, result.kept, partial=True)
    # Contract 2: diameter within the advertised target.
    assert (
        forest_diameter_of_coloring(graph, result.kept)
        <= result.target_diameter
    )
    # Contract 3: kept + deleted partition the edges.
    assert len(result.kept) + len(result.deleted) == graph.m
    # Contract 4: every deletion is charged to one of its endpoints.
    for eid in result.deleted:
        assert result.deletion_tail[eid] in graph.endpoints(eid)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1_000_000))
def test_cut_then_recolor_roundtrip(seed):
    """After CUT removes edges, the leftover can always be recolored
    with fresh colors and merged into a valid full decomposition."""
    rng, graph, state, k = build_colored_state(seed)
    controller = CutController(
        state, epsilon=1.0, alpha=k, rule="depth_residue", seed=seed
    )
    center = rng.randrange(graph.n)
    core = neighborhood(graph, [center], 1)
    controller.cut(core, radius=4)

    coloring = dict(state.colored_edges())
    leftover = state.leftover_edges()
    if leftover:
        sub = graph.edge_subgraph(leftover)
        extra = exact_forest_decomposition(sub)
        base = k + 2  # fresh color namespace
        for eid, c in extra.items():
            coloring[eid] = base + c
    check_forest_decomposition(graph, coloring)
