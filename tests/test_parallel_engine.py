"""The shared parallel wave engine (repro.parallel).

Covers the engine's own contract — kernel/reconcile determinism across
workers x shard counts, plan validation (torn plans rejected), pool
lifecycle (single REPRO_SHARD_WORKERS read, explicit shutdown, stats
surfaced through Session.cache_info) — plus the engine-backed BFS
paths: parallel_bfs_distance_array vs. the serial csr sweep, traversal
entry points under backend="parallel", and the registry-level
"parallel" backend.
"""

import numpy as np
import pytest

import repro
from repro.core import DecompositionConfig, Session
from repro.errors import GraphError
from repro.graph import MultiGraph
from repro.graph.csr import bfs_distance_array, snapshot_of
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    diameter_of_component,
    weak_diameter,
)
from repro.parallel import (
    ShardPlan,
    WaveEngine,
    engine_for,
    engine_for_offsets,
    parallel_bfs_distance_array,
    plan_of,
    pool_stats,
    resolve_workers,
    shutdown,
)
from repro.parallel import engine as engine_module

from test_kernel_equivalence import random_multigraph

WORKER_COUNTS = (1, 2, 4)
SHARD_COUNTS = (1, 3, 7)


def _eager_engine(plan, workers):
    """An engine whose gates are fully open, so even tiny test waves
    exercise the pool dispatch path."""
    return WaveEngine(plan, workers, min_gather_work=0, min_scan_items=0)


# ----------------------------------------------------------------------
# Engine-level determinism (generic kernel + reconcile)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 60, 7))
def test_engine_gather_deterministic_across_workers_and_shards(seed):
    """gather/wave results are byte-identical for every worker count
    and shard granularity: the per-shard kernel reads frozen state,
    groups concatenate in plan order."""
    graph = random_multigraph(seed)
    snap = snapshot_of(graph)
    offsets = snap.vertex_offsets
    neighbors = snap.neighbor_ids
    work = np.arange(snap.num_vertices, dtype=np.int64)

    def kernel(part):
        half_start = offsets[part]
        half_stop = offsets[part + 1]
        out = []
        for lo, hi in zip(half_start.tolist(), half_stop.tolist()):
            out.extend(neighbors[lo:hi].tolist())
        return np.asarray(out, dtype=np.int64)

    reference = kernel(work)
    for workers in WORKER_COUNTS:
        for num_shards in SHARD_COUNTS:
            engine = _eager_engine(plan_of(snap, num_shards), workers)
            result = engine.gather(kernel, work, cost=int(reference.size))
            assert result.tolist() == reference.tolist()
            # wave() = gather + one reconcile call on the concatenation
            total = engine.wave(
                work, kernel, lambda arr: int(arr.sum()),
                cost=int(reference.size),
            )
            assert total == int(reference.sum())


@pytest.mark.parametrize("seed", range(1, 40, 9))
def test_engine_scan_and_tuple_gather(seed):
    graph = random_multigraph(seed)
    snap = snapshot_of(graph)
    degrees = snap.degrees()
    work = np.arange(snap.num_vertices, dtype=np.int64)

    def scan(lo, hi):
        local = np.flatnonzero(degrees[lo:hi] % 2 == 0)
        if local.size and lo:
            local += lo
        return local

    def pair_kernel(part):
        return part, degrees[part]

    reference_scan = scan(0, snap.num_vertices)
    ref_idx, ref_deg = pair_kernel(work)
    for workers in WORKER_COUNTS:
        for num_shards in SHARD_COUNTS:
            engine = _eager_engine(plan_of(snap, num_shards), workers)
            assert engine.scan_shards(scan).tolist() == reference_scan.tolist()
            idx, deg = engine.gather(pair_kernel, work, cost=int(work.size))
            assert idx.tolist() == ref_idx.tolist()
            assert deg.tolist() == ref_deg.tolist()


def test_engine_map_ranges_covers_every_index():
    plan = ShardPlan(np.array([0, 5, 11], dtype=np.int64))
    for workers in WORKER_COUNTS:
        engine = WaveEngine(plan, workers)
        chunks = engine.map_ranges(lambda lo, hi: list(range(lo, hi)), 11)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(11))
    assert WaveEngine(plan, 2).map_ranges(lambda lo, hi: (lo, hi), 0) == []


def test_engine_torn_plan_rejected():
    """A plan built from a different snapshot must be refused up front
    (mirrors the PR-4 ShardedPeelingView plan-mismatch check)."""
    small = snapshot_of(MultiGraph.with_vertices(3))
    large = snapshot_of(MultiGraph.with_vertices(9))
    with pytest.raises(GraphError):
        engine_for(large, plan=plan_of(small))
    with pytest.raises(GraphError):
        engine_for(small, plan=plan_of(large))
    # A matching explicit plan is fine.
    engine = engine_for(large, workers=2, plan=plan_of(large, 3))
    assert engine.num_shards == 3


def test_shard_plan_from_offsets_matches_snapshot_plan():
    graph = random_multigraph(12)
    snap = snapshot_of(graph)
    by_snapshot = ShardPlan.from_snapshot(snap, 4)
    by_offsets = ShardPlan.from_offsets(snap.vertex_offsets, 4)
    assert by_offsets.boundaries.tolist() == by_snapshot.boundaries.tolist()
    assert by_offsets.num_items == snap.num_vertices


# ----------------------------------------------------------------------
# Pool ownership: single env read, shutdown, stats
# ----------------------------------------------------------------------


@pytest.fixture
def fresh_env_workers():
    """Reset the cached REPRO_SHARD_WORKERS read around a test."""
    saved = (engine_module._ENV_WORKERS, engine_module._ENV_WORKERS_READ)
    engine_module._ENV_WORKERS = None
    engine_module._ENV_WORKERS_READ = False
    yield
    engine_module._ENV_WORKERS, engine_module._ENV_WORKERS_READ = saved


def test_resolve_workers_reads_env_once(monkeypatch, fresh_env_workers):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
    assert resolve_workers(0) == 3
    # The environment is consulted exactly once per process: a later
    # change must not alter the resolution (PR 4 re-read it per call).
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "7")
    assert resolve_workers(0) == 3
    # Explicit worker counts bypass the env entirely.
    assert resolve_workers(5) == 5
    with pytest.raises(GraphError):
        resolve_workers(-1)


def test_pool_shutdown_and_stats():
    shutdown()
    assert pool_stats()["pools"] == 0
    plan = ShardPlan(np.array([0, 4, 8], dtype=np.int64))
    engine = _eager_engine(plan, 2)
    work = np.arange(8, dtype=np.int64)
    before = pool_stats()["dispatches"]
    result = engine.gather(lambda part: part * 2, work, cost=8)
    assert result.tolist() == (work * 2).tolist()
    stats = pool_stats()
    assert stats["pools"] == 1
    assert stats["workers"] == 2
    assert stats["dispatches"] == before + 1
    assert engine.dispatches == 1
    shutdown()
    assert pool_stats()["pools"] == 0
    # Pools recreate lazily after shutdown.
    again = engine.gather(lambda part: part + 1, work, cost=8)
    assert again.tolist() == (work + 1).tolist()
    shutdown()


def test_session_cache_info_surfaces_pool_stats():
    graph = MultiGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    info = Session(graph).cache_info()
    pools = info["worker_pools"]
    assert set(pools) == {
        "pools", "workers", "dispatches",
        "mp_pools", "mp_workers", "mp_dispatches", "shm_segments",
    }
    assert all(isinstance(value, int) for value in pools.values())


def test_session_wave_engine_uses_cached_plan():
    graph = MultiGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    session = Session(graph, DecompositionConfig(workers=2))
    engine = session.wave_engine()
    assert engine.workers == 2
    assert engine.plan is session.shard_plan()
    assert session.wave_engine(workers=3).workers == 3


# ----------------------------------------------------------------------
# Engine-backed BFS == serial csr sweep
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 80, 5))
def test_parallel_bfs_matches_serial(seed):
    graph = random_multigraph(seed)
    snap = snapshot_of(graph)
    offsets, nbr, n = snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices
    seed_sets = [[0], [n - 1], list(range(0, n, max(1, n // 3)))]
    for seeds in seed_sets:
        for radius in (None, 0, 1, 3):
            reference = bfs_distance_array(offsets, nbr, n, seeds, radius)
            assert parallel_bfs_distance_array(
                offsets, nbr, n, seeds, radius
            ).tolist() == reference.tolist()
            for workers in WORKER_COUNTS:
                for num_shards in SHARD_COUNTS:
                    engine = _eager_engine(plan_of(snap, num_shards), workers)
                    dist = parallel_bfs_distance_array(
                        offsets, nbr, n, seeds, radius, engine
                    )
                    assert dist.tolist() == reference.tolist()


def test_parallel_bfs_rejects_bad_seeds():
    graph = MultiGraph.from_edges(4, [(0, 1), (2, 3)])
    snap = snapshot_of(graph)
    for bad in ([-1], [4], [0, 99]):
        with pytest.raises(GraphError):
            parallel_bfs_distance_array(
                snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices, bad
            )


def test_parallel_bfs_on_color_class_sub_csr():
    """The color-class shape: a sub-CSR extracted via Session.sub_csr
    sweeps identically on the serial and engine paths."""
    graph = random_multigraph(17)
    session = Session(graph)
    eids = graph.edge_ids()[:: 2]
    if not eids:
        pytest.skip("corpus instance has no edges")
    offsets, nbr, _eids = session.sub_csr(eids)
    n = graph.n
    reference = bfs_distance_array(offsets, nbr, n, [0])
    for workers in WORKER_COUNTS:
        engine = engine_for_offsets(offsets, workers)
        engine.min_gather_work = 0
        assert parallel_bfs_distance_array(
            offsets, nbr, n, [0], engine=engine
        ).tolist() == reference.tolist()


# ----------------------------------------------------------------------
# Traversal entry points under the parallel backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(2, 60, 7))
def test_traversal_parallel_backend_matches_csr(seed, monkeypatch):
    # Below the size cutoff backend="parallel" resolves to csr; force
    # the engine path so these corpus graphs actually exercise it.
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    graph = random_multigraph(seed)
    vertices = graph.vertices()
    sources = vertices[:2]
    # The forced env also reroutes csr-resolved calls, so compare the
    # engine path against the dict reference (the stronger check).
    assert bfs_distances(graph, sources, backend="parallel") == \
        bfs_distances(graph, sources, backend="dict")
    components = connected_components(graph, backend="dict")
    for comp in components[:3]:
        assert diameter_of_component(graph, comp, backend="parallel") == \
            diameter_of_component(graph, comp, backend="dict")
        assert weak_diameter(graph, comp, backend="parallel") == \
            weak_diameter(graph, comp, backend="dict")


def test_force_env_flags(monkeypatch):
    """REPRO_FORCE_SHARDED alone still forces the peel (but not the
    BFS paths); REPRO_FORCE_PARALLEL supersedes it and forces both."""
    from repro.graph.csr import force_parallel_traversal, force_sharded_peeling

    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_FORCE_MP", raising=False)
    monkeypatch.delenv("REPRO_FORCE_SHARDED", raising=False)
    assert not force_sharded_peeling()
    assert not force_parallel_traversal()
    monkeypatch.setenv("REPRO_FORCE_SHARDED", "1")
    assert force_sharded_peeling()
    assert not force_parallel_traversal()
    monkeypatch.delenv("REPRO_FORCE_SHARDED")
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    assert force_sharded_peeling()
    assert force_parallel_traversal()


def test_force_sharded_alone_reroutes_peel(monkeypatch):
    """The legacy forced-sharded env (no REPRO_FORCE_PARALLEL) must
    keep routing csr peels through the sharded view — CI's forced leg
    moved to the stronger flag, so this pins the standalone one."""
    import repro.graph.shard as shard_module
    from repro.decomposition.hpartition import h_partition

    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_FORCE_MP", raising=False)
    monkeypatch.setenv("REPRO_FORCE_SHARDED", "1")
    builds = []
    original_init = shard_module.ShardedPeelingView.__init__

    def recording_init(self, *args, **kwargs):
        builds.append(1)
        return original_init(self, *args, **kwargs)

    monkeypatch.setattr(
        shard_module.ShardedPeelingView, "__init__", recording_init
    )
    graph = MultiGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    reference = h_partition(graph, 2, backend="dict")
    forced = h_partition(graph, 2, backend="csr")
    assert forced.classes == reference.classes
    assert builds, "REPRO_FORCE_SHARDED=1 did not reroute the csr peel"


def test_parallel_backend_registry_resolution():
    from repro.core.registry import get_backend
    from repro.graph.csr import SHARDED_AUTO_CUTOFF

    spec = get_backend("parallel")

    class _FakeBig:
        n = SHARDED_AUTO_CUTOFF

    class _FakeSmall:
        n = 10

    assert spec.substrate_for(_FakeBig()) == "parallel"
    assert spec.substrate_for(_FakeSmall()) == "csr"


def test_parallel_backend_registered():
    assert "parallel" in repro.available_backends()
    graph = MultiGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    reference = repro.decompose(
        graph, task="forest", config=DecompositionConfig(seed=7, backend="csr")
    )
    parallel = repro.decompose(
        graph, task="forest",
        config=DecompositionConfig(seed=7, backend="parallel", workers=2),
    )
    assert parallel.coloring == reference.coloring


# ----------------------------------------------------------------------
# resolve_claims (the simultaneous carve's reconcile helper)
# ----------------------------------------------------------------------


def test_resolve_claims_min_per_target():
    from repro.parallel import resolve_claims

    targets = np.array([5, 1, 5, 2, 1, 5], dtype=np.int64)
    priorities = np.array([7, 3, 2, 9, 4, 11], dtype=np.int64)
    won_targets, won_priorities = resolve_claims(targets, priorities, 16)
    assert won_targets.tolist() == [1, 2, 5]
    assert won_priorities.tolist() == [3, 9, 2]
    # Input order is irrelevant (shard concatenation order must not
    # matter).
    perm = np.array([3, 0, 5, 2, 4, 1])
    again = resolve_claims(targets[perm], priorities[perm], 16)
    assert again[0].tolist() == [1, 2, 5]
    assert again[1].tolist() == [3, 9, 2]


def test_resolve_claims_empty():
    from repro.parallel import resolve_claims

    empty = np.empty(0, dtype=np.int64)
    won_targets, won_priorities = resolve_claims(empty, empty, 10)
    assert won_targets.size == 0 and won_priorities.size == 0


@pytest.mark.parametrize("seed", range(6))
def test_resolve_claims_packed_matches_lexsort(seed):
    """The packed-key fast path and the lexsort fallback (forced by an
    overflowing limit) agree on random claim sets."""
    from repro.parallel import resolve_claims

    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 200))
    limit = int(rng.integers(2, 50))
    targets = rng.integers(0, 40, size=size).astype(np.int64)
    priorities = rng.integers(0, limit, size=size).astype(np.int64)
    packed = resolve_claims(targets, priorities, limit)
    fallback = resolve_claims(targets, priorities, 1 << 62)
    assert packed[0].tolist() == fallback[0].tolist()
    assert packed[1].tolist() == fallback[1].tolist()
    # Reference: python min per target.
    best = {}
    for t, p in zip(targets.tolist(), priorities.tolist()):
        best[t] = min(best.get(t, p), p)
    assert dict(zip(packed[0].tolist(), packed[1].tolist())) == best


# ----------------------------------------------------------------------
# Simultaneous carve: engine path == serial path, every fan-out shape
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(0, 60, 7))
def test_simultaneous_carve_engine_matches_serial(seed):
    from repro.decomposition.network_decomposition import (
        _decompose_simultaneous_csr,
    )

    graph = random_multigraph(seed)
    snap = snapshot_of(graph)
    n = snap.num_vertices
    serial = _decompose_simultaneous_csr(snap, n, None)
    for workers in WORKER_COUNTS:
        for num_shards in SHARD_COUNTS:
            engine = _eager_engine(plan_of(snap, num_shards), workers)
            assert _decompose_simultaneous_csr(snap, n, engine) == serial


# ----------------------------------------------------------------------
# Pool lifecycle regressions
# ----------------------------------------------------------------------


def test_pool_stats_independent_of_executor_internals():
    """pool_stats derives worker totals from the registry keys, so an
    executor implementation change (it used to read the private
    ``_max_workers`` attribute) cannot break it."""
    shutdown()
    plan = ShardPlan(np.array([0, 4, 8], dtype=np.int64))
    engine = _eager_engine(plan, 3)
    engine.gather(lambda part: part * 3, np.arange(8, dtype=np.int64), cost=8)
    pool = engine_module._POOLS[3]
    saved = pool.__dict__.pop("_max_workers")
    try:
        stats = pool_stats()
        assert stats["pools"] == 1
        assert stats["workers"] == 3
    finally:
        pool.__dict__["_max_workers"] = saved
        shutdown()


def test_engine_falls_back_inline_when_pool_shut_down():
    """shutdown() racing a wave (atexit, test teardown, an embedding
    application) must not crash the wave: a dead executor means the
    wave runs inline with identical results, and the dead pool is
    evicted so the next wave gets a fresh one."""
    shutdown()
    plan = ShardPlan(np.array([0, 4, 8], dtype=np.int64))
    engine = _eager_engine(plan, 2)
    work = np.arange(8, dtype=np.int64)

    def dead_pool():
        # Prime the registry, then shut the executor down *without*
        # removing it — exactly the state the race leaves behind.
        pool = engine_module._pool_for(2)
        pool.shutdown(wait=True)
        return pool

    dead = dead_pool()
    result = engine.gather(lambda part: part * 2, work, cost=8)
    assert result.tolist() == (work * 2).tolist()
    assert engine_module._POOLS.get(2) is not dead

    dead = dead_pool()
    scanned = engine.scan_shards(
        lambda lo, hi: np.arange(lo, hi, dtype=np.int64)
    )
    assert scanned.tolist() == list(range(8))
    assert engine_module._POOLS.get(2) is not dead

    dead = dead_pool()
    ranges = engine.map_ranges(lambda lo, hi: hi - lo, 8, cost=8)
    assert sum(ranges) == 8
    assert engine_module._POOLS.get(2) is not dead

    # A live pool is back in service afterwards.
    before = pool_stats()["dispatches"]
    engine.gather(lambda part: part + 1, work, cost=8)
    assert pool_stats()["dispatches"] == before + 1
    shutdown()
