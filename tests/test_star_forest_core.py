"""Tests for Section 5: AMR-style star-forest decompositions."""

import math

import pytest

from repro.errors import ConvergenceError, GraphError
from repro.graph import MultiGraph
from repro.graph.generators import (
    add_parallel_copies,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.core import (
    list_star_forest_decomposition_amr,
    star_forest_decomposition_amr,
    two_coloring_star_forests,
)
from repro.nashwilliams import exact_arboricity, exact_forest_decomposition
from repro.verify import (
    check_palettes_respected,
    check_star_forest_decomposition,
    count_colors,
)


def test_sfd_forest_union():
    g = union_of_random_forests(40, 4, seed=1, simple=True)
    result = star_forest_decomposition_amr(g, epsilon=0.5, alpha=4, seed=2)
    check_star_forest_decomposition(g, result.coloring)
    assert result.colors_used >= 4  # at least alpha colors needed


def test_sfd_grid():
    g = grid_graph(6, 6)
    alpha = exact_arboricity(g)
    result = star_forest_decomposition_amr(g, epsilon=0.5, alpha=alpha, seed=3)
    check_star_forest_decomposition(g, result.coloring)


def test_sfd_rejects_multigraph():
    g = add_parallel_copies(path_graph(4), 2)
    with pytest.raises(GraphError):
        star_forest_decomposition_amr(g, 0.5, alpha=2)


def test_sfd_empty():
    g = MultiGraph.with_vertices(3)
    result = star_forest_decomposition_amr(g, 0.5)
    assert result.coloring == {}
    assert result.colors_used == 0


def test_sfd_stats_populated():
    g = union_of_random_forests(30, 3, seed=4, simple=True)
    result = star_forest_decomposition_amr(g, epsilon=0.5, alpha=3, seed=5)
    assert result.stats.orientation_bound == math.ceil(1.5 * 3)
    assert result.stats.matching_deficits  # one entry per vertex
    assert result.stats.leftover_size >= 0


def test_sfd_excess_shrinks_with_alpha():
    """Excess colors over alpha should shrink *relatively* as alpha grows
    (the O(sqrt(log D) + log a) excess of Theorem 5.4)."""
    ratios = []
    for alpha in (3, 8):
        g = union_of_random_forests(60, alpha, seed=alpha, simple=True)
        a = exact_arboricity(g)
        result = star_forest_decomposition_amr(g, epsilon=0.4, alpha=a, seed=6)
        check_star_forest_decomposition(g, result.coloring)
        ratios.append(result.colors_used / a)
    assert ratios[1] <= ratios[0] + 0.75  # no blow-up as alpha grows


def test_lsfd_valid_and_palette_respecting():
    g = union_of_random_forests(40, 4, seed=7, simple=True)
    t = math.ceil(1.5 * 4)
    palettes = random_palettes(g, 6 * t, 12 * t, seed=8)
    result = list_star_forest_decomposition_amr(
        g, palettes, epsilon=0.5, alpha=4, seed=9
    )
    check_star_forest_decomposition(g, result.coloring)
    check_palettes_respected(result.coloring, palettes)
    # No leftover in the list variant: everything colored from palettes.
    assert set(result.coloring) == set(g.edge_ids())


def test_lsfd_infeasible_regime_raises():
    """epsilon * alpha << 1 makes per-edge availability ~0: the LLL
    cannot converge and the implementation must say so loudly."""
    g = union_of_random_forests(30, 3, seed=10, simple=True)
    palettes = uniform_palette(g, range(12))
    with pytest.raises(ConvergenceError):
        list_star_forest_decomposition_amr(
            g, palettes, epsilon=0.01, alpha=3, seed=11, max_lll_rounds=5
        )


def test_lsfd_empty():
    g = MultiGraph.with_vertices(2)
    result = list_star_forest_decomposition_amr(g, {}, 0.5)
    assert result.coloring == {}


def test_two_coloring_baseline():
    """alphastar <= 2 alpha via depth-parity splitting of an exact FD."""
    g = union_of_random_forests(50, 3, seed=12, simple=True)
    fd = exact_forest_decomposition(g)
    alpha = exact_arboricity(g)
    coloring = two_coloring_star_forests(g, fd)
    count = check_star_forest_decomposition(g, coloring, max_colors=2 * alpha)
    assert count <= 2 * alpha


def test_two_coloring_baseline_on_multigraph():
    g = add_parallel_copies(path_graph(20), 3)
    fd = exact_forest_decomposition(g)
    coloring = two_coloring_star_forests(g, fd)
    check_star_forest_decomposition(g, coloring, max_colors=2 * 3)


def test_sfd_rounds_charged():
    g = union_of_random_forests(25, 3, seed=13, simple=True)
    rc = RoundCounter()
    star_forest_decomposition_amr(g, 0.5, alpha=3, seed=14, rounds=rc)
    assert rc.total > 0
    assert any("t-orientation" in key or "(top)" in key for key in rc.by_phase())


def test_sfd_er_graph():
    g = erdos_renyi(40, 0.15, seed=15)
    alpha = exact_arboricity(g)
    if alpha >= 1:
        result = star_forest_decomposition_amr(g, 0.5, alpha=alpha, seed=16)
        check_star_forest_decomposition(g, result.coloring)
