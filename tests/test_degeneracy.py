"""Tests for degeneracy orderings and the Theorem 2.2 2d-LSFD."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PaletteError
from repro.graph import MultiGraph
from repro.graph.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    path_graph,
    random_palettes,
    star_graph,
    uniform_palette,
    union_of_random_forests,
    wheel_graph,
)
from repro.decomposition.degeneracy import (
    degeneracy_ordering,
    degeneracy_orientation,
    theorem22_lsfd,
)
from repro.nashwilliams import exact_arboricity
from repro.verify import (
    check_orientation,
    check_palettes_respected,
    check_star_forest_decomposition,
)


def test_degeneracy_known_values():
    assert degeneracy_ordering(path_graph(5))[0] == 1
    assert degeneracy_ordering(star_graph(8))[0] == 1
    assert degeneracy_ordering(cycle_graph(6))[0] == 2
    assert degeneracy_ordering(complete_graph(5))[0] == 4
    assert degeneracy_ordering(wheel_graph(8))[0] == 3
    assert degeneracy_ordering(caterpillar(5, 3))[0] == 1


def test_degeneracy_empty():
    g = MultiGraph.with_vertices(3)
    d, order = degeneracy_ordering(g)
    assert d == 0
    assert sorted(order) == [0, 1, 2]


def test_degeneracy_multigraph():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
    assert degeneracy_ordering(g)[0] == 3


def test_degeneracy_orientation_witness():
    g = wheel_graph(10)
    d, orientation = degeneracy_orientation(g)
    check_orientation(g, orientation, d, require_acyclic=True)


def test_degeneracy_at_most_2alpha_minus_1():
    for seed in range(5):
        g = union_of_random_forests(20, 3, seed=seed)
        alpha = exact_arboricity(g)
        d, _ = degeneracy_ordering(g)
        assert d <= 2 * alpha - 1


def test_theorem22_lsfd_uniform():
    g = wheel_graph(12)
    d, _ = degeneracy_orientation(g)
    palettes = uniform_palette(g, range(2 * d))
    coloring = theorem22_lsfd(g, palettes)
    check_star_forest_decomposition(g, coloring, max_colors=2 * d)
    check_palettes_respected(coloring, palettes)


def test_theorem22_lsfd_random_lists():
    g = union_of_random_forests(25, 3, seed=2)
    d, _ = degeneracy_orientation(g)
    palettes = random_palettes(g, 2 * d, 5 * d, seed=3)
    coloring = theorem22_lsfd(g, palettes)
    check_star_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)


def test_theorem22_insufficient_palette():
    g = complete_graph(6)
    palettes = uniform_palette(g, range(2))
    with pytest.raises(PaletteError):
        theorem22_lsfd(g, palettes)


def test_theorem22_corollary12_bound():
    """alphaliststar <= 4 alpha - 2 (Corollary 1.2 via Theorem 2.2)."""
    for seed in range(4):
        g = union_of_random_forests(18, 2, seed=seed + 10)
        alpha = exact_arboricity(g)
        size = 4 * alpha - 2
        palettes = random_palettes(g, size, 3 * size, seed=seed)
        coloring = theorem22_lsfd(g, palettes)
        check_star_forest_decomposition(g, coloring)
        check_palettes_respected(coloring, palettes)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_property_theorem22(seed):
    """2d palettes always suffice on random multigraphs."""
    rng = random.Random(seed)
    n = rng.randint(2, 10)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(0, 16)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    d, orientation = degeneracy_orientation(g)
    if g.m == 0:
        return
    palettes = {
        eid: sorted(rng.sample(range(4 * d), 2 * d)) for eid in g.edge_ids()
    }
    coloring = theorem22_lsfd(g, palettes, orientation)
    check_star_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)
