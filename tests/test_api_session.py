"""Tests for the unified decomposition API: DecompositionConfig,
the task/backend registry, Session caching, the result protocol, and
the legacy shims' equivalence to the registry path."""

import io
import json

import pytest

import repro
from repro import (
    DecompositionConfig,
    RegistryError,
    Session,
    ValidationError,
    decompose,
)
from repro.core import registry
from repro.core.registry import BackendSpec, TaskSpec
from repro.core.results import (
    DecompositionResult,
    OrientationResult,
    PseudoforestResult,
)
from repro.graph.generators import (
    skewed_palettes,
    union_of_random_forests,
)
from repro.graph.io import read_result_json, write_result_json


def small_graph(simple=False):
    return union_of_random_forests(40, 3, seed=7, simple=simple)


# ----------------------------------------------------------------------
# DecompositionConfig
# ----------------------------------------------------------------------


def test_config_roundtrip():
    config = DecompositionConfig(
        epsilon=0.5, alpha=3, seed=11, backend="csr",
        diameter_mode="auto", cut_rule="conditioned_sampling",
        validation="basic", options={"method": "hpartition"},
    )
    payload = config.to_json()
    json.dumps(payload)  # actually JSON-serializable
    assert DecompositionConfig.from_json(payload) == config


def test_config_roundtrip_defaults():
    config = DecompositionConfig()
    assert DecompositionConfig.from_json(config.to_json()) == config


def test_config_from_json_rejects_unknown_fields():
    with pytest.raises(ValidationError, match="unknown"):
        DecompositionConfig.from_json({"epsilon": 0.5, "bogus": 1})


def test_config_carve_rule_roundtrip():
    config = DecompositionConfig(carve_rule="simultaneous")
    assert DecompositionConfig.from_json(config.to_json()) == config
    assert config.to_json()["carve_rule"] == "simultaneous"


def test_config_rejects_bad_values():
    with pytest.raises(ValidationError):
        DecompositionConfig(validation="loud")
    with pytest.raises(ValidationError):
        DecompositionConfig(carve_rule="doubing")
    with pytest.raises(ValidationError):
        DecompositionConfig(diameter_mode="sideways")
    with pytest.raises(ValidationError):
        DecompositionConfig(epsilon=-1.0)
    with pytest.raises(ValidationError):
        DecompositionConfig(workers=-1)
    with pytest.raises(ValidationError):
        DecompositionConfig(workers=2.5)


def test_config_workers_roundtrip():
    config = DecompositionConfig(backend="sharded", workers=4)
    assert DecompositionConfig.from_json(config.to_json()) == config


def test_config_replace_and_defaults():
    config = DecompositionConfig()
    assert config.epsilon is None
    resolved = config.with_defaults(0.25)
    assert resolved.epsilon == 0.25
    assert config.with_defaults(0.25).replace(epsilon=0.7).epsilon == 0.7
    # an explicit epsilon wins over the task default
    assert DecompositionConfig(epsilon=0.9).with_defaults(0.25).epsilon == 0.9


def test_config_rejects_unserializable_seed():
    config = DecompositionConfig(seed=object())
    with pytest.raises(ValidationError, match="seed"):
        config.to_json()


def test_config_rejects_unserializable_options():
    config = DecompositionConfig(options={"callback": object()})
    with pytest.raises(ValidationError, match="options"):
        config.to_json()


def test_color_order_is_numeric_for_int_colors():
    """Dense index i of coloring_array()/forests() must be color i,
    even past 9 colors (repr-sorting would give 0, 1, 10, 11, 2, ...)."""
    result = DecompositionResult.__new__(DecompositionResult)
    result.coloring = {eid: eid % 12 for eid in range(36)}
    assert result.color_order() == list(range(12))
    mixed = DecompositionResult.__new__(DecompositionResult)
    mixed.coloring = {0: 10, 1: 2, 2: ("amr", 10), 3: ("amr", 2), 4: "z"}
    assert mixed.color_order() == [2, 10, "z", ("amr", 2), ("amr", 10)]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_unknown_task_error_lists_available():
    with pytest.raises(RegistryError, match="forest"):
        decompose(small_graph(), task="bogus_task")


def test_unknown_backend_error():
    with pytest.raises(RegistryError, match="available"):
        decompose(
            small_graph(), task="forest",
            config=DecompositionConfig(backend="bogus"),
        )


def test_register_task_and_override():
    calls = []

    def runner(session, config, rounds=None):
        calls.append(config)
        return OrientationResult({}, 0, graph=session.graph)

    spec = TaskSpec(name="_test_task", runner=runner, default_epsilon=0.125)
    registry.register_task(spec)
    try:
        with pytest.raises(RegistryError, match="already registered"):
            registry.register_task(spec)
        registry.register_task(spec, override=True)  # no raise
        assert "_test_task" in repro.available_tasks()
        result = decompose(small_graph(), task="_test_task")
        assert isinstance(result, OrientationResult)
        # the task default epsilon was resolved into the config
        assert calls[-1].epsilon == 0.125
    finally:
        registry.unregister_task("_test_task")
    assert "_test_task" not in repro.available_tasks()


def test_register_backend_and_resolution():
    spec = BackendSpec(
        name="_test_backend",
        capabilities=frozenset({"peeling"}),
        resolve=lambda graph: "dict",
    )
    registry.register_backend(spec)
    try:
        with pytest.raises(RegistryError, match="already registered"):
            registry.register_backend(spec)
        assert "_test_backend" in repro.available_backends()
        # a custom backend resolves to a concrete substrate and runs
        graph = small_graph()
        result = decompose(
            graph, task="forest",
            config=DecompositionConfig(
                epsilon=0.5, seed=11, backend="_test_backend"
            ),
        )
        reference = repro.forest_decomposition(graph, epsilon=0.5, seed=11)
        assert result.coloring == reference.coloring
    finally:
        registry.unregister_backend("_test_backend")


# ----------------------------------------------------------------------
# Session caching
# ----------------------------------------------------------------------


def test_session_snapshot_built_once_across_two_tasks(monkeypatch):
    from repro.graph.csr import CSRGraph

    graph = small_graph()
    builds = []
    original = CSRGraph.from_multigraph.__func__

    def counting(cls, g):
        builds.append(g)
        return original(cls, g)

    monkeypatch.setattr(
        CSRGraph, "from_multigraph", classmethod(counting)
    )
    session = Session(graph)
    session.decompose("forest", DecompositionConfig(epsilon=0.5, seed=11))
    session.decompose("orientation", DecompositionConfig(seed=3))
    host_builds = [g for g in builds if g is graph]
    assert len(host_builds) == 1  # one snapshot of the host graph total


def test_session_memoizes_arboricity(monkeypatch):
    import repro.core.session as session_module

    graph = small_graph()
    calls = []
    original = session_module.exact_arboricity

    def counting(g):
        calls.append(g)
        return original(g)

    monkeypatch.setattr(session_module, "exact_arboricity", counting)
    session = Session(graph)
    session.decompose("forest", DecompositionConfig(epsilon=0.5, seed=11))
    session.decompose("orientation", DecompositionConfig(seed=3))
    assert len(calls) == 1
    assert session.cache_info()["arboricity"]["hits"] >= 1


def test_session_mutation_fingerprint_invalidates():
    graph = small_graph()
    session = Session(graph)
    snap1 = session.snapshot()
    alpha1 = session.arboricity()
    assert session.snapshot() is snap1  # cache hit while unmutated
    graph.add_edge(0, 1)
    assert session.snapshot() is not snap1  # fingerprint moved
    assert session.arboricity() >= alpha1
    info = session.cache_info()
    assert info["snapshot"]["misses"] == 2
    assert info["snapshot"]["hits"] == 1


def test_session_sub_csr_cached():
    graph = small_graph()
    session = Session(graph)
    result = session.decompose(
        "forest", DecompositionConfig(epsilon=0.5, seed=11)
    )
    eids = result.forests()[0]
    first = session.sub_csr(eids)
    second = session.sub_csr(eids)
    assert first is second
    assert session.cache_info()["sub_csr"]["hits"] == 1


def test_session_sub_csr_evicts_stale_generation():
    graph = small_graph()
    session = Session(graph)
    eids = sorted(graph.edge_ids())[:10]
    session.sub_csr(eids)
    graph.add_edge(0, 1)  # invalidates the cached generation
    session.sub_csr(eids)
    assert len(session._sub_csr) == 1  # stale fingerprint entries dropped


def test_session_sub_csr_key_is_order_and_duplicate_insensitive():
    """The digest key hashes the sorted unique eid array, so permuted
    or duplicated inputs hit the same entry — same semantics as the
    frozenset key it replaced, without per-lookup set building."""
    graph = small_graph()
    session = Session(graph)
    eids = sorted(graph.edge_ids())[:10]
    first = session.sub_csr(eids)
    assert session.sub_csr(list(reversed(eids))) is first
    assert session.sub_csr(eids + eids[:3]) is first
    assert session.cache_info()["sub_csr"]["hits"] == 2
    assert session.cache_info()["sub_csr"]["misses"] == 1


def test_session_sub_csr_lru_bound_and_evictions(monkeypatch):
    graph = small_graph()
    session = Session(graph)
    monkeypatch.setattr(Session, "SUB_CSR_CACHE_SIZE", 4)
    eids = sorted(graph.edge_ids())
    for k in range(1, 8):  # 7 distinct color classes
        session.sub_csr(eids[:k])
    assert len(session._sub_csr) == 4  # bounded
    assert session.cache_info()["sub_csr"]["evictions"] == 3
    # Most-recently-used entries survived, the oldest were evicted.
    assert session.cache_info()["sub_csr"]["hits"] == 0
    session.sub_csr(eids[:7])
    assert session.cache_info()["sub_csr"]["hits"] == 1
    session.sub_csr(eids[:1])  # evicted earlier: a miss again
    assert session.cache_info()["sub_csr"]["misses"] == 8


def test_session_shard_plan_cached_and_invalidated():
    graph = small_graph()
    session = Session(graph)
    plan = session.shard_plan()
    assert session.shard_plan() is plan
    assert session.cache_info()["shard_plan"]["hits"] == 1
    assert int(plan.boundaries[-1]) == graph.n
    graph.add_edge(0, 1)
    assert session.shard_plan() is not plan  # fingerprint moved
    # explicit shard counts bypass the memo
    assert session.shard_plan(3).num_shards == 3


def test_sharded_backend_registered_and_equivalent():
    assert "sharded" in repro.available_backends()
    graph = small_graph()
    # Below the cutoff the backend resolves to the serial csr kernel...
    from repro.core.registry import get_backend

    assert get_backend("sharded").substrate_for(graph) == "csr"
    # ...and forcing it end-to-end through the dispatcher (any workers)
    # reproduces the csr results bit for bit.
    reference = decompose(
        graph, task="forest",
        config=DecompositionConfig(epsilon=0.5, seed=11, backend="csr"),
    )
    for workers in (0, 2):
        result = decompose(
            graph, task="forest",
            config=DecompositionConfig(
                epsilon=0.5, seed=11, backend="sharded", workers=workers,
            ),
        )
        assert result.coloring == reference.coloring
        assert result.rounds.total == reference.rounds.total


def test_orientation_hpartition_sharded_uses_session_plan(monkeypatch):
    """With the sharding cutoff lowered below the test graph's size,
    the dispatcher resolves to the real sharded substrate, passes the
    session's cached shard plan into h_partition, and still matches
    the csr reference bit for bit."""
    import repro.core.session as session_module
    import repro.graph.csr as csr_module
    import repro.graph.shard as shard_module

    monkeypatch.setattr(session_module, "SHARDED_AUTO_CUTOFF", 1)
    monkeypatch.setattr(csr_module, "SHARDED_AUTO_CUTOFF", 1)
    graph = small_graph()
    session = Session(graph)
    config = DecompositionConfig(seed=5, backend="sharded", workers=2)
    assert session.substrate(config) == "sharded"

    seen_plans = []
    original_init = shard_module.ShardedPeelingView.__init__

    def recording_init(self, snapshot, plan=None, workers=0, mp=False):
        seen_plans.append(plan)
        original_init(self, snapshot, plan, workers, mp=mp)

    monkeypatch.setattr(
        shard_module.ShardedPeelingView, "__init__", recording_init
    )
    reference = Session(graph).decompose(
        "orientation", DecompositionConfig(seed=5, backend="csr"),
        method="hpartition",
    )
    result = session.decompose("orientation", config, method="hpartition")
    assert session.shard_plan() in seen_plans  # the cached plan was used
    assert result.orientation == reference.orientation
    assert result.bound == reference.bound


def test_unknown_lsfd_method_is_decomposition_error():
    from repro.errors import DecompositionError

    graph = small_graph(simple=True)
    palettes = {eid: range(9) for eid in graph.edge_ids()}
    with pytest.raises(DecompositionError, match="unknown LSFD method"):
        decompose(graph, task="list_star_forest", palettes=palettes,
                  method="bogus")


def test_simple_only_enforced_by_dispatcher():
    """The registry flag, not just the pipeline, rejects multigraphs —
    so third-party simple_only tasks get the check for free."""
    from repro.graph.generators import line_multigraph

    def runner(session, config, rounds=None):
        raise AssertionError("runner must not be reached")

    spec = TaskSpec(name="_simple_task", runner=runner, simple_only=True)
    registry.register_task(spec)
    try:
        with pytest.raises(repro.GraphError, match="simple"):
            decompose(line_multigraph(5, 3), task="_simple_task")
    finally:
        registry.unregister_task("_simple_task")


def test_session_prepare_and_default_config():
    graph = small_graph()
    session = Session(graph, config=DecompositionConfig(epsilon=0.5, seed=11))
    session.prepare()
    assert session.last_prep_seconds >= 0.0
    # decompose() with no config uses the session default
    result = session.decompose("forest")
    reference = repro.forest_decomposition(graph, epsilon=0.5, seed=11)
    assert result.coloring == reference.coloring


def test_decompose_rejects_foreign_session():
    graph, other = small_graph(), small_graph()
    with pytest.raises(ValidationError, match="different graph"):
        decompose(graph, task="forest", session=Session(other))


# ----------------------------------------------------------------------
# Result protocol
# ----------------------------------------------------------------------


def test_result_protocol_forest():
    graph = small_graph()
    result = decompose(
        graph, task="forest",
        config=DecompositionConfig(epsilon=0.5, seed=11, validation="basic"),
    )
    forests = result.forests()
    assert sorted(eid for forest in forests for eid in forest) == sorted(
        graph.edge_ids()
    )
    array = result.coloring_array()
    assert array.shape == (graph.m,)
    assert array.min() >= 0  # fully colored
    assert int(array.max()) + 1 == result.num_colors()
    assert result.config.epsilon == 0.5


def test_result_coloring_array_matches_coloring():
    graph = small_graph()
    result = decompose(
        graph, task="forest", config=DecompositionConfig(seed=11)
    )
    from repro.graph.csr import snapshot_of

    snapshot = snapshot_of(graph)
    order = result.color_order()
    array = result.coloring_array()
    for position, eid in enumerate(snapshot.edge_id.tolist()):
        assert order[array[position]] == result.coloring[eid]


def test_result_json_roundtrip_all_tasks():
    graph = small_graph()
    simple = small_graph(simple=True)
    palettes = skewed_palettes(
        graph, 9, color_space=27, hot_fraction=0.5, seed=3
    )
    cases = [
        decompose(graph, task="forest", config=DecompositionConfig(seed=1)),
        decompose(simple, task="star_forest",
                  config=DecompositionConfig(seed=2)),
        decompose(graph, task="list_forest",
                  config=DecompositionConfig(epsilon=1.0, seed=3),
                  palettes=palettes),
        decompose(graph, task="pseudoforest",
                  config=DecompositionConfig(seed=4)),
        decompose(graph, task="orientation",
                  config=DecompositionConfig(seed=5)),
    ]
    for result in cases:
        payload = json.loads(json.dumps(result.to_json()))
        back = DecompositionResult.from_json(payload, graph=result.graph)
        assert back.kind == result.kind
        assert back.coloring == result.coloring
        back.validate()  # rebuilt results validate against the graph


def test_result_json_file_roundtrip():
    graph = small_graph()
    result = decompose(graph, task="orientation",
                       config=DecompositionConfig(seed=5))
    buffer = io.StringIO()
    write_result_json(result, buffer)
    buffer.seek(0)
    back = read_result_json(buffer, graph=graph)
    assert back.kind == "orientation"
    assert back.bound == result.bound
    assert back.coloring == result.coloring


def test_validation_levels():
    graph = small_graph()
    palettes = skewed_palettes(
        graph, 9, color_space=27, hot_fraction=0.5, seed=3
    )
    result = decompose(
        graph, task="list_forest",
        config=DecompositionConfig(epsilon=1.0, seed=3, validation="full"),
        palettes=palettes,
    )
    # full validation checked palette membership during dispatch; a
    # corrupted coloring must now fail it
    result.coloring[next(iter(result.coloring))] = 10 ** 9
    with pytest.raises(ValidationError):
        result.validate(level="full")


def test_validate_unbound_result_needs_graph():
    result = DecompositionResult.from_json(
        {"schema_version": 1, "kind": "forest", "coloring": []}
    )
    with pytest.raises(ValidationError, match="not bound"):
        result.validate()


def test_pseudoforest_and_orientation_wrap_tuples():
    graph = small_graph()
    coloring, k = repro.pseudoforest_decomposition(graph, seed=4)
    result = decompose(graph, task="pseudoforest",
                       config=DecompositionConfig(seed=4))
    assert isinstance(result, PseudoforestResult)
    assert (result.coloring, result.k) == (coloring, k)

    orientation, bound = repro.low_outdegree_orientation(graph, 0.5, seed=5)
    oresult = decompose(graph, task="orientation",
                        config=DecompositionConfig(epsilon=0.5, seed=5))
    assert isinstance(oresult, OrientationResult)
    assert (oresult.orientation, oresult.bound) == (orientation, bound)


def test_star_forest_rejects_multigraph_through_registry():
    from repro.graph.generators import line_multigraph

    with pytest.raises(repro.GraphError):
        decompose(line_multigraph(5, 3), task="star_forest")


def test_list_tasks_require_palettes():
    with pytest.raises(repro.PaletteError, match="palettes"):
        decompose(small_graph(), task="list_forest")


# ----------------------------------------------------------------------
# Shim equivalence: legacy wrappers == registry path
# ----------------------------------------------------------------------


def test_shim_matches_session_path():
    graph = small_graph()
    legacy = repro.forest_decomposition(
        graph, epsilon=0.5, seed=11, diameter_mode="auto"
    )
    unified = Session(graph).decompose(
        "forest",
        DecompositionConfig(epsilon=0.5, seed=11, diameter_mode="auto"),
    )
    assert legacy.coloring == unified.coloring
    assert legacy.colors_used == unified.colors_used


def test_backend_dict_csr_identical_through_api():
    graph = union_of_random_forests(60, 3, seed=9)
    results = {
        backend: repro.forest_decomposition(
            graph, epsilon=0.5, seed=13, backend=backend
        )
        for backend in ("auto", "dict", "csr")
    }
    assert results["auto"].coloring == results["dict"].coloring
    assert results["dict"].coloring == results["csr"].coloring
    assert (
        results["auto"].rounds.total
        == results["dict"].rounds.total
        == results["csr"].rounds.total
    )


# ----------------------------------------------------------------------
# dir() / lazy exports
# ----------------------------------------------------------------------


def test_dir_lists_high_level_api():
    names = dir(repro)
    for expected in (
        "decompose", "Session", "DecompositionConfig", "register_task",
        "register_backend", "forest_decomposition",
        "star_forest_decomposition", "low_outdegree_orientation",
        "available_tasks", "available_backends", "verify", "graph",
    ):
        assert expected in names, expected
    assert set(repro.__all__) <= set(names)


def test_lazy_getattr_unknown_name():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_a_name
