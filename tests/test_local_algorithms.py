"""Tests for genuine distributed node programs (H-partition, Cole-Vishkin)."""

import pytest

from repro.graph import MultiGraph, RootedForest
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.local import (
    cole_vishkin_iterations,
    run_distributed_hpartition,
    run_distributed_tree_coloring,
)


def check_hpartition_property(graph, classes, threshold):
    """Every v in H_i has at most `threshold` neighbors in H_i u ... u H_k."""
    for v in graph.vertices():
        later = sum(
            1
            for eid, other in graph.incident(v)
            if classes[other] >= classes[v]
        )
        assert later <= threshold, f"vertex {v} has {later} later neighbors"


def test_hpartition_on_forest_union():
    g = union_of_random_forests(40, 3, seed=1)
    threshold = 2 * 3 + 1  # (2+eps) * alpha with eps ~ 1/3
    classes, rounds = run_distributed_hpartition(g, threshold)
    assert all(c >= 1 for c in classes.values())
    check_hpartition_property(g, classes, threshold)
    assert rounds >= 1


def test_hpartition_path_single_wave():
    g = path_graph(10)
    classes, rounds = run_distributed_hpartition(g, 2)
    # Every vertex of a path has degree <= 2: everyone leaves in wave 1.
    assert set(classes.values()) == {1}


def test_hpartition_star():
    g = star_graph(10)
    classes, _ = run_distributed_hpartition(g, 2)
    # Leaves go in wave 1; the center (degree 9) goes in wave 2.
    assert classes[0] == 2
    assert all(classes[v] == 1 for v in range(1, 10))


def test_hpartition_complete_graph():
    g = complete_graph(8)
    # alpha* of K8 is 4ish; threshold 7 removes everyone immediately.
    classes, _ = run_distributed_hpartition(g, 7)
    check_hpartition_property(g, classes, 7)


def test_hpartition_class_count_logarithmic():
    g = union_of_random_forests(100, 2, seed=3)
    threshold = 5
    classes, _ = run_distributed_hpartition(g, threshold)
    # O(log n / eps) classes; generous empirical cap.
    assert max(classes.values()) <= 20
    check_hpartition_property(g, classes, threshold)


def check_proper(graph, colors):
    for _eid, u, v in graph.edges():
        assert colors[u] != colors[v], f"edge {u}-{v} monochromatic"


def rooted_path(n):
    g = path_graph(n)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    return g, {v: forest.parent_edge[v] for v in g.vertices()}


def test_cole_vishkin_path():
    g, parents = rooted_path(50)
    colors, rounds = run_distributed_tree_coloring(g, parents)
    check_proper(g, colors)
    assert set(colors.values()) <= {0, 1, 2}
    # O(log* n) + constant rounds; generous cap.
    assert rounds <= 30


def test_cole_vishkin_star():
    g = star_graph(30)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    parents = {v: forest.parent_edge[v] for v in g.vertices()}
    colors, _ = run_distributed_tree_coloring(g, parents)
    check_proper(g, colors)
    assert set(colors.values()) <= {0, 1, 2}


def test_cole_vishkin_random_forest():
    g = union_of_random_forests(80, 1, seed=7)
    forest = RootedForest(g, g.edge_ids())
    parents = {v: forest.parent_edge[v] for v in g.vertices()}
    colors, _ = run_distributed_tree_coloring(g, parents)
    check_proper(g, colors)
    assert set(colors.values()) <= {0, 1, 2}


def test_cole_vishkin_rounds_scale_slowly():
    """log* growth: rounds for n=1000 barely exceed rounds for n=10."""
    g_small, parents_small = rooted_path(10)
    g_big, parents_big = rooted_path(1000)
    _, rounds_small = run_distributed_tree_coloring(g_small, parents_small)
    _, rounds_big = run_distributed_tree_coloring(g_big, parents_big)
    assert rounds_big <= rounds_small + 4


def test_cole_vishkin_iterations_monotone():
    assert cole_vishkin_iterations(2) >= 1
    assert cole_vishkin_iterations(10**6) <= 8


def test_cole_vishkin_singleton_trees():
    g = MultiGraph.with_vertices(3)
    colors, _ = run_distributed_tree_coloring(g, {})
    assert set(colors.values()) <= {0, 1, 2}
