"""Tests for the determinism & concurrency analyzer (tools/checks).

Three layers of coverage:

* **fixture twins** — for every rule, a bad fixture that must fire and
  a good twin that must stay silent (written into a tmp tree shaped
  like the repo, so kernel-scoping applies);
* **pragma / baseline semantics** — suppression, mandatory reasons,
  unused-pragma findings, baseline matching and the shrink-only rule;
* **mutation self-tests** — copy the real ``src`` tree, reintroduce a
  historical bug (the PR 2 ``hash(str)`` in the wave engine, a PR 7
  closure write inside ``ctx.fan_out``, an undeclared ``Pass`` write),
  and require *exactly one* new finding at the mutated file/line.  This
  proves the shipped analyzer would have caught each bug, and the
  unmutated copy doubles as the shipped-baseline self-check.
"""

import json
import shutil
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.checks import run_checks
from tools.checks.cli import all_rules, main as checks_main

KERNEL = "src/repro/graph/fixture_mod.py"
NONKERNEL = "src/repro/core/fixture_mod.py"


def check_tree(tmp_path, files, baseline_path=None):
    """Write the fixture files under tmp_path and run the analyzer.

    With ``baseline_path=None`` a nonexistent path is used so the
    repo's own baseline never leaks into fixture runs.
    """
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source).lstrip("\n"), encoding="utf-8")
    if baseline_path is None:
        baseline_path = tmp_path / "no_baseline.json"
    return run_checks(
        root=tmp_path, targets=("src",), baseline_path=baseline_path
    )


def rules_of(report):
    return [finding.rule for finding in report.active]


# ---------------------------------------------------------------------------
# determinism rules


def test_det_hash_fires_in_kernel(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            return hash(name)
    """})
    assert rules_of(report) == ["det-hash"]
    (finding,) = report.active
    assert finding.path == KERNEL
    assert finding.line == 2


def test_det_hash_good_twin_blake2b(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        import hashlib

        def child(name):
            digest = hashlib.blake2b(name.encode(), digest_size=8)
            return int.from_bytes(digest.digest(), "big")
    """})
    assert report.active == []


def test_det_hash_silent_outside_kernel(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def child(name):
            return hash(name)
    """})
    assert report.active == []


def test_det_id_fires(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def order(items):
            return sorted(items, key=id)

        def key(obj):
            return id(obj)
    """})
    # sorted(..., key=id) passes the builtin uncalled — only the call
    # site fires, which is the dangerous, orderable use.
    assert rules_of(report) == ["det-id"]
    assert report.active[0].line == 5


def test_det_set_order_fires_on_for_loop(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def emit(xs, out):
            names = set(xs)
            for name in names:
                out.append(name)
    """})
    assert rules_of(report) == ["det-set-order"]
    assert report.active[0].line == 3


def test_det_set_order_good_twin_sorted(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def emit(xs, out):
            names = set(xs)
            for name in sorted(names):
                out.append(name)
    """})
    assert report.active == []


def test_det_set_order_fires_on_list_sink_and_comprehension(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def emit(xs):
            return list({x for x in xs})

        def emit2(xs):
            return [x + 1 for x in set(xs)]
    """})
    assert rules_of(report) == ["det-set-order", "det-set-order"]


def test_det_set_order_set_comprehension_exempt(tmp_path):
    # set -> set cannot leak iteration order into the result
    report = check_tree(tmp_path, {KERNEL: """
        def project(pairs):
            firsts = {a for (a, b) in pairs}
            return {a * 2 for a in firsts}
    """})
    assert report.active == []


def test_det_set_order_rebind_clears_inference(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def emit(xs, out):
            names = set(xs)
            names = sorted(names)
            for name in names:
                out.append(name)
    """})
    assert report.active == []


def test_det_wallclock_fires(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        import time
        import random
        from time import perf_counter

        def slow():
            start = time.perf_counter()
            jitter = random.random()
            tick = perf_counter()
            return start + jitter + tick
    """})
    assert rules_of(report) == [
        "det-wallclock", "det-wallclock", "det-wallclock",
    ]
    assert [f.line for f in report.active] == [6, 7, 8]


def test_det_wallclock_good_twin_seeded_rng(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def draw(rng):
            return rng.randrange(4)
    """})
    assert report.active == []


def test_det_env_fires_everywhere_in_src(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        import os

        def flag():
            return os.environ.get("REPRO_X") == "1"
    """})
    assert rules_of(report) == ["det-env"]


def test_det_env_sanctioned_helper_exempt(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        import os

        def _env_flag(name):
            return os.environ.get(name, "") == "1"
    """})
    assert report.active == []


# ---------------------------------------------------------------------------
# fan-out race rules


def test_race_closure_write_lambda_in_fan_out(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def run(ctx, items):
            acc = []
            ctx.fan_out([lambda i=i: acc.append(i) for i in items])
            return acc
    """})
    assert rules_of(report) == ["race-closure-write"]
    assert report.active[0].line == 3


def test_race_closure_write_named_kernel_in_gather(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def run(engine, work, stats):
            def kernel(item):
                stats["seen"] += 1
                return item

            return engine.gather(kernel, work, cost=1)
    """})
    assert rules_of(report) == ["race-closure-write"]
    assert report.active[0].line == 3


def test_race_closure_write_nonlocal(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def run(engine, work):
            total = 0

            def kernel(item):
                nonlocal total
                total += 1
                return item

            return engine.scan_shards(kernel)
    """})
    assert "race-closure-write" in rules_of(report)


def test_race_good_twin_locals_and_reconcile(tmp_path):
    # mutating locals inside the kernel is fine; the wave() reconcile
    # is *defined* as the single writer of shared state and is exempt.
    report = check_tree(tmp_path, {KERNEL: """
        def run(engine, work, out):
            def kernel(item):
                local = []
                local.append(item)
                return local

            def reconcile(results):
                out.extend(results)

            return engine.wave(work, kernel, reconcile)
    """})
    assert report.active == []


def test_race_rng_method_draw_in_fanned_kernel(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def run(engine, work, rng):
            def kernel(item):
                return rng.randrange(4)

            return engine.map_ranges(kernel, 8, cost=1)
    """})
    assert rules_of(report) == ["race-rng"]


def test_race_rng_helper_draw_in_submitted_fn(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def run(pool, rng):
            def job():
                return child_rng(rng, "shard")

            pool.submit(job)
    """})
    assert rules_of(report) == ["race-rng"]


def test_race_rng_good_twin_draws_before_fanout(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def run(ctx, rng, items):
            draws = [rng.randrange(4) for _ in items]
            ctx.fan_out([lambda d=d: d * 2 for d in draws])
    """})
    assert report.active == []


# ---------------------------------------------------------------------------
# pass-effect rules


def test_effect_undeclared_write_fires(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def _run(ctx):
            ctx["out"] = ctx["inp"] + 1
            ctx["extra"] = 2

        P = Pass("p", _run, reads=("inp",), writes=("out",))
    """})
    assert rules_of(report) == ["effect-undeclared-write"]
    (finding,) = report.active
    assert finding.line == 3
    assert "'extra'" in finding.message


def test_effect_write_through_mutation_counts(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def _run(ctx):
            ctx["bucket"].append(1)

        P = Pass("p", _run, writes=())
    """})
    assert rules_of(report) == ["effect-undeclared-write"]


def test_effect_dead_decl_fires_for_write_and_read(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def _run(ctx):
            ctx["out"] = 1

        P = Pass("p", _run, reads=("ghost_read",), writes=("out", "ghost"))
    """})
    assert sorted(rules_of(report)) == ["effect-dead-decl", "effect-dead-decl"]
    # dead declarations anchor at the Pass(...) declaration line
    assert {f.line for f in report.active} == {4}


def test_effect_good_twin_helper_arg_counts_as_mentioned(tmp_path):
    # aliasing/helper mutation is out of lexical reach by design: a key
    # passed as a call argument counts as mentioned, so a declared
    # write satisfied through a helper does not trip dead-decl.
    report = check_tree(tmp_path, {NONKERNEL: """
        def _run(ctx):
            fill(ctx["out"], ctx["inp"])

        P = Pass("p", _run, reads=("inp",), writes=("out",))
    """})
    assert report.active == []


def test_effect_declared_writes_are_silent(tmp_path):
    report = check_tree(tmp_path, {NONKERNEL: """
        def _run(ctx):
            if "cache" in ctx:
                ctx["out"] = ctx.get("inp", 0)
            ctx.update({"stats": 1})

        P = Pass("p", _run, reads=("inp", "cache"), writes=("out", "stats"))
    """})
    assert report.active == []


# ---------------------------------------------------------------------------
# pragma semantics


def test_pragma_same_line_suppresses(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            return hash(name)  # repro: allow(det-hash) -- fixture: inputs are ints only
    """})
    assert report.active == []
    assert len(report.suppressed) == 1
    finding, pragma = report.suppressed[0]
    assert finding.rule == "det-hash"
    assert "ints only" in pragma.reason


def test_pragma_comment_block_covers_next_code_line(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            # repro: allow(det-hash) -- fixture: reason continues over
            # several comment lines before the code line

            return hash(name)
    """})
    assert report.active == []
    assert len(report.suppressed) == 1


def test_pragma_reason_required(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            return hash(name)  # repro: allow(det-hash) -- short
    """})
    # the suppression is rejected AND the underlying finding survives
    assert sorted(rules_of(report)) == ["det-hash", "pragma"]


def test_pragma_must_name_a_rule(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        x = 1  # repro: allow() -- a perfectly long reason with no rule
    """})
    assert rules_of(report) == ["pragma"]


def test_unused_pragma_is_a_finding(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        x = 1  # repro: allow(det-hash) -- nothing here actually hashes
    """})
    assert rules_of(report) == ["pragma"]
    assert "unused pragma" in report.active[0].message


def test_pragma_only_suppresses_named_rule(tmp_path):
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            return hash(id(name))  # repro: allow(det-hash) -- fixture: suppress one rule
    """})
    # det-hash suppressed, det-id still active
    assert rules_of(report) == ["det-id"]
    assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# baseline semantics


def test_baseline_grandfathers_matching_finding(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"findings": [
        {"rule": "det-hash", "path": KERNEL, "line": 2,
         "col": 11, "message": "grandfathered"},
    ]}), encoding="utf-8")
    report = check_tree(tmp_path, {KERNEL: """
        def child(name):
            return hash(name)
    """}, baseline_path=baseline)
    assert report.active == []
    assert len(report.baselined) == 1
    assert report.ok


def test_baseline_may_only_shrink(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"findings": [
        {"rule": "det-hash", "path": KERNEL, "line": 99,
         "col": 0, "message": "stale: the code moved on"},
    ]}), encoding="utf-8")
    report = check_tree(tmp_path, {KERNEL: """
        def clean():
            return 0
    """}, baseline_path=baseline)
    assert report.active == []
    assert len(report.stale_baseline) == 1
    assert not report.ok


# ---------------------------------------------------------------------------
# mutation self-tests on the real tree


def copy_src(tmp_path):
    shutil.copytree(
        REPO_ROOT / "src", tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return tmp_path


def check_real_copy(root):
    return run_checks(
        root=root, targets=("src",),
        baseline_path=root / "no_baseline.json",
    )


def mutate(root, relpath, appended):
    path = root / relpath
    text = path.read_text(encoding="utf-8") + textwrap.dedent(appended)
    path.write_text(text, encoding="utf-8")
    return text


def line_of(text, needle):
    for number, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"marker {needle!r} not found")


def test_shipped_tree_is_clean(tmp_path):
    report = check_real_copy(copy_src(tmp_path))
    assert report.active == []


def test_mutation_pr2_hash_str_in_wave_engine(tmp_path):
    root = copy_src(tmp_path)
    relpath = "src/repro/parallel/engine.py"
    text = mutate(root, relpath, """

        def _pr2_regression(seed, name):
            return seed ^ hash(name)
    """)
    report = check_real_copy(root)
    assert len(report.active) == 1
    (finding,) = report.active
    assert finding.rule == "det-hash"
    assert finding.path == relpath
    assert finding.line == line_of(text, "seed ^ hash(name)")


def test_mutation_pr7_closure_write_in_fan_out(tmp_path):
    root = copy_src(tmp_path)
    relpath = "src/repro/pipeline/pipeline.py"
    text = mutate(root, relpath, """

        def _pr7_regression(ctx, items):
            acc = []

            def _thunk(value):
                acc.append(value)
                return value

            ctx.fan_out([_thunk])
            return acc
    """)
    report = check_real_copy(root)
    assert len(report.active) == 1
    (finding,) = report.active
    assert finding.rule == "race-closure-write"
    assert finding.path == relpath
    assert finding.line == line_of(text, "acc.append(value)")


def test_mutation_undeclared_pass_write(tmp_path):
    root = copy_src(tmp_path)
    relpath = "src/repro/core/list_forest.py"
    text = mutate(root, relpath, """

        def _pr9_regression_runner(ctx):
            ctx["pr9_undeclared"] = 1

        _PR9_REGRESSION = Pass("pr9-regression", _pr9_regression_runner, writes=())
    """)
    report = check_real_copy(root)
    assert len(report.active) == 1
    (finding,) = report.active
    assert finding.rule == "effect-undeclared-write"
    assert finding.path == relpath
    assert finding.line == line_of(text, 'ctx["pr9_undeclared"] = 1')


# ---------------------------------------------------------------------------
# the shipped analyzer + baseline against the real tree


def test_self_check_shipped_baseline_matches_tree():
    """`make check` must pass on the checked-in tree: zero unbaselined
    findings and zero stale baseline entries."""
    report = run_checks()
    assert report.active == [], [f.render() for f in report.active]
    assert report.stale_baseline == []
    assert report.ok


def test_rule_catalog_ids_are_unique_and_complete():
    ids = [rule.id for rule in all_rules()]
    assert len(ids) == len(set(ids))
    assert set(ids) == {
        "det-hash", "det-id", "det-set-order", "det-wallclock", "det-env",
        "race-closure-write", "race-rng",
        "effect-undeclared-write", "effect-dead-decl",
    }


def test_cli_json_artifact(tmp_path):
    out = tmp_path / "CHECK_findings.json"
    exit_code = checks_main(["--json", str(out)])
    assert exit_code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["ok"] is True
    assert payload["counts"]["active"] == 0
    statuses = {entry["status"] for entry in payload["findings"]}
    assert statuses <= {"suppressed", "baselined"}
    # every suppressed finding carries its pragma reason into the artifact
    for entry in payload["findings"]:
        if entry["status"] == "suppressed":
            assert len(entry["reason"]) >= 10


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "det-hash" in out
    assert "race-closure-write" in out
