"""Tests for the pass-pipeline compiler: DAG validation, the
serial/concurrent scheduler's bit-identity contract, per-pass
instrumentation, ``describe``, and the config-first dispatch shim."""

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import DecompositionConfig, Session
from repro.core.api import _config_from_kwargs, describe
from repro.errors import RegistryError
from repro.graph.generators import (
    random_palettes,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.pipeline import (
    Pass,
    PassStats,
    Pipeline,
    PipelineContext,
    RetryRule,
    Scheduler,
    resolve_schedule,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# DAG validation
# ----------------------------------------------------------------------


def _noop(ctx):
    pass


def test_duplicate_pass_name_rejected():
    with pytest.raises(RegistryError, match="duplicate pass 'a'"):
        Pipeline("p", [Pass("a", _noop), Pass("a", _noop)])


def test_unknown_dependency_rejected():
    with pytest.raises(RegistryError, match="unknown pass 'ghost'"):
        Pipeline("p", [Pass("a", _noop, deps=("ghost",))])


def test_dependency_cycle_rejected():
    with pytest.raises(RegistryError, match="dependency cycle"):
        Pipeline("p", [
            Pass("a", _noop, deps=("b",)),
            Pass("b", _noop, deps=("a",)),
        ])


def test_retry_rule_must_name_known_pass():
    with pytest.raises(RegistryError, match="unknown pass 'nope'"):
        Pipeline(
            "p", [Pass("a", _noop)],
            retry=RetryRule(exceptions=(ValueError,), from_pass="nope"),
        )


def test_levels_follow_declaration_order():
    pipe = Pipeline("p", [
        Pass("a", _noop),
        Pass("b", _noop, deps=("a",)),
        Pass("c", _noop, deps=("a",)),
        Pass("d", _noop, deps=("b", "c")),
    ])
    assert [[p.name for p in lvl] for lvl in pipe.levels] == [
        ["a"], ["b", "c"], ["d"],
    ]
    assert pipe.pass_names() == ["a", "b", "c", "d"]


def test_unknown_schedule_rejected():
    with pytest.raises(RegistryError, match="unknown schedule"):
        resolve_schedule(10, "eventually")
    with pytest.raises(RegistryError, match="resolved schedule"):
        Scheduler("auto")


# ----------------------------------------------------------------------
# Scheduler semantics on toy pipelines
# ----------------------------------------------------------------------


def _toy_pipeline():
    def produce(ctx):
        ctx["xs"] = list(range(6))

    def fan(ctx):
        ctx["ys"] = ctx.fan_out(
            [(lambda x=x: x * x) for x in ctx["xs"]]
        )

    def reduce_(ctx):
        ctx["result"] = sum(ctx["ys"])

    return Pipeline("toy", [
        Pass("produce", produce),
        Pass("fan", fan, deps=("produce",)),
        Pass("reduce", reduce_, deps=("fan",)),
    ])


@pytest.mark.parametrize("schedule", ["serial", "concurrent"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_toy_pipeline_identical_across_schedules(schedule, workers):
    ctx = PipelineContext(counter=RoundCounter())
    out = Scheduler(schedule, workers).run(_toy_pipeline(), ctx)
    assert out == 55
    fan_stats = [s for s in ctx.pass_stats if s.name == "fan"]
    assert fan_stats[0].items == 6
    assert [s.name for s in ctx.pass_stats] == ["produce", "fan", "reduce"]


def test_retry_reruns_from_declared_pass_and_keeps_history():
    calls = {"n": 0}

    def setup(ctx):
        ctx["base"] = 1

    def flaky(ctx):
        calls["n"] += 1
        if calls["n"] < 3:
            raise ValueError("try again")
        ctx["result"] = ctx["base"] + calls["n"]

    pipe = Pipeline(
        "flaky", [Pass("setup", setup), Pass("flaky", flaky, deps=("setup",))],
        retry=RetryRule(exceptions=(ValueError,), from_pass="flaky",
                        max_attempts=5),
    )
    ctx = PipelineContext(counter=RoundCounter())
    assert Scheduler("serial").run(pipe, ctx) == 4
    # Execution history keeps the failed attempts.
    assert [s.name for s in ctx.pass_stats] == [
        "setup", "flaky", "flaky", "flaky",
    ]


def test_retry_exhaustion_reraises():
    def always(ctx):
        raise ValueError("never converges")

    pipe = Pipeline(
        "p", [Pass("a", always)],
        retry=RetryRule(exceptions=(ValueError,), from_pass="a",
                        max_attempts=3),
    )
    with pytest.raises(ValueError):
        Scheduler("serial").run(pipe, PipelineContext(counter=RoundCounter()))


def test_concurrent_level_runs_independent_passes():
    def seed_(ctx):
        ctx["acc"] = {}

    def mk(name):
        def run(ctx):
            ctx["acc"][name] = True
        return run

    pipe = Pipeline("p", [
        Pass("seed", seed_),
        Pass("left", mk("left"), deps=("seed",)),
        Pass("right", mk("right"), deps=("seed",)),
        Pass("join", lambda ctx: ctx.__setitem__(
            "result", sorted(ctx["acc"])), deps=("left", "right")),
    ])
    ctx = PipelineContext(counter=RoundCounter())
    assert Scheduler("concurrent", 2).run(pipe, ctx) == ["left", "right"]
    # PassStats for a concurrent level land in declaration order.
    assert [s.name for s in ctx.pass_stats] == [
        "seed", "left", "right", "join",
    ]


# ----------------------------------------------------------------------
# Schedule gating
# ----------------------------------------------------------------------


def test_auto_schedule_gates_on_size(monkeypatch):
    # The CI forced-backend leg sets REPRO_FORCE_PARALLEL, which
    # legitimately flips small-n "auto" to concurrent — clear it so
    # this test gates on size alone.
    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_FORCE_MP", raising=False)
    assert resolve_schedule(100, "auto") == "serial"
    assert resolve_schedule(100_000, "auto") == "concurrent"
    assert resolve_schedule(100, "concurrent") == "concurrent"
    assert resolve_schedule(100_000, "serial") == "serial"


def test_auto_schedule_honors_force_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    assert resolve_schedule(10, "auto") == "concurrent"


def test_session_resolve_schedule(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_FORCE_MP", raising=False)
    g = union_of_random_forests(30, 2, seed=0)
    session = Session(g)
    assert session.resolve_schedule() == "serial"
    assert session.resolve_schedule(
        DecompositionConfig(schedule="concurrent")
    ) == "concurrent"


# ----------------------------------------------------------------------
# Bit-identity of real tasks across schedules and workers
# ----------------------------------------------------------------------


def _corpus():
    return [
        (union_of_random_forests(48, 3, seed=11), 3),
        (union_of_random_forests(64, 2, seed=12, simple=True), 2),
    ]


def _run(graph, task, schedule, workers, seed, **kwargs):
    config = DecompositionConfig(
        seed=seed, schedule=schedule, workers=workers,
    )
    return repro.decompose(graph, task=task, config=config, **kwargs)


@pytest.mark.parametrize("task", [
    "forest", "star_forest", "orientation", "pseudoforest",
])
def test_serial_concurrent_bit_identity(task):
    for graph, _alpha in _corpus():
        if task == "star_forest" and not graph.is_simple():
            continue
        reference = _run(graph, task, "serial", 1, seed=5)
        for workers in (1, 2, 4):
            got = _run(graph, task, "concurrent", workers, seed=5)
            assert got.coloring == reference.coloring
            assert got.rounds.total == reference.rounds.total


def test_list_forest_bit_identity_across_schedules():
    graph, alpha = _corpus()[0]
    palettes = random_palettes(graph, 12, 36, seed=7)
    reference = _run(
        graph, "list_forest", "serial", 1, seed=5, palettes=palettes
    )
    for workers in (1, 2, 4):
        got = _run(
            graph, "list_forest", "concurrent", workers, seed=5,
            palettes=palettes,
        )
        assert got.coloring == reference.coloring
        assert got.rounds.total == reference.rounds.total


def test_forced_parallel_leg_matches(monkeypatch):
    graph, _ = _corpus()[0]
    reference = _run(graph, "forest", "serial", 1, seed=9)
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    forced = _run(graph, "forest", "auto", 2, seed=9)
    assert forced.coloring == reference.coloring
    assert forced.rounds.total == reference.rounds.total
    assert any(s.schedule == "concurrent" for s in forced.stats.passes)


# ----------------------------------------------------------------------
# Per-pass instrumentation
# ----------------------------------------------------------------------


def test_pass_stats_surface_on_results():
    graph, _ = _corpus()[0]
    result = _run(graph, "forest", "serial", 0, seed=3)
    passes = result.stats["passes"]
    assert [p.name for p in passes] == [
        "setup", "algorithm2", "leftover_recolor", "diameter_reduce",
        "finalize",
    ]
    alg2 = passes[1]
    assert isinstance(alg2, PassStats)
    assert alg2.rounds > 0
    assert alg2.wall_ms >= 0.0
    payload = result.stats.to_json()
    assert [p["name"] for p in payload["passes"]] == [p.name for p in passes]
    assert set(payload["passes"][0]) == {
        "name", "schedule", "wall_ms", "rounds", "engine_waves", "items",
        "reconcile_volume", "vertices_touched",
    }
    # The whole result payload stays JSON-serializable.
    json.dumps(result.to_json())


def test_star_forest_stats_keep_alias_keys():
    graph = union_of_random_forests(40, 2, seed=4, simple=True)
    result = _run(graph, "star_forest", "serial", 0, seed=4)
    payload = result.stats.to_json()
    # Legacy reader contract: the old computed key survives as an alias.
    assert payload["max_deficit"] == result.stats.max_deficit
    assert "passes" in payload


def test_session_cache_info_aggregates_passes():
    graph, _ = _corpus()[0]
    session = Session(graph)
    config = DecompositionConfig(seed=1)
    session.decompose("forest", config)
    session.decompose("forest", config)
    totals = session.cache_info()["passes"]
    assert totals["algorithm2"]["runs"] == 2
    assert totals["algorithm2"]["wall_ms"] > 0


# ----------------------------------------------------------------------
# describe()
# ----------------------------------------------------------------------


def test_describe_lists_dag_with_citations():
    text = describe("forest")
    assert "task: forest" in text
    assert "algorithm2" in text and "deps: setup" in text
    assert "Theorem 4.5" in text
    assert describe("list_forest").count("retry:") == 1
    with pytest.raises(RegistryError):
        describe("bogus")


def test_describe_via_module_namespace():
    assert repro.describe("orientation").startswith("task: orientation")


def test_cli_describe():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "describe", "pseudoforest"],
        capture_output=True, text=True, env={"PYTHONPATH": SRC, "PATH": ""},
    )
    assert proc.returncode == 0
    assert "fold" in proc.stdout


# ----------------------------------------------------------------------
# Config-first dispatch shim
# ----------------------------------------------------------------------


def test_config_from_kwargs_prefers_explicit_config():
    explicit = DecompositionConfig(epsilon=0.25, seed=9)
    assert _config_from_kwargs(explicit, epsilon=1.0, seed=0) is explicit
    built = _config_from_kwargs(None, epsilon=1.0, seed=0)
    assert built.epsilon == 1.0 and built.seed == 0


def test_wrappers_accept_config_first_and_legacy_kwargs():
    graph, _ = _corpus()[0]
    legacy = repro.forest_decomposition(graph, epsilon=0.5, seed=2)
    config_first = repro.forest_decomposition(
        graph, config=DecompositionConfig(epsilon=0.5, seed=2)
    )
    assert legacy.coloring == config_first.coloring

    legacy_or = repro.low_outdegree_orientation(graph, 0.5, seed=2)
    config_or = repro.low_outdegree_orientation(
        graph, 99.0, config=DecompositionConfig(epsilon=0.5, seed=2)
    )
    assert legacy_or == config_or


def test_config_json_roundtrip_includes_schedule():
    config = DecompositionConfig(schedule="concurrent")
    assert DecompositionConfig.from_json(config.to_json()).schedule == (
        "concurrent"
    )
    # Old payloads without the key still load (default "auto").
    payload = config.to_json()
    del payload["schedule"]
    assert DecompositionConfig.from_json(payload).schedule == "auto"


def test_unknown_schedule_value_rejected_in_config():
    with pytest.raises(Exception, match="schedule"):
        DecompositionConfig(schedule="sometimes")
