"""Smoke tests: every example script must run cleanly.

These keep the examples honest as the library evolves — an example that
crashes is worse than no example.

Each script is executed at most once per session (results are cached at
module scope), since several tests inspect the same run's output.  The
wireless sweep runs exact arboricity at α up to 28 and dominates the
whole suite's runtime, so its tests carry ``@pytest.mark.slow`` — the
quick loop (``pytest -m "not slow"``) skips them; the full tier-1 run
still covers them.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "social_network_orientation.py",
    "wireless_scheduling.py",
    "local_simulation.py",
    "frequency_assignment.py",
]

_run_cache = {}


def run_example(script):
    """Run a script once per session; return the CompletedProcess."""
    if script not in _run_cache:
        path = os.path.join(EXAMPLES_DIR, script)
        _run_cache[script] = subprocess.run(
            [sys.executable, path],
            capture_output=True,
            text=True,
            timeout=600,
        )
    return _run_cache[script]


def _check_runs(script):
    result = run_example(script)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


@pytest.mark.parametrize(
    "script", [s for s in EXAMPLES if s != "wireless_scheduling.py"]
)
def test_example_runs(script):
    _check_runs(script)


@pytest.mark.slow
def test_example_runs_wireless():
    _check_runs("wireless_scheduling.py")


def test_quickstart_reports_validity():
    result = run_example("quickstart.py")
    assert "forests used:" in result.stdout
    assert "charged LOCAL rounds:" in result.stdout


@pytest.mark.slow
def test_wireless_shows_crossover():
    result = run_example("wireless_scheduling.py")
    assert "paper" in result.stdout
    assert "classical" in result.stdout
