"""Smoke tests: every example script must run cleanly.

These keep the examples honest as the library evolves — an example that
crashes is worse than no example.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "social_network_orientation.py",
    "wireless_scheduling.py",
    "local_simulation.py",
    "frequency_assignment.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_validity():
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=600
    )
    assert "forests used:" in result.stdout
    assert "charged LOCAL rounds:" in result.stdout


def test_wireless_shows_crossover():
    path = os.path.join(EXAMPLES_DIR, "wireless_scheduling.py")
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=600
    )
    assert "paper" in result.stdout
    assert "classical" in result.stdout
