"""Tests for Corollary 1.1: (1+eps)alpha orientations."""

import math

import pytest

from repro.errors import DecompositionError
from repro.graph import MultiGraph
from repro.graph.generators import (
    cycle_graph,
    line_multigraph,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.core import (
    low_outdegree_orientation,
    orientation_from_forest_decomposition,
)
from repro.nashwilliams import exact_forest_decomposition
from repro.verify import check_orientation


def test_orientation_from_fd_bound():
    g = union_of_random_forests(40, 3, seed=1)
    fd = exact_forest_decomposition(g)
    orientation = orientation_from_forest_decomposition(g, fd)
    # Out-degree bounded by the number of forests (= 3).
    check_orientation(g, orientation, 3)


def test_orientation_covers_all_edges():
    g = cycle_graph(10)
    fd = exact_forest_decomposition(g)
    orientation = orientation_from_forest_decomposition(g, fd)
    assert set(orientation.keys()) == set(g.edge_ids())


def test_low_outdegree_augmentation_method():
    g = union_of_random_forests(50, 3, seed=2)
    orientation, bound = low_outdegree_orientation(
        g, epsilon=0.8, alpha=3, method="augmentation", seed=3
    )
    assert bound <= math.ceil(1.8 * 3)
    check_orientation(g, orientation, bound)


def test_low_outdegree_beats_baseline():
    """Corollary 1.1's point: augmentation reaches (1+eps)alpha while
    the H-partition baseline only reaches (2+eps)alpha*."""
    g = union_of_random_forests(60, 4, seed=4)
    ours, our_bound = low_outdegree_orientation(
        g, 0.5, alpha=4, method="augmentation", seed=5
    )
    base, base_bound = low_outdegree_orientation(
        g, 0.5, alpha=4, method="hpartition", seed=6
    )
    check_orientation(g, ours, our_bound)
    check_orientation(g, base, base_bound)
    assert our_bound < base_bound


def test_low_outdegree_exact_method():
    g = line_multigraph(10, 4)
    orientation, bound = low_outdegree_orientation(
        g, 0.25, alpha=4, method="exact"
    )
    check_orientation(g, orientation, bound)
    assert bound == 5


def test_unknown_method():
    g = cycle_graph(5)
    with pytest.raises(DecompositionError):
        low_outdegree_orientation(g, 0.5, method="bogus")


def test_orientation_rounds_charged():
    g = union_of_random_forests(30, 2, seed=7)
    rc = RoundCounter()
    low_outdegree_orientation(g, 0.8, alpha=2, method="augmentation", seed=8, rounds=rc)
    assert rc.total > 0


def test_orientation_on_multigraph_parallel_edges():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1), (0, 1), (0, 1)])
    fd = exact_forest_decomposition(g)  # 4 forests of one edge each
    orientation = orientation_from_forest_decomposition(g, fd)
    check_orientation(g, orientation, 4)
