"""Tests for BFS / neighborhood / power-graph utilities."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    MultiGraph,
    bfs_distances,
    connected_components,
    diameter_of_component,
    distance_between_sets,
    edge_neighborhood,
    edges_within,
    neighborhood,
    power_graph,
    shortest_path,
    weak_diameter,
)
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.traversal import (
    components_of_vertices,
    eccentricity,
    spanning_tree_edges,
)


def test_bfs_distances_path():
    g = path_graph(5)
    dist = bfs_distances(g, [0])
    assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_distances_radius_cap():
    g = path_graph(5)
    dist = bfs_distances(g, [0], radius=2)
    assert dist == {0: 0, 1: 1, 2: 2}


def test_bfs_multi_source():
    g = path_graph(5)
    dist = bfs_distances(g, [0, 4])
    assert dist[2] == 2
    assert dist[1] == 1
    assert dist[3] == 1


def test_bfs_unknown_source():
    g = path_graph(3)
    with pytest.raises(GraphError):
        bfs_distances(g, [99])


def test_neighborhood():
    g = path_graph(7)
    assert neighborhood(g, [3], 1) == {2, 3, 4}
    assert neighborhood(g, [3], 0) == {3}


def test_edge_neighborhood():
    g = path_graph(7)
    eid = g.edges_between(3, 4)[0]
    assert edge_neighborhood(g, eid, 1) == {2, 3, 4, 5}


def test_edges_within():
    g = path_graph(5)
    inside = edges_within(g, {1, 2, 3})
    assert len(inside) == 2


def test_power_graph_path():
    g = path_graph(5)
    p2 = power_graph(g, 2)
    assert p2.multiplicity(0, 2) == 1
    assert p2.multiplicity(0, 3) == 0
    assert p2.is_simple()


def test_power_graph_collapses_parallels():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    p1 = power_graph(g, 1)
    assert p1.m == 1


def test_power_graph_bad_radius():
    with pytest.raises(GraphError):
        power_graph(path_graph(3), 0)


def test_connected_components():
    g = MultiGraph.with_vertices(5)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    comps = connected_components(g)
    assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]


def test_components_of_vertices():
    g = path_graph(6)
    comps = components_of_vertices(g, [0, 1, 3, 4])
    assert sorted(map(tuple, comps)) == [(0, 1), (3, 4)]


def test_shortest_path():
    g = cycle_graph(6)
    path = shortest_path(g, 0, 3)
    assert path is not None
    assert path[0] == 0 and path[-1] == 3
    assert len(path) == 4


def test_shortest_path_disconnected():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    assert shortest_path(g, 0, 2) is None
    assert shortest_path(g, 2, 2) == [2]


def test_eccentricity_and_diameter():
    g = path_graph(5)
    assert eccentricity(g, 0) == 4
    assert eccentricity(g, 2) == 2
    assert diameter_of_component(g, [0, 1, 2, 3, 4]) == 4


def test_diameter_disconnected_raises():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    with pytest.raises(GraphError):
        diameter_of_component(g, [0, 1, 2])


def test_weak_diameter():
    # Cluster {0, 4} on a cycle of 8: distance through graph is 4.
    g = cycle_graph(8)
    assert weak_diameter(g, [0, 4]) == 4


def test_distance_between_sets():
    g = path_graph(10)
    assert distance_between_sets(g, [0, 1], [5]) == 4
    g2 = MultiGraph.with_vertices(4)
    g2.add_edge(0, 1)
    assert distance_between_sets(g2, [0], [3]) is None


def test_grid_diameter():
    g = grid_graph(3, 4)
    assert diameter_of_component(g, g.vertices()) == (3 - 1) + (4 - 1)


def test_csr_backend_small_graphs():
    """The kernel path honours the same contracts on toy inputs."""
    from repro.graph import CSRGraph

    g = path_graph(5)
    assert bfs_distances(g, [0], backend="csr") == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    assert bfs_distances(g, [0], radius=2, backend="csr") == {0: 0, 1: 1, 2: 2}
    assert neighborhood(g, [3], 0, backend="csr") == {3}
    with pytest.raises(GraphError):
        bfs_distances(g, [99], backend="csr")

    p2 = power_graph(g, 2, backend="csr")
    assert isinstance(p2, CSRGraph)
    assert sorted(p2.neighbors(0)) == [1, 2]
    assert p2.m == power_graph(g, 2, backend="dict").m
    with pytest.raises(GraphError):
        power_graph(g, 0, backend="csr")

    assert diameter_of_component(g, g.vertices(), backend="csr") == 4
    broken = MultiGraph.with_vertices(3)
    broken.add_edge(0, 1)
    with pytest.raises(GraphError):
        diameter_of_component(broken, [0, 1, 2], backend="csr")
    assert connected_components(broken, backend="csr") == [[0, 1], [2]]


def test_spanning_tree_edges():
    g = cycle_graph(5)
    tree = spanning_tree_edges(g, g.vertices())
    assert len(tree) == 4
    # A spanning forest of a connected graph has n-1 edges and no cycle.
    from repro.graph import is_forest

    assert is_forest(g, tree)


# ----------------------------------------------------------------------
# bfs_distance_array regression: multi-seed / disconnected / empty /
# single-vertex, identical across dict, csr and parallel backends
# ----------------------------------------------------------------------


def _three_component_graph():
    """Two nontrivial components plus an isolated single vertex."""
    g = MultiGraph.with_vertices(9)
    for u, v in [(0, 1), (1, 2), (2, 3)]:   # path component
        g.add_edge(u, v)
    for u, v in [(4, 5), (5, 6), (6, 4)]:   # triangle component
        g.add_edge(u, v)
    # vertices 7, 8 stay isolated
    return g


def test_bfs_distance_array_multi_seed_disconnected():
    from repro.graph.csr import bfs_distance_array, snapshot_of
    from repro.parallel import parallel_bfs_distance_array, engine_for

    g = _three_component_graph()
    snap = snapshot_of(g)
    offsets, nbr, n = snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices
    dist = bfs_distance_array(offsets, nbr, n, [0, 4])
    # Seeds reach only their own components; everything else stays -1.
    assert dist.tolist() == [0, 1, 2, 3, 0, 1, 1, -1, -1]
    for workers in (1, 2, 4):
        engine = engine_for(snap, workers)
        engine.min_gather_work = 0  # open the gate on this toy graph
        assert parallel_bfs_distance_array(
            offsets, nbr, n, [0, 4], engine=engine
        ).tolist() == dist.tolist()
    # The dict-facing entry point agrees across all three backends.
    for backend in ("dict", "csr", "parallel"):
        assert bfs_distances(g, [0, 4], backend=backend) == {
            0: 0, 1: 1, 2: 2, 3: 3, 4: 0, 5: 1, 6: 1
        }


def test_bfs_distance_array_empty_seed_set():
    from repro.graph.csr import bfs_distance_array, snapshot_of
    from repro.parallel import parallel_bfs_distance_array

    g = _three_component_graph()
    snap = snapshot_of(g)
    args = (snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices, [])
    assert bfs_distance_array(*args).tolist() == [-1] * g.n
    assert parallel_bfs_distance_array(*args).tolist() == [-1] * g.n
    for backend in ("dict", "csr", "parallel"):
        assert bfs_distances(g, [], backend=backend) == {}


def test_bfs_distance_array_single_vertex_component():
    from repro.graph.csr import bfs_distance_array, snapshot_of
    from repro.parallel import parallel_bfs_distance_array, engine_for

    g = _three_component_graph()
    snap = snapshot_of(g)
    offsets, nbr, n = snap.vertex_offsets, snap.neighbor_ids, snap.num_vertices
    dist = bfs_distance_array(offsets, nbr, n, [7])
    expected = [-1] * n
    expected[7] = 0
    assert dist.tolist() == expected
    assert parallel_bfs_distance_array(
        offsets, nbr, n, [7], engine=engine_for(snap, 2)
    ).tolist() == expected
    for backend in ("dict", "csr", "parallel"):
        assert bfs_distances(g, [7], backend=backend) == {7: 0}
        assert diameter_of_component(g, [7], backend=backend) == 0
        assert weak_diameter(g, [7], backend=backend) == 0


def test_bfs_backends_agree_on_radius_capped_multi_seed():
    g = _three_component_graph()
    for radius in (0, 1, 2):
        reference = bfs_distances(g, [0, 4, 8], radius=radius, backend="dict")
        for backend in ("csr", "parallel"):
            assert bfs_distances(
                g, [0, 4, 8], radius=radius, backend=backend
            ) == reference


def test_weak_diameter_backends_agree():
    g = cycle_graph(8)
    for backend in ("dict", "csr", "parallel"):
        assert weak_diameter(g, [0, 4], backend=backend) == 4
    broken = MultiGraph.with_vertices(3)
    broken.add_edge(0, 1)
    for backend in ("dict", "csr", "parallel"):
        with pytest.raises(GraphError):
            weak_diameter(broken, [0, 1, 2], backend=backend)
