"""Tests for the Moser-Tardos LLL engine."""

import pytest

from repro.errors import ConvergenceError
from repro.decomposition import (
    BadEvent,
    LLLInstance,
    dependency_degree,
    moser_tardos,
)
from repro.local import RoundCounter


def hypergraph_two_coloring_instance(edges, n):
    """Classic LLL demo: 2-color vertices so no edge is monochromatic."""
    instance = LLLInstance()
    for v in range(n):
        instance.add_variable(v, lambda rng: rng.randrange(2))
    for index, edge in enumerate(edges):
        instance.add_event(
            f"mono-{index}",
            edge,
            lambda a, e=tuple(edge): len({a[v] for v in e}) == 1,
        )
    return instance


def test_two_coloring_small():
    # 3-uniform hypergraph, low overlap: LLL applies comfortably.
    edges = [(0, 1, 2), (2, 3, 4), (4, 5, 6), (6, 7, 8), (8, 9, 0)]
    instance = hypergraph_two_coloring_instance(edges, 10)
    assignment = moser_tardos(instance, seed=1)
    for edge in edges:
        assert len({assignment[v] for v in edge}) > 1


def test_sequential_mode():
    edges = [(0, 1, 2), (1, 2, 3), (2, 3, 4)]
    instance = hypergraph_two_coloring_instance(edges, 5)
    assignment = moser_tardos(instance, seed=2, parallel=False)
    for edge in edges:
        assert len({assignment[v] for v in edge}) > 1


def test_rounds_charged():
    edges = [(0, 1, 2)]
    instance = hypergraph_two_coloring_instance(edges, 3)
    rc = RoundCounter()
    moser_tardos(instance, seed=3, rounds=rc)
    assert rc.total >= 1  # at least the initial sampling round


def test_unsatisfiable_raises_convergence_error():
    # Single-vertex 'edge' is monochromatic under any assignment.
    instance = LLLInstance()
    instance.add_variable(0, lambda rng: rng.randrange(2))
    instance.add_event("impossible", [0], lambda a: True)
    with pytest.raises(ConvergenceError):
        moser_tardos(instance, seed=0, max_iterations=50)


def test_duplicate_variable_rejected():
    instance = LLLInstance()
    instance.add_variable("x", lambda rng: 0)
    with pytest.raises(ValueError):
        instance.add_variable("x", lambda rng: 1)


def test_unknown_variable_rejected():
    instance = LLLInstance()
    with pytest.raises(ValueError):
        instance.add_event("bad", ["ghost"], lambda a: False)


def test_no_events_returns_sample():
    instance = LLLInstance()
    instance.add_variable("x", lambda rng: 7)
    assignment = moser_tardos(instance, seed=5)
    assert assignment == {"x": 7}


def test_dependency_degree():
    instance = LLLInstance()
    for v in range(4):
        instance.add_variable(v, lambda rng: 0)
    instance.add_event("a", [0, 1], lambda a: False)
    instance.add_event("b", [1, 2], lambda a: False)
    instance.add_event("c", [3], lambda a: False)
    assert dependency_degree(instance) == 1  # a-b share variable 1; c isolated


def test_deterministic_given_seed():
    edges = [(0, 1, 2), (2, 3, 4)]
    a = moser_tardos(hypergraph_two_coloring_instance(edges, 5), seed=42)
    b = moser_tardos(hypergraph_two_coloring_instance(edges, 5), seed=42)
    assert a == b
