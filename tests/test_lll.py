"""Tests for the Moser-Tardos LLL engine."""

import pytest

from repro.errors import ConvergenceError
from repro.decomposition import (
    BadEvent,
    LLLInstance,
    dependency_degree,
    moser_tardos,
)
from repro.local import RoundCounter


def hypergraph_two_coloring_instance(edges, n):
    """Classic LLL demo: 2-color vertices so no edge is monochromatic."""
    instance = LLLInstance()
    for v in range(n):
        instance.add_variable(v, lambda rng: rng.randrange(2))
    for index, edge in enumerate(edges):
        instance.add_event(
            f"mono-{index}",
            edge,
            lambda a, e=tuple(edge): len({a[v] for v in e}) == 1,
        )
    return instance


def test_two_coloring_small():
    # 3-uniform hypergraph, low overlap: LLL applies comfortably.
    edges = [(0, 1, 2), (2, 3, 4), (4, 5, 6), (6, 7, 8), (8, 9, 0)]
    instance = hypergraph_two_coloring_instance(edges, 10)
    assignment = moser_tardos(instance, seed=1)
    for edge in edges:
        assert len({assignment[v] for v in edge}) > 1


def test_sequential_mode():
    edges = [(0, 1, 2), (1, 2, 3), (2, 3, 4)]
    instance = hypergraph_two_coloring_instance(edges, 5)
    assignment = moser_tardos(instance, seed=2, parallel=False)
    for edge in edges:
        assert len({assignment[v] for v in edge}) > 1


def test_rounds_charged():
    edges = [(0, 1, 2)]
    instance = hypergraph_two_coloring_instance(edges, 3)
    rc = RoundCounter()
    moser_tardos(instance, seed=3, rounds=rc)
    assert rc.total >= 1  # at least the initial sampling round


def test_unsatisfiable_raises_convergence_error():
    # Single-vertex 'edge' is monochromatic under any assignment.
    instance = LLLInstance()
    instance.add_variable(0, lambda rng: rng.randrange(2))
    instance.add_event("impossible", [0], lambda a: True)
    with pytest.raises(ConvergenceError):
        moser_tardos(instance, seed=0, max_iterations=50)


def test_duplicate_variable_rejected():
    instance = LLLInstance()
    instance.add_variable("x", lambda rng: 0)
    with pytest.raises(ValueError):
        instance.add_variable("x", lambda rng: 1)


def test_unknown_variable_rejected():
    instance = LLLInstance()
    with pytest.raises(ValueError):
        instance.add_event("bad", ["ghost"], lambda a: False)


def test_no_events_returns_sample():
    instance = LLLInstance()
    instance.add_variable("x", lambda rng: 7)
    assignment = moser_tardos(instance, seed=5)
    assert assignment == {"x": 7}


def test_dependency_degree():
    instance = LLLInstance()
    for v in range(4):
        instance.add_variable(v, lambda rng: 0)
    instance.add_event("a", [0, 1], lambda a: False)
    instance.add_event("b", [1, 2], lambda a: False)
    instance.add_event("c", [3], lambda a: False)
    assert dependency_degree(instance) == 1  # a-b share variable 1; c isolated


def test_deterministic_given_seed():
    edges = [(0, 1, 2), (2, 3, 4)]
    a = moser_tardos(hypergraph_two_coloring_instance(edges, 5), seed=42)
    b = moser_tardos(hypergraph_two_coloring_instance(edges, 5), seed=42)
    assert a == b


def test_string_variables_reproduce_across_hash_seeds():
    """Regression (PR 9 analyzer finding, det-set-order): the parallel
    resampling step iterated ``to_resample`` — a *set* — directly, so
    with string variable names the per-variable rng draws followed
    PYTHONHASHSEED-randomized set order and seeded runs diverged across
    processes (the PR 2 child_rng bug class).  The fix resamples in
    variable declaration order; here we pin the whole assignment across
    three different hash seeds in real subprocesses.
    """
    import os
    import subprocess
    import sys

    script = (
        "from repro.decomposition import LLLInstance, moser_tardos\n"
        "instance = LLLInstance()\n"
        "names = ['v%02d' % i for i in range(16)]\n"
        "for name in names:\n"
        "    instance.add_variable(name, lambda rng: rng.randrange(100))\n"
        "for i, name in enumerate(names):\n"
        "    instance.add_event('high-%d' % i, [name],\n"
        "                       lambda a, n=name: a[n] >= 60)\n"
        "assignment = moser_tardos(instance, seed=7)\n"
        "print(sorted(assignment.items()))\n"
    )
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    outputs = set()
    for hash_seed in ("0", "1", "4242"):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.add(proc.stdout)
    assert len(outputs) == 1, outputs
