"""Unit tests for the MultiGraph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph import MultiGraph


def test_empty_graph():
    g = MultiGraph()
    assert g.n == 0
    assert g.m == 0
    assert g.vertices() == []
    assert g.edge_ids() == []
    assert g.max_degree() == 0


def test_with_vertices():
    g = MultiGraph.with_vertices(5)
    assert g.n == 5
    assert g.vertices() == [0, 1, 2, 3, 4]


def test_add_edge_returns_sequential_ids():
    g = MultiGraph.with_vertices(3)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(1, 2)
    assert (e0, e1) == (0, 1)
    assert g.endpoints(0) == (0, 1)
    assert g.endpoints(1) == (1, 2)


def test_parallel_edges_have_distinct_ids():
    g = MultiGraph.with_vertices(2)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(0, 1)
    assert e0 != e1
    assert g.multiplicity(0, 1) == 2
    assert sorted(g.edges_between(0, 1)) == [e0, e1]
    assert g.m == 2
    assert not g.is_simple()


def test_self_loop_rejected():
    g = MultiGraph.with_vertices(2)
    with pytest.raises(GraphError):
        g.add_edge(1, 1)


def test_unknown_vertex_rejected():
    g = MultiGraph.with_vertices(2)
    with pytest.raises(GraphError):
        g.add_edge(0, 7)


def test_degree_counts_parallels():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    assert g.degree(0) == 3
    assert g.degree(1) == 2
    assert g.degree(2) == 1
    assert g.max_degree() == 3


def test_neighbors_distinct():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    assert sorted(g.neighbors(0)) == [1, 2]


def test_incident_edges():
    g = MultiGraph.with_vertices(3)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(0, 1)
    e2 = g.add_edge(1, 2)
    assert sorted(g.incident_edges(1)) == sorted([e0, e1, e2])
    pairs = sorted(g.incident(1))
    assert (e2, 2) in pairs


def test_other_endpoint():
    g = MultiGraph.with_vertices(2)
    e = g.add_edge(0, 1)
    assert g.other_endpoint(e, 0) == 1
    assert g.other_endpoint(e, 1) == 0
    g.add_vertex()
    with pytest.raises(GraphError):
        g.other_endpoint(e, 2)


def test_remove_edge():
    g = MultiGraph.with_vertices(2)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(0, 1)
    g.remove_edge(e0)
    assert g.m == 1
    assert g.multiplicity(0, 1) == 1
    assert not g.has_edge(e0)
    assert g.has_edge(e1)
    with pytest.raises(GraphError):
        g.remove_edge(e0)


def test_edge_ids_stable_after_removal():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    g.remove_edge(0)
    e = g.add_edge(1, 2)
    assert e == 1  # ids never reused


def test_copy_is_deep():
    g = MultiGraph.with_vertices(3)
    g.add_edge(0, 1)
    clone = g.copy()
    clone.add_edge(1, 2)
    assert g.m == 1
    assert clone.m == 2
    assert clone.endpoints(0) == g.endpoints(0)


def test_edge_subgraph_preserves_ids():
    g = MultiGraph.with_vertices(4)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(1, 2)
    e2 = g.add_edge(2, 3)
    sub = g.edge_subgraph([e0, e2])
    assert sub.m == 2
    assert sub.endpoints(e0) == (0, 1)
    assert sub.endpoints(e2) == (2, 3)
    assert not sub.has_edge(e1)
    assert sub.n == 4  # vertices all kept


def test_induced_subgraph():
    g = MultiGraph.with_vertices(4)
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    sub = g.induced_subgraph([0, 1, 2])
    assert sub.n == 3
    assert sub.m == 2
    assert not sub.has_vertex(3)


def test_without_edges():
    g = MultiGraph.with_vertices(3)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(1, 2)
    sub = g.without_edges([e0])
    assert sub.m == 1
    assert sub.has_edge(e1)


def test_from_edges():
    g = MultiGraph.from_edges(3, [(0, 1), (1, 2), (0, 1)])
    assert g.n == 3
    assert g.m == 3
    assert g.multiplicity(0, 1) == 2


def test_equality():
    a = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    b = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    c = MultiGraph.from_edges(3, [(0, 1)])
    assert a == b
    assert a != c


def test_unhashable():
    g = MultiGraph()
    with pytest.raises(TypeError):
        hash(g)


def test_is_simple():
    g = MultiGraph.from_edges(3, [(0, 1), (1, 2)])
    assert g.is_simple()
    g.add_edge(0, 1)
    assert not g.is_simple()


def test_add_named_vertex():
    g = MultiGraph()
    assert g.add_vertex(5) == 5
    assert g.add_vertex() == 6
    with pytest.raises(GraphError):
        g.add_vertex(5)
