"""Golden regression tests: frozen decomposition outputs.

Each case runs one seeded decomposition on a small fixed instance and
compares its observable result — color counts, charged LOCAL rounds,
and a hash of the full coloring — against ``tests/golden/*.json``.
Refactors of the graph substrate (e.g. the flat-array kernel) must not
change any of these; a test failing here means results silently moved.

To intentionally re-freeze after an algorithmic change:

    pytest tests/test_golden_regression.py --regen
"""

import hashlib
import json
import os

import pytest

from repro.core.api import (
    barenboim_elkin_forest_decomposition,
    forest_decomposition,
    low_outdegree_orientation,
    star_forest_decomposition,
)
from repro.decomposition import (
    default_threshold,
    degeneracy_ordering,
    degeneracy_orientation,
    h_partition,
)
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    line_multigraph,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.nashwilliams import exact_pseudoarboricity

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "decompositions.json")


def _sha(mapping):
    """Order-independent digest of a coloring / ordering object."""
    if isinstance(mapping, dict):
        canonical = sorted((int(k), str(v)) for k, v in mapping.items())
    else:
        canonical = [str(item) for item in mapping]
    blob = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


# ----------------------------------------------------------------------
# Corpus: every entry returns a JSON-serializable summary.
# ----------------------------------------------------------------------


def _case_fd_depth_residue():
    graph = union_of_random_forests(40, 3, seed=7)
    result = forest_decomposition(graph, epsilon=0.5, seed=11)
    return {
        "colors_used": result.colors_used,
        "leftover_size": result.leftover_size,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_fd_simultaneous_carve():
    graph = union_of_random_forests(40, 3, seed=7)
    result = forest_decomposition(
        graph, epsilon=0.5, carve_rule="simultaneous", seed=11
    )
    return {
        "colors_used": result.colors_used,
        "leftover_size": result.leftover_size,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_nd_simultaneous_clusters():
    from repro.decomposition import network_decomposition

    graph = grid_graph(10, 10)
    nd = network_decomposition(graph, carve_rule="simultaneous")
    return {
        "num_classes": nd.num_classes,
        "clusters_per_class": [len(clusters) for clusters in nd.classes],
        "classes": _sha([json.dumps(c) for c in nd.classes]),
    }


def _case_fd_conditioned_sampling():
    graph = union_of_random_forests(40, 3, seed=7)
    result = forest_decomposition(
        graph, epsilon=0.5, cut_rule="conditioned_sampling", seed=11
    )
    return {
        "colors_used": result.colors_used,
        "leftover_size": result.leftover_size,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_fd_diameter_bounded():
    graph = grid_graph(6, 7)
    result = forest_decomposition(graph, epsilon=0.5, diameter_mode="auto", seed=3)
    return {
        "colors_used": result.colors_used,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_fd_line_multigraph():
    graph = line_multigraph(12, 4)
    result = forest_decomposition(graph, epsilon=0.5, seed=5)
    return {
        "colors_used": result.colors_used,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_star_forest_amr():
    graph = union_of_random_forests(36, 4, seed=2, simple=True)
    result = star_forest_decomposition(graph, epsilon=0.25, seed=9)
    return {
        "colors_used": result.colors_used,
        "rounds": result.rounds.total,
        "coloring": _sha(result.coloring),
    }


def _case_barenboim_elkin():
    graph = union_of_random_forests(30, 3, seed=4)
    coloring, forests = barenboim_elkin_forest_decomposition(graph, 0.5)
    return {"forests": forests, "coloring": _sha(coloring)}


def _case_degeneracy():
    graph = erdos_renyi(50, 0.15, seed=6)
    d, order = degeneracy_ordering(graph)
    d2, orientation = degeneracy_orientation(graph)
    return {
        "degeneracy": d,
        "order": _sha(order),
        "orientation_degeneracy": d2,
        "orientation": _sha(orientation),
    }


def _case_h_partition():
    graph = union_of_random_forests(40, 3, seed=8)
    threshold = default_threshold(exact_pseudoarboricity(graph), 0.5)
    counter = RoundCounter()
    partition = h_partition(graph, threshold, counter)
    return {
        "threshold": threshold,
        "num_classes": partition.num_classes,
        "rounds": counter.total,
        "classes": _sha(partition.classes),
    }


def _case_orientation_hpartition():
    graph = erdos_renyi(40, 0.2, seed=10)
    orientation, bound = low_outdegree_orientation(
        graph, 0.5, method="hpartition"
    )
    return {"bound": bound, "orientation": _sha(orientation)}


def _case_orientation_augmentation():
    graph = union_of_random_forests(30, 3, seed=12)
    counter = RoundCounter()
    orientation, bound = low_outdegree_orientation(
        graph, 0.5, method="augmentation", seed=13, rounds=counter
    )
    return {
        "bound": bound,
        "rounds": counter.total,
        "orientation": _sha(orientation),
    }


CASES = {
    "fd_depth_residue": _case_fd_depth_residue,
    "fd_simultaneous_carve": _case_fd_simultaneous_carve,
    "nd_simultaneous_clusters": _case_nd_simultaneous_clusters,
    "fd_conditioned_sampling": _case_fd_conditioned_sampling,
    "fd_diameter_bounded": _case_fd_diameter_bounded,
    "fd_line_multigraph": _case_fd_line_multigraph,
    "star_forest_amr": _case_star_forest_amr,
    "barenboim_elkin": _case_barenboim_elkin,
    "degeneracy": _case_degeneracy,
    "h_partition": _case_h_partition,
    "orientation_hpartition": _case_orientation_hpartition,
    "orientation_augmentation": _case_orientation_augmentation,
}


def _load():
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _save(golden):
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name, regen):
    actual = CASES[name]()
    if regen:
        golden = _load()
        golden[name] = actual
        _save(golden)
        return
    golden = _load()
    assert name in golden, (
        f"no golden entry for {name!r}; generate with "
        f"pytest tests/test_golden_regression.py --regen"
    )
    assert actual == golden[name], (
        f"{name}: output drifted from frozen golden values — if the change "
        f"is intentional, re-freeze with --regen"
    )
