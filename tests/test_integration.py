"""End-to-end integration tests across modules at moderate scale.

These exercise whole pipelines on graphs of a few hundred vertices and
cross-check different algorithms against each other (exact vs
distributed, list vs ordinary, decomposition vs orientation).
"""

import math
import random

import pytest

import repro
from repro.core import (
    forest_decomposition_algorithm2,
    list_forest_decomposition,
    low_outdegree_orientation,
    star_forest_decomposition_amr,
)
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    line_multigraph,
    preferential_attachment,
    random_palettes,
    union_of_random_forests,
    wheel_graph,
)
from repro.local import RoundCounter
from repro.nashwilliams import (
    exact_arboricity,
    exact_forest_partition,
    exact_pseudoarboricity,
)
from repro.verify import (
    check_forest_decomposition,
    check_orientation,
    check_palettes_respected,
    check_star_forest_decomposition,
    forest_diameter_of_coloring,
)


def test_fd_at_n300():
    g = union_of_random_forests(300, 3, seed=1)
    result = forest_decomposition_algorithm2(
        g, epsilon=1.0, alpha=3, seed=2, radius=8, search_radius=8
    )
    check_forest_decomposition(g, result.coloring)
    assert result.colors_used <= 6


def test_fd_many_graph_families():
    for name, graph in (
        ("grid", grid_graph(9, 9)),
        ("wheel", wheel_graph(40)),
        ("er", erdos_renyi(60, 0.1, seed=3)),
        ("pa", preferential_attachment(80, 2, seed=4)),
        ("line", line_multigraph(40, 2)),
    ):
        alpha = exact_arboricity(graph)
        if alpha == 0:
            continue
        result = forest_decomposition_algorithm2(
            graph, epsilon=1.0, alpha=alpha, seed=5
        )
        check_forest_decomposition(graph, result.coloring)
        assert result.colors_used <= math.ceil(2.0 * alpha), name


def test_exact_vs_algorithm2_color_floor():
    """Algorithm 2 can never use fewer colors than the exact optimum."""
    for seed in range(3):
        g = union_of_random_forests(50, 4, seed=seed)
        exact = exact_forest_partition(g).num_forests
        ours = forest_decomposition_algorithm2(
            g, epsilon=0.5, alpha=4, seed=seed
        ).colors_used
        assert exact <= ours <= math.ceil(1.5 * 4)


def test_orientation_consistency_chain():
    """FD -> orientation -> pseudoforest decomposition chain validates."""
    g = union_of_random_forests(120, 3, seed=7)
    coloring, bound = repro.pseudoforest_decomposition(
        g, epsilon=0.5, alpha=3, seed=8
    )
    from repro.verify import check_pseudoforest_decomposition

    check_pseudoforest_decomposition(g, coloring, max_colors=bound)


def test_lfd_vs_fd_color_usage():
    """With uniform palettes, LFD distinct-color usage is bounded by the
    palette size, like ordinary FD."""
    g = union_of_random_forests(60, 3, seed=9)
    from repro.graph.generators import uniform_palette

    size = 12
    palettes = uniform_palette(g, range(size))
    result = list_forest_decomposition(g, palettes, 1.0, alpha=3, seed=10)
    check_forest_decomposition(g, result.coloring)
    assert len(set(result.coloring.values())) <= size


def test_sfd_stars_also_valid_forests():
    g = union_of_random_forests(80, 4, seed=11, simple=True)
    result = star_forest_decomposition_amr(g, 0.4, alpha=4, seed=12)
    # A star forest decomposition is a fortiori a forest decomposition.
    check_star_forest_decomposition(g, result.coloring)
    check_forest_decomposition(g, result.coloring)


def test_round_accounting_consistency():
    """Total rounds equal the sum over phases."""
    g = union_of_random_forests(40, 2, seed=13)
    rc = RoundCounter()
    forest_decomposition_algorithm2(g, 1.0, alpha=2, seed=14, rounds=rc)
    assert rc.total == sum(rc.by_phase().values())


def test_determinism_across_runs():
    g = union_of_random_forests(60, 3, seed=15)
    a = forest_decomposition_algorithm2(g, 0.5, alpha=3, seed=99).coloring
    b = forest_decomposition_algorithm2(g, 0.5, alpha=3, seed=99).coloring
    assert a == b


def test_different_seeds_both_valid():
    g = union_of_random_forests(60, 3, seed=16)
    for seed in (1, 2, 3):
        result = forest_decomposition_algorithm2(g, 0.5, alpha=3, seed=seed)
        check_forest_decomposition(g, result.coloring)


def test_diameter_bounded_run_at_scale():
    g = line_multigraph(150, 3)
    result = forest_decomposition_algorithm2(
        g, epsilon=1.0, alpha=3, diameter_mode="strong", seed=17
    )
    check_forest_decomposition(g, result.coloring)
    z = math.ceil(20.0 / (1.0 / 6.0))
    assert forest_diameter_of_coloring(g, result.coloring) <= 2 * (z - 1)


def test_alpha_overestimate_still_valid():
    """Passing an overestimate of alpha trades colors for ease but must
    stay valid."""
    g = union_of_random_forests(40, 2, seed=18)
    result = forest_decomposition_algorithm2(g, 0.5, alpha=4, seed=19)
    check_forest_decomposition(g, result.coloring)


def test_dense_er_graph_end_to_end():
    g = erdos_renyi(40, 0.5, seed=20)
    alpha = exact_arboricity(g)
    result = forest_decomposition_algorithm2(g, 0.5, alpha=alpha, seed=21)
    check_forest_decomposition(g, result.coloring)
    assert result.colors_used <= math.ceil(1.5 * alpha)


def test_list_palettes_at_scale():
    g = union_of_random_forests(100, 3, seed=22)
    palettes = random_palettes(g, 12, 36, seed=23)
    result = list_forest_decomposition(g, palettes, 1.0, alpha=3, seed=24)
    check_forest_decomposition(g, result.coloring)
    check_palettes_respected(result.coloring, palettes)
