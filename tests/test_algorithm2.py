"""Tests for Algorithm 2 and the Theorem 4.5/4.6 pipelines."""

import math
import random

import pytest

from repro.graph import MultiGraph
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    line_multigraph,
    path_graph,
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.core import (
    algorithm2,
    forest_decomposition_algorithm2,
)
from repro.nashwilliams import exact_arboricity
from repro.verify import (
    check_forest_decomposition,
    check_forest_diameter,
    check_palettes_respected,
    count_colors,
    pseudoarboricity_upper_bound_check,
)


def test_algorithm2_colors_everything_not_leftover():
    g = union_of_random_forests(50, 3, seed=1)
    palettes = uniform_palette(g, range(4))
    result = algorithm2(g, palettes, epsilon=1.0 / 3, alpha=3, seed=2)
    colored = result.colored
    leftover = set(result.leftover)
    assert set(colored) | leftover == set(g.edge_ids())
    check_forest_decomposition(g, colored, partial=True)
    check_palettes_respected(colored, palettes)


def test_algorithm2_leftover_budget():
    g = union_of_random_forests(60, 3, seed=3)
    palettes = uniform_palette(g, range(4))
    result = algorithm2(
        g, palettes, epsilon=1.0 / 3, alpha=3, seed=4, radius=6, search_radius=6
    )
    leftover = result.leftover
    if leftover:
        budget = math.ceil((1.0 / 3) * 3)  # = 1... allow recorded bound
        orientation = result.leftover_orientation()
        out = {}
        for eid, tail in orientation.items():
            out[tail] = out.get(tail, 0) + 1
        assert max(out.values()) <= math.ceil(1.0 / 3 * 3) + 1


def test_algorithm2_with_list_palettes():
    g = union_of_random_forests(40, 3, seed=5)
    palettes = random_palettes(g, 5, 12, seed=6)
    result = algorithm2(g, palettes, epsilon=0.5, alpha=3, seed=7)
    check_forest_decomposition(g, result.colored, partial=True)
    check_palettes_respected(result.colored, palettes)
    assert not result.state.uncolored_edges()


def test_algorithm2_small_radius_forces_cuts():
    """With tiny radii on a long-diameter multigraph the network
    decomposition has several clusters and CUT really fires."""
    g = line_multigraph(90, 2)
    palettes = uniform_palette(g, range(3))
    result = algorithm2(
        g, palettes, epsilon=0.5, alpha=2, seed=9, radius=2, search_radius=2
    )
    assert result.stats.clusters_processed >= 2
    check_forest_decomposition(g, result.colored, partial=True)
    # Everything not leftover is colored.
    assert not result.state.uncolored_edges()


def test_algorithm2_good_cuts_recorded():
    g = union_of_random_forests(60, 2, seed=10)
    palettes = uniform_palette(g, range(3))
    result = algorithm2(
        g, palettes, epsilon=0.5, alpha=2, seed=11, radius=5, search_radius=5
    )
    assert result.stats.good_cuts + result.stats.bad_cuts == (
        result.stats.clusters_processed
    )
    # Depth-residue cuts are good deterministically.
    assert result.stats.bad_cuts == 0


def test_algorithm2_empty_graph():
    g = MultiGraph.with_vertices(4)
    result = algorithm2(g, {}, 0.5, 1)
    assert result.colored == {}
    assert result.leftover == []


def test_algorithm2_rounds_charged():
    g = union_of_random_forests(30, 2, seed=12)
    palettes = uniform_palette(g, range(3))
    rc = RoundCounter()
    algorithm2(g, palettes, 0.5, 2, seed=13, rounds=rc)
    phases = rc.by_phase()
    assert any("network decomposition" in key for key in phases)
    assert any("cluster processing" in key for key in phases)
    assert rc.total > 0


# ----------------------------------------------------------------------
# Theorem 4.6 pipeline
# ----------------------------------------------------------------------


def test_fd_forest_union():
    g = union_of_random_forests(50, 3, seed=14)
    result = forest_decomposition_algorithm2(g, epsilon=0.9, alpha=3, seed=15)
    check_forest_decomposition(g, result.coloring)
    assert result.colors_used <= math.ceil((1 + 0.9) * 3)


def test_fd_line_multigraph():
    g = line_multigraph(30, 4)
    result = forest_decomposition_algorithm2(g, epsilon=0.75, alpha=4, seed=16)
    check_forest_decomposition(g, result.coloring)
    assert result.colors_used <= math.ceil((1 + 0.75) * 4)


def test_fd_grid():
    g = grid_graph(7, 7)
    alpha = exact_arboricity(g)
    result = forest_decomposition_algorithm2(g, epsilon=1.0, alpha=alpha, seed=17)
    check_forest_decomposition(g, result.coloring)
    assert result.colors_used <= math.ceil(2.0 * alpha)


def test_fd_computes_alpha_when_omitted():
    g = cycle_graph(12)
    result = forest_decomposition_algorithm2(g, epsilon=0.5, seed=18)
    assert result.alpha == 2
    check_forest_decomposition(g, result.coloring)


def test_fd_diameter_mode_strong():
    g = union_of_random_forests(60, 2, seed=19)
    result = forest_decomposition_algorithm2(
        g, epsilon=1.0, alpha=2, diameter_mode="strong", seed=20
    )
    check_forest_decomposition(g, result.coloring)
    # z = ceil(20 / (eps/6)) -> diameter <= 2(z-1); generous check that
    # the reduction actually ran.
    z = math.ceil(20.0 / (1.0 / 6.0))
    check_forest_diameter(g, result.coloring, 2 * (z - 1))


def test_fd_diameter_mode_safe():
    g = path_graph(120)
    result = forest_decomposition_algorithm2(
        g, epsilon=1.0, alpha=1, diameter_mode="safe", seed=21
    )
    check_forest_decomposition(g, result.coloring)
    n = g.n
    z = math.ceil(20.0 * math.log2(n) / (1.0 / 6.0))
    check_forest_diameter(g, result.coloring, 2 * (z - 1))


def test_fd_conditioned_sampling_rule():
    g = union_of_random_forests(40, 2, seed=22)
    result = forest_decomposition_algorithm2(
        g, epsilon=1.0, alpha=2, cut_rule="conditioned_sampling", seed=23,
        radius=5, search_radius=5,
    )
    check_forest_decomposition(g, result.coloring)


def test_fd_empty_graph():
    g = MultiGraph.with_vertices(3)
    result = forest_decomposition_algorithm2(g, 0.5)
    assert result.coloring == {}
    assert result.colors_used == 0


def test_fd_beats_barenboim_elkin():
    """The headline: (1+eps)alpha vs the (2+eps)alpha baseline."""
    import repro

    g = union_of_random_forests(60, 4, seed=24)
    ours = forest_decomposition_algorithm2(g, epsilon=0.5, alpha=4, seed=25)
    baseline_coloring, baseline_colors = repro.barenboim_elkin_forest_decomposition(
        g, epsilon=0.5
    )
    check_forest_decomposition(g, baseline_coloring)
    assert ours.colors_used < baseline_colors
    assert ours.colors_used <= math.ceil(1.5 * 4)
