"""Tests for workload generators."""

import pytest

from repro.errors import GraphError
from repro.graph import MultiGraph, connected_components, is_forest
from repro.graph.generators import (
    add_parallel_copies,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    grid_graph,
    line_multigraph,
    path_graph,
    preferential_attachment,
    random_bipartite,
    random_palettes,
    random_regular_multigraph,
    skewed_palettes,
    star_graph,
    uniform_palette,
    union_of_random_forests,
)


def test_path_cycle_star_complete_counts():
    assert path_graph(5).m == 4
    assert cycle_graph(5).m == 5
    assert star_graph(5).m == 4
    k5 = complete_graph(5)
    assert k5.m == 10
    assert k5.is_simple()


def test_cycle_too_small():
    with pytest.raises(GraphError):
        cycle_graph(2)


def test_grid_counts():
    g = grid_graph(3, 4)
    assert g.n == 12
    assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical


def test_union_of_forests_arboricity_bound():
    g = union_of_random_forests(30, 4, seed=1)
    assert g.n == 30
    assert g.m == 4 * 29
    # Each forest layer alone is a forest; overall density == 4 exactly.
    assert g.m == 4 * (g.n - 1)


def test_union_of_forests_deterministic():
    a = union_of_random_forests(20, 3, seed=42)
    b = union_of_random_forests(20, 3, seed=42)
    assert a == b


def test_union_of_forests_simple_mode():
    g = union_of_random_forests(25, 3, seed=7, simple=True)
    assert g.is_simple()


def test_union_of_forests_density():
    g = union_of_random_forests(30, 2, seed=3, density=0.5)
    assert g.m < 2 * 29


def test_line_multigraph():
    g = line_multigraph(5, 3)
    assert g.n == 5
    assert g.m == 4 * 3
    assert g.multiplicity(0, 1) == 3
    with pytest.raises(GraphError):
        line_multigraph(1, 2)
    with pytest.raises(GraphError):
        line_multigraph(3, 0)


def test_erdos_renyi_extremes():
    assert erdos_renyi(10, 0.0, seed=0).m == 0
    assert erdos_renyi(10, 1.0, seed=0).m == 45


def test_erdos_renyi_deterministic():
    assert erdos_renyi(15, 0.3, seed=5) == erdos_renyi(15, 0.3, seed=5)


def test_random_regular_degrees():
    g = random_regular_multigraph(10, 4, seed=2)
    assert g.m == 20
    for v in g.vertices():
        assert g.degree(v) == 4


def test_random_regular_parity_check():
    with pytest.raises(GraphError):
        random_regular_multigraph(5, 3, seed=0)


def test_preferential_attachment():
    g = preferential_attachment(40, 3, seed=9)
    assert g.n == 40
    assert g.is_simple()
    # Arboricity at most out_degree: check density of whole graph.
    assert g.m <= 3 * (g.n - 1)
    assert len(connected_components(g)) == 1


def test_random_bipartite():
    g = random_bipartite(5, 7, 0.5, seed=4)
    for eid, u, v in g.edges():
        assert (u < 5) != (v < 5)


def test_add_parallel_copies():
    g = add_parallel_copies(path_graph(4), 3)
    assert g.m == 9
    assert g.multiplicity(0, 1) == 3
    with pytest.raises(GraphError):
        add_parallel_copies(path_graph(3), 0)


def test_uniform_palette():
    g = path_graph(4)
    pal = uniform_palette(g, [0, 1, 2])
    assert set(pal.keys()) == set(g.edge_ids())
    assert all(p == [0, 1, 2] for p in pal.values())


def test_random_palettes():
    g = path_graph(10)
    pal = random_palettes(g, 3, 8, seed=1)
    for p in pal.values():
        assert len(p) == 3
        assert len(set(p)) == 3
        assert all(0 <= c < 8 for c in p)
    with pytest.raises(GraphError):
        random_palettes(g, 9, 8, seed=1)


def test_skewed_palettes():
    g = path_graph(20)
    pal = skewed_palettes(g, 4, 20, hot_fraction=0.5, seed=2)
    for p in pal.values():
        assert len(p) == 4
        assert len(set(p)) == 4


def test_empty_graph():
    g = empty_graph(7)
    assert g.n == 7
    assert g.m == 0


def test_wheel_graph():
    from repro.graph.generators import wheel_graph

    g = wheel_graph(8)
    assert g.n == 8
    assert g.m == 2 * 7  # 7 spokes + 7 rim edges
    assert g.degree(0) == 7  # hub
    with pytest.raises(GraphError):
        wheel_graph(3)


def test_wheel_arboricity_two():
    from repro.graph.generators import wheel_graph
    from repro.nashwilliams import exact_arboricity

    assert exact_arboricity(wheel_graph(10)) == 2


def test_caterpillar():
    from repro.graph.generators import caterpillar

    g = caterpillar(4, 3)
    assert g.n == 4 + 12
    assert g.m == 3 + 12  # spine + legs
    assert is_forest(g, g.edge_ids())
    with pytest.raises(GraphError):
        caterpillar(0, 2)
