"""Failure-injection tests: corrupted outputs must be caught loudly.

The validators are the reproduction's trust anchor — these tests tamper
with valid outputs in every way a buggy algorithm could and assert the
independent checkers reject each corruption.
"""

import pytest

from repro.errors import ValidationError
from repro.graph import MultiGraph
from repro.graph.generators import (
    cycle_graph,
    path_graph,
    star_graph,
    uniform_palette,
    union_of_random_forests,
)
from repro.nashwilliams import exact_forest_decomposition
from repro.verify import (
    check_forest_decomposition,
    check_forest_diameter,
    check_hpartition,
    check_orientation,
    check_palettes_respected,
    check_star_forest_decomposition,
    check_vertex_coloring_proper,
)


@pytest.fixture()
def valid_fd():
    g = union_of_random_forests(20, 2, seed=1)
    return g, exact_forest_decomposition(g)


def test_cycle_injection_caught(valid_fd):
    g, coloring = valid_fd
    # Force a monochromatic cycle: find two parallel-ish paths... simply
    # recolor all edges to one color; a graph with m > n-1 must cycle.
    broken = {eid: 0 for eid in coloring}
    with pytest.raises(ValidationError):
        check_forest_decomposition(g, broken)


def test_missing_edge_caught(valid_fd):
    g, coloring = valid_fd
    broken = dict(coloring)
    broken.pop(next(iter(broken)))
    with pytest.raises(ValidationError):
        check_forest_decomposition(g, broken)


def test_unknown_edge_caught(valid_fd):
    g, coloring = valid_fd
    broken = dict(coloring)
    broken[99999] = 0
    with pytest.raises(ValidationError):
        check_forest_decomposition(g, broken)


def test_color_cap_enforced(valid_fd):
    g, coloring = valid_fd
    with pytest.raises(ValidationError):
        check_forest_decomposition(g, coloring, max_colors=1)


def test_partial_mode_allows_gaps(valid_fd):
    g, coloring = valid_fd
    partial = dict(coloring)
    partial.pop(next(iter(partial)))
    check_forest_decomposition(g, partial, partial=True)  # no raise


def test_star_violation_caught():
    g = path_graph(4)  # 3-edge path: a forest but not a star forest
    coloring = {eid: 0 for eid in g.edge_ids()}
    check_forest_decomposition(g, coloring)
    with pytest.raises(ValidationError):
        check_star_forest_decomposition(g, coloring)


def test_palette_violation_caught():
    g = path_graph(3)
    palettes = uniform_palette(g, [0, 1])
    coloring = {eid: 5 for eid in g.edge_ids()}
    with pytest.raises(ValidationError):
        check_palettes_respected(coloring, palettes)


def test_diameter_violation_caught():
    g = path_graph(10)
    coloring = {eid: 0 for eid in g.edge_ids()}
    with pytest.raises(ValidationError):
        check_forest_diameter(g, coloring, 3)


def test_orientation_wrong_tail_caught():
    g = path_graph(3)
    orientation = {0: 0, 1: 0}  # vertex 0 is not an endpoint of edge 1
    with pytest.raises(ValidationError):
        check_orientation(g, orientation, 5)


def test_orientation_missing_edge_caught():
    g = path_graph(3)
    with pytest.raises(ValidationError):
        check_orientation(g, {0: 0}, 5)


def test_orientation_outdegree_cap():
    g = star_graph(5)
    orientation = {eid: 0 for eid in g.edge_ids()}  # all out of the hub
    with pytest.raises(ValidationError):
        check_orientation(g, orientation, 2)


def test_orientation_cycle_caught():
    g = cycle_graph(3)
    # Orient the triangle cyclically: 0->1->2->0.
    orientation = {}
    for eid, u, v in g.edges():
        orientation[eid] = u
    # Ensure it is actually cyclic by construction of cycle_graph edges.
    with pytest.raises(ValidationError):
        check_orientation(g, orientation, 3, require_acyclic=True)


def test_hpartition_violation_caught():
    g = star_graph(6)
    classes = {v: 1 for v in g.vertices()}  # hub has 5 same-class nbrs
    with pytest.raises(ValidationError):
        check_hpartition(g, classes, threshold=2)


def test_hpartition_missing_vertex_caught():
    g = path_graph(3)
    with pytest.raises(ValidationError):
        check_hpartition(g, {0: 1, 1: 1}, threshold=2)


def test_vertex_coloring_checker():
    g = path_graph(3)
    with pytest.raises(ValidationError):
        check_vertex_coloring_proper(g, {0: 1, 1: 1, 2: 0}, g.edge_ids())
    check_vertex_coloring_proper(g, {0: 0, 1: 1, 2: 0}, g.edge_ids())


def test_augmentation_state_tamper_detection():
    """PartialListForestDecomposition.assert_valid catches palette and
    leftover tampering, not just cycles."""
    from repro.core import PartialListForestDecomposition

    g = path_graph(4)
    state = PartialListForestDecomposition(g, uniform_palette(g, [0, 1]))
    state.set_color(0, 0)
    state._color[0] = 99  # bypass palette guard
    state._detach(0, 0)
    state._attach(0, 99)
    with pytest.raises(ValidationError):
        state.assert_valid()


def test_leftover_tamper_detection():
    from repro.core import PartialListForestDecomposition

    g = path_graph(4)
    state = PartialListForestDecomposition(g, uniform_palette(g, [0]))
    state.set_color(0, 0)
    state._leftover.add(0)  # colored edge marked leftover
    with pytest.raises(ValidationError):
        state.assert_valid()
