"""Serve daemon + checkpoint/resume tests (repro.service).

Three layers:

* **Checkpointer units** — snapshot/restore round trip (graph bytes,
  id counters, journal chain), torn-tail tolerance, corruption
  detection;
* **in-process daemon** — the full op surface over a real socket
  (load, watch, delta, query dedup, stats, checkpoint, shutdown) plus
  the worker-pool shutdown regression;
* **subprocess crash/resume** — ``kill -9`` mid-stream then
  ``repro serve --resume`` must reproduce the uninterrupted run
  bit-identically (chain, coloring, content digest), and SIGTERM must
  exit 0 after a checkpoint-on-exit.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro import DecompositionConfig, GraphError
from repro.graph.generators import union_of_random_forests
from repro.parallel.engine import pool_stats
from repro.service import checkpoint as checkpoint_mod
from repro.service.checkpoint import Checkpointer, restore_session
from repro.service.client import ServeClient, ServeError
from repro.service.server import READY_PREFIX, ReproServer


def random_edges(rng, n, m):
    edges = []
    while len(edges) < m:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            edges.append((u, v))
    return edges


# ----------------------------------------------------------------------
# Checkpointer units
# ----------------------------------------------------------------------


def make_session(seed=0, n=40, m=90):
    rng = np.random.default_rng(seed)
    graph = repro.MultiGraph.from_edges(n, random_edges(rng, n, m))
    session = repro.Session(
        graph, DecompositionConfig(backend="csr", validation="basic")
    )
    session.watch("orientation", method="hpartition")
    return session


def test_checkpoint_round_trip(tmp_path):
    session = make_session()
    session.apply_delta(inserts=[(0, 1), (2, 3)])
    ckpt = Checkpointer(str(tmp_path))
    generation = ckpt.checkpoint(session)
    assert generation == 1
    ckpt.close()

    restored = checkpoint_mod.load(str(tmp_path))
    assert restored is not None
    assert restored.seq == 1 and restored.replayed == 0
    assert restored.graph._next_edge == session.graph._next_edge
    assert restored.graph._next_vertex == session.graph._next_vertex
    twin = restore_session(restored)
    assert twin.content_digest() == session.content_digest()
    assert twin.fingerprint() == session.fingerprint()
    assert (
        twin.current("orientation").coloring
        == session.current("orientation").coloring
    )
    # chains continue identically from the restored position
    a = session.apply_delta(inserts=[(5, 6)])
    b = twin.apply_delta(inserts=[(5, 6)])
    assert a.chain == b.chain and a.inserted == b.inserted


def test_checkpoint_journal_replay(tmp_path):
    session = make_session(seed=1)
    ckpt = Checkpointer(str(tmp_path))
    ckpt.checkpoint(session)
    for step in range(3):
        report = session.apply_delta(inserts=[(step, step + 10)])
        ckpt.journal(
            {
                "seq": report.seq,
                "inserts": [[step, step + 10]],
                "deletes": [],
            },
            report.chain,
        )
    ckpt.close()
    restored = checkpoint_mod.load(str(tmp_path))
    assert restored.replayed == 3 and restored.seq == 3
    twin = restore_session(restored)
    assert twin.content_digest() == session.content_digest()


def test_checkpoint_drops_torn_tail_line(tmp_path):
    session = make_session(seed=2)
    ckpt = Checkpointer(str(tmp_path))
    ckpt.checkpoint(session)
    report = session.apply_delta(inserts=[(1, 2)])
    ckpt.journal({"seq": 1, "inserts": [[1, 2]], "deletes": []},
                 report.chain)
    ckpt.close()
    journal = tmp_path / "journal-000001.jsonl"
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "inserts": [[3,')  # kill -9 mid-write
    restored = checkpoint_mod.load(str(tmp_path))
    assert restored.replayed == 1 and restored.seq == 1


def test_checkpoint_detects_chain_corruption(tmp_path):
    session = make_session(seed=3)
    ckpt = Checkpointer(str(tmp_path))
    ckpt.checkpoint(session)
    session.apply_delta(inserts=[(1, 2)])
    ckpt.journal({"seq": 1, "inserts": [[1, 2]], "deletes": []},
                 "0" * 64)  # wrong chain value
    ckpt.close()
    with pytest.raises(GraphError):
        checkpoint_mod.load(str(tmp_path))


def test_checkpoint_prunes_old_generations(tmp_path):
    session = make_session(seed=4)
    ckpt = Checkpointer(str(tmp_path))
    for _ in range(4):
        ckpt.checkpoint(session)
    ckpt.close()
    names = sorted(os.listdir(tmp_path))
    assert "state-000004.npz" in names and "state-000001.npz" not in names
    assert checkpoint_mod.load(str(tmp_path)).generation == 4


def test_load_empty_directory_returns_none(tmp_path):
    assert checkpoint_mod.load(str(tmp_path)) is None


# ----------------------------------------------------------------------
# In-process daemon
# ----------------------------------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    server = ReproServer(
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=3
    )
    server.start()
    host, port = server.address[:2]
    client = ServeClient(host, port)
    yield server, client, tmp_path
    client.close()
    server.stop(final_checkpoint=False)


def test_daemon_round_trip(daemon):
    server, client, _tmp = daemon
    rng = np.random.default_rng(5)
    edges = random_edges(rng, 50, 120)

    ping = client.ping()
    assert ping["ok"] and not ping["loaded"]
    assert client.load_graph(edges=edges, n=50)["m"] == 120
    watched = client.watch("orientation", method="hpartition")
    assert watched["result"]["kind"] == "orientation"

    live = list(range(120))
    for step in range(5):
        dels = [live.pop(int(rng.integers(0, len(live))))]
        ins = [(int(rng.integers(0, 50)), 1 + int(rng.integers(1, 49)))]
        ins = [(u, v) for u, v in ins if u != v] or [(0, 1)]
        report = client.apply_delta(inserts=ins, deletes=dels)["report"]
        assert report["seq"] == step + 1
        live.extend(report["inserted"])

    current = client.current("orientation", include="full")
    q1 = client.query("orientation", include="full", method="hpartition")
    q2 = client.query("orientation", method="hpartition")
    assert not q1["cached"] and q2["cached"]
    assert q1["full"]["coloring"] == current["full"]["coloring"]

    stats = client.stats()
    assert stats["requests"]["apply_delta"]["requests"] == 5
    assert stats["query_cache"]["hits"] == 1
    assert stats["session"]["seq"] == 5
    assert stats["checkpoint"]["generation"] >= 2  # periodic every 3

    generation = client.checkpoint()["generation"]
    assert generation > 0


def test_daemon_error_paths(daemon):
    _server, client, _tmp = daemon
    with pytest.raises(ServeError) as error:
        client.request("no_such_op")
    assert error.value.kind == "GraphError"
    with pytest.raises(ServeError):
        client.apply_delta(inserts=[(0, 1)])  # no graph loaded
    client.load_graph(edges=[(0, 1), (1, 2)], n=3)
    with pytest.raises(ServeError):
        client.current("orientation")  # not watched
    with pytest.raises(ServeError):
        client.apply_delta(deletes=[999])  # unknown edge
    # the daemon survives all of the above
    assert client.ping()["ok"]


def test_daemon_shutdown_reclaims_worker_pools(tmp_path):
    """SIGTERM-path regression: stop() must leave zero live pools (the
    shared engine pools are process-global; a daemon that exits without
    engine shutdown leaks its worker threads)."""
    server = ReproServer(
        checkpoint_dir=str(tmp_path),
        config=DecompositionConfig(backend="parallel", workers=2),
    )
    server.start()
    client = ServeClient(*server.address[:2])
    rng = np.random.default_rng(6)
    client.load_graph(edges=random_edges(rng, 400, 1200), n=400)
    client.watch("orientation", method="hpartition")
    client.apply_delta(inserts=[(0, 7)])
    client.shutdown()
    client.close()
    assert server.wait_for_shutdown(10)
    server.stop()
    stats = pool_stats()
    assert stats["pools"] == 0
    # the mp backend's resources obey the same lifecycle: no process
    # pools and no shared-memory segments may survive engine shutdown
    assert stats["mp_pools"] == 0
    assert stats["shm_segments"] == 0
    if os.path.isdir("/dev/shm"):
        leaked = [
            name for name in os.listdir("/dev/shm")
            if name.startswith(f"repro-shm-{os.getpid()}-")
        ]
        assert leaked == []
    # checkpoint-on-exit happened
    assert checkpoint_mod.load(str(tmp_path)) is not None


def test_daemon_in_process_resume(tmp_path):
    graph_session = make_session(seed=7)
    server = ReproServer(checkpoint_dir=str(tmp_path))
    server.start()
    client = ServeClient(*server.address[:2])
    edges = [graph_session.graph.endpoints(e)
             for e in graph_session.graph.edge_ids()]
    client.load_graph(edges=edges, n=graph_session.graph.n)
    client.watch("orientation", method="hpartition")
    client.apply_delta(inserts=[(0, 2), (3, 9)])
    client.shutdown()
    client.close()
    assert server.wait_for_shutdown(10)
    server.stop()

    twin = ReproServer(checkpoint_dir=str(tmp_path), resume=True)
    assert twin.resumed
    twin.start()
    client = ServeClient(*twin.address[:2])
    ping = client.ping()
    assert ping["seq"] == 1 and ping["watched"] == ["orientation"]
    reference = graph_session.apply_delta(inserts=[(0, 2), (3, 9)])
    assert (
        client.stats()["session"]["content_digest"]
        == graph_session.content_digest()
    )
    follow = client.apply_delta(inserts=[(4, 5)])["report"]
    reference = graph_session.apply_delta(inserts=[(4, 5)])
    assert follow["chain"] == reference.chain
    client.close()
    twin.stop(final_checkpoint=False)


# ----------------------------------------------------------------------
# Subprocess crash / resume
# ----------------------------------------------------------------------


def _spawn_daemon(tmp_path, resume=False, extra=()):
    cmd = [
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "4",
        *extra,
    ]
    if resume:
        cmd.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith(READY_PREFIX), (line, proc.stderr.read())
    fields = dict(kv.split("=") for kv in line.split()[1:])
    return proc, int(fields["port"])


@pytest.mark.slow
def test_kill_9_mid_stream_then_resume_matches_uninterrupted(tmp_path):
    rng = np.random.default_rng(11)
    n = 60
    edges = random_edges(rng, n, 150)
    batches = [
        [(int(rng.integers(0, n)), int(rng.integers(1, n)))]
        for _ in range(10)
    ]
    batches = [[(u, v) for u, v in b if u != v] or [(0, 1)]
               for b in batches]

    proc, port = _spawn_daemon(tmp_path)
    client = ServeClient("127.0.0.1", port)
    client.load_graph(edges=edges, n=n)
    client.watch("orientation", method="hpartition")
    for batch in batches[:6]:
        client.apply_delta(inserts=batch)
    proc.send_signal(signal.SIGKILL)  # no cleanup of any kind
    proc.wait(timeout=30)
    client.close()

    proc2, port2 = _spawn_daemon(tmp_path, resume=True)
    try:
        client = ServeClient("127.0.0.1", port2)
        ping = client.ping()
        assert ping["resumed"] and ping["seq"] == 6
        for batch in batches[6:]:
            last = client.apply_delta(inserts=batch)["report"]
        resumed = client.current("orientation", include="full")["full"]
        digest = client.stats()["session"]["content_digest"]
        client.shutdown()
        client.close()
        proc2.wait(timeout=30)
    finally:
        if proc2.poll() is None:
            proc2.kill()

    # uninterrupted reference run, same ops in one process
    graph = repro.MultiGraph.from_edges(n, edges)
    session = repro.Session(graph)
    session.watch("orientation", method="hpartition")
    for batch in batches:
        reference = session.apply_delta(inserts=batch)
    assert last["chain"] == reference.chain
    assert digest == session.content_digest()
    expected = session.current("orientation").to_json()
    assert resumed["coloring"] == expected["coloring"]
    assert resumed["bound"] == expected["bound"]


@pytest.mark.slow
def test_sigterm_checkpoints_and_exits_cleanly(tmp_path):
    rng = np.random.default_rng(12)
    proc, port = _spawn_daemon(tmp_path)
    client = ServeClient("127.0.0.1", port)
    client.load_graph(edges=random_edges(rng, 30, 60), n=30)
    client.watch("pseudoforest", method="hpartition")
    client.apply_delta(inserts=[(0, 5)])
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    client.close()
    restored = checkpoint_mod.load(str(tmp_path))
    assert restored is not None and restored.seq == 1
    twin = restore_session(restored)
    assert twin.watched() == ("pseudoforest",)
    graph = repro.MultiGraph.from_edges(
        30, random_edges(np.random.default_rng(12), 30, 60)
    )
    graph.add_edge(0, 5)
    assert (
        twin.content_digest() == repro.Session(graph).content_digest()
    )


def test_cli_client_one_shot(tmp_path):
    """``repro client`` sends one op and prints the JSON reply."""
    proc, port = _spawn_daemon(tmp_path)
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-m", "repro", "client", "ping",
             "--port", str(port)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        payload = json.loads(out.stdout)
        assert payload["ok"] and payload["op"] == "ping"
        subprocess.run(
            [sys.executable, "-m", "repro", "client", "shutdown",
             "--port", str(port)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()


def test_serve_help_listed():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["serve", "--help"])
