"""Tests for edge-list IO and the command-line interface."""

import io
import os

import pytest

from repro.errors import GraphError
from repro.graph import MultiGraph
from repro.graph.generators import line_multigraph, union_of_random_forests
from repro.graph.io import (
    read_coloring,
    read_edge_list,
    read_palettes,
    write_coloring,
    write_edge_list,
    write_palettes,
)
from repro.__main__ import main as cli_main


def test_edge_list_roundtrip():
    g = union_of_random_forests(15, 2, seed=1)
    buffer = io.StringIO()
    write_edge_list(g, buffer)
    buffer.seek(0)
    back = read_edge_list(buffer)
    assert back == g  # ids assigned in file order == original ids


def test_edge_list_roundtrip_multigraph():
    g = line_multigraph(4, 3)
    buffer = io.StringIO()
    write_edge_list(g, buffer)
    buffer.seek(0)
    back = read_edge_list(buffer)
    assert back.m == g.m
    assert back.multiplicity(0, 1) == 3


def test_edge_list_file_roundtrip(tmp_path):
    g = union_of_random_forests(10, 2, seed=2)
    path = str(tmp_path / "g.txt")
    write_edge_list(g, path)
    assert read_edge_list(path) == g


def test_edge_list_headerless_is_snap():
    # A headerless pair stream is a SNAP-style file: vertices 0..max id,
    # edge ids in file order, optional third column (weight) ignored.
    g = read_edge_list(io.StringIO("# comment\n0 1\n2\t0\t7.5\n"))
    assert g.n == 3
    assert g.m == 2
    assert sorted((u, v) for _eid, u, v in g.edges()) == [(0, 1), (2, 0)]


def test_edge_list_empty_headerless_raises():
    with pytest.raises(GraphError):
        read_edge_list(io.StringIO("# nothing here\n"))


def test_edge_list_snap_negative_vertex_raises():
    with pytest.raises(GraphError):
        read_edge_list(io.StringIO("0 1\n-1 2\n"))


def test_edge_list_bad_line():
    with pytest.raises(GraphError):
        read_edge_list(io.StringIO("n 3\n0 1 2\n"))


def test_edge_list_comments_and_blanks():
    g = read_edge_list(io.StringIO("# hi\n\nn 3\n# edge next\n0 1\n"))
    assert g.n == 3
    assert g.m == 1


def test_coloring_roundtrip(tmp_path):
    path = str(tmp_path / "c.txt")
    write_coloring({0: 2, 1: 0, 5: 1}, path)
    back = read_coloring(path)
    assert back == {0: "2", 1: "0", 5: "1"}


def test_coloring_bad_line():
    with pytest.raises(GraphError):
        read_coloring(io.StringIO("justoneword\n"))


def test_palettes_roundtrip(tmp_path):
    path = str(tmp_path / "p.txt")
    write_palettes({0: [1, 2, 3], 7: [0]}, path)
    back = read_palettes(path)
    assert back == {0: [1, 2, 3], 7: [0]}


def test_palettes_bad_line():
    with pytest.raises(GraphError):
        read_palettes(io.StringIO("5\n"))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


@pytest.fixture()
def graph_file(tmp_path):
    g = union_of_random_forests(20, 2, seed=3)
    path = str(tmp_path / "graph.txt")
    write_edge_list(g, path)
    return path


def test_cli_stats(graph_file, capsys):
    assert cli_main(["stats", graph_file]) == 0
    out = capsys.readouterr().out
    assert "arboricity = 2" in out
    assert "n = 20" in out


def test_cli_fd(graph_file, tmp_path, capsys):
    out_path = str(tmp_path / "coloring.txt")
    code = cli_main([
        "fd", graph_file, "--epsilon", "0.5", "--alpha", "2",
        "--out", out_path,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "forests used:" in out
    assert os.path.exists(out_path)
    coloring = read_coloring(out_path)
    assert len(coloring) == 2 * 19


def test_cli_orient(graph_file, capsys):
    code = cli_main([
        "orient", graph_file, "--alpha", "2", "--method", "exact",
    ])
    assert code == 0
    assert "out-degree bound:" in capsys.readouterr().out


def test_cli_sfd(tmp_path, capsys):
    g = union_of_random_forests(25, 3, seed=5, simple=True)
    path = str(tmp_path / "simple.txt")
    write_edge_list(g, path)
    assert cli_main(["sfd", path, "--epsilon", "0.5", "--alpha", "3"]) == 0
    assert "star forests used:" in capsys.readouterr().out


def test_cli_generate(tmp_path, capsys):
    out_path = str(tmp_path / "generated.txt")
    code = cli_main([
        "generate", "forest-union", "--n", "15", "--alpha", "2",
        "--seed", "1", "--out", out_path,
    ])
    assert code == 0
    g = read_edge_list(out_path)
    assert g.n == 15
    assert g.m == 2 * 14


def test_cli_fd_json(graph_file, capsys):
    import json

    assert cli_main(["fd", graph_file, "--alpha", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "forest"
    assert payload["colors_used"] >= 2
    assert payload["config"]["alpha"] == 2
    assert isinstance(payload["coloring"], list)


def test_cli_fd_backend_dict_matches_csr(graph_file, capsys):
    import json

    outputs = {}
    for backend in ("dict", "csr"):
        assert cli_main([
            "fd", graph_file, "--alpha", "2", "--json",
            "--backend", backend,
        ]) == 0
        outputs[backend] = json.loads(capsys.readouterr().out)["coloring"]
    assert outputs["dict"] == outputs["csr"]


def test_cli_decompose_forest(graph_file, capsys):
    assert cli_main([
        "decompose", graph_file, "--task", "forest", "--alpha", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "task: forest" in out
    assert "colors used:" in out


def test_cli_decompose_carve_rule(graph_file, capsys):
    """--carve-rule reaches the config; both rules produce a valid
    forest decomposition with the same color count on this instance."""
    import json

    outputs = {}
    for rule in ("doubling", "simultaneous"):
        assert cli_main([
            "decompose", graph_file, "--task", "forest", "--alpha", "2",
            "--seed", "7", "--carve-rule", rule, "--json",
            "--validation", "basic",
        ]) == 0
        outputs[rule] = json.loads(capsys.readouterr().out)
    assert outputs["doubling"]["config"]["carve_rule"] == "doubling"
    assert outputs["simultaneous"]["config"]["carve_rule"] == "simultaneous"


def test_cli_decompose_orientation_json(graph_file, capsys):
    import json

    assert cli_main([
        "decompose", graph_file, "--task", "orientation",
        "--method", "exact", "--alpha", "2", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "orientation"
    assert payload["bound"] == 3  # ceil((1 + 0.5) * 2)


def test_cli_decompose_json_out_file(graph_file, tmp_path, capsys):
    import json

    out_path = str(tmp_path / "result.json")
    assert cli_main([
        "decompose", graph_file, "--task", "pseudoforest", "--alpha", "2",
        "--out", out_path,
    ]) == 0
    with open(out_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["kind"] == "pseudoforest"
    assert "k" in payload


def test_cli_decompose_list_forest_with_palettes(tmp_path, capsys):
    from repro.graph.generators import skewed_palettes
    from repro.graph.io import write_palettes

    g = union_of_random_forests(20, 2, seed=3)
    graph_path = str(tmp_path / "graph.txt")
    write_edge_list(g, graph_path)
    palettes = skewed_palettes(g, 9, color_space=27, hot_fraction=0.5, seed=3)
    palette_path = str(tmp_path / "palettes.txt")
    write_palettes(palettes, palette_path)
    assert cli_main([
        "decompose", graph_path, "--task", "list_forest",
        "--palettes", palette_path, "--epsilon", "1.0", "--alpha", "2",
    ]) == 0
    assert "task: list_forest" in capsys.readouterr().out


def test_cli_decompose_rejects_inapplicable_flags(graph_file, capsys):
    assert cli_main([
        "decompose", graph_file, "--task", "forest",
        "--method", "augmentation",
    ]) == 2
    assert "--method does not apply" in capsys.readouterr().err
    assert cli_main([
        "decompose", graph_file, "--task", "orientation",
        "--palettes", graph_file,
    ]) == 2
    assert "--palettes does not apply" in capsys.readouterr().err


def test_cli_decompose_unknown_task_clean_error(graph_file, capsys):
    assert cli_main([
        "decompose", graph_file, "--task", "bogus_task",
    ]) == 2
    err = capsys.readouterr().err
    assert "unknown task" in err and "forest" in err


def test_cli_decompose_epsilon_defaults_to_task_default(tmp_path, capsys):
    import json

    g = union_of_random_forests(25, 3, seed=5, simple=True)
    path = str(tmp_path / "simple.txt")
    write_edge_list(g, path)
    assert cli_main([
        "decompose", path, "--task", "star_forest", "--alpha", "3",
        "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["epsilon"] == 0.25  # star_forest's default


def test_cli_decompose_report(graph_file, capsys):
    assert cli_main([
        "decompose", graph_file, "--task", "forest", "--alpha", "2",
        "--report",
    ]) == 0
    assert "valid forest decomposition" in capsys.readouterr().out


def test_cli_orient_json_out(graph_file, tmp_path, capsys):
    import json

    out_path = str(tmp_path / "orient.json")
    assert cli_main([
        "orient", graph_file, "--alpha", "2", "--method", "exact",
        "--out", out_path,
    ]) == 0
    with open(out_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["kind"] == "orientation"
    assert payload["bound"] == 3


def test_cli_generate_line_multigraph(tmp_path):
    out_path = str(tmp_path / "line.txt")
    assert cli_main([
        "generate", "line-multigraph", "--n", "10", "--alpha", "3",
        "--out", out_path,
    ]) == 0
    g = read_edge_list(out_path)
    assert g.multiplicity(0, 1) == 3
