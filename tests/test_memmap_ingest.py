"""Out-of-core CSR ingest: :meth:`CSRGraph.from_edge_iter`.

The contract under test is **byte identity**: for any edge stream, the
chunked two-pass ingest (RAM or ``np.memmap``-backed, any chunk size)
produces exactly the arrays ``from_multigraph(MultiGraph.from_edges(n,
pairs))`` would — same values, same dtypes, same half-edge order — so
every downstream kernel (peeling, orientation, decompose) is oblivious
to how the snapshot was built.  Plus the out-of-core specifics: arrays
really are memmaps under ``mmap_dir``, the edge spool is deleted after
the build, and a memmap snapshot flows through :func:`repro.decompose`
with results identical to the in-RAM path.
"""

import os
import random

import numpy as np
import pytest

import repro
from repro.errors import GraphError
from repro.graph import CSRGraph, MultiGraph

ARRAYS = (
    "vertex_ids",
    "vertex_offsets",
    "neighbor_ids",
    "edge_ids",
    "edge_u",
    "edge_v",
    "edge_id",
)


def random_pairs(seed):
    """A seeded edge stream with parallel edges and isolated vertices."""
    rng = random.Random(seed * 104_729 + 7)
    n = rng.randint(2, 60)
    pairs = []
    for _ in range(rng.randint(0, 4 * n)):
        if pairs and rng.random() < 0.2:
            pairs.append(rng.choice(pairs))  # parallel copy
        else:
            u = rng.randrange(n)
            v = rng.randrange(n)
            while v == u:
                v = rng.randrange(n)
            pairs.append((u, v))
    return n, pairs


def assert_same_snapshot(built, reference):
    """Byte identity on all seven CSR arrays, dtypes included."""
    for name in ARRAYS:
        mine = np.asarray(getattr(built, name))
        ref = np.asarray(getattr(reference, name))
        assert mine.dtype == ref.dtype, name
        assert np.array_equal(mine, ref), name
    # stream ingest always produces identity numberings
    assert built._index_of is None
    assert built._eid_pos is None


@pytest.mark.parametrize("chunk_edges", [7, 1 << 20])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
def test_from_edge_iter_matches_from_multigraph(seed, chunk_edges):
    n, pairs = random_pairs(seed)
    reference = CSRGraph.from_multigraph(MultiGraph.from_edges(n, pairs))
    built = CSRGraph.from_edge_iter(
        iter(pairs), n=n, chunk_edges=chunk_edges
    )
    assert_same_snapshot(built, reference)


def test_from_edge_iter_accepts_array_chunks_and_infers_n():
    n, pairs = random_pairs(6)
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    # pre-chunked ndarray source, n inferred as max id + 1
    built = CSRGraph.from_edge_iter(
        [arr[: len(pairs) // 2], arr[len(pairs) // 2 :]]
    )
    inferred_n = int(arr.max()) + 1
    reference = CSRGraph.from_multigraph(
        MultiGraph.from_edges(inferred_n, pairs)
    )
    assert_same_snapshot(built, reference)


def test_from_edge_iter_empty():
    built = CSRGraph.from_edge_iter([], n=3)
    reference = CSRGraph.from_multigraph(MultiGraph.with_vertices(3))
    assert_same_snapshot(built, reference)
    assert CSRGraph.from_edge_iter([]).num_vertices == 0


@pytest.mark.parametrize("chunk_edges", [7, 1 << 20])
def test_memmap_ingest_byte_identical_to_ram(tmp_path, chunk_edges):
    n, pairs = random_pairs(8)
    mmap_dir = str(tmp_path / "csr")
    built = CSRGraph.from_edge_iter(
        iter(pairs), n=n, mmap_dir=mmap_dir, chunk_edges=chunk_edges
    )
    reference = CSRGraph.from_multigraph(MultiGraph.from_edges(n, pairs))
    assert_same_snapshot(built, reference)

    assert built.mmap_dir == mmap_dir
    for name in ARRAYS:
        array = getattr(built, name)
        assert isinstance(array, np.memmap), name
        assert os.path.exists(os.path.join(mmap_dir, f"{name}.npy")), name
    # the ingest spool is transient: deleted once the arrays are built
    assert not os.path.exists(os.path.join(mmap_dir, "edge-spool.bin"))


def test_memmap_ingest_larger_numpy_stream(tmp_path):
    rng = np.random.default_rng(1234)
    n = 2_000
    u = rng.integers(0, n, size=10_000, dtype=np.int64)
    v = rng.integers(0, n - 1, size=10_000, dtype=np.int64)
    v = np.where(v >= u, v + 1, v)  # no self-loops
    edges = np.stack((u, v), axis=1)

    def chunks():
        for lo in range(0, len(edges), 1_024):
            yield edges[lo : lo + 1_024]

    built = CSRGraph.from_edge_iter(
        chunks(), n=n, mmap_dir=str(tmp_path / "big"), chunk_edges=1_024
    )
    reference = CSRGraph.from_edge_iter(
        [edges], n=n
    )
    assert_same_snapshot(built, reference)


def test_from_edge_iter_error_paths(tmp_path):
    with pytest.raises(GraphError, match="self-loop"):
        CSRGraph.from_edge_iter([(0, 1), (2, 2)])
    with pytest.raises(GraphError, match="nonnegative"):
        CSRGraph.from_edge_iter([(0, -1)])
    with pytest.raises(GraphError, match="out of range"):
        CSRGraph.from_edge_iter([(0, 5)], n=3)
    with pytest.raises(GraphError, match=r"shape \(k, 2\)"):
        CSRGraph.from_edge_iter([np.zeros((3, 3), dtype=np.int64)])
    # error paths must not leave a stale spool behind future ingests
    with pytest.raises(GraphError, match="out of range"):
        CSRGraph.from_edge_iter(
            [(0, 5)], n=3, mmap_dir=str(tmp_path / "err")
        )


def test_snap_file_streams_into_snapshot(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text(
        "# Nodes: 5 Edges: 4\n"
        "0 1\n"
        "2\t0\t7.5\n"  # SNAP rows may carry a weight column
        "\n"
        "3 4\n"
        "1 3\n"
    )
    built = CSRGraph.from_edge_iter(str(path))
    reference = CSRGraph.from_multigraph(
        MultiGraph.from_edges(5, [(0, 1), (2, 0), (3, 4), (1, 3)])
    )
    assert_same_snapshot(built, reference)


def test_decompose_on_memmap_snapshot_matches_ram_path(tmp_path):
    # orientation is the 10^7-edge headline path (array-backed result,
    # no per-edge palette dicts), so it is what out-of-core snapshots
    # must flow through
    n, pairs = random_pairs(11)
    snapshot = CSRGraph.from_edge_iter(
        iter(pairs), n=n, mmap_dir=str(tmp_path / "csr")
    )
    graph = MultiGraph.from_edges(n, pairs)
    config = repro.DecompositionConfig(
        backend="csr",
        seed=5,
        # the out-of-core recipe: the h-partition peel with a pinned
        # pseudoarboricity never needs the exact-flow machinery (which
        # wants the dict surface) and runs entirely on CSR arrays
        options={"method": "hpartition", "pseudoarboricity": 6},
    )
    from_mmap = repro.decompose(
        snapshot, task="orientation", config=config
    )
    from_ram = repro.decompose(graph, task="orientation", config=config)
    from_ram.validate()  # the dict-backed twin vouches for both
    assert from_mmap.bound == from_ram.bound
    assert from_mmap.orientation == from_ram.orientation
