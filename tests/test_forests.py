"""Tests for rooted forest utilities."""

import pytest

from repro.errors import GraphError
from repro.graph import MultiGraph, RootedForest, is_forest, is_star_forest
from repro.graph.forests import (
    color_classes,
    forest_components,
    max_forest_diameter,
)
from repro.graph.generators import path_graph, star_graph


def build_two_trees():
    #   0-1-2   and   3-4, 3-5
    g = MultiGraph.with_vertices(6)
    eids = [g.add_edge(0, 1), g.add_edge(1, 2), g.add_edge(3, 4), g.add_edge(3, 5)]
    return g, eids


def test_is_forest():
    g, eids = build_two_trees()
    assert is_forest(g, eids)
    cyc = g.add_edge(2, 0)
    assert not is_forest(g, eids + [cyc])


def test_parallel_edges_are_cycle():
    g = MultiGraph.with_vertices(2)
    e0 = g.add_edge(0, 1)
    e1 = g.add_edge(0, 1)
    assert not is_forest(g, [e0, e1])


def test_rooted_forest_rejects_cycles():
    g = MultiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    with pytest.raises(GraphError):
        RootedForest(g, [0, 1, 2])


def test_rooting_and_depths():
    g, eids = build_two_trees()
    forest = RootedForest(g, eids)
    assert sorted(forest.roots) == [0, 3]
    assert forest.depth[0] == 0
    assert forest.depth[2] == 2
    assert forest.depth[4] == 1
    assert forest.parent[1] == 0
    assert forest.root_of[5] == 3


def test_preferred_roots():
    g, eids = build_two_trees()
    forest = RootedForest(g, eids, roots=[2, 5])
    assert sorted(forest.roots) == [2, 5]
    assert forest.depth[0] == 2


def test_path_to_root():
    g, eids = build_two_trees()
    forest = RootedForest(g, eids)
    assert forest.path_to_root(2) == [2, 1, 0]


def test_children():
    g, eids = build_two_trees()
    forest = RootedForest(g, eids)
    assert sorted(forest.children(3)) == [4, 5]
    assert forest.children(2) == []


def test_edges_at_depth_residue():
    g = path_graph(7)  # rooted at 0, vertex i has depth i
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    cut = forest.edges_at_depth_residue(0, 3)
    # Depths 3 and 6 match residue 0 mod 3.
    cut_depths = sorted(
        max(forest.depth[u], forest.depth[v])
        for u, v in (g.endpoints(e) for e in cut)
    )
    assert cut_depths == [3, 6]
    remaining = [e for e in g.edge_ids() if e not in set(cut)]
    # After cutting, every chain has at most `modulus` vertices depth-wise.
    sub = RootedForest(g, remaining)
    assert sub.max_strong_diameter() <= 3


def test_strong_diameters():
    g, eids = build_two_trees()
    forest = RootedForest(g, eids)
    diams = forest.strong_diameters()
    assert diams[0] == 2  # path 0-1-2
    assert diams[3] == 2  # star at 3
    assert forest.max_strong_diameter() == 2


def test_depth_parity_split_is_star_forests():
    g = path_graph(9)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    even, odd = forest.depth_parity_split()
    assert len(even) + len(odd) == g.m
    assert is_star_forest(g, even)
    assert is_star_forest(g, odd)


def test_is_star_forest():
    g = star_graph(5)
    assert is_star_forest(g, g.edge_ids())
    p = path_graph(4)  # path of 3 edges is not a star forest
    assert not is_star_forest(p, p.edge_ids())
    p3 = path_graph(3)  # 2-edge path is a star centered in middle
    assert is_star_forest(p3, p3.edge_ids())


def test_star_forest_rejects_cycle():
    g = MultiGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
    assert not is_star_forest(g, g.edge_ids())


def test_forest_components():
    g, eids = build_two_trees()
    comps = forest_components(g, eids)
    assert sorted(map(tuple, comps)) == [(0, 1, 2), (3, 4, 5)]


def test_color_classes_skips_uncolored():
    classes = color_classes({0: "a", 1: None, 2: "a", 3: "b"})
    assert sorted(classes["a"]) == [0, 2]
    assert classes["b"] == [3]
    assert None not in classes


def test_max_forest_diameter():
    g = path_graph(6)
    coloring = {e: 0 for e in g.edge_ids()}
    assert max_forest_diameter(g, coloring) == 5
    alternating = {e: e % 2 for e in g.edge_ids()}
    assert max_forest_diameter(g, alternating) == 1


def test_empty_forest():
    g = MultiGraph.with_vertices(3)
    forest = RootedForest(g, [])
    assert forest.roots == []
    assert forest.max_depth() == 0
    assert forest.max_strong_diameter() == 0
