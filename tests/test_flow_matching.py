"""Tests for Dinic max-flow and Hopcroft-Karp matching."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.flow import FlowNetwork
from repro.graph.matching import greedy_matching, hopcroft_karp, maximum_matching_size


def test_flow_simple_path():
    net = FlowNetwork()
    net.add_arc("s", "a", 3)
    net.add_arc("a", "t", 2)
    assert net.max_flow("s", "t") == 2


def test_flow_parallel_paths():
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("s", "b", 1)
    net.add_arc("a", "t", 1)
    net.add_arc("b", "t", 1)
    assert net.max_flow("s", "t") == 2


def test_flow_needs_residual_routing():
    # Classic diamond where a greedy path must be partially undone.
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("s", "b", 1)
    net.add_arc("a", "b", 1)
    net.add_arc("a", "t", 1)
    net.add_arc("b", "t", 1)
    assert net.max_flow("s", "t") == 2


def test_flow_disconnected():
    net = FlowNetwork()
    net.add_arc("s", "a", 5)
    net.add_arc("b", "t", 5)
    assert net.max_flow("s", "t") == 0


def test_flow_unknown_vertices():
    net = FlowNetwork()
    assert net.max_flow("s", "t") == 0


def test_flow_source_equals_sink():
    net = FlowNetwork()
    net.add_arc("s", "t", 1)
    with pytest.raises(GraphError):
        net.max_flow("s", "s")


def test_negative_capacity_rejected():
    net = FlowNetwork()
    with pytest.raises(GraphError):
        net.add_arc("a", "b", -1)


def test_flow_on_arc():
    net = FlowNetwork()
    a0 = net.add_arc("s", "a", 3)
    a1 = net.add_arc("a", "t", 2)
    net.max_flow("s", "t")
    assert net.flow_on(a0) == 2
    assert net.flow_on(a1) == 2


def test_min_cut_side():
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("a", "t", 10)
    net.max_flow("s", "t")
    side = net.min_cut_side("s")
    assert "s" in side
    assert "t" not in side


def brute_force_max_flow(arcs, s, t):
    """Exponential-time max-flow via min-cut enumeration (integer caps)."""
    vertices = sorted({u for u, _, _ in arcs} | {v for _, v, _ in arcs} | {s, t})
    others = [v for v in vertices if v not in (s, t)]
    best = None
    for r in range(len(others) + 1):
        for subset in itertools.combinations(others, r):
            side = {s} | set(subset)
            cut = sum(c for u, v, c in arcs if u in side and v not in side)
            best = cut if best is None else min(best, cut)
    return best if best is not None else 0


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_flow_matches_bruteforce_mincut(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    vertices = [f"v{i}" for i in range(n)]
    arcs = []
    for u in vertices:
        for v in vertices:
            if u != v and rng.random() < 0.5:
                arcs.append((u, v, rng.randint(0, 4)))
    net = FlowNetwork()
    for u, v, c in arcs:
        net.add_arc(u, v, c)
    got = net.max_flow("v0", f"v{n-1}")
    want = brute_force_max_flow(arcs, "v0", f"v{n-1}")
    assert got == want


def test_matching_perfect():
    adj = [[0, 1], [0], [1, 2]]
    match_left, match_right = hopcroft_karp(adj)
    assert len(match_left) == 3
    for i, r in match_left.items():
        assert match_right[r] == i
        assert r in adj[i]


def test_matching_bottleneck():
    # Three left nodes all adjacent only to right node 0.
    adj = [[0], [0], [0]]
    assert maximum_matching_size(adj) == 1


def test_matching_empty():
    assert maximum_matching_size([]) == 0
    assert maximum_matching_size([[], []]) == 0


def test_greedy_matching_valid():
    adj = [[0, 1], [0], [1]]
    match = greedy_matching(adj)
    used = list(match.values())
    assert len(used) == len(set(used))
    for i, r in match.items():
        assert r in adj[i]


def matching_size_via_flow(adj):
    net = FlowNetwork()
    rights = {r for options in adj for r in options}
    for i, options in enumerate(adj):
        net.add_arc("s", ("L", i), 1)
        for r in options:
            net.add_arc(("L", i), ("R", r), 1)
    for r in rights:
        net.add_arc(("R", r), "t", 1)
    return net.max_flow("s", "t")


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_matching_matches_flow(seed):
    rng = random.Random(seed)
    n_left = rng.randint(0, 7)
    n_right = rng.randint(1, 7)
    adj = [
        [r for r in range(n_right) if rng.random() < 0.4] for _ in range(n_left)
    ]
    got = maximum_matching_size(adj)
    want = matching_size_via_flow(adj)
    assert got == want
    # Greedy is a 1/2-approximation of maximum.
    assert len(greedy_matching(adj)) >= (got + 1) // 2
