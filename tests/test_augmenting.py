"""Tests for Section 3: augmenting sequences.

Covers Algorithm 1 (almost augmenting sequences), Proposition 3.4
(short-circuiting), Lemma 3.1 (augmentation preserves forests), and
Theorem 3.2's radius bound, plus hypothesis property tests driving
random augmentation schedules.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AugmentationError
from repro.graph import MultiGraph, neighborhood
from repro.graph.generators import (
    cycle_graph,
    line_multigraph,
    path_graph,
    uniform_palette,
    union_of_random_forests,
)
from repro.core import (
    AugmentationStats,
    PartialListForestDecomposition,
    apply_augmentation,
    augment_edge,
    find_almost_augmenting_sequence,
    is_augmenting_sequence,
    shortcut_sequence,
)


def state_for(graph, num_colors):
    return PartialListForestDecomposition(
        graph, uniform_palette(graph, range(num_colors))
    )


def test_trivial_augmentation_empty_coloring():
    g = path_graph(3)
    state = state_for(g, 1)
    seq = augment_edge(state, 0)
    assert seq == [(0, 0)]
    assert state.color_of(0) == 0


def test_sequence_on_saturated_color():
    # Triangle with 2 colors: color edges 0,1 with color 0. Edge 2 must
    # either take color 1 directly or displace.
    g = cycle_graph(3)
    state = state_for(g, 2)
    state.set_color(0, 0)
    state.set_color(1, 0)
    seq = augment_edge(state, 2)
    state.assert_valid()
    assert state.color_of(2) is not None
    assert all(state.color_of(e) is not None for e in (0, 1, 2))


def test_multigraph_augmentation():
    # Two parallel edges, two colors: second edge must avoid the first's color.
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    state = state_for(g, 2)
    augment_edge(state, 0)
    augment_edge(state, 1)
    state.assert_valid()
    assert state.color_of(0) != state.color_of(1)


def test_displacement_chain():
    """Force a length-2 augmenting sequence.

    Line multigraph of multiplicity 2 with 2 colors: fill greedily in an
    order that forces displacement for the last edge.
    """
    g = line_multigraph(4, 2)  # alpha = 2, edges: (0,1)x2, (1,2)x2, (2,3)x2
    state = state_for(g, 2)
    order = g.edge_ids()
    rng = random.Random(5)
    rng.shuffle(order)
    for eid in order:
        if state.color_of(eid) is None:
            augment_edge(state, eid)
            state.assert_valid()
    # Complete 2-coloring of a graph with alpha = 2 achieved.
    assert not state.uncolored_edges()


def test_almost_sequence_is_checkable():
    g = line_multigraph(5, 2)
    state = state_for(g, 2)
    for eid in g.edge_ids()[:-1]:
        if state.color_of(eid) is None:
            augment_edge(state, eid)
    last = g.edge_ids()[-1]
    if state.color_of(last) is None:
        almost = find_almost_augmenting_sequence(state, last)
        assert almost is not None
        assert is_augmenting_sequence(state, almost, require_a3=False)
        full = shortcut_sequence(state, almost)
        assert is_augmenting_sequence(state, full, require_a3=True)


def test_augment_colored_edge_rejected():
    g = path_graph(3)
    state = state_for(g, 1)
    augment_edge(state, 0)
    with pytest.raises(AugmentationError):
        augment_edge(state, 0)


def test_augment_leftover_rejected():
    g = path_graph(3)
    state = state_for(g, 1)
    state.remove_to_leftover(0, tail=0)
    with pytest.raises(AugmentationError):
        augment_edge(state, 0)


def test_insufficient_palette_returns_none():
    # A triangle needs 2 forests; with 1 color the third edge has no
    # augmenting sequence.
    g = cycle_graph(3)
    state = state_for(g, 1)
    augment_edge(state, 0)
    augment_edge(state, 1)
    assert find_almost_augmenting_sequence(state, 2) is None
    with pytest.raises(AugmentationError):
        augment_edge(state, 2)


def test_restricted_search_radius():
    g = path_graph(10)
    state = state_for(g, 1)
    ball = neighborhood(g, (0, 1), 2)
    seq = augment_edge(state, 0, allowed_vertices=ball)
    assert seq == [(0, 0)]


def test_full_decomposition_random_order():
    """Coloring every edge of an alpha=3 multigraph with exactly
    (1+eps) * 3 = 4 colors via augmentation only."""
    g = union_of_random_forests(25, 3, seed=8)
    state = state_for(g, 4)
    order = g.edge_ids()
    random.Random(0).shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    state.assert_valid()
    assert not state.uncolored_edges()


def test_exact_alpha_coloring_small():
    """Even with exactly alpha colors, augmentation completes (slower,
    longer sequences) — matroid-partition equivalence on a small case."""
    g = line_multigraph(5, 3)  # alpha = 3
    state = state_for(g, 3)
    for eid in g.edge_ids():
        augment_edge(state, eid)
    assert not state.uncolored_edges()
    state.assert_valid()


def test_sequence_properties_detailed():
    g = union_of_random_forests(20, 2, seed=3)
    state = state_for(g, 3)
    order = g.edge_ids()
    random.Random(1).shuffle(order)
    for eid in order:
        stats = AugmentationStats()
        almost = find_almost_augmenting_sequence(state, eid, stats=stats)
        assert almost is not None
        # (A1): starts at the uncolored edge.
        assert almost[0][0] == eid
        full = shortcut_sequence(state, almost)
        assert is_augmenting_sequence(state, full)
        # Subsequence property (Proposition 3.4).
        positions = [almost.index(pair) for pair in full]
        assert positions == sorted(positions)
        apply_augmentation(state, full)
        state.assert_valid()


def test_theorem32_radius_bound():
    """Sequence edges lie within O(log n / eps) of the start edge."""
    g = union_of_random_forests(40, 3, seed=6)
    epsilon = 1.0 / 3.0  # 4 colors = (1+eps) * 3
    state = state_for(g, 4)
    n = g.n
    # Generous constant for the O(log n / eps) radius.
    radius = math.ceil(6 * math.log2(n) / epsilon)
    order = g.edge_ids()
    random.Random(2).shuffle(order)
    for eid in order:
        ball = neighborhood(g, g.endpoints(eid), radius)
        # The restricted search must succeed: Theorem 3.2.
        seq = augment_edge(state, eid, allowed_vertices=ball)
        for member, _color in seq:
            u, v = g.endpoints(member)
            assert u in ball and v in ball


def test_growth_stats_collected():
    g = union_of_random_forests(30, 3, seed=9)
    state = state_for(g, 4)
    order = g.edge_ids()
    random.Random(3).shuffle(order)
    recorded = []
    for eid in order:
        stats = AugmentationStats()
        augment_edge(state, eid, stats=stats)
        recorded.append(stats)
    assert all(s.iterations >= 1 for s in recorded)
    assert all(s.sequence_length >= 1 for s in recorded)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_property_augmentation_preserves_forests(seed):
    """Lemma 3.1 as a property test: random graphs, random palettes,
    random insertion order — every intermediate state is a valid
    partial LFD and ends fully colored."""
    rng = random.Random(seed)
    n = rng.randint(4, 14)
    k = rng.randint(1, 3)
    g = union_of_random_forests(n, k, seed=seed)
    extra = rng.randint(0, 2)
    state = state_for(g, k + extra + 1)
    order = g.edge_ids()
    rng.shuffle(order)
    for eid in order:
        augment_edge(state, eid)
        state.assert_valid()
    assert not state.uncolored_edges()


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 100_000))
def test_property_list_palettes(seed):
    """Random palettes of size >= (1+eps) alpha admit full list coloring
    via augmentation (Theorem 3.2 for lists)."""
    rng = random.Random(seed)
    n = rng.randint(5, 12)
    k = rng.randint(1, 3)
    g = union_of_random_forests(n, k, seed=seed)
    size = k + 1
    space = 2 * size + 2
    palettes = {
        eid: sorted(rng.sample(range(space), size)) for eid in g.edge_ids()
    }
    state = PartialListForestDecomposition(g, palettes)
    order = g.edge_ids()
    rng.shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    state.assert_valid()
    for eid in g.edge_ids():
        assert state.color_of(eid) in palettes[eid]
