"""Tests for exact pseudoarboricity and orientations."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import MultiGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    line_multigraph,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.nashwilliams import (
    exact_arboricity,
    exact_pseudoarboricity,
    exact_pseudoarboricity_with_orientation,
    orientation_exists,
    out_degrees,
    pseudoforest_decomposition_from_orientation,
)


def check_orientation(graph, orientation, k):
    assert set(orientation.keys()) == set(graph.edge_ids())
    for eid, tail in orientation.items():
        assert tail in graph.endpoints(eid)
    for v, d in out_degrees(graph, orientation).items():
        assert d <= k


def test_path_pseudoarboricity_one():
    g = path_graph(6)
    assert exact_pseudoarboricity(g) == 1


def test_cycle_pseudoarboricity_one():
    # A cycle is one pseudoforest but needs two forests.
    g = cycle_graph(6)
    assert exact_pseudoarboricity(g) == 1
    assert exact_arboricity(g) == 2


def test_orientation_witness():
    g = cycle_graph(6)
    k, orientation = exact_pseudoarboricity_with_orientation(g)
    assert k == 1
    check_orientation(g, orientation, 1)


def test_orientation_exists_infeasible():
    g = complete_graph(5)  # m=10, n=5: out-degree 1 gives only 5 units
    assert orientation_exists(g, 1) is None
    witness = orientation_exists(g, 2)
    assert witness is not None
    check_orientation(g, witness, 2)


def test_orientation_negative_k():
    with pytest.raises(GraphError):
        orientation_exists(path_graph(3), -1)


def test_orientation_empty_graph():
    g = MultiGraph.with_vertices(3)
    assert orientation_exists(g, 0) == {}
    assert exact_pseudoarboricity(g) == 0


def test_line_multigraph():
    # Two vertices, 4 parallel edges: 2 oriented out of each endpoint.
    g = line_multigraph(2, 4)
    assert exact_pseudoarboricity(g) == 2
    # Longer line: density 16/5 forces alpha* = 4.
    g5 = line_multigraph(5, 4)
    assert exact_pseudoarboricity(g5) == 4


def test_star_pseudoarboricity():
    g = star_graph(10)
    assert exact_pseudoarboricity(g) == 1


def test_pseudoforest_decomposition():
    g = complete_graph(6)
    k, orientation = exact_pseudoarboricity_with_orientation(g)
    coloring = pseudoforest_decomposition_from_orientation(g, orientation)
    assert set(coloring.keys()) == set(g.edge_ids())
    assert max(coloring.values()) < k
    # Each class has <= 1 out-edge per vertex: a functional graph.
    for index in set(coloring.values()):
        tails = [orientation[e] for e, c in coloring.items() if c == index]
        assert len(tails) == len(set(tails))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_sandwich_bounds(seed):
    """alpha* <= alpha <= 2 alpha* (Section 1)."""
    rng = random.Random(seed)
    n = rng.randint(2, 8)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(0, 14)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    alpha = exact_arboricity(g)
    pseudo = exact_pseudoarboricity(g)
    assert pseudo <= alpha <= max(2 * pseudo, pseudo + (1 if pseudo else 0))
    if g.m:
        assert pseudo >= 1


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_density_lower_bound(seed):
    """alpha* >= ceil(|E(H)|/|V(H)|) for every induced subgraph H."""
    import itertools

    rng = random.Random(seed)
    n = rng.randint(2, 7)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(1, 12)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    pseudo = exact_pseudoarboricity(g)
    edges = [(u, v) for _e, u, v in g.edges()]
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(n), size):
            inside = set(subset)
            count = sum(1 for u, v in edges if u in inside and v in inside)
            assert pseudo >= math.ceil(count / size)


def test_simple_graph_relation():
    """For simple graphs alpha <= alpha* + 1 [PQ82]."""
    for seed in range(5):
        g = union_of_random_forests(15, 3, seed=seed, simple=True)
        alpha = exact_arboricity(g)
        pseudo = exact_pseudoarboricity(g)
        assert alpha <= pseudo + 1
