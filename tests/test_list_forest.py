"""Tests for the Theorem 4.10 list-forest decomposition pipeline."""

import math

import pytest

from repro.errors import DecompositionError
from repro.graph import MultiGraph
from repro.graph.generators import (
    line_multigraph,
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.core import list_forest_decomposition
from repro.verify import (
    check_forest_decomposition,
    check_palettes_respected,
    count_colors,
)


def run_lfd(
    graph,
    alpha,
    epsilon=1.0,
    seed=0,
    factor=3,
    splitting="cluster",
    reserve_probability=None,
):
    size = math.ceil((1 + epsilon) * alpha) * factor
    palettes = random_palettes(graph, size, 3 * size, seed=seed)
    result = list_forest_decomposition(
        graph,
        palettes,
        epsilon,
        alpha=alpha,
        splitting=splitting,
        reserve_probability=reserve_probability,
        seed=seed,
    )
    check_forest_decomposition(graph, result.coloring)
    check_palettes_respected(result.coloring, palettes)
    return result


def test_lfd_forest_union():
    g = union_of_random_forests(40, 3, seed=1)
    result = run_lfd(g, alpha=3, seed=2)
    assert result.stats.k0 > 0


def test_lfd_multigraph():
    g = line_multigraph(25, 3)
    run_lfd(g, alpha=3, seed=3)


def test_lfd_independent_splitting():
    g = union_of_random_forests(30, 2, seed=4)
    run_lfd(
        g, alpha=2, seed=5, factor=8, splitting="independent",
        reserve_probability=0.25,
    )


def test_lfd_uniform_palettes():
    g = union_of_random_forests(35, 3, seed=6)
    palettes = uniform_palette(g, range(14))
    result = list_forest_decomposition(
        g, palettes, epsilon=1.0, alpha=3, seed=7
    )
    check_forest_decomposition(g, result.coloring)
    check_palettes_respected(result.coloring, palettes)
    assert count_colors(result.coloring) <= 14


def test_lfd_empty_graph():
    g = MultiGraph.with_vertices(4)
    result = list_forest_decomposition(g, {}, 0.5)
    assert result.coloring == {}


def test_lfd_rounds_phases():
    g = union_of_random_forests(25, 2, seed=8)
    size = 12
    palettes = random_palettes(g, size, 30, seed=9)
    rc = RoundCounter()
    list_forest_decomposition(g, palettes, 1.0, alpha=2, seed=10, rounds=rc)
    phases = rc.by_phase()
    assert any("color splitting" in key for key in phases)
    assert any("algorithm2" in key for key in phases)


def test_lfd_unknown_splitting():
    g = union_of_random_forests(10, 2, seed=11)
    palettes = uniform_palette(g, range(12))
    with pytest.raises(DecompositionError):
        list_forest_decomposition(
            g, palettes, 0.5, alpha=2, splitting="bogus", seed=12
        )


def test_lfd_deterministic_with_seed():
    g = union_of_random_forests(25, 2, seed=13)
    palettes = random_palettes(g, 12, 30, seed=14)
    a = list_forest_decomposition(g, palettes, 1.0, alpha=2, seed=99)
    b = list_forest_decomposition(g, palettes, 1.0, alpha=2, seed=99)
    assert a.coloring == b.coloring
