"""Tests for CUT (Theorem 4.2) and its load accounting."""

import math
import random

import pytest

from repro.errors import DecompositionError
from repro.graph import MultiGraph, neighborhood
from repro.graph.generators import (
    line_multigraph,
    path_graph,
    uniform_palette,
    union_of_random_forests,
)
from repro.core import CutController, PartialListForestDecomposition, is_cut_good
from repro.core.augmenting import augment_edge
from repro.decomposition import acyclic_orientation, h_partition
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import pseudoarboricity_upper_bound_check


def colored_state(graph, num_colors, seed=0):
    state = PartialListForestDecomposition(
        graph, uniform_palette(graph, range(num_colors))
    )
    order = graph.edge_ids()
    random.Random(seed).shuffle(order)
    for eid in order:
        augment_edge(state, eid)
    return state


def test_depth_residue_cut_is_good_on_long_path():
    g = path_graph(60)
    state = colored_state(g, 1)
    controller = CutController(state, epsilon=0.5, alpha=1, seed=1)
    core = neighborhood(g, [0], 3)
    removed = controller.cut(core, radius=8)
    assert removed  # the single color-0 path must be severed
    assert is_cut_good(state, core, 8)
    # Removed edges only from the permitted ring E(N^R) \ E(C').
    for eid in removed:
        u, v = g.endpoints(eid)
        assert not (u in core and v in core)


def test_depth_residue_cut_multicolor():
    g = line_multigraph(40, 2)  # alpha 2; two colors after coloring
    state = colored_state(g, 2, seed=3)
    controller = CutController(state, epsilon=0.5, alpha=2, seed=2)
    core = {0, 1}
    controller.cut(core, radius=6)
    assert is_cut_good(state, core, 6)


def test_cut_leftover_orientation_recorded():
    g = path_graph(50)
    state = colored_state(g, 1)
    controller = CutController(state, epsilon=1.0, alpha=1, seed=4)
    removed = controller.cut({0}, radius=6)
    orientation = state.leftover_orientation()
    for eid in removed:
        assert eid in orientation
        assert orientation[eid] in g.endpoints(eid)


def test_cut_load_bound_forest_union():
    """Leftover pseudo-arboricity stays within the budget on a real
    multi-cluster run (Theorem 4.2(2) accounting)."""
    g = union_of_random_forests(80, 3, seed=5)
    state = colored_state(g, 4, seed=6)
    controller = CutController(state, epsilon=1.0, alpha=3, seed=7)
    rng = random.Random(8)
    for _ in range(6):
        center = rng.randrange(g.n)
        core = neighborhood(g, [center], 2)
        controller.cut(core, radius=5)
    leftover = state.leftover_edges()
    if leftover:
        # Budget ceil(eps * alpha) = 3 per vertex; verify exactly.
        pseudoarboricity_upper_bound_check(g, leftover, 3)


def test_unknown_rule_rejected():
    g = path_graph(4)
    state = colored_state(g, 1)
    with pytest.raises(DecompositionError):
        CutController(state, 0.5, 1, rule="bogus")


def test_conditioned_sampling_requires_orientation():
    g = path_graph(4)
    state = colored_state(g, 1)
    with pytest.raises(DecompositionError):
        CutController(state, 0.5, 1, rule="conditioned_sampling")


def test_conditioned_sampling_cut():
    g = union_of_random_forests(60, 2, seed=9)
    pseudo = exact_pseudoarboricity(g)
    partition = h_partition(g, 3 * pseudo)
    orientation = acyclic_orientation(g, partition)
    state = colored_state(g, 3, seed=10)
    controller = CutController(
        state,
        epsilon=1.0,
        alpha=2,
        rule="conditioned_sampling",
        orientation=orientation,
        probability=0.5,
        seed=11,
    )
    core = neighborhood(g, [0], 2)
    controller.cut(core, radius=5)
    # The repair pass guarantees goodness deterministically.
    assert is_cut_good(state, core, 5)
    # Loads never exceed the budget by construction.
    assert controller.stats.max_load <= controller.load_budget + 5  # + repair


def test_cut_respects_budget_under_repeated_invocations():
    g = union_of_random_forests(50, 2, seed=12)
    pseudo = exact_pseudoarboricity(g)
    partition = h_partition(g, 3 * pseudo)
    orientation = acyclic_orientation(g, partition)
    state = colored_state(g, 3, seed=13)
    controller = CutController(
        state,
        epsilon=0.5,
        alpha=2,
        rule="conditioned_sampling",
        orientation=orientation,
        probability=0.3,
        seed=14,
    )
    rng = random.Random(15)
    for _ in range(8):
        core = neighborhood(g, [rng.randrange(g.n)], 1)
        controller.cut(core, radius=4)
    # Sampling loads (excluding repair) stay within ceil(eps*alpha)=1 each;
    # the conditioned rule skips saturated vertices.
    assert controller.stats.invocations == 8


def test_is_cut_good_detects_escape():
    g = path_graph(30)
    state = colored_state(g, 1)  # one long monochromatic path
    assert not is_cut_good(state, {0}, 5)


def test_cut_stats_accumulate():
    g = path_graph(40)
    state = colored_state(g, 1)
    controller = CutController(state, epsilon=0.5, alpha=1, seed=16)
    controller.cut({0}, radius=6)
    controller.cut({20}, radius=6)
    assert controller.stats.invocations == 2
    assert controller.stats.removed_edges == len(state.leftover_edges())
