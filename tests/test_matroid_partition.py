"""Tests for the exact matroid-partition forest decomposition."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.graph import MultiGraph, is_forest
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    line_multigraph,
    path_graph,
    star_graph,
    union_of_random_forests,
)
from repro.nashwilliams import (
    exact_arboricity,
    exact_forest_decomposition,
    exact_forest_partition,
    nash_williams_density_exact,
)


def check_valid_fd(graph, coloring, num_forests):
    assert set(coloring.keys()) == set(graph.edge_ids())
    by_color = {}
    for eid, c in coloring.items():
        assert 0 <= c < num_forests
        by_color.setdefault(c, []).append(eid)
    for eids in by_color.values():
        assert is_forest(graph, eids)


def test_empty_graph():
    g = MultiGraph.with_vertices(4)
    result = exact_forest_partition(g)
    assert result.num_forests == 0
    assert result.coloring == {}


def test_single_edge():
    g = MultiGraph.from_edges(2, [(0, 1)])
    assert exact_arboricity(g) == 1


def test_tree_arboricity_one():
    g = star_graph(8)
    result = exact_forest_partition(g)
    assert result.num_forests == 1
    check_valid_fd(g, result.coloring, 1)


def test_cycle_arboricity_two():
    g = cycle_graph(5)
    assert exact_arboricity(g) == 2


def test_parallel_pair():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    assert exact_arboricity(g) == 2


def test_line_multigraph_arboricity():
    g = line_multigraph(6, 4)
    result = exact_forest_partition(g)
    assert result.num_forests == 4
    check_valid_fd(g, result.coloring, 4)


def test_complete_graph_arboricity():
    # alpha(K_n) = ceil(n/2).
    for n in (3, 4, 5, 6, 7):
        assert exact_arboricity(complete_graph(n)) == math.ceil(n / 2)


def test_grid_arboricity_two():
    g = grid_graph(4, 4)
    assert exact_arboricity(g) == 2


def test_forest_union_exact():
    g = union_of_random_forests(25, 3, seed=11)
    result = exact_forest_partition(g)
    # m = 3(n-1) forces alpha >= 3; union of 3 forests gives alpha <= 3.
    assert result.num_forests == 3
    check_valid_fd(g, result.coloring, 3)


def test_max_forests_cap():
    g = complete_graph(6)  # alpha = 3
    with pytest.raises(DecompositionError):
        exact_forest_partition(g, max_forests=2)


def test_exact_forest_decomposition_wrapper():
    g = cycle_graph(4)
    coloring = exact_forest_decomposition(g)
    check_valid_fd(g, coloring, 2)


def test_classes_view():
    g = cycle_graph(4)
    result = exact_forest_partition(g)
    classes = result.classes()
    assert sum(len(v) for v in classes.values()) == g.m


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_matches_nash_williams_density(seed):
    """alpha from matroid partition == brute-force Nash-Williams bound."""
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 7)
    g = MultiGraph.with_vertices(n)
    m = rng.randint(0, 12)
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    result = exact_forest_partition(g)
    check_valid_fd(g, result.coloring, max(result.num_forests, 1))
    assert result.num_forests == nash_williams_density_exact(g)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100_000))
def test_er_graphs_valid(seed):
    g = erdos_renyi(15, 0.3, seed=seed)
    result = exact_forest_partition(g)
    check_valid_fd(g, result.coloring, max(result.num_forests, 1))
