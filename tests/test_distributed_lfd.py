"""Tests for the distributed Theorem 2.1(2)+(4) node program."""

import pytest

from repro.errors import LocalModelError
from repro.graph.generators import (
    random_palettes,
    uniform_palette,
    union_of_random_forests,
)
from repro.local import (
    run_distributed_hpartition,
    run_distributed_list_forest_coloring,
)
from repro.decomposition import (
    default_threshold,
    h_partition,
    list_forest_decomposition_via_hpartition,
)
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import check_forest_decomposition, check_palettes_respected


def setup_workload(seed=0, n=40, alpha=3):
    g = union_of_random_forests(n, alpha, seed=seed)
    t = default_threshold(exact_pseudoarboricity(g), 0.5)
    classes, _ = run_distributed_hpartition(g, t)
    return g, t, classes


def test_distributed_lfd_valid():
    g, t, classes = setup_workload()
    palettes = uniform_palette(g, range(t))
    coloring, rounds = run_distributed_list_forest_coloring(g, classes, palettes)
    assert rounds == 1
    check_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)
    assert len(set(coloring.values())) <= t


def test_distributed_lfd_with_lists():
    g, t, classes = setup_workload(seed=2)
    palettes = random_palettes(g, t, 3 * t, seed=3)
    coloring, _ = run_distributed_list_forest_coloring(g, classes, palettes)
    check_forest_decomposition(g, coloring)
    check_palettes_respected(coloring, palettes)


def test_distributed_matches_central_guarantees():
    """The node program and the centralized Theorem 2.1(4) agree on
    validity and color budget (not necessarily on the exact coloring)."""
    g, t, classes = setup_workload(seed=4)
    palettes = uniform_palette(g, range(t))
    distributed, _ = run_distributed_list_forest_coloring(g, classes, palettes)
    partition = h_partition(g, t)
    central = list_forest_decomposition_via_hpartition(g, partition, palettes)
    for coloring in (distributed, central):
        check_forest_decomposition(g, coloring)
        assert len(set(coloring.values())) <= t


def test_distributed_lfd_palette_too_small():
    g, t, classes = setup_workload(seed=5)
    palettes = uniform_palette(g, [0])
    with pytest.raises(LocalModelError):
        run_distributed_list_forest_coloring(g, classes, palettes)


def test_every_edge_colored_exactly_once():
    g, t, classes = setup_workload(seed=6)
    palettes = uniform_palette(g, range(t))
    coloring, _ = run_distributed_list_forest_coloring(g, classes, palettes)
    assert set(coloring.keys()) == set(g.edge_ids())
