"""Tests for network decomposition (full and MPX partial)."""

import math

import pytest

from repro.errors import DecompositionError
from repro.graph import MultiGraph, bfs_distances, power_graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    union_of_random_forests,
)
from repro.local import RoundCounter
from repro.decomposition import (
    cut_edges_of_clustering,
    network_decomposition,
    partial_network_decomposition,
    validate_network_decomposition,
)


def diameter_cap(n):
    return 2 * max(1, math.ceil(math.log2(n + 1))) + 2


def class_cap(n):
    return 2 * max(1, math.ceil(math.log2(n + 1))) + 4


def test_nd_path():
    g = path_graph(50)
    nd = network_decomposition(g)
    validate_network_decomposition(g, nd, diameter_cap(50), class_cap(50))


def test_nd_grid():
    g = grid_graph(8, 8)
    nd = network_decomposition(g)
    validate_network_decomposition(g, nd, diameter_cap(64), class_cap(64))


def test_nd_forest_union():
    g = union_of_random_forests(120, 3, seed=2)
    nd = network_decomposition(g)
    validate_network_decomposition(g, nd, diameter_cap(120), class_cap(120))


def test_nd_complete_graph_single_cluster():
    g = complete_graph(12)
    nd = network_decomposition(g)
    validate_network_decomposition(g, nd, diameter_cap(12), class_cap(12))
    # K_n fits in one ball: one class, one cluster.
    assert nd.num_classes == 1
    assert len(nd.classes[0]) == 1


def test_nd_empty_graph():
    g = MultiGraph()
    nd = network_decomposition(g)
    assert nd.num_classes == 0


def test_nd_isolated_vertices():
    g = MultiGraph.with_vertices(5)
    nd = network_decomposition(g)
    validate_network_decomposition(g, nd, 0, class_cap(5))
    assert nd.num_classes == 1  # all isolated vertices are singleton balls


def test_nd_on_power_graph():
    g = path_graph(40)
    g2 = power_graph(g, 2)
    nd = network_decomposition(g2, radius_cost=2)
    validate_network_decomposition(g2, nd, diameter_cap(40), class_cap(40))


def test_nd_round_charging():
    g = path_graph(30)
    rc = RoundCounter()
    network_decomposition(g, rounds=rc, radius_cost=3)
    base = RoundCounter()
    network_decomposition(g, rounds=base, radius_cost=1)
    assert rc.total == 3 * base.total > 0


def test_nd_all_clusters_iteration():
    g = cycle_graph(20)
    nd = network_decomposition(g)
    clusters = nd.all_clusters()
    total = sum(len(cluster) for _z, cluster in clusters)
    assert total == 20


def test_nd_vertex_classes():
    g = path_graph(10)
    nd = network_decomposition(g)
    classes = nd.vertex_classes()
    assert set(classes.keys()) == set(g.vertices())


# ----------------------------------------------------------------------
# MPX partial network decomposition
# ----------------------------------------------------------------------


def test_mpx_covers_all_vertices():
    g = grid_graph(6, 6)
    heads = partial_network_decomposition(g, beta=0.3, seed=1)
    assert set(heads.keys()) == set(g.vertices())


def test_mpx_clusters_connected_and_bounded():
    g = grid_graph(7, 7)
    heads = partial_network_decomposition(g, beta=0.5, seed=3)
    by_head = {}
    for v, h in heads.items():
        by_head.setdefault(h, []).append(v)
    radius_cap = math.ceil(math.log(g.n) / 0.5) * 3 + 3  # generous whp cap
    for head, members in by_head.items():
        dist = bfs_distances(g, [head])
        for v in members:
            assert v in dist and dist[v] <= radius_cap


def test_mpx_cut_probability():
    """Average edge-cut fraction over seeds should be near beta or less."""
    g = grid_graph(10, 10)
    beta = 0.2
    fractions = []
    for seed in range(10):
        heads = partial_network_decomposition(g, beta=beta, seed=seed)
        cut = cut_edges_of_clustering(g, heads)
        fractions.append(len(cut) / g.m)
    average = sum(fractions) / len(fractions)
    assert average <= 2.0 * beta  # beta bound with generous slack


def test_mpx_beta_validation():
    g = path_graph(4)
    with pytest.raises(DecompositionError):
        partial_network_decomposition(g, beta=0.0)
    with pytest.raises(DecompositionError):
        partial_network_decomposition(g, beta=1.5)


def test_mpx_empty_graph():
    assert partial_network_decomposition(MultiGraph(), beta=0.5) == {}


def test_mpx_deterministic_with_seed():
    g = erdos_renyi(30, 0.2, seed=4)
    a = partial_network_decomposition(g, beta=0.4, seed=11)
    b = partial_network_decomposition(g, beta=0.4, seed=11)
    assert a == b


# ----------------------------------------------------------------------
# CSR backend
# ----------------------------------------------------------------------


def test_nd_csr_backend_validates():
    g = grid_graph(8, 8)
    nd = network_decomposition(g, backend="csr")
    validate_network_decomposition(g, nd, diameter_cap(64), class_cap(64))
    assert nd.classes == network_decomposition(g, backend="dict").classes


def test_nd_on_csr_power_graph():
    """A CSR power graph feeds the ball carving end to end, and the
    validator accepts the snapshot as the host graph."""
    from repro.graph.csr import snapshot_of

    g = path_graph(40)
    g2 = power_graph(snapshot_of(g), 2)
    nd = network_decomposition(g2, radius_cost=2)
    validate_network_decomposition(g2, nd, diameter_cap(40), class_cap(40))


def test_nd_rejects_unknown_backend():
    with pytest.raises(DecompositionError):
        network_decomposition(path_graph(4), backend="dcit")


def test_mpx_csr_backend_matches():
    g = erdos_renyi(30, 0.2, seed=4)
    a = partial_network_decomposition(g, beta=0.4, seed=11, backend="dict")
    b = partial_network_decomposition(g, beta=0.4, seed=11, backend="csr")
    assert a == b
    assert cut_edges_of_clustering(g, a, backend="csr") == cut_edges_of_clustering(
        g, a, backend="dict"
    )


# ----------------------------------------------------------------------
# Simultaneous carve rule
# ----------------------------------------------------------------------


def _simultaneous_caps(n):
    """The simultaneous carve's proven bounds: strong diameter <= 2L,
    classes <= 2L + 4 with L = ceil(log2(n + 1))."""
    level = max(1, math.ceil(math.log2(n + 1)))
    return 2 * level, 2 * level + 4


@pytest.mark.parametrize("make", [
    lambda: path_graph(50),
    lambda: grid_graph(8, 8),
    lambda: union_of_random_forests(120, 3, seed=2),
    lambda: complete_graph(12),
    lambda: erdos_renyi(60, 0.08, seed=9),
])
def test_nd_simultaneous_validates(make):
    from repro.verify import check_network_decomposition

    g = make()
    max_diameter, max_classes = _simultaneous_caps(g.n)
    ref = network_decomposition(g, carve_rule="simultaneous", backend="dict")
    csr = network_decomposition(g, carve_rule="simultaneous", backend="csr")
    assert csr.classes == ref.classes
    validate_network_decomposition(g, ref, max_diameter, max_classes)
    # The independent checker (plain BFS, none of the carve kernels)
    # proves the same (D, chi) bounds.
    worst, chi = check_network_decomposition(
        g, ref.classes, max_diameter=max_diameter, max_classes=max_classes
    )
    assert worst <= max_diameter and chi == ref.num_classes


def test_nd_simultaneous_complete_graph_single_class():
    g = complete_graph(12)
    nd = network_decomposition(g, carve_rule="simultaneous")
    assert nd.num_classes == 1
    assert len(nd.classes[0]) == 1


def test_nd_simultaneous_isolated_vertices():
    g = MultiGraph.with_vertices(5)
    nd = network_decomposition(g, carve_rule="simultaneous")
    validate_network_decomposition(g, nd, 0, class_cap(5))
    assert nd.num_classes == 1  # every isolated vertex keeps its own ball


def test_nd_simultaneous_empty_graph():
    nd = network_decomposition(MultiGraph(), carve_rule="simultaneous")
    assert nd.num_classes == 0


def test_nd_rejects_unknown_carve_rule():
    with pytest.raises(DecompositionError, match="carve_rule"):
        network_decomposition(path_graph(4), carve_rule="doubing")


def test_nd_simultaneous_on_power_graph():
    g = path_graph(40)
    g2 = power_graph(g, 2)
    max_diameter, max_classes = _simultaneous_caps(40)
    nd = network_decomposition(g2, radius_cost=2, carve_rule="simultaneous")
    validate_network_decomposition(g2, nd, max_diameter, max_classes)


# ----------------------------------------------------------------------
# Regressions: cut-edge KeyError, convergence-guard off-by-one
# ----------------------------------------------------------------------


def test_cut_edges_missing_head_raises():
    """A clustering that misses a vertex raises DecompositionError
    naming it on both backends (used to leak a bare KeyError)."""
    g = path_graph(5)
    heads = {v: 0 for v in g.vertices()}
    del heads[3]
    for backend in ("dict", "csr"):
        with pytest.raises(DecompositionError, match="vertex 3"):
            cut_edges_of_clustering(g, heads, backend=backend)


def test_nd_guard_counts_current_class(monkeypatch):
    """The convergence guard aborts after at most ``guard`` classes —
    not guard + 1 (the historical ``>`` comparison let one extra class
    through before raising)."""
    import importlib

    import numpy as np

    nd_module = importlib.import_module(
        "repro.decomposition.network_decomposition"
    )
    g = path_graph(40)
    guard = class_cap(40)  # the module's guard uses the same formula

    calls = {"dict": 0, "csr": 0}

    def singleton_ball(graph, center, allowed):
        calls["dict"] += 1
        return {center}, set(allowed) - {center}

    monkeypatch.setattr(nd_module, "_grow_doubling_ball", singleton_ball)
    with pytest.raises(DecompositionError, match="converge"):
        network_decomposition(g, backend="dict")
    assert calls["dict"] == guard  # one singleton cluster per class

    def singleton_ball_csr(
        snapshot, seed_index, unvisited, stamp, token, engine, scratch
    ):
        calls["csr"] += 1
        others = np.flatnonzero(unvisited)
        return (
            np.array([seed_index], dtype=np.int64),
            others[others != seed_index],
        )

    monkeypatch.setattr(nd_module, "_grow_doubling_ball_csr", singleton_ball_csr)
    with pytest.raises(DecompositionError, match="converge"):
        network_decomposition(g, backend="csr")
    assert calls["csr"] == guard
