"""Tests for centralized Cole-Vishkin 3-coloring (cross-checked with the
distributed node-program version)."""

from repro.graph import MultiGraph, RootedForest
from repro.graph.generators import path_graph, star_graph, union_of_random_forests
from repro.local import RoundCounter, run_distributed_tree_coloring
from repro.decomposition import three_color_rooted_forest


def proper(graph, eids, colors):
    for eid in eids:
        u, v = graph.endpoints(eid)
        if colors[u] == colors[v]:
            return False
    return True


def test_path_coloring():
    g = path_graph(64)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    colors = three_color_rooted_forest(forest)
    assert proper(g, g.edge_ids(), colors)
    assert set(colors.values()) <= {0, 1, 2}


def test_star_coloring():
    g = star_graph(20)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    colors = three_color_rooted_forest(forest)
    assert proper(g, g.edge_ids(), colors)
    assert set(colors.values()) <= {0, 1, 2}


def test_random_forest_coloring():
    g = union_of_random_forests(100, 1, seed=3)
    forest = RootedForest(g, g.edge_ids())
    colors = three_color_rooted_forest(forest)
    assert proper(g, g.edge_ids(), colors)
    assert set(colors.values()) <= {0, 1, 2}


def test_rounds_charged_log_star():
    g = path_graph(1000)
    forest = RootedForest(g, g.edge_ids(), roots=[0])
    rc = RoundCounter()
    three_color_rooted_forest(forest, rc)
    assert 0 < rc.total <= 30  # O(log* n) + 6 shift rounds


def test_empty_forest():
    g = MultiGraph.with_vertices(4)
    forest = RootedForest(g, [])
    assert three_color_rooted_forest(forest) == {}


def test_matches_distributed_guarantees():
    """Centralized and distributed versions both 3-color properly."""
    g = union_of_random_forests(60, 1, seed=9)
    forest = RootedForest(g, g.edge_ids())
    central = three_color_rooted_forest(forest)
    parents = {v: forest.parent_edge[v] for v in forest.vertices()}
    # The distributed run needs the graph restricted to forest edges
    # (here the graph IS the forest).
    distributed, _ = run_distributed_tree_coloring(g, parents)
    for colors in (central, distributed):
        assert proper(g, g.edge_ids(), colors)
        assert set(colors.values()) <= {0, 1, 2}
