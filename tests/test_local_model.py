"""Tests for the LOCAL model simulator and round accounting."""

import pytest

from repro.errors import LocalModelError
from repro.graph import MultiGraph
from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.local import (
    LocalNetwork,
    NodeAlgorithm,
    RoundCounter,
    broadcast_gather,
    ensure_counter,
)


class EchoOnce(NodeAlgorithm):
    """Sends its id once, halts after hearing from all neighbors."""

    def __init__(self, vertex):
        super().__init__()
        self.vertex = vertex

    def send(self):
        return {port: self.vertex for port in range(self.view.degree)}

    def receive(self, messages):
        self.output = sorted(messages.values())
        self.halted = True


def test_one_round_exchange():
    g = path_graph(3)
    net = LocalNetwork(g)
    out = net.run(EchoOnce)
    assert net.rounds_used == 1
    assert out[0] == [1]
    assert out[1] == [0, 2]
    assert out[2] == [1]


def test_messages_only_to_neighbors():
    g = MultiGraph.with_vertices(4)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    out = LocalNetwork(g).run(EchoOnce)
    assert out[0] == [1]
    assert out[2] == [3]


def test_parallel_edges_get_separate_ports():
    g = MultiGraph.with_vertices(2)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    out = LocalNetwork(g).run(EchoOnce)
    assert out[0] == [1, 1]  # one message per parallel edge


def test_invalid_port_raises():
    class BadSender(NodeAlgorithm):
        def send(self):
            return {99: "boom"}

    g = path_graph(2)
    with pytest.raises(LocalModelError):
        LocalNetwork(g).run(lambda v: BadSender())


def test_round_limit():
    class Forever(NodeAlgorithm):
        def receive(self, messages):
            pass

    g = path_graph(2)
    with pytest.raises(LocalModelError):
        LocalNetwork(g).run(lambda v: Forever(), max_rounds=5)


def test_non_node_algorithm_rejected():
    g = path_graph(2)
    with pytest.raises(LocalModelError):
        LocalNetwork(g).run(lambda v: object())


def test_broadcast_gather_radius():
    g = path_graph(5)
    net = LocalNetwork(g)
    known = broadcast_gather(net, {v: v * 10 for v in g.vertices()}, radius=2)
    assert net.rounds_used == 2
    assert set(known[0].keys()) == {0, 1, 2}
    assert known[2][4] == 40
    assert set(known[2].keys()) == {0, 1, 2, 3, 4}


def test_broadcast_gather_radius_zero():
    g = path_graph(3)
    net = LocalNetwork(g)
    known = broadcast_gather(net, {v: v for v in g.vertices()}, radius=0)
    assert known[1] == {1: 1}


def test_star_center_hears_all_leaves():
    g = star_graph(6)
    out = LocalNetwork(g).run(EchoOnce)
    assert out[0] == [1, 2, 3, 4, 5]


# ----------------------------------------------------------------------
# RoundCounter
# ----------------------------------------------------------------------


def test_round_counter_basic():
    rc = RoundCounter()
    rc.charge(5)
    rc.charge(3)
    assert rc.total == 8


def test_round_counter_negative_rejected():
    rc = RoundCounter()
    with pytest.raises(ValueError):
        rc.charge(-1)


def test_round_counter_phases():
    rc = RoundCounter()
    with rc.phase("nd"):
        rc.charge(10)
        with rc.phase("inner"):
            rc.charge(2)
    rc.charge(1)
    phases = rc.by_phase()
    assert phases["nd"] == 10
    assert phases["nd/inner"] == 2
    assert phases["(top)"] == 1
    assert rc.total == 13
    assert "total LOCAL rounds: 13" in rc.report()


def test_round_counter_parallel_takes_max():
    rc = RoundCounter()
    with rc.parallel():
        rc.charge(7)
        rc.charge(3)
        rc.charge(5)
    assert rc.total == 7


def test_round_counter_nested_parallel():
    rc = RoundCounter()
    with rc.parallel():
        with rc.parallel():
            rc.charge(4)
        rc.charge(2)
    assert rc.total == 4


def test_round_counter_helpers():
    rc = RoundCounter()
    rc.charge_power_graph(6)
    rc.charge_neighborhood(3)
    rc.charge_cluster(10)
    assert rc.total == 6 + 3 + 21


def test_ensure_counter():
    rc = RoundCounter()
    assert ensure_counter(rc) is rc
    fresh = ensure_counter(None)
    assert isinstance(fresh, RoundCounter)
    assert fresh.total == 0
