"""Module-level kernels for the shared-memory process-pool tests.

:class:`repro.parallel.shm.SharedKernel` only accepts module-level
importables (worker processes resolve them by ``module.qualname``), so
the test kernels live here rather than inside test functions.  Each
follows the shared-kernel calling convention: ``fn(arrays, part,
*args)`` where ``part`` is either an index array (gather waves) or a
``(lo, hi)`` range (shard scans / range maps).
"""

import os

import numpy as np


def double_slice(arrays, part):
    """Range-map kernel: double one contiguous slice of ``values``."""
    lo, hi = part
    return arrays["values"][lo:hi] * 2


def offset_slice(arrays, part, delta):
    """Range-map kernel with a per-wave scalar arg (``with_args``)."""
    lo, hi = part
    return arrays["values"][lo:hi] + delta


def gather_vals(arrays, part):
    """Gather kernel: fancy-index ``values`` by a work-list slice."""
    return arrays["values"][part]


def positive_scan(arrays, part):
    """Shard-scan kernel: global indices of positive ``values`` in
    one shard range (mirrors the peeling scan's shape)."""
    lo, hi = part
    local = np.flatnonzero(arrays["values"][lo:hi] > 0)
    if local.size and lo:
        local += lo
    return local


def read_state(arrays, part):
    """Copy one slice of the mutable ``state`` segment (asserts the
    master's single-writer updates are visible to workers)."""
    lo, hi = part
    return arrays["state"][lo:hi].copy()


def raise_value_error(arrays, part):
    """Kernel exceptions must propagate to the caller (only
    infrastructure failures trigger the inline fallback)."""
    raise ValueError("kernel failure propagates")


def kill_worker(arrays, part):
    """Hard-kill the worker mid-task: breaks the pool, which callers
    must survive via the ``map_on_mp_pool -> None`` fallback."""
    os._exit(13)
