"""Tests for exact star arboricity (small-graph backtracking)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import MultiGraph, is_star_forest
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.nashwilliams import (
    exact_arboricity,
    exact_star_arboricity,
    star_arboricity_bounds,
    star_forest_partition_exists,
)


def check_valid_sfd(graph, assignment, k):
    assert set(assignment.keys()) == set(graph.edge_ids())
    by_color = {}
    for eid, c in assignment.items():
        assert 0 <= c < k
        by_color.setdefault(c, []).append(eid)
    for eids in by_color.values():
        assert is_star_forest(graph, eids)


def test_star_is_one():
    g = star_graph(6)
    assert exact_star_arboricity(g) == 1


def test_path3_is_one():
    g = path_graph(3)
    assert exact_star_arboricity(g) == 1


def test_path4_is_two():
    # A path of 3 edges cannot be a single star forest.
    g = path_graph(4)
    assert exact_star_arboricity(g) == 2


def test_cycle_star_arboricity():
    g = cycle_graph(5)
    value = exact_star_arboricity(g)
    assert value == 2


def test_parallel_edges_need_distinct_classes():
    g = MultiGraph.from_edges(2, [(0, 1), (0, 1)])
    assert exact_star_arboricity(g) == 2


def test_partition_witness_valid():
    g = cycle_graph(6)
    k = exact_star_arboricity(g)
    witness = star_forest_partition_exists(g, k)
    assert witness is not None
    check_valid_sfd(g, witness, k)


def test_partition_infeasible_below():
    g = path_graph(4)
    assert star_forest_partition_exists(g, 1) is None


def test_empty_graph():
    g = MultiGraph.with_vertices(3)
    assert exact_star_arboricity(g) == 0
    assert star_forest_partition_exists(g, 0) == {}


def test_size_guard():
    g = complete_graph(12)  # 66 edges > default cap
    with pytest.raises(GraphError):
        exact_star_arboricity(g)


def test_k4():
    # alpha(K4) = 2; star arboricity of K4 is known to be 3.
    g = complete_graph(4)
    assert exact_star_arboricity(g) == 3


def test_bounds_helper():
    g = cycle_graph(7)
    low, high = star_arboricity_bounds(g)
    assert low == 2 and high == 4
    assert low <= exact_star_arboricity(g) <= high


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_sandwich_alpha_2alpha(seed):
    """alpha <= alphastar <= 2 alpha on random small graphs."""
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    g = MultiGraph.with_vertices(n)
    for _ in range(rng.randint(0, 9)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v)
    alpha = exact_arboricity(g)
    astar = exact_star_arboricity(g)
    if alpha == 0:
        assert astar == 0
    else:
        assert alpha <= astar <= 2 * alpha
