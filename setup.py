"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package, so PEP 517 editable builds are unavailable).  This file
carries the packaging metadata; CI installs the test toolchain from the
``[test]`` extra so the workflow has a single dependency source."""

from setuptools import find_packages, setup

setup(
    name="nashwilliams-locality-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'On the Locality of Nash-Williams Forest "
        "Decomposition and Star-Forest Decomposition' (PODC 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # The flat-array graph kernel (repro.graph.csr) made numpy the
    # library's one third-party dependency.
    install_requires=["numpy"],
    extras_require={
        # pyflakes rides in [test] so the CI lint job (which installs
        # this extra and sets LINT_REQUIRE_PYFLAKES=1) can never fall
        # back to tools/lint.py's compile-only downgrade.
        "test": ["pytest", "hypothesis", "pyflakes"],
    },
)
