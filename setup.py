"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package, so PEP 517 editable builds are unavailable).  This file
is the only packaging metadata the repo carries."""

from setuptools import setup

setup(
    # The flat-array graph kernel (repro.graph.csr) made numpy the
    # library's one third-party dependency.
    install_requires=["numpy"],
)
