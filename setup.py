"""Setup shim for legacy editable installs (offline environment lacks the
``wheel`` package, so PEP 517 editable builds are unavailable).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
