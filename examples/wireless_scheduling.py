"""Interference-free broadcast scheduling via star-forest decomposition.

A star-forest decomposition is a schedule: in each round (= color),
every edge transmits simultaneously, and because each color class is a
set of vertex-disjoint stars, every transmission group has a single
center — one-to-many broadcast with no vertex serving two groups at
once.  The number of colors is the schedule length; no schedule can
beat alpha rounds.

Two constructions compete:

* the classical ``2 alpha`` schedule (two-color the trees of a forest
  decomposition), and
* the paper's ``(1+eps) alpha + O(sqrt(log D) + log alpha)`` schedule
  (Theorem 5.4).

The paper's excess term is *additive*, so the classical construction
wins at small arboricity and loses as alpha grows — this example
sweeps alpha to expose the crossover, which is the theorem's content.

Run:  python examples/wireless_scheduling.py
"""

from repro import DecompositionConfig, Session
from repro.core import two_coloring_star_forests
from repro.graph.generators import union_of_random_forests
from repro.nashwilliams import exact_forest_decomposition
from repro.verify import check_star_forest_decomposition


def schedule_lengths(n: int, alpha: int, epsilon: float, seed: int):
    graph = union_of_random_forests(n, alpha, seed=seed, simple=True)
    # Both schedules query the same graph; the session computes the
    # exact arboricity once and shares it.
    session = Session(graph)
    true_alpha = session.arboricity()

    baseline = two_coloring_star_forests(
        graph, exact_forest_decomposition(graph)
    )
    baseline_rounds = check_star_forest_decomposition(graph, baseline)

    result = session.decompose(
        "star_forest",
        DecompositionConfig(epsilon=epsilon, alpha=true_alpha, seed=seed),
    )
    paper_rounds = check_star_forest_decomposition(graph, result.coloring)
    return graph, true_alpha, baseline_rounds, paper_rounds, result


def main() -> None:
    print("schedule length sweep (n=100):\n")
    print(f"{'alpha':>6} {'eps':>5} {'lower bound':>12} {'classical 2a':>13} "
          f"{'paper (Thm 5.4)':>16} {'winner':>10}")
    for alpha, epsilon in ((6, 0.2), (12, 0.2), (20, 0.2), (28, 0.12)):
        graph, a, baseline_rounds, paper_rounds, result = schedule_lengths(
            100, alpha, epsilon=epsilon, seed=23
        )
        winner = "paper" if paper_rounds < baseline_rounds else "classical"
        print(f"{a:>6} {epsilon:>5} {a:>12} {baseline_rounds:>13} "
              f"{paper_rounds:>16} {winner:>10}")

    print(
        "\nThe paper's additive O(sqrt(log D) + log alpha) excess loses to"
        "\nthe classical multiplicative 2x at small alpha and wins once"
        "\nalpha outgrows it — the crossover the theorem predicts."
    )

    # Show one round of the largest schedule: disjoint stars.
    group_color = next(iter(result.coloring.values()))
    group = [e for e, c in result.coloring.items() if c == group_color]
    degree = {}
    for eid in group:
        u, v = graph.endpoints(eid)
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    centers = {v for v, d in degree.items() if d > 1}
    print(f"\nexample round {group_color!r}: {len(group)} simultaneous "
          f"links in >= {len(centers)} broadcast groups")


if __name__ == "__main__":
    main()
