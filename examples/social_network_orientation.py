"""Low out-degree orientation of a social-style graph (Corollary 1.1).

Sparse-graph algorithms (adjacency labelling, triangle counting,
dynamic matching) want every vertex to "own" few edges — exactly a
low-out-degree orientation.  Social networks have small arboricity
despite heavy-tailed degrees, so the (1+ε)α-orientation of
Corollary 1.1 assigns each vertex O(α) owned edges even though hubs
have hundreds of neighbors.

Run:  python examples/social_network_orientation.py
"""

from collections import Counter

from repro import low_outdegree_orientation
from repro.graph.generators import preferential_attachment
from repro.nashwilliams import exact_arboricity, out_degrees
from repro.verify import check_orientation


def main() -> None:
    # Preferential attachment: heavy-tailed degrees, tiny arboricity.
    graph = preferential_attachment(300, out_degree=3, seed=11)
    alpha = exact_arboricity(graph)
    hub_degree = graph.max_degree()
    print(f"social graph: n={graph.n}, m={graph.m}, "
          f"max degree={hub_degree}, arboricity={alpha}")

    for method in ("augmentation", "hpartition"):
        orientation, bound = low_outdegree_orientation(
            graph, epsilon=0.5, alpha=alpha, method=method, seed=3
        )
        observed = check_orientation(graph, orientation, bound)
        label = {
            "augmentation": "paper (Cor 1.1, (1+eps)alpha)",
            "hpartition": "baseline ([BE10], (2+eps)alpha*)",
        }[method]
        print(f"\n{label}:")
        print(f"  guaranteed out-degree bound: {bound}")
        print(f"  observed max out-degree:     {observed}")
        histogram = Counter(out_degrees(graph, orientation).values())
        print(f"  out-degree histogram:        "
              f"{dict(sorted(histogram.items()))}")

    print(f"\nEvery vertex owns O(alpha) = O({alpha}) edges even though "
          f"the biggest hub has {hub_degree} neighbors.")


if __name__ == "__main__":
    main()
