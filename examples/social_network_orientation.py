"""Low out-degree orientation of a social-style graph (Corollary 1.1).

Sparse-graph algorithms (adjacency labelling, triangle counting,
dynamic matching) want every vertex to "own" few edges — exactly a
low-out-degree orientation.  Social networks have small arboricity
despite heavy-tailed degrees, so the (1+ε)α-orientation of
Corollary 1.1 assigns each vertex O(α) owned edges even though hubs
have hundreds of neighbors.

Run:  python examples/social_network_orientation.py
"""

from collections import Counter

from repro import DecompositionConfig, Session
from repro.graph.generators import preferential_attachment
from repro.nashwilliams import out_degrees
from repro.verify import check_orientation


def main() -> None:
    # Preferential attachment: heavy-tailed degrees, tiny arboricity.
    graph = preferential_attachment(300, out_degree=3, seed=11)
    # One session serves both method runs below: the exact arboricity
    # and pseudoarboricity ground truths are computed once and reused.
    session = Session(graph)
    alpha = session.arboricity()
    hub_degree = graph.max_degree()
    print(f"social graph: n={graph.n}, m={graph.m}, "
          f"max degree={hub_degree}, arboricity={alpha}")

    config = DecompositionConfig(epsilon=0.5, alpha=alpha, seed=3)
    for method in ("augmentation", "hpartition"):
        result = session.decompose("orientation", config, method=method)
        orientation, bound = result.orientation, result.bound
        observed = check_orientation(graph, orientation, bound)
        label = {
            "augmentation": "paper (Cor 1.1, (1+eps)alpha)",
            "hpartition": "baseline ([BE10], (2+eps)alpha*)",
        }[method]
        print(f"\n{label}:")
        print(f"  guaranteed out-degree bound: {bound}")
        print(f"  observed max out-degree:     {observed}")
        histogram = Counter(out_degrees(graph, orientation).values())
        print(f"  out-degree histogram:        "
              f"{dict(sorted(histogram.items()))}")

    print(f"\nEvery vertex owns O(alpha) = O({alpha}) edges even though "
          f"the biggest hub has {hub_degree} neighbors.")


if __name__ == "__main__":
    main()
