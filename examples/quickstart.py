"""Quickstart: decompose a multigraph into (1+ε)α forests.

Run:  python examples/quickstart.py
"""

from repro import forest_decomposition
from repro.graph.generators import union_of_random_forests
from repro.nashwilliams import exact_arboricity
from repro.verify import check_forest_decomposition, forest_diameter_of_coloring


def main() -> None:
    # A graph of known arboricity: the union of 4 random spanning
    # forests on 80 vertices (alpha = 4 by construction).
    graph = union_of_random_forests(80, 4, seed=42)
    print(f"graph: n={graph.n}, m={graph.m}")

    alpha = exact_arboricity(graph)
    print(f"exact arboricity (Nash-Williams / Gabow-Westermann): {alpha}")

    # The paper's main algorithm: Theorem 4.6, with forest diameters
    # bounded via Corollary 2.5.
    result = forest_decomposition(
        graph, epsilon=0.5, alpha=alpha, diameter_mode="auto", seed=7
    )

    check_forest_decomposition(graph, result.coloring)  # independent check
    print(f"forests used: {result.colors_used}  "
          f"(budget (1+eps)alpha = {result.color_budget})")
    print(f"max forest diameter: "
          f"{forest_diameter_of_coloring(graph, result.coloring)}")
    print(f"charged LOCAL rounds: {result.rounds.total}")
    print()
    print("per-phase round accounting:")
    print(result.rounds.report())


if __name__ == "__main__":
    main()
