"""Quickstart: the unified decomposition API in one sitting.

One config, one dispatcher, one result protocol — and a Session that
pays graph prep (CSR snapshot, exact arboricity) once across queries.

Run:  python examples/quickstart.py
"""

from repro import DecompositionConfig, Session
from repro.graph.generators import union_of_random_forests
from repro.verify import forest_diameter_of_coloring


def main() -> None:
    # A graph of known arboricity: the union of 4 random spanning
    # forests on 80 vertices (alpha = 4 by construction).
    graph = union_of_random_forests(80, 4, seed=42)
    print(f"graph: n={graph.n}, m={graph.m}")

    # A Session caches graph prep across queries; the exact arboricity
    # (Nash-Williams / Gabow-Westermann ground truth) is computed once
    # here and reused by every task below.
    session = Session(graph)
    print(f"exact arboricity (Nash-Williams / Gabow-Westermann): "
          f"{session.arboricity()}")

    # One shared config for everything: epsilon budget, seed,
    # diameter bounding via Corollary 2.5, post-run validation by the
    # independent checkers in repro.verify.
    config = DecompositionConfig(
        epsilon=0.5, seed=7, diameter_mode="auto", validation="basic"
    )

    # The paper's main algorithm: Theorem 4.6.
    result = session.decompose("forest", config)
    print(f"forests used: {result.colors_used}  "
          f"(budget (1+eps)alpha = {result.color_budget})")
    print(f"max forest diameter: "
          f"{forest_diameter_of_coloring(graph, result.coloring)}")
    print(f"charged LOCAL rounds: {result.rounds.total}")

    # Every result speaks the same protocol.
    forests = result.forests()
    print(f"result protocol: {len(forests)} color classes, "
          f"coloring_array shape {result.coloring_array().shape}, "
          f"to_json() keys {sorted(result.to_json())[:4]}...")

    # A second query on the same session reuses the cached snapshot and
    # arboricity — N queries on one graph pay graph-prep once.
    orient = session.decompose("orientation", config)
    print(f"\nsecond query (Corollary 1.1 orientation) on the same "
          f"session: out-degree bound {orient.bound}")
    print(f"session cache hits/misses: {session.cache_info()}")

    print()
    print("per-phase round accounting:")
    print(result.rounds.report())


if __name__ == "__main__":
    main()
