"""Running genuine LOCAL-model node programs under the simulator.

The heavy decompositions in this library run centrally with
locality-faithful round *charging* (see ``repro.decompose`` /
``repro.Session`` for that API); the primitive building blocks also
exist as real message-passing node programs.  This example runs both
and cross-checks them: the H-partition peeling (Theorem 2.1(1)) and
Cole-Vishkin tree 3-coloring, as genuinely distributed algorithms.

Run:  python examples/local_simulation.py
"""

from repro.decomposition import h_partition, three_color_rooted_forest
from repro.graph import RootedForest
from repro.graph.generators import union_of_random_forests
from repro.local import (
    RoundCounter,
    run_distributed_hpartition,
    run_distributed_tree_coloring,
)
from repro.nashwilliams import exact_pseudoarboricity
from repro.verify import check_hpartition


def main() -> None:
    graph = union_of_random_forests(150, 3, seed=31)
    pseudo = exact_pseudoarboricity(graph)
    threshold = 2 * pseudo + 1
    print(f"graph: n={graph.n}, m={graph.m}, alpha*={pseudo}, "
          f"peeling threshold t={threshold}\n")

    # 1. H-partition, twice: genuine message passing vs central+charged.
    distributed, rounds_used = run_distributed_hpartition(graph, threshold)
    counter = RoundCounter()
    central = h_partition(graph, threshold, counter)
    assert central.classes == distributed, "implementations disagree!"
    check_hpartition(graph, distributed, threshold)
    print("H-partition (Theorem 2.1(1)):")
    print(f"  classes: {max(distributed.values())}")
    print(f"  message-passing simulator rounds: {rounds_used}")
    print(f"  charged rounds (central run):     {counter.total}\n")

    # 2. Cole-Vishkin 3-coloring of a spanning forest of the graph.
    tree = union_of_random_forests(150, 1, seed=32)
    forest = RootedForest(tree, tree.edge_ids())
    parents = {v: forest.parent_edge[v] for v in tree.vertices()}
    colors, cv_rounds = run_distributed_tree_coloring(tree, parents)
    assert all(
        colors[u] != colors[v] for _e, u, v in tree.edges()
    ), "improper coloring!"
    central_colors = three_color_rooted_forest(forest)
    print("Cole-Vishkin tree 3-coloring:")
    print(f"  distributed rounds: {cv_rounds} (O(log* n) + O(1))")
    print(f"  colors used (distributed): {sorted(set(colors.values()))}")
    print(f"  colors used (central):     "
          f"{sorted(set(central_colors.values()))}")


if __name__ == "__main__":
    main()
