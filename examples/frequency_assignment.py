"""List-forest decomposition as constrained frequency assignment.

Scenario: links of a backbone network must each be assigned a frequency
from a per-link *allowed list* (regulatory constraints differ per
link), such that no frequency's links form a cycle — acyclicity per
frequency lets each band run a spanning-tree protocol without loops.
That is exactly list-forest decomposition; Theorem 4.10 solves it with
per-link lists barely larger than the network's arboricity.

Run:  python examples/frequency_assignment.py
"""

import math
from collections import Counter

from repro import DecompositionConfig, decompose
from repro.graph.generators import skewed_palettes, union_of_random_forests
from repro.nashwilliams import exact_arboricity


def main() -> None:
    # Backbone mesh with arboricity 4.
    graph = union_of_random_forests(90, 4, seed=17)
    alpha = exact_arboricity(graph)
    epsilon = 1.0
    list_size = 3 * math.ceil((1 + epsilon) * alpha)

    # Adversarially overlapping allowed lists: half of each list comes
    # from a contested "hot" band.
    palettes = skewed_palettes(
        graph, list_size, color_space=3 * list_size,
        hot_fraction=0.5, seed=3,
    )
    print(f"network: n={graph.n}, links={graph.m}, arboricity={alpha}")
    print(f"allowed list size per link: {list_size} "
          f"(hot-band contention on half of each list)\n")

    # validation="full" re-derives both guarantees independently right
    # inside the dispatcher: acyclicity per frequency AND per-link
    # palette membership.
    config = DecompositionConfig(
        epsilon=epsilon, alpha=alpha, seed=9, validation="full"
    )
    result = decompose(graph, task="list_forest", config=config,
                       palettes=palettes)

    usage = Counter(result.coloring.values())
    print(f"assignment found: {len(usage)} distinct frequencies in use")
    print(f"busiest frequency carries {max(usage.values())} links "
          f"(all acyclic)")
    print(f"splitting quality: k0={result.stats.k0}, "
          f"k1={result.stats.k1} reserve colors per link")
    print(f"links rerouted through reserve bands: "
          f"{result.stats.leftover_size}")
    print(f"charged LOCAL rounds: {result.rounds.total}")
    print("\nEvery link respects its allowed list, and every frequency's")
    print("link set is a forest - loop-free per band.")


if __name__ == "__main__":
    main()
