"""Independent validity checkers for every output the library produces.

These re-derive each guarantee from scratch (separate code paths from
the algorithms), so a bug in an algorithm cannot hide a bug in its
checker.  All checkers raise :class:`~repro.errors.ValidationError`
with a precise description, or return quietly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ValidationError
from ..graph.forests import RootedForest, color_classes, is_forest, is_star_forest
from ..graph.multigraph import MultiGraph
from ..graph.union_find import UnionFind

Coloring = Dict[int, object]
Palette = Dict[int, Sequence[int]]


def check_forest_decomposition(
    graph: MultiGraph,
    coloring: Coloring,
    max_colors: Optional[int] = None,
    partial: bool = False,
) -> int:
    """Validate a (partial) forest decomposition; return #colors used.

    * every colored edge id must exist in the graph;
    * unless ``partial``, every edge must be colored;
    * each color class must be acyclic (parallel edges included);
    * with ``max_colors``, the number of distinct colors is capped.
    """
    edge_ids = set(graph.edge_ids())
    for eid in coloring:
        if eid not in edge_ids:
            raise ValidationError(f"coloring mentions unknown edge {eid}")
    if not partial:
        uncolored = [
            eid for eid in edge_ids
            if coloring.get(eid) is None
        ]
        if uncolored:
            raise ValidationError(
                f"{len(uncolored)} edges uncolored (e.g. {uncolored[:5]})"
            )
    classes = color_classes(coloring)
    for color, eids in classes.items():
        uf = UnionFind()
        for eid in eids:
            u, v = graph.endpoints(eid)
            if not uf.union(u, v):
                raise ValidationError(
                    f"color {color!r} contains a cycle through edge {eid}"
                )
    if max_colors is not None and len(classes) > max_colors:
        raise ValidationError(
            f"{len(classes)} colors used, cap is {max_colors}"
        )
    return len(classes)


def check_star_forest_decomposition(
    graph: MultiGraph,
    coloring: Coloring,
    max_colors: Optional[int] = None,
    partial: bool = False,
) -> int:
    """Validate a (partial) star-forest decomposition; return #colors."""
    count = check_forest_decomposition(graph, coloring, max_colors, partial)
    for color, eids in color_classes(coloring).items():
        if not is_star_forest(graph, eids):
            raise ValidationError(f"color {color!r} is not a star forest")
    return count


def check_palettes_respected(coloring: Coloring, palettes: Palette) -> None:
    """Every colored edge's color must come from its palette."""
    for eid, color in coloring.items():
        if color is None:
            continue
        if color not in palettes[eid]:
            raise ValidationError(
                f"edge {eid} colored {color!r}, not in its palette"
            )


def forest_diameter_of_coloring(graph: MultiGraph, coloring: Coloring) -> int:
    """Largest strong tree diameter over all color classes."""
    worst = 0
    for _color, eids in color_classes(coloring).items():
        forest = RootedForest(graph, eids)
        worst = max(worst, forest.max_strong_diameter())
    return worst


def check_forest_diameter(
    graph: MultiGraph, coloring: Coloring, max_diameter: int
) -> int:
    """Validate every monochromatic tree has strong diameter <= cap."""
    worst = forest_diameter_of_coloring(graph, coloring)
    if worst > max_diameter:
        raise ValidationError(
            f"forest diameter {worst} exceeds cap {max_diameter}"
        )
    return worst


def check_network_decomposition(
    graph: MultiGraph,
    classes: Sequence[Sequence[Sequence[int]]],
    max_diameter: Optional[int] = None,
    max_classes: Optional[int] = None,
) -> Tuple[int, int]:
    """Validate a (D, χ)-network decomposition; return ``(D, χ)``.

    ``classes`` is a list of color classes, each a list of clusters
    (vertex lists), as produced by
    :func:`repro.decomposition.network_decomposition`.  Re-derives
    every guarantee from scratch (plain BFS over the dict adjacency —
    none of the carve kernels):

    * the clusters partition the vertex set exactly;
    * every cluster is connected with **strong** diameter (measured
      inside the cluster's induced subgraph) at most ``max_diameter``;
    * two clusters of the same class share no edge;
    * with ``max_classes``, the number of classes is capped.
    """
    seen: Set[int] = set()
    for clusters in classes:
        for cluster in clusters:
            for v in cluster:
                if v in seen:
                    raise ValidationError(
                        f"vertex {v} appears in more than one cluster"
                    )
                seen.add(v)
    vertices = set(graph.vertices())
    missing = vertices - seen
    if missing:
        raise ValidationError(
            f"{len(missing)} vertices unclustered "
            f"(e.g. {sorted(missing)[:5]})"
        )
    extra = seen - vertices
    if extra:
        raise ValidationError(
            f"clusters mention unknown vertices (e.g. {sorted(extra)[:5]})"
        )

    worst_diameter = 0
    for index, clusters in enumerate(classes):
        cluster_of: Dict[int, int] = {}
        for cid, cluster in enumerate(clusters):
            members = set(cluster)
            for v in cluster:
                cluster_of[v] = cid
            worst_diameter = max(
                worst_diameter, _strong_diameter(graph, members)
            )
        for v, cid in cluster_of.items():
            for other in graph.neighbors(v):
                if cluster_of.get(other, cid) != cid:
                    raise ValidationError(
                        f"class {index}: edge {v}-{other} joins two of "
                        f"its clusters"
                    )
    if max_diameter is not None and worst_diameter > max_diameter:
        raise ValidationError(
            f"cluster strong diameter {worst_diameter} exceeds cap "
            f"{max_diameter}"
        )
    if max_classes is not None and len(classes) > max_classes:
        raise ValidationError(
            f"{len(classes)} classes used, cap is {max_classes}"
        )
    return worst_diameter, len(classes)


def _strong_diameter(graph: MultiGraph, members: Set[int]) -> int:
    """Exact strong diameter of the subgraph induced on ``members``
    (max over BFS eccentricities); raises if it is disconnected."""
    if not members:
        return 0
    worst = 0
    for source in members:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for other in graph.neighbors(v):
                    if other in members and other not in dist:
                        dist[other] = dist[v] + 1
                        nxt.append(other)
            frontier = nxt
        if len(dist) != len(members):
            missing = next(iter(members - dist.keys()))
            raise ValidationError(
                f"cluster containing {source} is disconnected "
                f"({missing} unreachable inside it)"
            )
        worst = max(worst, max(dist.values()))
    return worst


def check_orientation(
    graph: MultiGraph,
    orientation: Dict[int, int],
    max_out_degree: int,
    require_acyclic: bool = False,
) -> int:
    """Validate an edge orientation; return the max out-degree observed."""
    if set(orientation.keys()) != set(graph.edge_ids()):
        raise ValidationError("orientation does not cover all edges exactly")
    out_degree: Dict[int, int] = {v: 0 for v in graph.vertices()}
    for eid, tail in orientation.items():
        u, v = graph.endpoints(eid)
        if tail not in (u, v):
            raise ValidationError(f"edge {eid}: tail {tail} not an endpoint")
        out_degree[tail] += 1
    worst = max(out_degree.values(), default=0)
    if worst > max_out_degree:
        offender = max(out_degree, key=lambda v: out_degree[v])
        raise ValidationError(
            f"vertex {offender} has out-degree {worst} > {max_out_degree}"
        )
    if require_acyclic:
        _check_acyclic(graph, orientation)
    return worst


def _check_acyclic(graph: MultiGraph, orientation: Dict[int, int]) -> None:
    """Kahn's algorithm on the directed graph induced by the orientation."""
    successors: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    indegree: Dict[int, int] = {v: 0 for v in graph.vertices()}
    for eid, tail in orientation.items():
        head = graph.other_endpoint(eid, tail)
        successors[tail].append(head)
        indegree[head] += 1
    queue = [v for v, d in indegree.items() if d == 0]
    seen = 0
    while queue:
        v = queue.pop()
        seen += 1
        for w in successors[v]:
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    if seen != graph.n:
        raise ValidationError("orientation contains a directed cycle")


def check_hpartition(
    graph: MultiGraph, classes: Dict[int, int], threshold: int
) -> int:
    """Theorem 2.1(1): each v in H_i has <= threshold neighbors in
    H_i u ... u H_k.  Returns the number of classes."""
    if set(classes.keys()) != set(graph.vertices()):
        raise ValidationError("H-partition does not cover all vertices")
    for v in graph.vertices():
        later = sum(
            1 for _eid, other in graph.incident(v) if classes[other] >= classes[v]
        )
        if later > threshold:
            raise ValidationError(
                f"vertex {v} (class {classes[v]}) has {later} same-or-later "
                f"neighbors > threshold {threshold}"
            )
    return max(classes.values(), default=0)


def check_vertex_coloring_proper(
    graph: MultiGraph, colors: Dict[int, int], eids: Iterable[int]
) -> None:
    """No edge among ``eids`` may be monochromatic."""
    for eid in eids:
        u, v = graph.endpoints(eid)
        if colors[u] == colors[v]:
            raise ValidationError(f"edge {eid} ({u}-{v}) is monochromatic")


def pseudoarboricity_upper_bound_check(
    graph: MultiGraph, eids: Sequence[int], bound: int
) -> None:
    """Check the subgraph on ``eids`` has pseudoarboricity <= bound, via
    the exact flow-based computation."""
    from ..nashwilliams.pseudoarboricity import orientation_exists

    sub = graph.edge_subgraph(eids)
    if orientation_exists(sub, bound) is None:
        raise ValidationError(
            f"leftover subgraph ({len(eids)} edges) has pseudoarboricity "
            f"greater than {bound}"
        )


def is_pseudoforest(graph: MultiGraph, eids: Sequence[int]) -> bool:
    """True if every connected component of ``eids`` has at most one
    cycle (equivalently: at most as many edges as vertices)."""
    uf = UnionFind()
    has_cycle: Dict[object, bool] = {}
    for eid in eids:
        u, v = graph.endpoints(eid)
        ru, rv = uf.find(u), uf.find(v)
        if ru == rv:
            if has_cycle.get(ru, False):
                return False  # second cycle in the same component
            has_cycle[ru] = True
        else:
            merged_cycle = has_cycle.get(ru, False) or has_cycle.get(rv, False)
            uf.union(u, v)
            root = uf.find(u)
            has_cycle[root] = merged_cycle
    return True


def check_pseudoforest_decomposition(
    graph: MultiGraph,
    coloring: Coloring,
    max_colors: Optional[int] = None,
) -> int:
    """Validate a pseudoforest decomposition; return #colors used."""
    edge_ids = set(graph.edge_ids())
    for eid in coloring:
        if eid not in edge_ids:
            raise ValidationError(f"coloring mentions unknown edge {eid}")
    uncolored = [eid for eid in edge_ids if coloring.get(eid) is None]
    if uncolored:
        raise ValidationError(f"{len(uncolored)} edges uncolored")
    classes = color_classes(coloring)
    for color, eids in classes.items():
        if not is_pseudoforest(graph, eids):
            raise ValidationError(f"color {color!r} is not a pseudoforest")
    if max_colors is not None and len(classes) > max_colors:
        raise ValidationError(f"{len(classes)} colors used, cap is {max_colors}")
    return len(classes)


def count_colors(coloring: Coloring) -> int:
    """Number of distinct colors among colored edges."""
    return len({c for c in coloring.values() if c is not None})


def summarize_decomposition(
    graph: MultiGraph,
    coloring: Coloring,
    kind: str = "forest",
) -> str:
    """Human-readable validity + statistics report for a decomposition.

    ``kind`` is ``"forest"``, ``"star"`` or ``"pseudoforest"`` and
    selects the validity check.  Used by the ``python -m repro`` CLI's
    ``--report`` flag and handy in notebooks.
    """
    if kind == "forest":
        colors = check_forest_decomposition(graph, coloring)
    elif kind == "star":
        colors = check_star_forest_decomposition(graph, coloring)
    elif kind == "pseudoforest":
        colors = check_pseudoforest_decomposition(graph, coloring)
    else:
        raise ValidationError(f"unknown decomposition kind {kind!r}")

    classes = color_classes(coloring)
    sizes = sorted((len(eids) for eids in classes.values()), reverse=True)
    lines = [
        f"valid {kind} decomposition",
        f"  edges: {graph.m}  vertices: {graph.n}",
        f"  colors used: {colors}",
        f"  class sizes: max={sizes[0] if sizes else 0} "
        f"min={sizes[-1] if sizes else 0} "
        f"mean={sum(sizes) / len(sizes):.1f}" if sizes else "  class sizes: -",
    ]
    if kind in ("forest", "star"):
        lines.append(
            f"  max tree diameter: {forest_diameter_of_coloring(graph, coloring)}"
        )
    return "\n".join(lines)


def monochromatic_components_within(
    graph: MultiGraph,
    coloring: Coloring,
    color: object,
) -> List[List[int]]:
    """Vertex sets of the trees of one color class (diagnostics)."""
    from ..graph.forests import forest_components

    eids = [e for e, c in coloring.items() if c == color]
    return forest_components(graph, eids)
