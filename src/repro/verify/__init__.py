"""Independent validity checkers for decompositions and orientations."""

from .validators import (
    check_forest_decomposition,
    check_forest_diameter,
    check_hpartition,
    check_network_decomposition,
    check_orientation,
    check_palettes_respected,
    check_pseudoforest_decomposition,
    check_star_forest_decomposition,
    check_vertex_coloring_proper,
    count_colors,
    forest_diameter_of_coloring,
    is_pseudoforest,
    monochromatic_components_within,
    pseudoarboricity_upper_bound_check,
    summarize_decomposition,
)

__all__ = [
    "check_forest_decomposition",
    "check_star_forest_decomposition",
    "check_pseudoforest_decomposition",
    "is_pseudoforest",
    "check_palettes_respected",
    "check_forest_diameter",
    "forest_diameter_of_coloring",
    "check_orientation",
    "check_hpartition",
    "check_network_decomposition",
    "check_vertex_coloring_proper",
    "pseudoarboricity_upper_bound_check",
    "count_colors",
    "monochromatic_components_within",
    "summarize_decomposition",
]
