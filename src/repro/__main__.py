"""Command-line interface: run the paper's decompositions on edge lists.

Usage examples::

    python -m repro stats graph.txt
    python -m repro fd graph.txt --epsilon 0.5 --out coloring.txt
    python -m repro sfd graph.txt --epsilon 0.25 --backend csr
    python -m repro orient graph.txt --method augmentation --json
    python -m repro decompose graph.txt --task forest --json
    python -m repro decompose graph.txt --task list_forest \\
        --palettes palettes.txt --epsilon 1.0
    python -m repro decompose graph.txt --schedule concurrent --profile
    python -m repro describe list_forest
    python -m repro generate forest-union --n 100 --alpha 4 --out graph.txt

Graphs are plain edge lists (see :mod:`repro.graph.io`).  Every
decomposition subcommand takes ``--backend
auto|dict|csr|sharded|parallel|mp`` (graph substrate; the wave-engine
backends take ``--workers``) and ``--json`` (print the structured
``to_json()`` payload — colors, stats, config, round accounting —
instead of the human report, so downstream tooling stops parsing
printed text).
"""

from __future__ import annotations

import argparse
import json
import sys

from .graph.io import (
    read_edge_list,
    read_palettes,
    write_coloring,
    write_edge_list,
    write_result_json,
)

# Built-in task names, for --help only; validation happens in the task
# registry so CLI users can run third-party register_task() tasks too.
BUILTIN_TASKS = (
    "forest",
    "star_forest",
    "list_forest",
    "list_star_forest",
    "pseudoforest",
    "orientation",
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file")
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--alpha", type=int, default=None,
                        help="arboricity if known (else computed exactly)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="auto",
                        help="graph substrate: auto|dict|csr|sharded|"
                        "parallel|mp or any registered backend "
                        "(default: auto)")
    parser.add_argument("--workers", type=int, default=0,
                        help="workers for the wave-engine backends "
                        "(threads for sharded/parallel, processes "
                        "for mp; 0 = auto; results are identical for "
                        "every value)")
    parser.add_argument("--out", default=None, help="write coloring here")
    parser.add_argument("--json", action="store_true",
                        help="print the structured result (to_json()) "
                        "instead of the human report")
    parser.add_argument("--report", action="store_true",
                        help="print a validity + statistics report")


def _emit_result(result, args, kind: str) -> None:
    """Shared --json/--out handling for the decomposition commands."""
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    if args.out:
        if args.out.endswith(".json"):
            write_result_json(result, args.out)
        else:
            write_coloring(result.coloring, args.out)
        if not args.json:
            print(f"{kind} written to {args.out}")


def _cmd_stats(args: argparse.Namespace) -> int:
    from .nashwilliams import exact_arboricity, exact_pseudoarboricity

    graph = read_edge_list(args.graph)
    print(f"n = {graph.n}")
    print(f"m = {graph.m}")
    print(f"max degree = {graph.max_degree()}")
    print(f"simple = {graph.is_simple()}")
    print(f"arboricity = {exact_arboricity(graph)}")
    print(f"pseudoarboricity = {exact_pseudoarboricity(graph)}")
    return 0


def _cmd_fd(args: argparse.Namespace) -> int:
    from .core.api import forest_decomposition
    from .verify import check_forest_decomposition

    graph = read_edge_list(args.graph)
    result = forest_decomposition(
        graph, epsilon=args.epsilon, alpha=args.alpha,
        diameter_mode="auto" if args.bounded_diameter else None,
        seed=args.seed, backend=args.backend, workers=args.workers,
    )
    check_forest_decomposition(graph, result.coloring)
    if not args.json:
        print(f"forests used: {result.colors_used} "
              f"(budget (1+eps)alpha = {result.color_budget})")
        print(f"charged LOCAL rounds: {result.rounds.total}")
    if args.report:
        from .verify import summarize_decomposition

        print(summarize_decomposition(graph, result.coloring, "forest"))
    _emit_result(result, args, "coloring")
    return 0


def _cmd_sfd(args: argparse.Namespace) -> int:
    from .core.api import star_forest_decomposition
    from .verify import check_star_forest_decomposition

    graph = read_edge_list(args.graph)
    result = star_forest_decomposition(
        graph, epsilon=args.epsilon, alpha=args.alpha, seed=args.seed,
        backend=args.backend, workers=args.workers,
    )
    count = check_star_forest_decomposition(graph, result.coloring)
    if not args.json:
        print(f"star forests used: {count}")
        print(f"max matching deficit: {result.stats.max_deficit}")
        print(f"charged LOCAL rounds: {result.rounds.total}")
    if args.report:
        from .verify import summarize_decomposition

        print(summarize_decomposition(graph, result.coloring, "star"))
    _emit_result(result, args, "coloring")
    return 0


def _cmd_orient(args: argparse.Namespace) -> int:
    from .core import decompose, DecompositionConfig
    from .verify import check_orientation

    graph = read_edge_list(args.graph)
    config = DecompositionConfig(
        epsilon=args.epsilon, alpha=args.alpha, seed=args.seed,
        backend=args.backend, workers=args.workers,
    )
    result = decompose(
        graph, task="orientation", config=config, method=args.method
    )
    observed = check_orientation(graph, result.orientation, result.bound)
    if not args.json:
        print(f"out-degree bound: {result.bound} "
              f"(observed max: {observed})")
    _emit_result(result, args, "orientation (edge -> tail)")
    return 0


# Which optional CLI knobs each task's runner understands; forwarding
# them blindly would hit the runner as an unexpected keyword argument.
_TASKS_WITH_METHOD = ("orientation", "pseudoforest", "list_star_forest")
_TASKS_WITH_PALETTES = ("list_forest", "list_star_forest")
_REPORT_KIND = {
    "forest": "forest",
    "list_forest": "forest",
    "star_forest": "star",
    "list_star_forest": "star",
    "pseudoforest": "pseudoforest",
}


def _print_pass_profile(result) -> None:
    """--profile: the executed per-pass records as a fixed-width table."""
    passes = getattr(getattr(result, "stats", None), "passes", None)
    if not passes:
        print("(no per-pass records on this result)")
        return
    header = (
        f"{'pass':<18} {'sched':<10} {'wall_ms':>9} {'rounds':>7} "
        f"{'waves':>6} {'items':>7} {'reconcile':>9} {'touched':>8}"
    )
    print(header)
    print("-" * len(header))
    for record in passes:
        print(
            f"{record.name:<18} {record.schedule:<10} "
            f"{record.wall_ms:>9.2f} {record.rounds:>7} "
            f"{record.engine_waves:>6} {record.items:>7} "
            f"{record.reconcile_volume:>9} {record.vertices_touched:>8}"
        )


def _cmd_decompose(args: argparse.Namespace) -> int:
    """The unified entry point: any registered task, one config."""
    from .core import decompose, DecompositionConfig

    graph = read_edge_list(args.graph)
    config = DecompositionConfig(
        epsilon=args.epsilon,
        alpha=args.alpha,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        diameter_mode=args.diameter_mode,
        cut_rule=args.cut_rule,
        carve_rule=args.carve_rule,
        validation=args.validation,
        schedule=args.schedule,
    )
    from .core.registry import get_task
    from .errors import RegistryError

    try:
        get_task(args.task)
    except RegistryError as error:
        print(str(error), file=sys.stderr)
        return 2
    kwargs = {}
    if args.method:
        if args.task not in _TASKS_WITH_METHOD:
            print(f"--method does not apply to task {args.task!r} "
                  f"(only {', '.join(_TASKS_WITH_METHOD)})", file=sys.stderr)
            return 2
        kwargs["method"] = args.method
    if args.palettes:
        if args.task not in _TASKS_WITH_PALETTES:
            print(f"--palettes does not apply to task {args.task!r} "
                  f"(only {', '.join(_TASKS_WITH_PALETTES)})", file=sys.stderr)
            return 2
        kwargs["palettes"] = read_palettes(args.palettes)
    result = decompose(graph, task=args.task, config=config, **kwargs)
    if not args.json:
        print(f"task: {args.task}")
        print(f"colors used: {result.num_colors()}")
        if result.rounds is not None:
            print(f"charged LOCAL rounds: {result.rounds.total}")
    if args.profile:
        _print_pass_profile(result)
    if args.report:
        kind = _REPORT_KIND.get(args.task)
        if kind is not None:
            from .verify import summarize_decomposition

            print(summarize_decomposition(graph, result.coloring, kind))
        else:
            print("(no summary report for this task; see --json)")
    _emit_result(result, args, "result")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core.api import describe
    from .errors import RegistryError

    try:
        print(describe(args.task))
    except RegistryError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the incremental decomposition daemon (repro.service)."""
    from .core import DecompositionConfig
    from .service.server import serve

    config = DecompositionConfig(
        backend=args.backend,
        workers=args.workers,
        delta_mode=args.delta_mode,
        delta_threshold=args.delta_threshold,
    )
    log_stream = None
    if args.log == "-":
        log_stream = sys.stderr
    elif args.log:
        log_stream = open(args.log, "a", encoding="utf-8")
    try:
        return serve(
            host=args.host,
            port=args.port,
            config=config,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            graph_path=args.graph,
            log_stream=log_stream,
        )
    finally:
        if log_stream is not None and log_stream is not sys.stderr:
            log_stream.close()


def _cmd_client(args: argparse.Namespace) -> int:
    """One request against a running daemon, response printed as JSON."""
    from .service.client import ServeClient, ServeError

    payload = json.loads(args.payload) if args.payload else {}
    if not isinstance(payload, dict):
        print("--payload must be a JSON object", file=sys.stderr)
        return 2
    try:
        with ServeClient(args.host, args.port) as client:
            response = client.request(args.op, **payload)
    except ServeError as error:
        print(json.dumps({"ok": False, "error": str(error),
                          "error_kind": error.kind}, indent=2, sort_keys=True))
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import generators

    if args.family == "forest-union":
        graph = generators.union_of_random_forests(
            args.n, args.alpha, seed=args.seed, simple=args.simple
        )
    elif args.family == "line-multigraph":
        graph = generators.line_multigraph(args.n, args.alpha)
    elif args.family == "grid":
        side = max(2, int(args.n ** 0.5))
        graph = generators.grid_graph(side, side)
    elif args.family == "preferential":
        graph = generators.preferential_attachment(
            args.n, args.alpha, seed=args.seed
        )
    else:
        print(f"unknown family {args.family!r}", file=sys.stderr)
        return 2
    if args.out:
        write_edge_list(graph, args.out)
        print(f"graph (n={graph.n}, m={graph.m}) written to {args.out}")
    else:
        write_edge_list(graph, sys.stdout)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nash-Williams forest/star-forest decompositions "
        "(Harris-Su-Vu, PODC 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics incl. exact alpha")
    p_stats.add_argument("graph")
    p_stats.set_defaults(func=_cmd_stats)

    p_fd = sub.add_parser("fd", help="(1+eps)alpha forest decomposition")
    _add_common(p_fd)
    p_fd.add_argument("--bounded-diameter", action="store_true")
    p_fd.set_defaults(func=_cmd_fd)

    p_sfd = sub.add_parser("sfd", help="star-forest decomposition (simple graphs)")
    _add_common(p_sfd)
    p_sfd.set_defaults(func=_cmd_sfd)

    p_orient = sub.add_parser("orient", help="(1+eps)alpha orientation")
    _add_common(p_orient)
    p_orient.add_argument(
        "--method", default="augmentation",
        choices=("augmentation", "hpartition", "exact"),
    )
    p_orient.set_defaults(func=_cmd_orient)

    p_dec = sub.add_parser(
        "decompose",
        help="unified dispatcher: any registered task, one shared config",
    )
    _add_common(p_dec)
    # epsilon=None lets each task's conventional default resolve
    # (0.5 forest, 0.25 star_forest, 0.05 list_star_forest, ...);
    # an explicit --epsilon still wins.
    p_dec.set_defaults(epsilon=None)
    p_dec.add_argument(
        "--task", default="forest",
        help="a registered task name; built-ins: "
        + "|".join(BUILTIN_TASKS) + " (default: forest)",
    )
    p_dec.add_argument("--palettes", default=None,
                       help="palette file for the list tasks "
                       "(see repro.graph.io.read_palettes)")
    p_dec.add_argument("--method", default=None,
                       help="task-specific method (e.g. orientation: "
                       "augmentation|hpartition|exact; LSFD: amr|hpartition)")
    p_dec.add_argument("--diameter-mode", default=None,
                       choices=("safe", "strong", "auto"))
    p_dec.add_argument("--cut-rule", default="depth_residue",
                       choices=("depth_residue", "conditioned_sampling"))
    p_dec.add_argument("--carve-rule", default="doubling",
                       choices=("doubling", "simultaneous"))
    p_dec.add_argument("--validation", default="basic",
                       choices=("none", "basic", "full"))
    p_dec.add_argument("--schedule", default="auto",
                       choices=("auto", "serial", "concurrent"),
                       help="pass-DAG execution mode (outputs are "
                       "identical; auto gates on graph size / "
                       "REPRO_FORCE_PARALLEL)")
    p_dec.add_argument("--profile", action="store_true",
                       help="print the executed per-pass records "
                       "(wall time, rounds, engine waves, reconcile "
                       "volume) after the run")
    p_dec.set_defaults(func=_cmd_decompose)

    p_desc = sub.add_parser(
        "describe",
        help="print a task's declared pass DAG (no execution)",
    )
    p_desc.add_argument(
        "task",
        help="a registered task name; built-ins: " + "|".join(BUILTIN_TASKS),
    )
    p_desc.set_defaults(func=_cmd_describe)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived incremental decomposition daemon "
        "(line-delimited JSON over TCP; see repro.service)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick a free one; the bound "
                         "port is printed in the READY handshake)")
    p_serve.add_argument("--graph", default=None,
                         help="edge-list file to load at startup")
    p_serve.add_argument("--backend", default="auto")
    p_serve.add_argument("--workers", type=int, default=0)
    p_serve.add_argument("--delta-mode", default="auto",
                         choices=("auto", "incremental", "full"),
                         help="delta engine policy (latency only; "
                         "results are identical)")
    p_serve.add_argument("--delta-threshold", type=float, default=0.25,
                         help="dirty-fraction above which auto mode "
                         "falls back to full recompute")
    p_serve.add_argument("--checkpoint-dir", default=None,
                         help="directory for snapshots + delta journal "
                         "(enables kill -9 durability)")
    p_serve.add_argument("--checkpoint-every", type=int, default=16,
                         help="batches between periodic snapshots "
                         "(0 = only journal + exit checkpoint)")
    p_serve.add_argument("--resume", action="store_true",
                         help="restore the last checkpoint generation "
                         "and replay its journal before serving")
    p_serve.add_argument("--log", default=None,
                         help="structured JSON-line log file "
                         "('-' = stderr)")
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="send one op to a running serve daemon, print the JSON reply",
    )
    p_client.add_argument("op",
                          help="protocol op: ping|load_graph|watch|unwatch|"
                          "apply_delta|query|current|stats|checkpoint|"
                          "shutdown")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, required=True)
    p_client.add_argument("--payload", default=None,
                          help="JSON object merged into the request")
    p_client.set_defaults(func=_cmd_client)

    p_gen = sub.add_parser("generate", help="generate a workload graph")
    p_gen.add_argument(
        "family",
        choices=("forest-union", "line-multigraph", "grid", "preferential"),
    )
    p_gen.add_argument("--n", type=int, default=50)
    p_gen.add_argument("--alpha", type=int, default=3)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--simple", action="store_true")
    p_gen.add_argument("--out", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
