"""Command-line interface: run the paper's decompositions on edge lists.

Usage examples::

    python -m repro stats graph.txt
    python -m repro fd graph.txt --epsilon 0.5 --out coloring.txt
    python -m repro sfd graph.txt --epsilon 0.25
    python -m repro orient graph.txt --method augmentation
    python -m repro generate forest-union --n 100 --alpha 4 --out graph.txt

Graphs are plain edge lists (see :mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys

from .graph.io import read_edge_list, write_coloring, write_edge_list


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="edge-list file")
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--alpha", type=int, default=None,
                        help="arboricity if known (else computed exactly)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="write coloring here")
    parser.add_argument("--report", action="store_true",
                        help="print a validity + statistics report")


def _cmd_stats(args: argparse.Namespace) -> int:
    from .nashwilliams import exact_arboricity, exact_pseudoarboricity

    graph = read_edge_list(args.graph)
    print(f"n = {graph.n}")
    print(f"m = {graph.m}")
    print(f"max degree = {graph.max_degree()}")
    print(f"simple = {graph.is_simple()}")
    print(f"arboricity = {exact_arboricity(graph)}")
    print(f"pseudoarboricity = {exact_pseudoarboricity(graph)}")
    return 0


def _cmd_fd(args: argparse.Namespace) -> int:
    from .core.api import forest_decomposition
    from .verify import check_forest_decomposition

    graph = read_edge_list(args.graph)
    result = forest_decomposition(
        graph, epsilon=args.epsilon, alpha=args.alpha,
        diameter_mode="auto" if args.bounded_diameter else None,
        seed=args.seed,
    )
    check_forest_decomposition(graph, result.coloring)
    print(f"forests used: {result.colors_used} "
          f"(budget (1+eps)alpha = {result.color_budget})")
    print(f"charged LOCAL rounds: {result.rounds.total}")
    if args.report:
        from .verify import summarize_decomposition

        print(summarize_decomposition(graph, result.coloring, "forest"))
    if args.out:
        write_coloring(result.coloring, args.out)
        print(f"coloring written to {args.out}")
    return 0


def _cmd_sfd(args: argparse.Namespace) -> int:
    from .core.api import star_forest_decomposition
    from .verify import check_star_forest_decomposition

    graph = read_edge_list(args.graph)
    result = star_forest_decomposition(
        graph, epsilon=args.epsilon, alpha=args.alpha, seed=args.seed
    )
    count = check_star_forest_decomposition(graph, result.coloring)
    print(f"star forests used: {count}")
    print(f"max matching deficit: {result.stats.max_deficit}")
    print(f"charged LOCAL rounds: {result.rounds.total}")
    if args.report:
        from .verify import summarize_decomposition

        print(summarize_decomposition(graph, result.coloring, "star"))
    if args.out:
        write_coloring(result.coloring, args.out)
        print(f"coloring written to {args.out}")
    return 0


def _cmd_orient(args: argparse.Namespace) -> int:
    from .core.api import low_outdegree_orientation
    from .verify import check_orientation

    graph = read_edge_list(args.graph)
    orientation, bound = low_outdegree_orientation(
        graph, epsilon=args.epsilon, alpha=args.alpha,
        method=args.method, seed=args.seed,
    )
    observed = check_orientation(graph, orientation, bound)
    print(f"out-degree bound: {bound} (observed max: {observed})")
    if args.out:
        write_coloring(orientation, args.out)
        print(f"orientation (edge -> tail) written to {args.out}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import generators

    if args.family == "forest-union":
        graph = generators.union_of_random_forests(
            args.n, args.alpha, seed=args.seed, simple=args.simple
        )
    elif args.family == "line-multigraph":
        graph = generators.line_multigraph(args.n, args.alpha)
    elif args.family == "grid":
        side = max(2, int(args.n ** 0.5))
        graph = generators.grid_graph(side, side)
    elif args.family == "preferential":
        graph = generators.preferential_attachment(
            args.n, args.alpha, seed=args.seed
        )
    else:
        print(f"unknown family {args.family!r}", file=sys.stderr)
        return 2
    if args.out:
        write_edge_list(graph, args.out)
        print(f"graph (n={graph.n}, m={graph.m}) written to {args.out}")
    else:
        write_edge_list(graph, sys.stdout)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nash-Williams forest/star-forest decompositions "
        "(Harris-Su-Vu, PODC 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics incl. exact alpha")
    p_stats.add_argument("graph")
    p_stats.set_defaults(func=_cmd_stats)

    p_fd = sub.add_parser("fd", help="(1+eps)alpha forest decomposition")
    _add_common(p_fd)
    p_fd.add_argument("--bounded-diameter", action="store_true")
    p_fd.set_defaults(func=_cmd_fd)

    p_sfd = sub.add_parser("sfd", help="star-forest decomposition (simple graphs)")
    _add_common(p_sfd)
    p_sfd.set_defaults(func=_cmd_sfd)

    p_orient = sub.add_parser("orient", help="(1+eps)alpha orientation")
    _add_common(p_orient)
    p_orient.add_argument(
        "--method", default="augmentation",
        choices=("augmentation", "hpartition", "exact"),
    )
    p_orient.set_defaults(func=_cmd_orient)

    p_gen = sub.add_parser("generate", help="generate a workload graph")
    p_gen.add_argument(
        "family",
        choices=("forest-union", "line-multigraph", "grid", "preferential"),
    )
    p_gen.add_argument("--n", type=int, default=50)
    p_gen.add_argument("--alpha", type=int, default=3)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--simple", action="store_true")
    p_gen.add_argument("--out", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
