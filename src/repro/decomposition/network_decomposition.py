"""Network decompositions.

Two constructions, matching the two notions used by the paper
(Section 1.1):

* :func:`network_decomposition` — a ``(D, χ)``-network decomposition
  with ``D = O(log n)`` and ``χ = O(log n)``: a partition of vertices
  into χ classes such that every connected component (cluster) of every
  class has strong diameter at most D.  We use deterministic ball
  carving with a doubling radius: grow a BFS ball until the next shell
  would at most double it, carve the ball as a cluster, and defer its
  boundary shell to later classes.  Each class absorbs at least half of
  the vertices that remain, so O(log n) classes suffice, and each ball
  stops growing within log2(n) steps, so cluster radius is O(log n).
  The LOCAL round cost charged follows the randomized algorithms the
  paper cites ([LS93, EN16]: O(log² n) rounds on G, times the radius
  when applied to a power graph).

* :func:`partial_network_decomposition` — the ``(O(log n / β), β)``
  *partial* decomposition of [MPX13] (random exponential shifts): a
  partition into clusters of radius O(log n / β) such that each edge is
  cut (endpoints in different clusters) with probability at most β.
  Used by the vertex-color-splitting step (Theorem 4.9).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..errors import DecompositionError
from ..graph.csr import CSRGraph, _concat_ranges, resolve_backend, snapshot_of
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..parallel.engine import WaveEngine, engine_for
from ..rng import SeedLike, make_rng

GraphLike = Union[MultiGraph, CSRGraph]

#: backends that run on the flat-array kernel ("parallel" additionally
#: routes ball-growth shells through the shared wave engine)
_KERNEL = ("csr", "parallel")


def _resolve_backend(graph: GraphLike, backend: str) -> str:
    # Shared dispatch (and auto cutoff) with the traversal layer; this
    # layer reports unknown names in its own error taxonomy.
    return resolve_backend(graph, backend, DecompositionError)


class NetworkDecomposition:
    """A (D, chi) network decomposition: classes of disjoint clusters."""

    def __init__(self, classes: List[List[List[int]]]) -> None:
        # classes[z] = list of clusters; cluster = sorted vertex list.
        self.classes = classes

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def all_clusters(self) -> List[Tuple[int, List[int]]]:
        """(class index, cluster) pairs, in processing order."""
        return [
            (z, cluster)
            for z, clusters in enumerate(self.classes)
            for cluster in clusters
        ]

    def vertex_classes(self) -> Dict[int, int]:
        """vertex -> class index."""
        out: Dict[int, int] = {}
        for z, clusters in enumerate(self.classes):
            for cluster in clusters:
                for v in cluster:
                    out[v] = z
        return out


def network_decomposition(
    graph: GraphLike,
    rounds: Optional[RoundCounter] = None,
    radius_cost: int = 1,
    backend: str = "auto",
    workers: int = 0,
) -> NetworkDecomposition:
    """Deterministic (O(log n), O(log n)) network decomposition.

    ``radius_cost`` scales the charged rounds when the decomposition is
    (conceptually) computed on a power graph ``G^r`` simulated over G:
    pass ``r``.  Charged cost: O(log² n) * radius_cost, following the
    algorithms cited by Theorem 4.1.

    Accepts a :class:`MultiGraph` or a CSR snapshot (e.g. the output of
    ``power_graph(..., backend="csr")``); the csr backend grows balls
    with mask-vectorized frontier sweeps and produces exactly the
    clusters of the dict reference path.  The parallel backend routes
    each ball's shell expansion through the shared wave engine
    (shard-fanned gathers + scatter-dedup reconcile; ``workers``
    threads) — the carve order is inherently sequential (each ball's
    shell masks later seeds), so clusters stay identical for every
    worker count.
    """
    counter = ensure_counter(rounds)
    n = graph.n
    if n == 0:
        return NetworkDecomposition([])

    resolved = _resolve_backend(graph, backend)
    if resolved in _KERNEL:
        snap = snapshot_of(graph)
        engine = engine_for(snap, workers) if resolved == "parallel" else None
        classes = _decompose_csr(snap, n, engine)
    else:
        classes = _decompose_dict(graph, n)

    log_n = max(1, math.ceil(math.log2(n + 1)))
    counter.charge(log_n * log_n * max(1, radius_cost), "network decomposition")
    return NetworkDecomposition(classes)


def _decompose_dict(graph: GraphLike, n: int) -> List[List[List[int]]]:
    """Reference ball carving on the dict adjacency."""
    remaining: Set[int] = set(graph.vertices())
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4

    while remaining:
        if len(classes) > guard:
            raise DecompositionError("network decomposition did not converge")
        clusters: List[List[int]] = []
        unvisited = set(remaining)
        while unvisited:
            seed_vertex = min(unvisited)
            ball, shell = _grow_doubling_ball(graph, seed_vertex, unvisited)
            clusters.append(sorted(ball))
            unvisited -= ball
            unvisited -= shell
            remaining -= ball
        classes.append(clusters)
    return classes


def _decompose_csr(
    snapshot: CSRGraph, n: int, engine: Optional[WaveEngine] = None
) -> List[List[List[int]]]:
    """Ball carving over dense-index masks; cluster-for-cluster equal to
    :func:`_decompose_dict` (seeds by minimum vertex id, identical
    doubling rule).

    Seeds come from a cursor over the id-sorted vertex order: within a
    class the minimum unvisited id only grows, so the scan is amortized
    O(n) per class.  Ball membership uses a stamp array (stamp[i] ==
    current cluster token) so no per-cluster mask is allocated.  An
    optional engine fans each shell's half-edge gather out across
    shard-aligned frontier groups (shell sets are dedup-order-free, so
    clusters are identical for every worker count).
    """
    vertex_ids = snapshot.vertex_ids
    order_by_id = np.argsort(vertex_ids, kind="stable").tolist()
    remaining = np.ones(n, dtype=bool)
    stamp = np.full(n, -1, dtype=np.int64)
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4
    token = 0

    while remaining.any():
        if len(classes) > guard:
            raise DecompositionError("network decomposition did not converge")
        clusters: List[List[int]] = []
        unvisited = remaining.copy()
        cursor = 0
        while True:
            while cursor < n and not unvisited[order_by_id[cursor]]:
                cursor += 1
            if cursor == n:
                break
            seed_index = order_by_id[cursor]
            ball, shell = _grow_doubling_ball_csr(
                snapshot, seed_index, unvisited, stamp, token, engine
            )
            token += 1
            clusters.append(np.sort(vertex_ids[ball]).tolist())
            unvisited[ball] = False
            unvisited[shell] = False
            remaining[ball] = False
        classes.append(clusters)
    return classes


def _grow_doubling_ball(
    graph: GraphLike, center: int, allowed: Set[int]
) -> Tuple[Set[int], Set[int]]:
    """Grow a BFS ball inside ``allowed`` until the next shell would not
    double it; return (ball, next shell)."""
    ball: Set[int] = {center}
    frontier: Set[int] = {center}
    while True:
        shell: Set[int] = set()
        for v in frontier:
            for other in graph.neighbors(v):
                if other in allowed and other not in ball:
                    shell.add(other)
        if not shell:
            return ball, set()
        if len(ball) + len(shell) <= 2 * len(ball):
            return ball, shell
        ball |= shell
        frontier = shell


def _grow_doubling_ball_csr(
    snapshot: CSRGraph,
    center: int,
    allowed: np.ndarray,
    stamp: np.ndarray,
    token: int,
    engine: Optional[WaveEngine] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Frontier-vectorized :func:`_grow_doubling_ball` over dense
    indices; returns (ball indices, next-shell indices).  ``stamp``
    marks ball membership with ``token`` (one shared array instead of a
    fresh mask per cluster).  With an engine, each shell's gather is
    one wave: shard-phase kernels slice the frozen CSR arrays, the
    reconcile dedups and filters — shell sets are order-free, so the
    ball is identical under any worker count."""
    n = snapshot.num_vertices
    offsets = snapshot.vertex_offsets
    nbr = snapshot.neighbor_ids
    stamp[center] = token
    frontier = np.asarray([center], dtype=np.int64)
    parts = [frontier]
    ball_size = 1
    while True:
        if engine is not None and engine.workers > 1 and frontier.size >= 64:
            # Fan the shell gather out only when threads can overlap
            # AND the frontier is big enough that even the work-list
            # accounting (summing its half-edge counts) is noise —
            # most balls are tiny and sequential, and paying that
            # accounting per shell measurably slowed the carve.
            cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
            candidates = engine.gather(
                lambda part: nbr[
                    _concat_ranges(offsets[part], offsets[part + 1])
                ],
                frontier,
                cost,
            )
        else:
            half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
            candidates = nbr[half]
        if candidates.size > n >> 2:
            # Dense frontier: a scatter mask dedups in O(n + |half|),
            # beating unique's O(|half| log |half|) sort.
            hit = np.zeros(n, dtype=bool)
            hit[candidates] = True
            shell = np.flatnonzero(hit & allowed & (stamp != token))
        else:
            shell = np.unique(candidates)
            shell = shell[allowed[shell] & (stamp[shell] != token)]
        if shell.size == 0 or ball_size + int(shell.size) <= 2 * ball_size:
            ball = parts[0] if len(parts) == 1 else np.concatenate(parts)
            return ball, shell
        stamp[shell] = token
        parts.append(shell)
        ball_size += int(shell.size)
        frontier = shell


def validate_network_decomposition(
    graph: GraphLike,
    decomposition: NetworkDecomposition,
    max_diameter: int,
    max_classes: int,
) -> None:
    """Raise :class:`DecompositionError` on any violated guarantee.

    Checks: classes partition V; clusters of one class are pairwise
    non-adjacent; every cluster is connected with strong diameter at
    most ``max_diameter``; class count at most ``max_classes``.
    """
    from ..graph.traversal import diameter_of_component

    seen: Set[int] = set()
    if decomposition.num_classes > max_classes:
        raise DecompositionError(
            f"{decomposition.num_classes} classes exceed cap {max_classes}"
        )
    for z, clusters in enumerate(decomposition.classes):
        in_class: Dict[int, int] = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                if v in seen:
                    raise DecompositionError(f"vertex {v} in two clusters")
                seen.add(v)
                in_class[v] = index
            diameter = diameter_of_component(graph, cluster)
            if diameter > max_diameter:
                raise DecompositionError(
                    f"cluster diameter {diameter} exceeds {max_diameter}"
                )
        for v, index in in_class.items():
            for other in graph.neighbors(v):
                if other in in_class and in_class[other] != index:
                    raise DecompositionError(
                        f"clusters {index} and {in_class[other]} of class {z} "
                        f"are adjacent via edge {v}-{other}"
                    )
    if seen != set(graph.vertices()):
        raise DecompositionError("decomposition does not cover all vertices")


# ----------------------------------------------------------------------
# Partial network decomposition (Miller–Peng–Xu random shifts)
# ----------------------------------------------------------------------


def partial_network_decomposition(
    graph: GraphLike,
    beta: float,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
) -> Dict[int, int]:
    """MPX random-shift clustering: vertex -> cluster head.

    Each vertex ``u`` draws ``δ_u ~ Exponential(β)``; vertex ``v`` joins
    the cluster of the head ``u`` minimizing ``d(u, v) - δ_u``.  Cluster
    radius is ``O(log n / β)`` w.h.p. and every edge is cut with
    probability at most ~β.  Charged rounds: O(log n / β).

    Both backends draw shifts in vertex insertion order and order the
    heap by ``(time, vertex id, head id)``, so for a given seed the
    clustering is identical; the csr path only swaps the dict adjacency
    for flat index arrays in the Dijkstra sweep.
    """
    if not (0.0 < beta <= 1.0):
        raise DecompositionError(f"beta must be in (0, 1], got {beta}")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    n = graph.n
    if n == 0:
        return {}

    # The MPX sweep is a scalar Dijkstra whose heap order is the whole
    # determinism story — "parallel" resolves to the same csr arrays
    # (there is no wave to fan out without reordering the heap).
    if _resolve_backend(graph, backend) in _KERNEL:
        head_of = _mpx_sweep_csr(snapshot_of(graph), beta, rng)
    else:
        head_of = _mpx_sweep_dict(graph, beta, rng)

    expected_radius = math.ceil(math.log(max(n, 2)) / beta) + 1
    counter.charge(expected_radius, "MPX partial network decomposition")
    return head_of


def _mpx_sweep_dict(graph: GraphLike, beta: float, rng) -> Dict[int, int]:
    """Reference Dijkstra sweep with unit edges and start times -shift."""
    shift: Dict[int, float] = {
        v: rng.expovariate(beta) for v in graph.vertices()
    }
    best: Dict[int, float] = {}
    head_of: Dict[int, int] = {}
    heap: List[Tuple[float, int, int]] = []
    for v in graph.vertices():
        start = -shift[v]
        best[v] = start
        head_of[v] = v
        heapq.heappush(heap, (start, v, v))
    while heap:
        time, vertex, head = heapq.heappop(heap)
        if head_of[vertex] != head or best[vertex] != time:
            continue
        for other in graph.neighbors(vertex):
            candidate = time + 1.0
            if candidate < best.get(other, math.inf):
                best[other] = candidate
                head_of[other] = head
                heapq.heappush(heap, (candidate, other, head))
    return head_of


def _mpx_sweep_csr(snapshot: CSRGraph, beta: float, rng) -> Dict[int, int]:
    """The same sweep over flat adjacency arrays.

    Heap entries carry ``(time, vertex id, head id)`` first — identical
    ordering to the dict path — with the dense indices appended as
    payload so the state arrays never need an id lookup.  Parallel
    half-edges relax twice, but the second attempt always fails the
    strict ``<`` test, so the pushed multiset matches the reference.
    """
    n = snapshot.num_vertices
    vids = snapshot.vertex_id_list()
    offsets, nbr = snapshot.adjacency_lists()
    # Same draw order as the dict path: vertex insertion order.
    best: List[float] = [-rng.expovariate(beta) for _ in range(n)]
    head: List[int] = list(range(n))
    heap = [(best[i], vids[i], vids[i], i, i) for i in range(n)]
    heapq.heapify(heap)
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        time, _vid, head_vid, index, head_index = heappop(heap)
        if head[index] != head_index or best[index] != time:
            continue
        candidate = time + 1.0
        for half in range(offsets[index], offsets[index + 1]):
            j = nbr[half]
            if candidate < best[j]:
                best[j] = candidate
                head[j] = head_index
                heappush(heap, (candidate, vids[j], head_vid, j, head_index))
    return {vids[i]: vids[head[i]] for i in range(n)}


def cut_edges_of_clustering(
    graph: GraphLike, head_of: Dict[int, int], backend: str = "auto"
) -> List[int]:
    """Edge ids whose endpoints lie in different MPX clusters."""
    if _resolve_backend(graph, backend) in _KERNEL:
        snap = snapshot_of(graph)
        if snap.num_edges == 0:
            return []
        heads = np.fromiter(
            (head_of[v] for v in snap.vertex_id_list()),
            dtype=np.int64,
            count=snap.num_vertices,
        )
        cut = heads[snap.edge_u] != heads[snap.edge_v]
        return snap.edge_id[cut].tolist()
    return [
        eid for eid, u, v in graph.edges() if head_of[u] != head_of[v]
    ]
