"""Network decompositions.

Two constructions, matching the two notions used by the paper
(Section 1.1):

* :func:`network_decomposition` — a ``(D, χ)``-network decomposition
  with ``D = O(log n)`` and ``χ = O(log n)``: a partition of vertices
  into χ classes such that every connected component (cluster) of every
  class has strong diameter at most D.  We use deterministic ball
  carving with a doubling radius: grow a BFS ball until the next shell
  would at most double it, carve the ball as a cluster, and defer its
  boundary shell to later classes.  Each class absorbs at least half of
  the vertices that remain, so O(log n) classes suffice, and each ball
  stops growing within log2(n) steps, so cluster radius is O(log n).
  The LOCAL round cost charged follows the randomized algorithms the
  paper cites ([LS93, EN16]: O(log² n) rounds on G, times the radius
  when applied to a power graph).

* :func:`partial_network_decomposition` — the ``(O(log n / β), β)``
  *partial* decomposition of [MPX13] (random exponential shifts): a
  partition into clusters of radius O(log n / β) such that each edge is
  cut (endpoints in different clusters) with probability at most β.
  Used by the vertex-color-splitting step (Theorem 4.9).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..errors import DecompositionError
from ..graph.csr import CSRGraph, _concat_ranges, resolve_backend, snapshot_of
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..parallel.bfs import resolve_claims
from ..parallel.engine import WaveEngine, engine_for
from ..rng import SeedLike, make_rng

GraphLike = Union[MultiGraph, CSRGraph]

#: backends that run on the flat-array kernel ("parallel" / "mp"
#: additionally route ball-growth shells through the shared wave engine,
#: thread- or process-pooled respectively)
_KERNEL = ("csr", "parallel", "mp")

#: kernel backends that build a wave engine
_ENGINE = ("parallel", "mp")

#: ball-growth rules: "doubling" carves one ball at a time (grow until
#: the next shell stops doubling it), "simultaneous" grows every live
#: seed at once on staggered starts and resolves contested vertices by
#: (level, seed id)
CARVE_RULES = ("doubling", "simultaneous")


def _resolve_backend(graph: GraphLike, backend: str) -> str:
    # Shared dispatch (and auto cutoff) with the traversal layer; this
    # layer reports unknown names in its own error taxonomy.
    return resolve_backend(graph, backend, DecompositionError)


class NetworkDecomposition:
    """A (D, chi) network decomposition: classes of disjoint clusters."""

    def __init__(self, classes: List[List[List[int]]]) -> None:
        # classes[z] = list of clusters; cluster = sorted vertex list.
        self.classes = classes

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def all_clusters(self) -> List[Tuple[int, List[int]]]:
        """(class index, cluster) pairs, in processing order."""
        return [
            (z, cluster)
            for z, clusters in enumerate(self.classes)
            for cluster in clusters
        ]

    def vertex_classes(self) -> Dict[int, int]:
        """vertex -> class index."""
        out: Dict[int, int] = {}
        for z, clusters in enumerate(self.classes):
            for cluster in clusters:
                for v in cluster:
                    out[v] = z
        return out


def network_decomposition(
    graph: GraphLike,
    rounds: Optional[RoundCounter] = None,
    radius_cost: int = 1,
    backend: str = "auto",
    workers: int = 0,
    carve_rule: str = "doubling",
) -> NetworkDecomposition:
    """Deterministic (O(log n), O(log n)) network decomposition.

    ``radius_cost`` scales the charged rounds when the decomposition is
    (conceptually) computed on a power graph ``G^r`` simulated over G:
    pass ``r``.  Charged cost: O(log² n) * radius_cost, following the
    algorithms cited by Theorem 4.1.

    Accepts a :class:`MultiGraph` or a CSR snapshot (e.g. the output of
    ``power_graph(..., backend="csr")``); the csr backend produces
    exactly the clusters of the dict reference path.

    ``carve_rule`` picks the ball-growth schedule:

    * ``"doubling"`` (default) — one ball at a time: grow a BFS ball
      from the minimum unvisited id until the next shell would not
      double it, carve it, defer its boundary shell.  The carve order
      is inherently sequential (each ball's shell masks later seeds),
      so ``backend="parallel"`` only fans out individual shell gathers.
    * ``"simultaneous"`` — every unvisited vertex is a live seed with a
      deterministic hash-derived staggered start; each wave grows every
      live ball one BFS level through a single fanned gather, and
      contested vertices resolve by ``(level, seed id)`` — the
      tie-break :func:`_mpx_sweep_csr` uses — so clusters are
      bit-identical for every worker count x shard plan while the wave
      finally has enough frontier for the engine to fan out.
    """
    if carve_rule not in CARVE_RULES:
        raise DecompositionError(
            f"unknown carve_rule {carve_rule!r}; expected one of {CARVE_RULES}"
        )
    counter = ensure_counter(rounds)
    n = graph.n
    if n == 0:
        return NetworkDecomposition([])

    resolved = _resolve_backend(graph, backend)
    if resolved in _KERNEL:
        snap = snapshot_of(graph)
        engine = (
            engine_for(snap, workers, mp=resolved == "mp")
            if resolved in _ENGINE
            else None
        )
        if carve_rule == "simultaneous":
            classes = _decompose_simultaneous_csr(snap, n, engine)
        else:
            classes = _decompose_csr(snap, n, engine)
    elif carve_rule == "simultaneous":
        classes = _decompose_simultaneous_dict(graph, n)
    else:
        classes = _decompose_dict(graph, n)

    log_n = max(1, math.ceil(math.log2(n + 1)))
    counter.charge(log_n * log_n * max(1, radius_cost), "network decomposition")
    return NetworkDecomposition(classes)


def _decompose_dict(graph: GraphLike, n: int) -> List[List[List[int]]]:
    """Reference ball carving on the dict adjacency."""
    remaining: Set[int] = set(graph.vertices())
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4

    while remaining:
        if len(classes) >= guard:
            raise DecompositionError("network decomposition did not converge")
        clusters: List[List[int]] = []
        unvisited = set(remaining)
        while unvisited:
            seed_vertex = min(unvisited)
            ball, shell = _grow_doubling_ball(graph, seed_vertex, unvisited)
            clusters.append(sorted(ball))
            unvisited -= ball
            unvisited -= shell
            remaining -= ball
        classes.append(clusters)
    return classes


def _decompose_csr(
    snapshot: CSRGraph, n: int, engine: Optional[WaveEngine] = None
) -> List[List[List[int]]]:
    """Ball carving over dense-index masks; cluster-for-cluster equal to
    :func:`_decompose_dict` (seeds by minimum vertex id, identical
    doubling rule).

    Seeds come from a cursor over the id-sorted vertex order: within a
    class the minimum unvisited id only grows, so the scan is amortized
    O(n) per class.  Ball membership uses a stamp array (stamp[i] ==
    current cluster token) so no per-cluster mask is allocated.  An
    optional engine fans each shell's half-edge gather out across
    shard-aligned frontier groups (shell sets are dedup-order-free, so
    clusters are identical for every worker count).
    """
    vertex_ids = snapshot.vertex_ids
    order_by_id = np.argsort(vertex_ids, kind="stable").tolist()
    remaining = np.ones(n, dtype=bool)
    stamp = np.full(n, -1, dtype=np.int64)
    scratch = np.zeros(n, dtype=bool)
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4
    token = 0

    while remaining.any():
        if len(classes) >= guard:
            raise DecompositionError("network decomposition did not converge")
        clusters: List[List[int]] = []
        unvisited = remaining.copy()
        cursor = 0
        while True:
            while cursor < n and not unvisited[order_by_id[cursor]]:
                cursor += 1
            if cursor == n:
                break
            seed_index = order_by_id[cursor]
            ball, shell = _grow_doubling_ball_csr(
                snapshot, seed_index, unvisited, stamp, token, engine, scratch
            )
            token += 1
            clusters.append(np.sort(vertex_ids[ball]).tolist())
            unvisited[ball] = False
            unvisited[shell] = False
            remaining[ball] = False
        classes.append(clusters)
    return classes


def _grow_doubling_ball(
    graph: GraphLike, center: int, allowed: Set[int]
) -> Tuple[Set[int], Set[int]]:
    """Grow a BFS ball inside ``allowed`` until the next shell would not
    double it; return (ball, next shell)."""
    ball: Set[int] = {center}
    frontier: Set[int] = {center}
    while True:
        shell: Set[int] = set()
        for v in frontier:
            for other in graph.neighbors(v):
                if other in allowed and other not in ball:
                    shell.add(other)
        if not shell:
            return ball, set()
        if len(ball) + len(shell) <= 2 * len(ball):
            return ball, shell
        ball |= shell
        frontier = shell


def _grow_doubling_ball_csr(
    snapshot: CSRGraph,
    center: int,
    allowed: np.ndarray,
    stamp: np.ndarray,
    token: int,
    engine: Optional[WaveEngine] = None,
    scratch: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Frontier-vectorized :func:`_grow_doubling_ball` over dense
    indices; returns (ball indices, next-shell indices).  ``stamp``
    marks ball membership with ``token`` (one shared array instead of a
    fresh mask per cluster).  ``scratch`` is an all-False bool mask the
    dense-shell path borrows for its scatter dedup (and restores before
    returning) — one allocation per decomposition instead of one per
    shell.  With an engine, each shell's gather is one wave:
    shard-phase kernels slice the frozen CSR arrays, the reconcile
    dedups and filters — shell sets are order-free, so the ball is
    identical under any worker count."""
    n = snapshot.num_vertices
    offsets = snapshot.vertex_offsets
    nbr = snapshot.neighbor_ids
    stamp[center] = token
    frontier = np.asarray([center], dtype=np.int64)
    parts = [frontier]
    ball_size = 1
    while True:
        if engine is not None and engine.workers > 1 and frontier.size >= 64:
            # Fan the shell gather out only when threads can overlap
            # AND the frontier is big enough that even the work-list
            # accounting (summing its half-edge counts) is noise —
            # most balls are tiny and sequential, and paying that
            # accounting per shell measurably slowed the carve.
            cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
            candidates = engine.gather(
                lambda part: nbr[
                    _concat_ranges(offsets[part], offsets[part + 1])
                ],
                frontier,
                cost,
            )
        else:
            half = _concat_ranges(offsets[frontier], offsets[frontier + 1])
            candidates = nbr[half]
        if candidates.size > n >> 2:
            # Dense frontier: a scatter mask dedups in O(n + |half|),
            # beating unique's O(|half| log |half|) sort.
            hit = scratch if scratch is not None else np.zeros(n, dtype=bool)
            hit[candidates] = True
            shell = np.flatnonzero(hit & allowed & (stamp != token))
            if scratch is not None:
                hit[candidates] = False
        else:
            shell = np.unique(candidates)
            shell = shell[allowed[shell] & (stamp[shell] != token)]
        if shell.size == 0 or ball_size + int(shell.size) <= 2 * ball_size:
            ball = parts[0] if len(parts) == 1 else np.concatenate(parts)
            return ball, shell
        stamp[shell] = token
        parts.append(shell)
        ball_size += int(shell.size)
        frontier = shell


# ----------------------------------------------------------------------
# Simultaneous multi-ball carving (carve_rule="simultaneous")
# ----------------------------------------------------------------------
#
# Per class, every unvisited vertex is a live seed.  Seed ``v`` gets a
# deterministic integer shift delta(v, class) with geometric tail
# P(delta >= k) = 2^-k, capped at T = ceil(log2(|unvisited| + 1)), and
# activates (claims itself) at wave ``T - delta`` if still unclaimed.
# Each wave, every vertex claimed in the previous wave proposes its
# unclaimed neighbors; all of a wave's proposals (growth + activations)
# resolve jointly per target by minimum seed id — priority
# ``(level, seed id)``, the tie-break the MPX array-Dijkstra uses.
# This is the integer-shift analog of [MPX13]'s exponential shifts
# (and of the [LS93]/[EN16] shape behind Theorem 4.1): every vertex is
# claimed by wave T (its own activation wins if nothing else did), and
# claims extend only from already-claimed neighbors, so each ball is
# connected with radius <= delta(seed) <= T from its seed.
#
# Each claim records its *parent*: among the winning seed's proposers
# the one with minimum id (activations parent themselves), so the
# parent chain walks back to the seed along claim waves.  A vertex is
# *carved* (kept in the class) when (a) no neighbor sits in a ball
# with a smaller seed id — the one-sided boundary rule: if two
# adjacent vertices end in different balls, only the one in the
# larger-id ball defers to the next class — and (b) its whole parent
# chain is kept.  (a) makes same-class clusters pairwise non-adjacent
# (the smaller-id side of any cross-ball edge keeps, the larger
# defers), (b) keeps each cluster connected with an in-cluster path of
# length <= T to its seed, so strong cluster diameter is <= 2T.  The
# minimum-id surviving seed can never defer, so every class makes
# progress; the convergence guard bounds the class count exactly as
# for the doubling rule.
#
# Both backends run this schedule step for step: the dict path with
# scalar hashes and per-wave dicts, the csr path with the vectorized
# hash and sort-based claim resolution (`resolve_claims`), which is
# order-free — so dict == csr == parallel holds bit for bit for every
# worker count and shard plan.

_SHIFT_MIX_1 = 0x9E3779B97F4A7C15
_SHIFT_MIX_2 = 0xBF58476D1CE4E5B9
_SHIFT_MIX_3 = 0x94D049BB133111EB
_CLASS_SALT = 0xC2B2AE3D27D4EB4F
_MASK64 = (1 << 64) - 1

#: owner-array sentinels for the csr path
_OUTSIDE = -2
_UNCLAIMED = -1


def _carve_shift(vid: int, class_index: int, cap: int) -> int:
    """Scalar staggered-start shift: trailing-zero count of a
    splitmix64-style hash of ``(vertex id, class index)``, capped.
    Exact integer arithmetic — :func:`_carve_shift_array` reproduces it
    bit for bit in numpy uint64."""
    h = (((vid + 1) * _SHIFT_MIX_1) & _MASK64) ^ (
        ((class_index + 1) * _CLASS_SALT) & _MASK64
    )
    h = ((h ^ (h >> 30)) * _SHIFT_MIX_2) & _MASK64
    h = ((h ^ (h >> 27)) * _SHIFT_MIX_3) & _MASK64
    h ^= h >> 31
    if h == 0:
        return cap
    tz = (h & -h).bit_length() - 1
    return tz if tz < cap else cap


def _carve_shift_array(
    vids: np.ndarray, class_index: int, cap: int
) -> np.ndarray:
    """Vectorized :func:`_carve_shift` (uint64 wraparound arithmetic =
    the scalar path's masked python ints, element for element)."""
    h = (vids.astype(np.uint64) + np.uint64(1)) * np.uint64(_SHIFT_MIX_1)
    h ^= np.uint64(((class_index + 1) * _CLASS_SALT) & _MASK64)
    h = (h ^ (h >> np.uint64(30))) * np.uint64(_SHIFT_MIX_2)
    h = (h ^ (h >> np.uint64(27))) * np.uint64(_SHIFT_MIX_3)
    h ^= h >> np.uint64(31)
    lsb = h & (~h + np.uint64(1))
    # log2 of an exact power of two: float64 holds every 2^k <= 2^63
    shifts = np.full(h.shape, cap, dtype=np.int64)
    nonzero = lsb != 0
    shifts[nonzero] = np.minimum(
        np.log2(lsb[nonzero].astype(np.float64)).astype(np.int64), cap
    )
    return shifts


def _decompose_simultaneous_dict(
    graph: GraphLike, n: int
) -> List[List[List[int]]]:
    """Reference simultaneous carve on the dict adjacency."""
    remaining: Set[int] = set(graph.vertices())
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4

    while remaining:
        if len(classes) >= guard:
            raise DecompositionError("network decomposition did not converge")
        kept = _carve_class_simultaneous_dict(graph, remaining, len(classes))
        clusters = [sorted(members) for _seed, members in sorted(kept.items())]
        classes.append(clusters)
        for members in kept.values():
            remaining.difference_update(members)
    return classes


def _carve_class_simultaneous_dict(
    graph: GraphLike, live: Set[int], class_index: int
) -> Dict[int, List[int]]:
    """One simultaneous class: seed -> kept members (fully deferred
    balls simply contribute no entry)."""
    cap = max(1, math.ceil(math.log2(len(live) + 1)))
    by_start: Dict[int, List[int]] = {}
    for v in live:
        start = cap - _carve_shift(v, class_index, cap)
        by_start.setdefault(start, []).append(v)

    owner: Dict[int, int] = {}
    parent: Dict[int, int] = {}
    waves: List[List[int]] = []
    frontier: List[int] = []
    for wave in range(cap + 1):
        # proposal = (seed id, proposer id); the minimum pair wins the
        # target, so ownership goes to the smallest seed and the parent
        # link to that seed's smallest-id proposer.
        proposals: Dict[int, Tuple[int, int]] = {}
        for u in frontier:
            candidate = (owner[u], u)
            for other in graph.neighbors(u):
                if other in live and other not in owner:
                    best = proposals.get(other)
                    if best is None or best > candidate:
                        proposals[other] = candidate
        for v in by_start.get(wave, ()):
            if v not in owner:
                best = proposals.get(v)
                if best is None or best > (v, v):
                    proposals[v] = (v, v)
        for target, (seed, proposer) in proposals.items():
            owner[target] = seed
            parent[target] = proposer
        frontier = sorted(proposals)
        if frontier:
            waves.append(frontier)
        if len(owner) == len(live):
            break

    # Boundary rule + parent-chain cascade, in claim-wave order
    # (parents are claimed strictly earlier, so their verdict is in).
    kept: Set[int] = set()
    for wave_vertices in waves:
        for v in wave_vertices:
            mine = owner[v]
            if any(
                other in live and owner[other] < mine
                for other in graph.neighbors(v)
            ):
                continue
            if mine == v or parent[v] in kept:
                kept.add(v)

    clusters: Dict[int, List[int]] = {}
    # repro: allow(det-set-order) — int-only vertex set built in wave order:
    # int hashes are PYTHONHASHSEED-independent, so the member order is a
    # pure function of the carve sequence; the frozen simultaneous-carve
    # goldens certify exactly this order (sorting would regenerate them).
    for v in kept:
        clusters.setdefault(owner[v], []).append(v)
    return clusters


def _decompose_simultaneous_csr(
    snapshot: CSRGraph, n: int, engine: Optional[WaveEngine] = None
) -> List[List[List[int]]]:
    """Simultaneous carve over dense-index arrays; cluster-for-cluster
    equal to :func:`_decompose_simultaneous_dict`.

    Ball priority compares seed *ids*, so the csr path works in id
    ranks (position in the id-sorted vertex order): rank comparisons
    equal id comparisons, and every state array stays dense-indexed.
    With an engine, each wave's proposal gather and each boundary/
    cascade scan fans out across shard-aligned groups; the reconcile
    (:func:`~repro.parallel.bfs.resolve_claims`) is order-free, so
    clusters are identical for every worker count and shard plan.
    """
    vertex_ids = snapshot.vertex_ids
    order_by_id = np.argsort(vertex_ids, kind="stable")
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order_by_id] = np.arange(n, dtype=np.int64)

    remaining = np.ones(n, dtype=bool)
    owner = np.empty(n, dtype=np.int64)
    parent = np.empty(n, dtype=np.int64)
    kept = np.zeros(n, dtype=bool)
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4

    while remaining.any():
        if len(classes) >= guard:
            raise DecompositionError("network decomposition did not converge")
        clusters, kept_indices = _carve_class_simultaneous_csr(
            snapshot,
            remaining,
            len(classes),
            rank_of,
            order_by_id,
            owner,
            parent,
            kept,
            engine,
        )
        classes.append(clusters)
        remaining[kept_indices] = False
    return classes


def _carve_class_simultaneous_csr(
    snapshot: CSRGraph,
    remaining: np.ndarray,
    class_index: int,
    rank_of: np.ndarray,
    order_by_id: np.ndarray,
    owner: np.ndarray,
    parent: np.ndarray,
    kept: np.ndarray,
    engine: Optional[WaveEngine],
) -> Tuple[List[List[int]], np.ndarray]:
    """Grow, bound and cascade one simultaneous class; returns
    ``(clusters, kept dense indices)``.  ``owner``/``parent``/``kept``
    are reusable scratch arrays owned by the driver."""
    offsets = snapshot.vertex_offsets
    nbr = snapshot.neighbor_ids
    vertex_ids = snapshot.vertex_ids
    n = snapshot.num_vertices

    live = np.flatnonzero(remaining)
    cap = max(1, math.ceil(math.log2(live.size + 1)))
    starts = cap - _carve_shift_array(vertex_ids[live], class_index, cap)
    owner[:] = _OUTSIDE
    owner[live] = _UNCLAIMED

    # Bucket activations by start wave (one argsort, then slices).
    act_order = np.argsort(starts, kind="stable")
    act_sorted = live[act_order]
    bounds = np.searchsorted(
        starts[act_order], np.arange(cap + 2, dtype=np.int64)
    )

    def propose(part: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Proposal priority packs (seed rank, proposer rank) into one
        # key — the minimum recovers the dict path's (seed id,
        # proposer id) lexicographic winner, because ranks order
        # exactly like ids.
        half = _concat_ranges(offsets[part], offsets[part + 1])
        counts = offsets[part + 1] - offsets[part]
        priorities = np.repeat(owner[part] * n + rank_of[part], counts)
        return nbr[half], priorities

    waves: List[np.ndarray] = []
    frontier = np.empty(0, dtype=np.int64)
    claimed = 0
    first_wave = int(starts.min()) if live.size else cap + 1
    for wave in range(first_wave, cap + 1):
        if frontier.size:
            cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
            if engine is not None:
                targets, priorities = engine.gather(propose, frontier, cost)
            else:
                targets, priorities = propose(frontier)
            open_targets = owner[targets] == _UNCLAIMED
            targets = targets[open_targets]
            priorities = priorities[open_targets]
        else:
            targets = np.empty(0, dtype=np.int64)
            priorities = np.empty(0, dtype=np.int64)
        activations = act_sorted[bounds[wave] : bounds[wave + 1]]
        activations = activations[owner[activations] == _UNCLAIMED]
        if activations.size:
            self_rank = rank_of[activations]
            targets = np.concatenate((targets, activations))
            priorities = np.concatenate(
                (priorities, self_rank * n + self_rank)
            )
        if targets.size == 0:
            continue
        won_targets, won_priorities = resolve_claims(
            targets, priorities, n * n
        )
        owner[won_targets] = won_priorities // n
        parent[won_targets] = order_by_id[won_priorities % n]
        waves.append(won_targets)
        frontier = won_targets
        claimed += won_targets.size
        if claimed == live.size:
            break

    # One-sided boundary rule: one full fanned gather over the class
    # marks every vertex adjacent to a smaller-seed ball as deferred.
    def boundary_ok(part: np.ndarray) -> np.ndarray:
        half = _concat_ranges(offsets[part], offsets[part + 1])
        counts = offsets[part + 1] - offsets[part]
        theirs = owner[nbr[half]]
        foreign = (theirs >= 0) & (theirs < np.repeat(owner[part], counts))
        return ~_segment_any(foreign, counts)

    cost = int((offsets[live + 1] - offsets[live]).sum())
    if engine is not None:
        ok = engine.gather(boundary_ok, live, cost)
    else:
        ok = boundary_ok(live)
    kept[live] = ok

    # Parent-chain cascade in claim-wave order (parents are claimed
    # strictly earlier, so their verdict is already final): a vertex
    # survives only if its whole chain back to the seed does.
    for wave_vertices in waves:
        kept[wave_vertices] &= kept[parent[wave_vertices]] | (
            owner[wave_vertices] == rank_of[wave_vertices]
        )

    kept_indices = np.flatnonzero(kept & remaining)
    if kept_indices.size == 0:
        return [], kept_indices
    owners = owner[kept_indices]
    order = np.lexsort((vertex_ids[kept_indices], owners))
    grouped = kept_indices[order]
    group_owner = owners[order]
    cuts = np.flatnonzero(group_owner[1:] != group_owner[:-1]) + 1
    flat = vertex_ids[grouped].tolist()
    edges = [0, *cuts.tolist(), len(flat)]
    clusters = [flat[a:b] for a, b in zip(edges[:-1], edges[1:])]
    return clusters, kept_indices


def _segment_any(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment logical OR of ``values`` split into consecutive
    segments of ``counts`` lengths (CSR neighbor reductions).  Handles
    empty segments, which ``logical_or.reduceat`` alone does not."""
    out = np.zeros(counts.size, dtype=bool)
    if values.size == 0:
        return out
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    padded = np.concatenate((values, np.zeros(1, dtype=bool)))
    reduced = np.logical_or.reduceat(
        padded, np.minimum(starts, values.size)
    )
    np.logical_and(reduced, counts > 0, out=out)
    return out


def validate_network_decomposition(
    graph: GraphLike,
    decomposition: NetworkDecomposition,
    max_diameter: int,
    max_classes: int,
) -> None:
    """Raise :class:`DecompositionError` on any violated guarantee.

    Checks: classes partition V; clusters of one class are pairwise
    non-adjacent; every cluster is connected with strong diameter at
    most ``max_diameter``; class count at most ``max_classes``.
    """
    from ..graph.traversal import diameter_of_component

    seen: Set[int] = set()
    if decomposition.num_classes > max_classes:
        raise DecompositionError(
            f"{decomposition.num_classes} classes exceed cap {max_classes}"
        )
    for z, clusters in enumerate(decomposition.classes):
        in_class: Dict[int, int] = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                if v in seen:
                    raise DecompositionError(f"vertex {v} in two clusters")
                seen.add(v)
                in_class[v] = index
            diameter = diameter_of_component(graph, cluster)
            if diameter > max_diameter:
                raise DecompositionError(
                    f"cluster diameter {diameter} exceeds {max_diameter}"
                )
        for v, index in in_class.items():
            for other in graph.neighbors(v):
                if other in in_class and in_class[other] != index:
                    raise DecompositionError(
                        f"clusters {index} and {in_class[other]} of class {z} "
                        f"are adjacent via edge {v}-{other}"
                    )
    if seen != set(graph.vertices()):
        raise DecompositionError("decomposition does not cover all vertices")


# ----------------------------------------------------------------------
# Partial network decomposition (Miller–Peng–Xu random shifts)
# ----------------------------------------------------------------------


def partial_network_decomposition(
    graph: GraphLike,
    beta: float,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
) -> Dict[int, int]:
    """MPX random-shift clustering: vertex -> cluster head.

    Each vertex ``u`` draws ``δ_u ~ Exponential(β)``; vertex ``v`` joins
    the cluster of the head ``u`` minimizing ``d(u, v) - δ_u``.  Cluster
    radius is ``O(log n / β)`` w.h.p. and every edge is cut with
    probability at most ~β.  Charged rounds: O(log n / β).

    Both backends draw shifts in vertex insertion order and order the
    heap by ``(time, vertex id, head id)``, so for a given seed the
    clustering is identical; the csr path only swaps the dict adjacency
    for flat index arrays in the Dijkstra sweep.
    """
    if not (0.0 < beta <= 1.0):
        raise DecompositionError(f"beta must be in (0, 1], got {beta}")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    n = graph.n
    if n == 0:
        return {}

    # The MPX sweep is a scalar Dijkstra whose heap order is the whole
    # determinism story — "parallel" resolves to the same csr arrays
    # (there is no wave to fan out without reordering the heap).
    if _resolve_backend(graph, backend) in _KERNEL:
        head_of = _mpx_sweep_csr(snapshot_of(graph), beta, rng)
    else:
        head_of = _mpx_sweep_dict(graph, beta, rng)

    expected_radius = math.ceil(math.log(max(n, 2)) / beta) + 1
    counter.charge(expected_radius, "MPX partial network decomposition")
    return head_of


def _mpx_sweep_dict(graph: GraphLike, beta: float, rng) -> Dict[int, int]:
    """Reference Dijkstra sweep with unit edges and start times -shift."""
    shift: Dict[int, float] = {
        v: rng.expovariate(beta) for v in graph.vertices()
    }
    best: Dict[int, float] = {}
    head_of: Dict[int, int] = {}
    heap: List[Tuple[float, int, int]] = []
    for v in graph.vertices():
        start = -shift[v]
        best[v] = start
        head_of[v] = v
        heapq.heappush(heap, (start, v, v))
    while heap:
        time, vertex, head = heapq.heappop(heap)
        if head_of[vertex] != head or best[vertex] != time:
            continue
        for other in graph.neighbors(vertex):
            candidate = time + 1.0
            if candidate < best.get(other, math.inf):
                best[other] = candidate
                head_of[other] = head
                heapq.heappush(heap, (candidate, other, head))
    return head_of


def _mpx_sweep_csr(snapshot: CSRGraph, beta: float, rng) -> Dict[int, int]:
    """The same sweep over flat adjacency arrays.

    Heap entries carry ``(time, vertex id, head id)`` first — identical
    ordering to the dict path — with the dense indices appended as
    payload so the state arrays never need an id lookup.  Parallel
    half-edges relax twice, but the second attempt always fails the
    strict ``<`` test, so the pushed multiset matches the reference.
    """
    n = snapshot.num_vertices
    vids = snapshot.vertex_id_list()
    offsets, nbr = snapshot.adjacency_lists()
    # Same draw order as the dict path: vertex insertion order.
    best: List[float] = [-rng.expovariate(beta) for _ in range(n)]
    head: List[int] = list(range(n))
    heap = [(best[i], vids[i], vids[i], i, i) for i in range(n)]
    heapq.heapify(heap)
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        time, _vid, head_vid, index, head_index = heappop(heap)
        if head[index] != head_index or best[index] != time:
            continue
        candidate = time + 1.0
        for half in range(offsets[index], offsets[index + 1]):
            j = nbr[half]
            if candidate < best[j]:
                best[j] = candidate
                head[j] = head_index
                heappush(heap, (candidate, vids[j], head_vid, j, head_index))
    return {vids[i]: vids[head[i]] for i in range(n)}


def cut_edges_of_clustering(
    graph: GraphLike, head_of: Dict[int, int], backend: str = "auto"
) -> List[int]:
    """Edge ids whose endpoints lie in different MPX clusters.

    A clustering that misses a vertex of the graph raises
    :class:`DecompositionError` naming the vertex (on both backends),
    instead of leaking a bare ``KeyError`` out of the gather.
    """
    if _resolve_backend(graph, backend) in _KERNEL:
        snap = snapshot_of(graph)
        if snap.num_edges == 0:
            return []
        try:
            heads = np.fromiter(
                (head_of[v] for v in snap.vertex_id_list()),
                dtype=np.int64,
                count=snap.num_vertices,
            )
        except KeyError as exc:
            raise DecompositionError(
                f"clustering has no head for vertex {exc.args[0]}"
            ) from None
        cut = heads[snap.edge_u] != heads[snap.edge_v]
        return snap.edge_id[cut].tolist()
    try:
        return [
            eid for eid, u, v in graph.edges() if head_of[u] != head_of[v]
        ]
    except KeyError as exc:
        raise DecompositionError(
            f"clustering has no head for vertex {exc.args[0]}"
        ) from None
