"""Network decompositions.

Two constructions, matching the two notions used by the paper
(Section 1.1):

* :func:`network_decomposition` — a ``(D, χ)``-network decomposition
  with ``D = O(log n)`` and ``χ = O(log n)``: a partition of vertices
  into χ classes such that every connected component (cluster) of every
  class has strong diameter at most D.  We use deterministic ball
  carving with a doubling radius: grow a BFS ball until the next shell
  would at most double it, carve the ball as a cluster, and defer its
  boundary shell to later classes.  Each class absorbs at least half of
  the vertices that remain, so O(log n) classes suffice, and each ball
  stops growing within log2(n) steps, so cluster radius is O(log n).
  The LOCAL round cost charged follows the randomized algorithms the
  paper cites ([LS93, EN16]: O(log² n) rounds on G, times the radius
  when applied to a power graph).

* :func:`partial_network_decomposition` — the ``(O(log n / β), β)``
  *partial* decomposition of [MPX13] (random exponential shifts): a
  partition into clusters of radius O(log n / β) such that each edge is
  cut (endpoints in different clusters) with probability at most β.
  Used by the vertex-color-splitting step (Theorem 4.9).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DecompositionError
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..rng import SeedLike, make_rng


class NetworkDecomposition:
    """A (D, chi) network decomposition: classes of disjoint clusters."""

    def __init__(self, classes: List[List[List[int]]]) -> None:
        # classes[z] = list of clusters; cluster = sorted vertex list.
        self.classes = classes

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def all_clusters(self) -> List[Tuple[int, List[int]]]:
        """(class index, cluster) pairs, in processing order."""
        return [
            (z, cluster)
            for z, clusters in enumerate(self.classes)
            for cluster in clusters
        ]

    def vertex_classes(self) -> Dict[int, int]:
        """vertex -> class index."""
        out: Dict[int, int] = {}
        for z, clusters in enumerate(self.classes):
            for cluster in clusters:
                for v in cluster:
                    out[v] = z
        return out


def network_decomposition(
    graph: MultiGraph,
    rounds: Optional[RoundCounter] = None,
    radius_cost: int = 1,
) -> NetworkDecomposition:
    """Deterministic (O(log n), O(log n)) network decomposition.

    ``radius_cost`` scales the charged rounds when the decomposition is
    (conceptually) computed on a power graph ``G^r`` simulated over G:
    pass ``r``.  Charged cost: O(log² n) * radius_cost, following the
    algorithms cited by Theorem 4.1.
    """
    counter = ensure_counter(rounds)
    n = graph.n
    if n == 0:
        return NetworkDecomposition([])

    remaining: Set[int] = set(graph.vertices())
    classes: List[List[List[int]]] = []
    guard = 2 * max(1, math.ceil(math.log2(n + 1))) + 4

    while remaining:
        if len(classes) > guard:
            raise DecompositionError("network decomposition did not converge")
        clusters: List[List[int]] = []
        unvisited = set(remaining)
        while unvisited:
            seed_vertex = min(unvisited)
            ball, shell = _grow_doubling_ball(graph, seed_vertex, unvisited)
            clusters.append(sorted(ball))
            unvisited -= ball
            unvisited -= shell
            remaining -= ball
        classes.append(clusters)

    log_n = max(1, math.ceil(math.log2(n + 1)))
    counter.charge(log_n * log_n * max(1, radius_cost), "network decomposition")
    return NetworkDecomposition(classes)


def _grow_doubling_ball(
    graph: MultiGraph, center: int, allowed: Set[int]
) -> Tuple[Set[int], Set[int]]:
    """Grow a BFS ball inside ``allowed`` until the next shell would not
    double it; return (ball, next shell)."""
    ball: Set[int] = {center}
    frontier: Set[int] = {center}
    while True:
        shell: Set[int] = set()
        for v in frontier:
            for other in graph.neighbors(v):
                if other in allowed and other not in ball:
                    shell.add(other)
        if not shell:
            return ball, set()
        if len(ball) + len(shell) <= 2 * len(ball):
            return ball, shell
        ball |= shell
        frontier = shell


def validate_network_decomposition(
    graph: MultiGraph,
    decomposition: NetworkDecomposition,
    max_diameter: int,
    max_classes: int,
) -> None:
    """Raise :class:`DecompositionError` on any violated guarantee.

    Checks: classes partition V; clusters of one class are pairwise
    non-adjacent; every cluster is connected with strong diameter at
    most ``max_diameter``; class count at most ``max_classes``.
    """
    from ..graph.traversal import diameter_of_component

    seen: Set[int] = set()
    if decomposition.num_classes > max_classes:
        raise DecompositionError(
            f"{decomposition.num_classes} classes exceed cap {max_classes}"
        )
    for z, clusters in enumerate(decomposition.classes):
        in_class: Dict[int, int] = {}
        for index, cluster in enumerate(clusters):
            for v in cluster:
                if v in seen:
                    raise DecompositionError(f"vertex {v} in two clusters")
                seen.add(v)
                in_class[v] = index
            diameter = diameter_of_component(graph, cluster)
            if diameter > max_diameter:
                raise DecompositionError(
                    f"cluster diameter {diameter} exceeds {max_diameter}"
                )
        for v, index in in_class.items():
            for other in graph.neighbors(v):
                if other in in_class and in_class[other] != index:
                    raise DecompositionError(
                        f"clusters {index} and {in_class[other]} of class {z} "
                        f"are adjacent via edge {v}-{other}"
                    )
    if seen != set(graph.vertices()):
        raise DecompositionError("decomposition does not cover all vertices")


# ----------------------------------------------------------------------
# Partial network decomposition (Miller–Peng–Xu random shifts)
# ----------------------------------------------------------------------


def partial_network_decomposition(
    graph: MultiGraph,
    beta: float,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> Dict[int, int]:
    """MPX random-shift clustering: vertex -> cluster head.

    Each vertex ``u`` draws ``δ_u ~ Exponential(β)``; vertex ``v`` joins
    the cluster of the head ``u`` minimizing ``d(u, v) - δ_u``.  Cluster
    radius is ``O(log n / β)`` w.h.p. and every edge is cut with
    probability at most ~β.  Charged rounds: O(log n / β).
    """
    if not (0.0 < beta <= 1.0):
        raise DecompositionError(f"beta must be in (0, 1], got {beta}")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    n = graph.n
    if n == 0:
        return {}

    shift: Dict[int, float] = {
        v: rng.expovariate(beta) for v in graph.vertices()
    }
    # Dijkstra-style sweep with unit edges and head start times -shift.
    import heapq

    best: Dict[int, float] = {}
    head_of: Dict[int, int] = {}
    heap: List[Tuple[float, int, int]] = []
    for v in graph.vertices():
        start = -shift[v]
        best[v] = start
        head_of[v] = v
        heapq.heappush(heap, (start, v, v))
    while heap:
        time, vertex, head = heapq.heappop(heap)
        if head_of[vertex] != head or best[vertex] != time:
            continue
        for other in graph.neighbors(vertex):
            candidate = time + 1.0
            if candidate < best.get(other, math.inf):
                best[other] = candidate
                head_of[other] = head
                heapq.heappush(heap, (candidate, other, head))

    expected_radius = math.ceil(math.log(max(n, 2)) / beta) + 1
    counter.charge(expected_radius, "MPX partial network decomposition")
    return head_of


def cut_edges_of_clustering(
    graph: MultiGraph, head_of: Dict[int, int]
) -> List[int]:
    """Edge ids whose endpoints lie in different MPX clusters."""
    return [
        eid for eid, u, v in graph.edges() if head_of[u] != head_of[v]
    ]
