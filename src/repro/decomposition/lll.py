"""Distributed Lovász Local Lemma via parallel Moser–Tardos resampling.

The paper invokes the O(log n)-round LLL algorithm of [CPS17] under the
criterion ``e·p·d² ≤ 1 - Ω(1)`` (Section 1.1).  We implement the
resampling framework it is built on:

* an :class:`LLLInstance` declares independent variables (each with a
  sampler) and bad events (each reading a subset of variables);
* :func:`moser_tardos` repeatedly resamples the variables of violated
  events — either one event at a time (sequential; the classically
  convergent variant) or all violated events per round (parallel; one
  LOCAL round per iteration, O(log n) iterations w.h.p. under the
  [CPS17]-style criterion).

Each parallel iteration costs O(1) LOCAL rounds because every bad event
is locally checkable; we charge accordingly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set

from ..errors import ConvergenceError
from ..local.rounds import RoundCounter, ensure_counter
from ..rng import SeedLike, make_rng

Assignment = Dict[Hashable, Any]


class BadEvent:
    """A locally-checkable bad event over a subset of variables."""

    def __init__(
        self,
        name: str,
        variables: Sequence[Hashable],
        holds: Callable[[Assignment], bool],
    ) -> None:
        self.name = name
        self.variables = list(variables)
        self.holds = holds

    def __repr__(self) -> str:
        return f"BadEvent({self.name})"


class LLLInstance:
    """Variables with samplers + bad events over them."""

    def __init__(self) -> None:
        self._samplers: Dict[Hashable, Callable[[Any], Any]] = {}
        self.events: List[BadEvent] = []

    def add_variable(
        self, name: Hashable, sampler: Callable[[Any], Any]
    ) -> None:
        """Register a variable; ``sampler(rng)`` draws a fresh value."""
        if name in self._samplers:
            raise ValueError(f"variable {name!r} already declared")
        self._samplers[name] = sampler

    def add_event(
        self,
        name: str,
        variables: Sequence[Hashable],
        holds: Callable[[Assignment], bool],
    ) -> None:
        for var in variables:
            if var not in self._samplers:
                raise ValueError(f"event {name} references unknown variable {var!r}")
        self.events.append(BadEvent(name, variables, holds))

    def sample_all(self, rng) -> Assignment:
        return {name: sampler(rng) for name, sampler in self._samplers.items()}

    def violated(self, assignment: Assignment) -> List[BadEvent]:
        return [event for event in self.events if event.holds(assignment)]


def moser_tardos(
    instance: LLLInstance,
    seed: SeedLike = None,
    max_iterations: int = 10_000,
    parallel: bool = True,
    rounds: Optional[RoundCounter] = None,
) -> Assignment:
    """Find an assignment avoiding all bad events by resampling.

    ``parallel=True`` resamples the union of all violated events'
    variables each iteration (one LOCAL round each, O(log n) iterations
    w.h.p. under the epd² criterion); ``parallel=False`` resamples one
    violated event at a time (the classic sequential walk).  Raises
    :class:`ConvergenceError` if ``max_iterations`` is exhausted.
    """
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    assignment = instance.sample_all(rng)
    counter.charge(1, "LLL initial sampling")

    for _iteration in range(max_iterations):
        violated = instance.violated(assignment)
        if not violated:
            return assignment
        if parallel:
            to_resample: Set[Hashable] = set()
            for event in violated:
                to_resample.update(event.variables)
        else:
            to_resample = set(violated[0].variables)
        # Resample in variable *declaration* order, never set order:
        # with string-named variables, set iteration follows
        # PYTHONHASHSEED-randomized hashes, and the rng draws would
        # land on different variables per process — seeded runs would
        # stop reproducing (the PR 2 child_rng bug class).
        for var in instance._samplers:
            if var in to_resample:
                assignment[var] = instance._samplers[var](rng)
        counter.charge(1, "LLL resampling round")

    raise ConvergenceError(
        f"Moser-Tardos did not converge in {max_iterations} iterations "
        f"({len(instance.violated(assignment))} events still violated)"
    )


def dependency_degree(instance: LLLInstance) -> int:
    """Max number of other events sharing a variable with any event —
    the ``d`` of the LLL criterion, useful for diagnostics in benches."""
    by_var: Dict[Hashable, List[int]] = {}
    for index, event in enumerate(instance.events):
        for var in event.variables:
            by_var.setdefault(var, []).append(index)
    worst = 0
    for index, event in enumerate(instance.events):
        neighbors: Set[int] = set()
        for var in event.variables:
            neighbors.update(by_var[var])
        neighbors.discard(index)
        worst = max(worst, len(neighbors))
    return worst
