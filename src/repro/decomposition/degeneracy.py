"""Degeneracy orderings and the existential 2d-LSFD (Theorem 2.2).

The *degeneracy* of a graph is the least ``d`` admitting an acyclic
orientation of out-degree ``d``; it satisfies ``d ≤ 2α − 1``.  Theorem
2.2 shows a ``2d``-list-star-forest decomposition always exists: color
edges backward along the orientation, avoiding the colors of all
out-edges of both endpoints.  Combined with ``d ≤ 2α − 1`` this yields
the ``αliststar ≤ 4α − 2`` bound of Corollary 1.2.

This module provides the exact degeneracy (iterated minimum-degree
peeling), the associated acyclic orientation, and the constructive
Theorem 2.2 coloring — the *existential* counterpart of the distributed
Theorem 2.3 in :mod:`repro.decomposition.lsfd`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PaletteError
from ..graph.multigraph import MultiGraph

Palettes = Dict[int, Sequence[int]]


def degeneracy_ordering(graph: MultiGraph) -> Tuple[int, List[int]]:
    """Exact degeneracy and a peeling order (min-degree first).

    Returns ``(d, order)`` where ``order`` lists vertices in removal
    order; every vertex has at most ``d`` neighbors later in the order.
    """
    degree = {v: graph.degree(v) for v in graph.vertices()}
    removed: Set[int] = set()
    heap = [(deg, v) for v, deg in degree.items()]
    heapq.heapify(heap)
    order: List[int] = []
    degeneracy = 0
    while heap:
        deg, vertex = heapq.heappop(heap)
        if vertex in removed or deg != degree[vertex]:
            continue  # stale heap entry
        removed.add(vertex)
        order.append(vertex)
        degeneracy = max(degeneracy, deg)
        for _eid, other in graph.incident(vertex):
            if other not in removed:
                degree[other] -= 1
                heapq.heappush(heap, (degree[other], other))
    return degeneracy, order


def degeneracy_orientation(graph: MultiGraph) -> Tuple[int, Dict[int, int]]:
    """An acyclic d-orientation witnessing the exact degeneracy.

    Each edge is oriented from the endpoint peeled *earlier* (so every
    vertex's out-edges go to vertices still present when it was peeled:
    at most ``d`` of them).
    """
    degeneracy, order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    orientation = {
        eid: (u if position[u] < position[v] else v)
        for eid, u, v in graph.edges()
    }
    return degeneracy, orientation


def theorem22_lsfd(
    graph: MultiGraph,
    palettes: Palettes,
    orientation: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Theorem 2.2: a list-star-forest decomposition from palettes of
    size ``2d`` (``d`` = degeneracy, or the out-degree bound of a given
    acyclic ``orientation``).

    Edges are colored backward in the orientation; each avoids the
    colors already used by out-edges of both endpoints (at most
    ``2d − 1`` constraints, so ``2d``-palettes always suffice).
    Raises :class:`PaletteError` if palettes are smaller than that.
    """
    if orientation is None:
        _d, orientation = degeneracy_orientation(graph)

    # Reverse topological order of tails = backward in the orientation.
    out_edges: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    indegree: Dict[int, int] = {v: 0 for v in graph.vertices()}
    for eid, tail in orientation.items():
        out_edges[tail].append(eid)
        indegree[graph.other_endpoint(eid, tail)] += 1
    # Kahn order of the orientation DAG; we color vertices' out-edges in
    # *reverse* of this order.
    queue = [v for v, d in indegree.items() if d == 0]
    topo: List[int] = []
    remaining = dict(indegree)
    while queue:
        vertex = queue.pop()
        topo.append(vertex)
        for eid in out_edges[vertex]:
            head = graph.other_endpoint(eid, vertex)
            remaining[head] -= 1
            if remaining[head] == 0:
                queue.append(head)

    coloring: Dict[int, int] = {}
    for vertex in reversed(topo):
        for eid in sorted(out_edges[vertex]):
            u, v = graph.endpoints(eid)
            forbidden = {
                coloring[other]
                for endpoint in (u, v)
                for other in out_edges[endpoint]
                if other != eid and other in coloring
            }
            chosen = next(
                (c for c in palettes[eid] if c not in forbidden), None
            )
            if chosen is None:
                raise PaletteError(
                    f"edge {eid}: palette of {len(palettes[eid])} colors "
                    f"exhausted ({len(forbidden)} forbidden); Theorem 2.2 "
                    "needs 2d colors"
                )
            coloring[eid] = chosen
    return coloring
