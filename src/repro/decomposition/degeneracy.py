"""Degeneracy orderings and the existential 2d-LSFD (Theorem 2.2).

The *degeneracy* of a graph is the least ``d`` admitting an acyclic
orientation of out-degree ``d``; it satisfies ``d ≤ 2α − 1``.  Theorem
2.2 shows a ``2d``-list-star-forest decomposition always exists: color
edges backward along the orientation, avoiding the colors of all
out-edges of both endpoints.  Combined with ``d ≤ 2α − 1`` this yields
the ``αliststar ≤ 4α − 2`` bound of Corollary 1.2.

This module provides the exact degeneracy (iterated minimum-degree
peeling), the associated acyclic orientation, and the constructive
Theorem 2.2 coloring — the *existential* counterpart of the distributed
Theorem 2.3 in :mod:`repro.decomposition.lsfd`.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphError, PaletteError
from ..graph.csr import CSRGraph
from ..graph.multigraph import MultiGraph

Palettes = Dict[int, Sequence[int]]


def degeneracy_ordering(
    graph: MultiGraph, backend: str = "csr"
) -> Tuple[int, List[int]]:
    """Exact degeneracy and a peeling order (min-degree first).

    Returns ``(d, order)`` where ``order`` lists vertices in removal
    order; every vertex has at most ``d`` neighbors later in the order.
    The removal rule is: always delete the vertex minimizing
    ``(remaining degree, vertex id)``, so the order is deterministic.

    ``backend="csr"`` (default) runs the delete-min loop on the
    flat-array kernel's peeling view; ``backend="dict"`` keeps the
    original dict-of-sets loop.  Both return identical orders.
    """
    if backend == "dict":
        return _degeneracy_ordering_dict(graph)
    if backend != "csr":
        raise GraphError(f"unknown degeneracy backend {backend!r}")
    snapshot = CSRGraph.from_multigraph(graph)
    degeneracy, order_indices = _peel_order(snapshot)
    vertex_ids = snapshot.vertex_ids.tolist()
    return degeneracy, [vertex_ids[i] for i in order_indices]


def _peel_order(snapshot: CSRGraph) -> Tuple[int, List[int]]:
    """Delete-min peeling on the kernel; returns (d, dense-index order)."""
    view = snapshot.peeling_view()
    order: List[int] = []
    degeneracy = 0
    while True:
        popped = view.pop_min()
        if popped is None:
            break
        index, deg = popped
        if deg > degeneracy:
            degeneracy = deg
        order.append(index)
    return degeneracy, order


def _degeneracy_ordering_dict(graph: MultiGraph) -> Tuple[int, List[int]]:
    """Reference dict-backed delete-min loop (pre-kernel implementation)."""
    degree = {v: graph.degree(v) for v in graph.vertices()}
    removed: Set[int] = set()
    heap = [(deg, v) for v, deg in degree.items()]
    heapq.heapify(heap)
    order: List[int] = []
    degeneracy = 0
    while heap:
        deg, vertex = heapq.heappop(heap)
        if vertex in removed or deg != degree[vertex]:
            continue  # stale heap entry
        removed.add(vertex)
        order.append(vertex)
        degeneracy = max(degeneracy, deg)
        for _eid, other in graph.incident(vertex):
            if other not in removed:
                degree[other] -= 1
                heapq.heappush(heap, (degree[other], other))
    return degeneracy, order


def degeneracy_orientation(
    graph: MultiGraph, backend: str = "csr"
) -> Tuple[int, Dict[int, int]]:
    """An acyclic d-orientation witnessing the exact degeneracy.

    Each edge is oriented from the endpoint peeled *earlier* (so every
    vertex's out-edges go to vertices still present when it was peeled:
    at most ``d`` of them).
    """
    if backend == "dict":
        degeneracy, order = _degeneracy_ordering_dict(graph)
        position = {v: i for i, v in enumerate(order)}
        orientation = {
            eid: (u if position[u] < position[v] else v)
            for eid, u, v in graph.edges()
        }
        return degeneracy, orientation
    if backend != "csr":
        raise GraphError(f"unknown degeneracy backend {backend!r}")
    snapshot = CSRGraph.from_multigraph(graph)
    degeneracy, order_indices = _peel_order(snapshot)
    if snapshot.num_edges == 0:
        return degeneracy, {}
    position = np.empty(snapshot.num_vertices, dtype=np.int64)
    position[np.asarray(order_indices, dtype=np.int64)] = np.arange(
        snapshot.num_vertices, dtype=np.int64
    )
    u_first = position[snapshot.edge_u] < position[snapshot.edge_v]
    tails = np.where(u_first, snapshot.edge_u_ids, snapshot.edge_v_ids)
    orientation = dict(zip(snapshot.edge_id.tolist(), tails.tolist()))
    return degeneracy, orientation


def theorem22_lsfd(
    graph: MultiGraph,
    palettes: Palettes,
    orientation: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Theorem 2.2: a list-star-forest decomposition from palettes of
    size ``2d`` (``d`` = degeneracy, or the out-degree bound of a given
    acyclic ``orientation``).

    Edges are colored backward in the orientation; each avoids the
    colors already used by out-edges of both endpoints (at most
    ``2d − 1`` constraints, so ``2d``-palettes always suffice).
    Raises :class:`PaletteError` if palettes are smaller than that.
    """
    if orientation is None:
        _d, orientation = degeneracy_orientation(graph)

    # Reverse topological order of tails = backward in the orientation.
    out_edges: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    indegree: Dict[int, int] = {v: 0 for v in graph.vertices()}
    for eid, tail in orientation.items():
        out_edges[tail].append(eid)
        indegree[graph.other_endpoint(eid, tail)] += 1
    # Kahn order of the orientation DAG; we color vertices' out-edges in
    # *reverse* of this order.
    queue = [v for v, d in indegree.items() if d == 0]
    topo: List[int] = []
    remaining = dict(indegree)
    while queue:
        vertex = queue.pop()
        topo.append(vertex)
        for eid in out_edges[vertex]:
            head = graph.other_endpoint(eid, vertex)
            remaining[head] -= 1
            if remaining[head] == 0:
                queue.append(head)

    coloring: Dict[int, int] = {}
    for vertex in reversed(topo):
        for eid in sorted(out_edges[vertex]):
            u, v = graph.endpoints(eid)
            forbidden = {
                coloring[other]
                for endpoint in (u, v)
                for other in out_edges[endpoint]
                if other != eid and other in coloring
            }
            chosen = next(
                (c for c in palettes[eid] if c not in forbidden), None
            )
            if chosen is None:
                raise PaletteError(
                    f"edge {eid}: palette of {len(palettes[eid])} colors "
                    f"exhausted ({len(forbidden)} forbidden); Theorem 2.2 "
                    "needs 2d colors"
                )
            coloring[eid] = chosen
    return coloring
