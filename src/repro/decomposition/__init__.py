"""Distributed building blocks: H-partition, Cole-Vishkin, network
decomposition, LLL, and the (4+ε)α*-LSFD of Theorem 2.3."""

from .cole_vishkin import three_color_rooted_forest
from .degeneracy import (
    degeneracy_ordering,
    degeneracy_orientation,
    theorem22_lsfd,
)
from .hpartition import (
    HPartition,
    acyclic_orientation,
    default_threshold,
    h_partition,
    list_forest_decomposition_via_hpartition,
    out_edges_by_vertex,
    rooted_forests_from_orientation,
    star_forest_decomposition_via_hpartition,
)
from .lll import BadEvent, LLLInstance, dependency_degree, moser_tardos
from .lsfd import (
    list_star_forest_decomposition,
    lsfd_palette_requirement,
    validate_star_invariant,
)
from .network_decomposition import (
    NetworkDecomposition,
    cut_edges_of_clustering,
    network_decomposition,
    partial_network_decomposition,
    validate_network_decomposition,
)

__all__ = [
    "three_color_rooted_forest",
    "degeneracy_ordering",
    "degeneracy_orientation",
    "theorem22_lsfd",
    "HPartition",
    "h_partition",
    "default_threshold",
    "acyclic_orientation",
    "out_edges_by_vertex",
    "rooted_forests_from_orientation",
    "star_forest_decomposition_via_hpartition",
    "list_forest_decomposition_via_hpartition",
    "BadEvent",
    "LLLInstance",
    "moser_tardos",
    "dependency_degree",
    "list_star_forest_decomposition",
    "lsfd_palette_requirement",
    "validate_star_invariant",
    "NetworkDecomposition",
    "network_decomposition",
    "partial_network_decomposition",
    "validate_network_decomposition",
    "cut_edges_of_clustering",
]
