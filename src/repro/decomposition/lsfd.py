"""⌊(4+ε)α* − 1⌋-list-star-forest decomposition (Theorem 2.3).

The combinatorial core is Theorem 2.2: with an acyclic d-orientation,
coloring edges "backward" so that each edge's color differs from the
colors of all out-edges of both its endpoints yields a star-forest
decomposition from palettes of size 2d.  The constructive version
(Appendix A) replaces the exact degeneracy orientation with the
H-partition's acyclic t-orientation, t = ⌊(2+ε/10)α*⌋, and colors the
batches ``E_k, ..., E_1`` (edges grouped by the H-class of their tail).

Batch-internal conflicts are resolved by simulating the third algorithm
of Appendix A: clusters of a network decomposition of G³ color their
edges sequentially; here we execute the same sequential process
centrally and charge the O(log³ n / ε) rounds the paper derives.

Correctness invariant (checked by the validator): in the final
coloring, every edge's color differs from the color of every out-edge
of both endpoints.  Any length-3 monochromatic path needs two
consecutive in-edges at both of its internal vertices, which is
impossible, so each color class is a star forest.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PaletteError
from ..graph.csr import CSRGraph, resolve_backend
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from .hpartition import (
    HPartition,
    acyclic_orientation,
    h_partition,
    out_edges_by_vertex,
)


def lsfd_palette_requirement(pseudoarboricity: int, epsilon: float) -> int:
    """Palette size ⌊(4+ε)α* − 1⌋ needed by Theorem 2.3."""
    return int(math.floor((4.0 + epsilon) * pseudoarboricity - 1.0))


def list_star_forest_decomposition(
    graph: MultiGraph,
    palettes: Dict[int, Sequence[int]],
    pseudoarboricity: int,
    epsilon: float = 0.5,
    rounds: Optional[RoundCounter] = None,
    backend: str = "csr",
    workers: int = 0,
) -> Dict[int, int]:
    """Compute a list-star-forest decomposition (Theorem 2.3).

    Parameters
    ----------
    palettes:
        Per-edge color lists; sizes of at least
        ``⌊(4+ε)α* − 1⌋`` guarantee success.
    pseudoarboricity:
        (An upper bound on) α*(G), used for the H-partition threshold.
    epsilon:
        The ε of the theorem.
    backend, workers:
        Peeling substrate for the H-partition phase (``"csr"``,
        ``"sharded"``, ``"parallel"`` or ``"mp"`` — the latter three
        peel on the wave engine at scale, thread- or process-pooled;
        ``"auto"``/``"dict"`` resolve to the kernel — the batch
        coloring itself is dict-based either way).

    Returns edge id -> chosen color.  Raises :class:`PaletteError` if
    some palette is exhausted (possible only when the size requirement
    is violated).
    """
    counter = ensure_counter(rounds)
    if graph.m == 0:
        return {}

    peel = resolve_backend(graph, backend, PaletteError, peeling=True)
    if peel == "dict":
        peel = "csr"
    threshold = max(1, int(math.floor((2.0 + epsilon / 10.0) * pseudoarboricity)))
    with counter.phase("h-partition"):
        snapshot = CSRGraph.from_multigraph(graph)
        partition = h_partition(
            graph, threshold, counter, snapshot=snapshot,
            backend=peel, workers=workers,
        )
        orientation = acyclic_orientation(
            graph, partition, counter, snapshot=snapshot
        )

    out_by_vertex = out_edges_by_vertex(graph, orientation)
    classes = partition.classes

    # Batch of an edge = H-class of its tail (the lower-class endpoint).
    batch_of: Dict[int, int] = {
        eid: classes[tail] for eid, tail in orientation.items()
    }
    batches: Dict[int, List[int]] = {}
    for eid, batch in batch_of.items():
        batches.setdefault(batch, []).append(eid)

    coloring: Dict[int, int] = {}

    def forbidden_colors(eid: int) -> Set[int]:
        """Colors of already-colored out-edges of either endpoint."""
        u, v = graph.endpoints(eid)
        taken: Set[int] = set()
        for endpoint in (u, v):
            for out_eid in out_by_vertex[endpoint]:
                if out_eid != eid and out_eid in coloring:
                    taken.add(coloring[out_eid])
        return taken

    # Color batches E_k, ..., E_1, and within a batch by decreasing tail
    # id — overall, reverse topological order of tails ("backward in the
    # orientation", as in Theorem 2.2).  This guarantees that when an
    # edge u->v is colored, all out-edges of v (and the already-colored
    # out-edges of u) are visible in its forbidden set, which is exactly
    # the star invariant.  The paper's cluster-sequential simulation
    # achieves the same order cluster-locally; we charge its rounds.
    with counter.phase("batch coloring"):
        for batch in sorted(batches.keys(), reverse=True):
            ordered = sorted(
                batches[batch], key=lambda eid: (-orientation[eid], eid)
            )
            for eid in ordered:
                taken = forbidden_colors(eid)
                chosen = None
                for color in palettes[eid]:
                    if color not in taken:
                        chosen = color
                        break
                if chosen is None:
                    raise PaletteError(
                        f"edge {eid}: palette of size {len(palettes[eid])} "
                        f"exhausted ({len(taken)} colors forbidden); "
                        f"Theorem 2.3 requires at least "
                        f"{lsfd_palette_requirement(pseudoarboricity, epsilon)}"
                    )
                coloring[eid] = chosen
            # One simulated network-decomposition sweep per batch.
            log_n = max(1, math.ceil(math.log2(graph.n + 1)))
            counter.charge(log_n * log_n, "cluster-sequential coloring")

    return coloring


def validate_star_invariant(
    graph: MultiGraph,
    orientation: Dict[int, int],
    coloring: Dict[int, int],
) -> bool:
    """True iff each edge's color differs from every out-edge color of
    both endpoints — the invariant behind Theorem 2.2."""
    out_by_vertex = out_edges_by_vertex(graph, orientation)
    for eid, color in coloring.items():
        u, v = graph.endpoints(eid)
        for endpoint in (u, v):
            for other in out_by_vertex[endpoint]:
                if other != eid and coloring.get(other) == color:
                    return False
    return True
