"""H-partition and its corollaries (Theorem 2.1, after Barenboim–Elkin).

Given ``t = ⌊(2+ε)α*⌋``, Theorem 2.1 provides, in O(log n/ε) rounds:

1. an *H-partition*: classes ``H_1, ..., H_k`` (k = O(log n/ε)) where
   every ``v ∈ H_i`` has at most ``t`` neighbors in ``H_i ∪ ... ∪ H_k``;
2. an *acyclic t-orientation* (out-degree ≤ t, no directed cycle);
3. a ``3t``-star-forest decomposition;
4. a ``t``-list-forest decomposition.

These are both the pre-existing baseline the paper improves on (its
(2+ε)α-FD) and subroutines of the main algorithms (leftover recoloring
in Theorem 4.6, the 3α-orientation inside CUT, Theorem 2.3's LSFD).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DecompositionError, PaletteError
from ..graph.csr import CSRGraph, EdgeArrayMap, force_mp, force_sharded_peeling
from ..graph.forests import RootedForest
from ..graph.multigraph import MultiGraph
from ..graph.shard import ShardPlan, ShardedPeelingView, plan_of
from ..local.rounds import RoundCounter, ensure_counter
from .cole_vishkin import three_color_rooted_forest

Orientation = Dict[int, int]  # edge id -> tail vertex


# ----------------------------------------------------------------------
# Wave oracle: the delta engine's seam into the peel
# ----------------------------------------------------------------------
#
# A *wave oracle* is an object the incremental-decomposition service
# (repro.service.delta) hangs off a graph instance; it caches the peel's
# wave labels per threshold and repairs them locally under edge
# mutations.  ``h_partition`` consults it before peeling and feeds it
# after, so every caller — the orientation pipeline, CUT's internal
# 3α-orientation when run on the session graph, direct calls — shares
# one maintained wave assignment.  An oracle hit charges the same number
# of LOCAL rounds the peel would have (one per wave), keeping round
# accounting identical.  The protocol is duck-typed:
#
#   lookup(graph, threshold) -> Dict[vertex, wave] | None
#   record(graph, threshold, classes: Dict[vertex, wave]) -> None

_WAVE_ORACLE_ATTR = "_wave_oracle"


def install_wave_oracle(graph: MultiGraph, oracle) -> None:
    """Attach ``oracle`` to ``graph`` (one per graph; replaces any)."""
    graph.__dict__[_WAVE_ORACLE_ATTR] = oracle


def uninstall_wave_oracle(graph: MultiGraph) -> None:
    """Detach the graph's wave oracle, if any."""
    graph.__dict__.pop(_WAVE_ORACLE_ATTR, None)


def wave_oracle_of(graph: MultiGraph):
    """The graph's installed wave oracle, or None.  Slotted substrates
    (a :class:`CSRGraph` passed directly into the pipeline) can never
    carry one."""
    state = getattr(graph, "__dict__", None)
    return None if state is None else state.get(_WAVE_ORACLE_ATTR)


class HPartition:
    """Result of the peeling process: vertex classes + threshold."""

    def __init__(self, classes: Dict[int, int], threshold: int) -> None:
        self.classes = classes  # vertex -> class index (1-based)
        self.threshold = threshold

    @property
    def num_classes(self) -> int:
        return max(self.classes.values(), default=0)

    def members(self, index: int) -> List[int]:
        return [v for v, c in self.classes.items() if c == index]


def h_partition(
    graph: MultiGraph,
    threshold: int,
    rounds: Optional[RoundCounter] = None,
    max_iterations: Optional[int] = None,
    backend: str = "csr",
    snapshot: Optional[CSRGraph] = None,
    workers: int = 0,
    shard_plan: Optional[ShardPlan] = None,
) -> HPartition:
    """Peel vertices of remaining degree <= threshold into classes.

    ``threshold`` must be at least ⌊2·(max subgraph average degree)⌋,
    e.g. ``⌊(2+ε)α*⌋``; otherwise the peeling stalls and a
    :class:`DecompositionError` is raised.  Charges one LOCAL round per
    peeling wave.

    ``backend="csr"`` (default) runs each wave vectorized on the
    flat-array kernel; ``backend="sharded"`` runs the same waves on the
    multi-worker sharded view (``workers``: 0 = auto; ``shard_plan``:
    a cached :class:`~repro.graph.shard.ShardPlan`, e.g. from
    :meth:`~repro.core.session.Session.shard_plan`); ``backend="dict"``
    keeps the original dict-of-sets loop (reference implementation,
    used by the equivalence tests and benchmarks).  All three produce
    identical classes — sharded is bit-identical for every worker
    count.  A prebuilt ``snapshot`` of ``graph`` can be supplied to
    amortize conversion across several kernel-backed passes.

    Setting ``REPRO_FORCE_SHARDED=1`` (or the stronger
    ``REPRO_FORCE_PARALLEL=1``, which also reroutes the BFS-shaped hot
    paths through the wave engine) reroutes every ``csr`` peel through
    the sharded view — the CI forced-backend leg runs the full fast
    suite this way.  The worker count comes from
    ``REPRO_SHARD_WORKERS`` via the engine's single cached read
    (:func:`repro.parallel.engine.resolve_workers`), machine cores
    capped otherwise.
    """
    counter = ensure_counter(rounds)
    cap = max_iterations if max_iterations is not None else 4 * graph.n + 8
    oracle = wave_oracle_of(graph)
    if oracle is not None:
        cached = oracle.lookup(graph, threshold)
        if cached is not None:
            waves = max(cached.values(), default=0)
            if waves:
                counter.charge(waves, "H-partition wave")
            return HPartition(cached, threshold)
    if backend == "dict":
        partition = _h_partition_dict(graph, threshold, counter, cap)
        if oracle is not None:
            oracle.record(graph, threshold, partition.classes)
        return partition
    if backend == "parallel":
        # The parallel pipeline backend peels on the sharded view; the
        # engine-backed BFS specialization lives in the traversal /
        # carving layers.
        backend = "sharded"
    if backend == "csr":
        if force_mp():
            backend = "mp"
        elif force_sharded_peeling():
            backend = "sharded"
    if backend not in ("csr", "sharded", "mp"):
        raise DecompositionError(f"unknown h_partition backend {backend!r}")

    snap = snapshot if snapshot is not None else CSRGraph.from_multigraph(graph)
    if backend in ("sharded", "mp"):
        plan = shard_plan if shard_plan is not None else plan_of(snap)
        view = ShardedPeelingView(snap, plan, workers, mp=backend == "mp")
    else:
        view = snap.peeling_view()
    vertex_ids = snap.vertex_ids.tolist()
    classes: Dict[int, int] = {}
    wave = 0
    while view.alive_count:
        wave += 1
        if wave > cap:
            raise DecompositionError(
                f"H-partition stalled: threshold {threshold} too small"
            )
        removed = view.peel_leq(threshold)
        if removed.size == 0:
            raise DecompositionError(
                f"H-partition stalled: threshold {threshold} too small "
                f"(no vertex of degree <= {threshold} remains)"
            )
        for index in removed.tolist():
            classes[vertex_ids[index]] = wave
        counter.charge(1, "H-partition wave")

    if oracle is not None:
        oracle.record(graph, threshold, classes)
    return HPartition(classes, threshold)


def _h_partition_dict(
    graph: MultiGraph, threshold: int, counter: RoundCounter, cap: int
) -> HPartition:
    """Reference dict-backed peeling loop (pre-kernel implementation)."""
    remaining_degree: Dict[int, int] = {
        v: graph.degree(v) for v in graph.vertices()
    }
    classes: Dict[int, int] = {}
    alive = set(graph.vertices())
    wave = 0

    while alive:
        wave += 1
        if wave > cap:
            raise DecompositionError(
                f"H-partition stalled: threshold {threshold} too small"
            )
        # repro: allow(det-set-order) — int-only vertex set: int hashes are
        # PYTHONHASHSEED-independent, so iteration order is a pure function
        # of the insertion sequence; the order feeds only commutative
        # per-vertex class stamps, and the frozen goldens certify it.
        leaving = [v for v in alive if remaining_degree[v] <= threshold]
        if not leaving:
            raise DecompositionError(
                f"H-partition stalled: threshold {threshold} too small "
                f"(no vertex of degree <= {threshold} remains)"
            )
        for v in leaving:
            classes[v] = wave
        leaving_set = set(leaving)
        alive -= leaving_set
        for v in leaving:
            for _eid, other in graph.incident(v):
                if other in alive:
                    remaining_degree[other] -= 1
        counter.charge(1, "H-partition wave")

    return HPartition(classes, threshold)


def default_threshold(pseudoarboricity: int, epsilon: float) -> int:
    """``t = ⌊(2+ε)α*⌋`` as in Theorem 2.1."""
    return int(math.floor((2.0 + epsilon) * pseudoarboricity))


def acyclic_orientation(
    graph: MultiGraph,
    partition: HPartition,
    rounds: Optional[RoundCounter] = None,
    backend: str = "csr",
    snapshot: Optional[CSRGraph] = None,
) -> Orientation:
    """Theorem 2.1(2): orient low class -> high class, ties by vertex id.

    The result is acyclic with out-degree at most the partition
    threshold.  Charges one round (purely local decision per edge).
    The default ``backend="csr"`` evaluates the per-edge comparison
    vectorized on the flat-array kernel; ``backend="dict"`` is the
    reference per-edge loop.  Outputs are identical.
    """
    counter = ensure_counter(rounds)
    classes = partition.classes
    orientation: Orientation
    if backend == "dict":
        orientation = {}
        for eid, u, v in graph.edges():
            cu, cv = classes[u], classes[v]
            if (cu, u) < (cv, v):
                orientation[eid] = u
            else:
                orientation[eid] = v
    elif backend in ("csr", "sharded", "parallel", "mp"):
        # the wave-engine backends only specialize the peel / BFS
        # phases; the per-edge comparison is one vectorized pass
        # either way.  The result is an array-backed mapping
        # (:class:`~repro.graph.csr.EdgeArrayMap`) — == any dict with
        # the same items, but never materializes m Python ints unless a
        # caller truly iterates it, which is what keeps the orientation
        # step inside the out-of-core RSS budget on memmap snapshots.
        snap = snapshot if snapshot is not None else CSRGraph.from_multigraph(graph)
        if snap.num_edges == 0:
            orientation = {}
        else:
            class_by_index = np.fromiter(
                (classes[v] for v in snap.vertex_ids.tolist()),
                dtype=np.int64,
                count=snap.num_vertices,
            )
            class_u = class_by_index[snap.edge_u]
            class_v = class_by_index[snap.edge_v]
            u_ids = snap.edge_u_ids
            v_ids = snap.edge_v_ids
            u_wins = (class_u < class_v) | ((class_u == class_v) & (u_ids < v_ids))
            tails = np.where(u_wins, u_ids, v_ids)
            orientation = EdgeArrayMap(snap.edge_id, tails)
    else:
        raise DecompositionError(f"unknown orientation backend {backend!r}")
    counter.charge(1, "orientation")
    return orientation


def out_edges_by_vertex(
    graph: MultiGraph, orientation: Orientation
) -> Dict[int, List[int]]:
    """Group edge ids by their tail vertex (vertices with none included)."""
    out: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for eid, tail in orientation.items():
        out[tail].append(eid)
    return out


def rooted_forests_from_orientation(
    graph: MultiGraph, orientation: Orientation
) -> List[List[int]]:
    """Split edges into forests by ranking each vertex's out-edges.

    With an *acyclic* t-orientation, giving each vertex's out-edges
    distinct labels 0..t-1 yields t forests (each label class has at
    most one out-edge per vertex and no cycles).  Returns a list of
    edge-id lists, one per label.
    """
    by_vertex = out_edges_by_vertex(graph, orientation)
    t = max((len(edges) for edges in by_vertex.values()), default=0)
    forests: List[List[int]] = [[] for _ in range(t)]
    for _v, edges in by_vertex.items():
        for index, eid in enumerate(sorted(edges)):
            forests[index].append(eid)
    return forests


def star_forest_decomposition_via_hpartition(
    graph: MultiGraph,
    partition: HPartition,
    rounds: Optional[RoundCounter] = None,
) -> Dict[int, Tuple[int, int]]:
    """Theorem 2.1(3): a ``3t``-star-forest decomposition.

    Returns edge id -> (forest label, parent 3-color); the pair is the
    star-forest color.  Each label class is a rooted forest (edges point
    to parents); Cole–Vishkin 3-colors its vertices and each edge takes
    its parent's color, splitting the forest into 3 star-forests.
    """
    counter = ensure_counter(rounds)
    orientation = acyclic_orientation(graph, partition, counter)
    forests = rooted_forests_from_orientation(graph, orientation)
    coloring: Dict[int, Tuple[int, int]] = {}
    for label, eids in enumerate(forests):
        if not eids:
            continue
        # Parent of edge (u -> v) is v: edges point from child to parent
        # (each vertex has at most one out-edge per label).
        forest = RootedForest(graph, eids)
        vertex_colors = three_color_rooted_forest(forest, counter)
        for eid in eids:
            u, v = graph.endpoints(eid)
            tail = orientation[eid]
            head = v if tail == u else u
            coloring[eid] = (label, vertex_colors[head])
    return coloring


def list_forest_decomposition_via_hpartition(
    graph: MultiGraph,
    partition: HPartition,
    palettes: Dict[int, Sequence[int]],
    rounds: Optional[RoundCounter] = None,
) -> Dict[int, int]:
    """Theorem 2.1(4): a ``t``-list-forest decomposition.

    Every palette must have at least ``t`` colors, where ``t`` is the
    partition threshold.  For each vertex, its out-edges pick distinct
    palette colors greedily; the acyclicity of the orientation makes
    every color class acyclic.  Charges O(1) rounds.
    """
    counter = ensure_counter(rounds)
    orientation = acyclic_orientation(graph, partition, counter)
    by_vertex = out_edges_by_vertex(graph, orientation)
    coloring: Dict[int, int] = {}
    for vertex, eids in by_vertex.items():
        used: set = set()
        for eid in sorted(eids):
            palette = palettes[eid]
            chosen = None
            for color in palette:
                if color not in used:
                    chosen = color
                    break
            if chosen is None:
                raise PaletteError(
                    f"palette of edge {eid} exhausted at vertex {vertex}: "
                    f"need more than {len(used)} colors"
                )
            used.add(chosen)
            coloring[eid] = chosen
    counter.charge(1, "per-vertex palette picking")
    return coloring
