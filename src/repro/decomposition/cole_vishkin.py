"""Centralized Cole–Vishkin 3-coloring of rooted forests, round-charged.

The distributed algorithm runs in O(log* n) LOCAL rounds ([CV86]; used
by Theorem 2.1(3)).  This implementation executes the same per-round
update centrally, charging the round cost to a
:class:`~repro.local.rounds.RoundCounter`.  The genuinely distributed
node-program version lives in :mod:`repro.local.algorithms`; the two
are cross-checked in tests.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graph.forests import RootedForest
from ..local.rounds import RoundCounter, ensure_counter


def _lowest_differing_bit(a: int, b: int) -> int:
    return ((a ^ b) & -(a ^ b)).bit_length() - 1


def _reduction_iterations(n: int) -> int:
    bound = max(n, 2)
    iterations = 0
    while bound > 6:
        bound = 2 * ((bound - 1).bit_length())
        iterations += 1
    return iterations + 1


def three_color_rooted_forest(
    forest: RootedForest, rounds: Optional[RoundCounter] = None
) -> Dict[int, int]:
    """Proper 3-coloring of the vertices of a rooted forest.

    Vertices not spanned by the forest are absent from the result.
    Charges O(log* n) LOCAL rounds.
    """
    counter = ensure_counter(rounds)
    vertices = forest.vertices()
    if not vertices:
        return {}

    color: Dict[int, int] = {v: v for v in vertices}
    iterations = _reduction_iterations(len(vertices) + max(vertices, default=1))

    # Phase 1: bit reduction to colors in {0..5}.
    for _ in range(iterations):
        new_color: Dict[int, int] = {}
        for v in vertices:
            parent = forest.parent[v]
            parent_color = color[parent] if parent is not None else color[v] ^ 1
            bit = _lowest_differing_bit(color[v], parent_color)
            new_color[v] = 2 * bit + ((color[v] >> bit) & 1)
        color = new_color
    counter.charge(iterations, "cole-vishkin bit reduction")

    # Phase 2: three shift-down + eliminate phases (each 2 rounds).
    for target in (5, 4, 3):
        pre = color
        shifted: Dict[int, int] = {}
        for v in vertices:
            parent = forest.parent[v]
            if parent is not None:
                shifted[v] = pre[parent]
            else:
                shifted[v] = min(c for c in (0, 1, 2) if c != pre[v])
        color = {}
        for v in vertices:
            if shifted[v] == target:
                parent = forest.parent[v]
                parent_post = shifted[parent] if parent is not None else -1
                forbidden = {parent_post, pre[v]}
                color[v] = min(c for c in (0, 1, 2) if c not in forbidden)
            else:
                color[v] = shifted[v]
        counter.charge(2, "shift-down + eliminate")

    return color
