"""Partial list-forest decomposition state (Section 3).

:class:`PartialListForestDecomposition` is the mutable object the
augmentation framework operates on.  It tracks

* the coloring ``ψ: edge id -> color | None``;
* per-color adjacency, so the path query ``C(e, c)`` — the unique
  ``u``–``v`` path in the color-``c`` forest for ``e = uv``, or ``∅``
  when ``u`` and ``v`` are disconnected in that color — runs as one BFS
  over the color class (this is the workhorse of Algorithm 1);
* the *leftover* edge set (edges removed by CUT), with the orientation
  recorded at removal time so the pseudo-arboricity accounting of
  Theorem 4.2 is checkable.

Every mutation maintains the invariant that each color class is a
forest; ``set_color`` refuses to close a cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import PaletteError, ValidationError
from ..graph.multigraph import MultiGraph
from ..graph.union_find import UnionFind

Palettes = Dict[int, Sequence[int]]


class PartialListForestDecomposition:
    """Mutable partial LFD over a multigraph with per-edge palettes."""

    def __init__(self, graph: MultiGraph, palettes: Palettes) -> None:
        self.graph = graph
        self.palettes = {
            eid: tuple(palettes[eid]) for eid in graph.edge_ids()
        }
        self._color: Dict[int, Optional[int]] = {
            eid: None for eid in graph.edge_ids()
        }
        # _adj[color][vertex] = list of (eid, other endpoint)
        self._adj: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
        self._leftover: Set[int] = set()
        self._leftover_tail: Dict[int, int] = {}
        self._snapshot = None  # lazy CSRGraph of the (immutable) host graph

    def csr_snapshot(self):
        """Flat-array snapshot of the host graph, built once per state.

        The augmentation framework never mutates the host graph (CUT
        removals live in this object, not the graph), so one snapshot
        serves every CUT region scan and augmenting search of a run.
        """
        if self._snapshot is None:
            from ..graph.csr import CSRGraph

            self._snapshot = CSRGraph.from_multigraph(self.graph)
        return self._snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def color_of(self, eid: int) -> Optional[int]:
        return self._color[eid]

    def palette(self, eid: int) -> Tuple[int, ...]:
        return self.palettes[eid]

    def is_leftover(self, eid: int) -> bool:
        return eid in self._leftover

    def leftover_edges(self) -> List[int]:
        return sorted(self._leftover)

    def leftover_orientation(self) -> Dict[int, int]:
        """edge id -> tail vertex recorded when CUT removed the edge."""
        return dict(self._leftover_tail)

    def uncolored_edges(self) -> List[int]:
        return [
            eid
            for eid, color in self._color.items()
            if color is None and eid not in self._leftover
        ]

    def coloring(self) -> Dict[int, Optional[int]]:
        """Copy of the full coloring map (leftover edges appear as None)."""
        return dict(self._color)

    def colored_edges(self) -> Dict[int, int]:
        """Only the colored edges, as edge id -> color."""
        return {e: c for e, c in self._color.items() if c is not None}

    def used_colors(self) -> Set[int]:
        return {c for c in self._color.values() if c is not None}

    def class_edges(self, color: int) -> List[int]:
        """Edge ids currently holding ``color``."""
        out = []
        for _vertex, incident in self._adj.get(color, {}).items():
            out.extend(eid for eid, _other in incident)
        return sorted(set(out))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set_color(self, eid: int, color: int, check_palette: bool = True) -> None:
        """Color (or recolor) an edge; refuses cycles and leftover edges."""
        if eid in self._leftover:
            raise ValidationError(f"edge {eid} was removed by CUT")
        if check_palette and color not in self.palettes[eid]:
            raise PaletteError(
                f"color {color!r} not in palette of edge {eid}"
            )
        u, v = self.graph.endpoints(eid)
        current = self._color[eid]
        if current == color:
            return
        if current is not None:
            self._detach(eid, current)
        if self._connected_in_color(u, v, color):
            # Restore previous state before failing.
            if current is not None:
                self._attach(eid, current)
            raise ValidationError(
                f"coloring edge {eid} with {color!r} would close a cycle"
            )
        self._attach(eid, color)
        self._color[eid] = color

    def uncolor(self, eid: int) -> None:
        current = self._color[eid]
        if current is not None:
            self._detach(eid, current)
            self._color[eid] = None

    def remove_to_leftover(self, eid: int, tail: Optional[int] = None) -> None:
        """CUT removal: uncolor the edge and exclude it from the instance.

        ``tail`` records the orientation chosen by the load-balancing
        argument (the vertex charged for the removal).
        """
        self.uncolor(eid)
        self._leftover.add(eid)
        if tail is not None:
            u, v = self.graph.endpoints(eid)
            if tail not in (u, v):
                raise ValidationError(
                    f"tail {tail} is not an endpoint of edge {eid}"
                )
            self._leftover_tail[eid] = tail

    def _attach(self, eid: int, color: int) -> None:
        u, v = self.graph.endpoints(eid)
        adj = self._adj.setdefault(color, {})
        adj.setdefault(u, []).append((eid, v))
        adj.setdefault(v, []).append((eid, u))

    def _detach(self, eid: int, color: int) -> None:
        u, v = self.graph.endpoints(eid)
        adj = self._adj[color]
        adj[u] = [(e, w) for e, w in adj[u] if e != eid]
        if not adj[u]:
            del adj[u]
        adj[v] = [(e, w) for e, w in adj[v] if e != eid]
        if not adj[v]:
            del adj[v]

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------

    def _connected_in_color(self, u: int, v: int, color: int) -> bool:
        return self._path_search(u, v, color) is not None

    def color_path(self, eid: int, color: int) -> Optional[List[int]]:
        """``C(e, c)``: edge ids of the unique u-v path in color ``c``.

        Returns None when u, v are disconnected in color ``c`` (the
        paper's ``C(e, c) = ∅``).  When the edge itself has color ``c``
        the path is the edge itself (the trivial u-v path).
        """
        u, v = self.graph.endpoints(eid)
        if self._color[eid] == color:
            return [eid]
        return self._path_search(u, v, color)

    def _path_search(self, u: int, v: int, color: int) -> Optional[List[int]]:
        adj = self._adj.get(color)
        if not adj or u not in adj or v not in adj:
            return None
        if u == v:
            return []
        parent: Dict[int, Tuple[int, int]] = {u: (u, -1)}
        queue = deque([u])
        while queue:
            vertex = queue.popleft()
            for eid, other in adj.get(vertex, ()):
                if other not in parent:
                    parent[other] = (vertex, eid)
                    if other == v:
                        path = []
                        walk = v
                        while walk != u:
                            prev, via = parent[walk]
                            path.append(via)
                            walk = prev
                        path.reverse()
                        return path
                    queue.append(other)
        return None

    def color_component_vertices(
        self, start: int, color: int
    ) -> Set[int]:
        """Vertices reachable from ``start`` through color-``c`` edges."""
        adj = self._adj.get(color, {})
        if start not in adj:
            return {start}
        seen = {start}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for _eid, other in adj.get(vertex, ()):
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        return seen

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def assert_valid(self) -> None:
        """Re-verify from scratch that each color class is a forest and
        every color is from its edge's palette."""
        by_color: Dict[int, List[int]] = {}
        for eid, color in self._color.items():
            if color is None:
                continue
            if color not in self.palettes[eid]:
                raise ValidationError(
                    f"edge {eid} holds color {color!r} outside its palette"
                )
            if eid in self._leftover:
                raise ValidationError(f"leftover edge {eid} is colored")
            by_color.setdefault(color, []).append(eid)
        for color, eids in by_color.items():
            uf = UnionFind()
            for eid in eids:
                u, v = self.graph.endpoints(eid)
                if not uf.union(u, v):
                    raise ValidationError(
                        f"color {color!r} contains a cycle (edge {eid})"
                    )
