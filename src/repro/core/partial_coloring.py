"""Partial list-forest decomposition state (Section 3).

:class:`PartialListForestDecomposition` is the mutable object the
augmentation framework operates on.  It tracks

* the coloring ``ψ: edge id -> color | None``;
* per-color adjacency, so the path query ``C(e, c)`` — the unique
  ``u``–``v`` path in the color-``c`` forest for ``e = uv``, or ``∅``
  when ``u`` and ``v`` are disconnected in that color — runs as one BFS
  over the color class (this is the workhorse of Algorithm 1);
* the *leftover* edge set (edges removed by CUT), with the orientation
  recorded at removal time so the pseudo-arboricity accounting of
  Theorem 4.2 is checkable.

Every mutation maintains the invariant that each color class is a
forest; ``set_color`` refuses to close a cycle.

The color-class BFS runs on one of three substrates.  The dict backend
is the original per-color adjacency-dict walk, preserved as the
reference path.  The csr backend extracts the color class as a sub-CSR
over the host snapshot's dense indices (a color class is just an edge
subset, so :meth:`~repro.graph.csr.CSRGraph.edge_subset_csr_arrays`
produces its flat adjacency directly) and sweeps it with frontier-array
BFS; the extraction is cached per color and invalidated by a version
counter bumped on every attach/detach.  The parallel backend routes
those sweeps through the shared
:class:`~repro.parallel.engine.WaveEngine` (shard-fanned frontier
gathers, ``workers`` threads), auto-gated by frontier size so small
color classes stay serial.  ``backend="auto"`` keeps small classes on
the dict path — rebuilding arrays there costs more than the walk — and
moves classes past the extraction threshold onto the kernel.  All
paths return identical values: paths in a forest are unique, and the
component/connectivity queries are order-free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import PaletteError, ValidationError
from ..graph.csr import (
    _concat_ranges,
    bfs_distance_array,
    force_mp,
    force_parallel_traversal,
    snapshot_of,
)
from ..graph.multigraph import MultiGraph
from ..graph.union_find import UnionFind
from ..parallel.bfs import parallel_bfs_distance_array
from ..parallel.engine import engine_for

Palettes = Dict[int, Sequence[int]]

# A color class moves onto the sub-CSR path once it has this many edges
# AND is dense relative to the host (>= n/8 edges): below either bound
# the dict walk beats the array extraction.
COLOR_CSR_MIN_EDGES = 64


class PartialListForestDecomposition:
    """Mutable partial LFD over a multigraph with per-edge palettes."""

    def __init__(
        self,
        graph: MultiGraph,
        palettes: Palettes,
        backend: str = "auto",
        workers: int = 0,
    ) -> None:
        if backend not in ("auto", "dict", "csr", "parallel", "mp"):
            raise ValidationError(f"unknown color-class backend {backend!r}")
        self.graph = graph
        self.backend = backend
        self.workers = workers
        self._engine = None  # lazy wave engine over the host snapshot
        self.palettes = {
            eid: tuple(palettes[eid]) for eid in graph.edge_ids()
        }
        self._color: Dict[int, Optional[int]] = {
            eid: None for eid in graph.edge_ids()
        }
        # _adj[color][vertex] = list of (eid, other endpoint)
        self._adj: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}
        self._leftover: Set[int] = set()
        self._leftover_tail: Dict[int, int] = {}
        # Per-color kernel bookkeeping: the edge set feeding the sub-CSR
        # extraction, a version stamp bumped on every mutation, and the
        # extracted (offsets, neighbors, edge ids) arrays keyed by the
        # version they were built at.
        self._class_eids: Dict[int, Set[int]] = {}
        self._class_version: Dict[int, int] = {}
        self._class_arrays: Dict[int, Tuple[int, Tuple]] = {}

    def csr_snapshot(self):
        """Flat-array snapshot of the host graph (cached on the graph).

        The augmentation framework never mutates the host graph (CUT
        removals live in this object, not the graph), so one snapshot
        serves every CUT region scan and augmenting search of a run.
        """
        return snapshot_of(self.graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def color_of(self, eid: int) -> Optional[int]:
        return self._color[eid]

    def palette(self, eid: int) -> Tuple[int, ...]:
        return self.palettes[eid]

    def is_leftover(self, eid: int) -> bool:
        return eid in self._leftover

    def leftover_edges(self) -> List[int]:
        return sorted(self._leftover)

    def leftover_orientation(self) -> Dict[int, int]:
        """edge id -> tail vertex recorded when CUT removed the edge."""
        return dict(self._leftover_tail)

    def uncolored_edges(self) -> List[int]:
        return [
            eid
            for eid, color in self._color.items()
            if color is None and eid not in self._leftover
        ]

    def coloring(self) -> Dict[int, Optional[int]]:
        """Copy of the full coloring map (leftover edges appear as None)."""
        return dict(self._color)

    def colored_edges(self) -> Dict[int, int]:
        """Only the colored edges, as edge id -> color."""
        return {e: c for e, c in self._color.items() if c is not None}

    def used_colors(self) -> Set[int]:
        return {c for c in self._color.values() if c is not None}

    def class_edges(self, color: int) -> List[int]:
        """Edge ids currently holding ``color``."""
        out = []
        for _vertex, incident in self._adj.get(color, {}).items():
            out.extend(eid for eid, _other in incident)
        return sorted(set(out))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set_color(self, eid: int, color: int, check_palette: bool = True) -> None:
        """Color (or recolor) an edge; refuses cycles and leftover edges."""
        if eid in self._leftover:
            raise ValidationError(f"edge {eid} was removed by CUT")
        if check_palette and color not in self.palettes[eid]:
            raise PaletteError(
                f"color {color!r} not in palette of edge {eid}"
            )
        u, v = self.graph.endpoints(eid)
        current = self._color[eid]
        if current == color:
            return
        if current is not None:
            self._detach(eid, current)
        if self._connected_in_color(u, v, color):
            # Restore previous state before failing.
            if current is not None:
                self._attach(eid, current)
            raise ValidationError(
                f"coloring edge {eid} with {color!r} would close a cycle"
            )
        self._attach(eid, color)
        self._color[eid] = color

    def uncolor(self, eid: int) -> None:
        current = self._color[eid]
        if current is not None:
            self._detach(eid, current)
            self._color[eid] = None

    def remove_to_leftover(self, eid: int, tail: Optional[int] = None) -> None:
        """CUT removal: uncolor the edge and exclude it from the instance.

        ``tail`` records the orientation chosen by the load-balancing
        argument (the vertex charged for the removal).
        """
        self.uncolor(eid)
        self._leftover.add(eid)
        if tail is not None:
            u, v = self.graph.endpoints(eid)
            if tail not in (u, v):
                raise ValidationError(
                    f"tail {tail} is not an endpoint of edge {eid}"
                )
            self._leftover_tail[eid] = tail

    def _attach(self, eid: int, color: int) -> None:
        u, v = self.graph.endpoints(eid)
        adj = self._adj.setdefault(color, {})
        adj.setdefault(u, []).append((eid, v))
        adj.setdefault(v, []).append((eid, u))
        self._class_eids.setdefault(color, set()).add(eid)
        self._class_version[color] = self._class_version.get(color, 0) + 1

    def _detach(self, eid: int, color: int) -> None:
        u, v = self.graph.endpoints(eid)
        adj = self._adj[color]
        adj[u] = [(e, w) for e, w in adj[u] if e != eid]
        if not adj[u]:
            del adj[u]
        adj[v] = [(e, w) for e, w in adj[v] if e != eid]
        if not adj[v]:
            del adj[v]
        self._class_eids[color].discard(eid)
        self._class_version[color] = self._class_version.get(color, 0) + 1

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------

    def _use_kernel(self, color: int) -> bool:
        if self.backend == "dict":
            return False
        eids = self._class_eids.get(color)
        if not eids:
            return False
        if self.backend in ("csr", "parallel", "mp"):
            return True
        return (
            len(eids) >= COLOR_CSR_MIN_EDGES
            and 8 * len(eids) >= self.graph.n
        )

    def _wave_engine(self):
        """The shared wave engine for kernel-backed color-class sweeps,
        or None when this instance runs serial.  Active for
        ``backend="parallel"`` / ``"mp"`` and under
        ``REPRO_FORCE_PARALLEL`` / ``REPRO_FORCE_MP``; waves below the
        engine's frontier gate run inline either way, so small color
        classes stay serial with identical results."""
        wants_mp = self.backend == "mp" or force_mp()
        if (
            self.backend not in ("parallel", "mp")
            and not wants_mp
            and not force_parallel_traversal()
        ):
            return None
        if self._engine is None:
            self._engine = engine_for(
                self.csr_snapshot(), self.workers, mp=wants_mp
            )
        return self._engine

    def _color_arrays(self, color: int) -> Tuple:
        """Cached sub-CSR ``(offsets, neighbors, edge ids)`` of a color
        class, rebuilt when the class mutated since extraction."""
        version = self._class_version.get(color, 0)
        cached = self._class_arrays.get(color)
        if cached is not None and cached[0] == version:
            return cached[1]
        arrays = self.csr_snapshot().edge_subset_csr_arrays(
            sorted(self._class_eids[color])
        )
        self._class_arrays[color] = (version, arrays)
        return arrays

    def _connected_in_color(self, u: int, v: int, color: int) -> bool:
        return self._path_search(u, v, color) is not None

    def color_path(self, eid: int, color: int) -> Optional[List[int]]:
        """``C(e, c)``: edge ids of the unique u-v path in color ``c``.

        Returns None when u, v are disconnected in color ``c`` (the
        paper's ``C(e, c) = ∅``).  When the edge itself has color ``c``
        the path is the edge itself (the trivial u-v path).
        """
        u, v = self.graph.endpoints(eid)
        if self._color[eid] == color:
            return [eid]
        return self._path_search(u, v, color)

    def _path_search(self, u: int, v: int, color: int) -> Optional[List[int]]:
        adj = self._adj.get(color)
        if not adj or u not in adj or v not in adj:
            return None
        if u == v:
            return []
        if self._use_kernel(color):
            return self._path_search_kernel(u, v, color)
        parent: Dict[int, Tuple[int, int]] = {u: (u, -1)}
        queue = deque([u])
        while queue:
            vertex = queue.popleft()
            for eid, other in adj.get(vertex, ()):
                if other not in parent:
                    parent[other] = (vertex, eid)
                    if other == v:
                        path = []
                        walk = v
                        while walk != u:
                            prev, via = parent[walk]
                            path.append(via)
                            walk = prev
                        path.reverse()
                        return path
                    queue.append(other)
        return None

    def _path_search_kernel(self, u: int, v: int, color: int) -> Optional[List[int]]:
        """Frontier-array BFS on the color class's sub-CSR.

        The path in a forest is unique, so the returned edge list is
        identical to the dict walk's.
        """
        snap = self.csr_snapshot()
        offsets, nbr, eids = self._color_arrays(color)
        src = snap.index_of(u)
        dst = snap.index_of(v)
        n = snap.num_vertices
        engine = self._wave_engine()
        parent_eid = np.full(n, -1, dtype=np.int64)
        parent_vtx = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        visited[src] = True
        frontier = np.asarray([src], dtype=np.int64)

        def expand(part: np.ndarray):
            # Shard-phase kernel: reads the frozen visited mask; the
            # per-group filtered triples concatenate in plan order, so
            # the engine path sees the serial gather byte for byte.
            lengths_ = offsets[part + 1] - offsets[part]
            half = _concat_ranges(offsets[part], offsets[part + 1])
            origins_ = np.repeat(part, lengths_)
            targets_ = nbr[half]
            via_ = eids[half]
            fresh_ = ~visited[targets_]
            return targets_[fresh_], via_[fresh_], origins_[fresh_]

        while frontier.size and not visited[dst]:
            if engine is None:
                targets, via, origins = expand(frontier)
            else:
                cost = int((offsets[frontier + 1] - offsets[frontier]).sum())
                targets, via, origins = engine.gather(expand, frontier, cost)
            # Within a level a vertex may be reached via several edges;
            # first occurrence wins (any parent reconstructs the same
            # unique path — color classes are forests).
            targets, first = np.unique(targets, return_index=True)
            visited[targets] = True
            parent_eid[targets] = via[first]
            parent_vtx[targets] = origins[first]
            frontier = targets
        if not visited[dst]:
            return None
        path: List[int] = []
        walk = dst
        while walk != src:
            path.append(int(parent_eid[walk]))
            walk = int(parent_vtx[walk])
        path.reverse()
        return path

    def color_component_vertices(
        self, start: int, color: int
    ) -> Set[int]:
        """Vertices reachable from ``start`` through color-``c`` edges."""
        adj = self._adj.get(color, {})
        if start not in adj:
            return {start}
        if self._use_kernel(color):
            snap = self.csr_snapshot()
            offsets, nbr, _eids = self._color_arrays(color)
            engine = self._wave_engine()
            if engine is not None:
                dist = parallel_bfs_distance_array(
                    offsets, nbr, snap.num_vertices,
                    [snap.index_of(start)], engine=engine,
                )
            else:
                dist = bfs_distance_array(
                    offsets, nbr, snap.num_vertices, [snap.index_of(start)]
                )
            return set(snap.vertex_ids[dist >= 0].tolist())
        seen = {start}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for _eid, other in adj.get(vertex, ()):
                if other not in seen:
                    seen.add(other)
                    queue.append(other)
        return seen

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def assert_valid(self) -> None:
        """Re-verify from scratch that each color class is a forest and
        every color is from its edge's palette."""
        by_color: Dict[int, List[int]] = {}
        for eid, color in self._color.items():
            if color is None:
                continue
            if color not in self.palettes[eid]:
                raise ValidationError(
                    f"edge {eid} holds color {color!r} outside its palette"
                )
            if eid in self._leftover:
                raise ValidationError(f"leftover edge {eid} is colored")
            by_color.setdefault(color, []).append(eid)
        for color, eids in by_color.items():
            uf = UnionFind()
            for eid in eids:
                u, v = self.graph.endpoints(eid)
                if not uf.union(u, v):
                    raise ValidationError(
                        f"color {color!r} contains a cycle (edge {eid})"
                    )
