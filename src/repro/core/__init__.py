"""Core: the paper's primary contribution (Sections 3, 4, 5), plus the
unified decomposition API (config / result protocol / registry /
session)."""

from . import api
from .api import describe
from .algorithm_stats import ListForestStats, StarForestStats, TaskStats
from .config import DecompositionConfig
from .registry import (
    BackendSpec,
    TaskSpec,
    available_backends,
    available_tasks,
    register_backend,
    register_task,
)
from .results import (
    DecompositionResult,
    OrientationResult,
    PseudoforestResult,
)
from .session import Session, decompose
from .augmenting import (
    AugmentationStats,
    apply_augmentation,
    augment_edge,
    find_almost_augmenting_sequence,
    is_augmenting_sequence,
    shortcut_sequence,
)
from .color_splitting import (
    VertexColorSplitting,
    cluster_correlated_splitting,
    combine_colorings,
    independent_splitting,
)
from .cut import CutController, CutStats, is_cut_good
from .diameter_reduction import (
    DiameterReductionResult,
    depth_cut,
    random_sparse_cut,
    reduce_diameter,
)
from .forest_decomposition import (
    Algorithm2Result,
    Algorithm2Stats,
    ForestDecompositionResult,
    algorithm2,
    default_radii,
    forest_decomposition_algorithm2,
)
from .list_forest import ListForestDecompositionResult, list_forest_decomposition
from .orientation import (
    low_outdegree_orientation,
    orientation_decomposition,
    orientation_from_forest_decomposition,
    pseudoforest_decomposition_result,
)
from .partial_coloring import PartialListForestDecomposition
from .star_forest import (
    StarForestResult,
    list_star_forest_decomposition_amr,
    star_forest_decomposition_amr,
    two_coloring_star_forests,
)

__all__ = [
    "api",
    "decompose",
    "Session",
    "DecompositionConfig",
    "DecompositionResult",
    "OrientationResult",
    "PseudoforestResult",
    "TaskSpec",
    "BackendSpec",
    "register_task",
    "register_backend",
    "available_tasks",
    "available_backends",
    "PartialListForestDecomposition",
    "AugmentationStats",
    "find_almost_augmenting_sequence",
    "shortcut_sequence",
    "is_augmenting_sequence",
    "apply_augmentation",
    "augment_edge",
    "CutController",
    "CutStats",
    "is_cut_good",
    "DiameterReductionResult",
    "depth_cut",
    "random_sparse_cut",
    "reduce_diameter",
    "Algorithm2Result",
    "Algorithm2Stats",
    "algorithm2",
    "default_radii",
    "ForestDecompositionResult",
    "forest_decomposition_algorithm2",
    "ListForestDecompositionResult",
    "list_forest_decomposition",
    "VertexColorSplitting",
    "cluster_correlated_splitting",
    "independent_splitting",
    "combine_colorings",
    "StarForestResult",
    "star_forest_decomposition_amr",
    "list_star_forest_decomposition_amr",
    "two_coloring_star_forests",
    "low_outdegree_orientation",
    "orientation_decomposition",
    "orientation_from_forest_decomposition",
    "pseudoforest_decomposition_result",
    "describe",
    "TaskStats",
    "ListForestStats",
    "StarForestStats",
]
