"""(1+ε)α-orientations (Corollary 1.1).

A forest decomposition of diameter D converts into an orientation in
O(D) rounds: root every monochromatic tree and point every edge at its
parent.  Each vertex then has at most one out-edge (its parent edge)
per color, so the out-degree is bounded by the number of forests —
``(1+ε)α`` — which is how the paper derives the first orientation
algorithms with linear ``1/ε`` dependence.

Also provided: the (2+ε)α*-orientation baseline from the H-partition
(Theorem 2.1(2)) and the exact flow-based witness, so benches can
compare all three.

Both registry tasks run as declared pass DAGs
(:data:`ORIENTATION_PIPELINE`, :data:`PSEUDOFOREST_PIPELINE`): a
``decompose`` pass producing the substrate (forest decomposition,
H-partition, or nothing for the exact witness), an ``orient`` pass
converting it, and for pseudoforests a ``fold`` pass grouping the
out-edges.  The augmentation orient step fans the per-color tree
rootings out through ``ctx.fan_out`` — rooting consumes no randomness,
so the reconciled orientation is bit-identical across schedules.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..errors import DecompositionError
from ..graph.csr import resolve_backend, rooted_forest_arrays, snapshot_of
from ..graph.forests import color_classes
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.pseudoarboricity import (
    exact_pseudoarboricity,
    orientation_exists,
    pseudoforest_decomposition_from_orientation,
)
from ..pipeline import Pass, Pipeline, PipelineContext, Scheduler, resolve_schedule
from ..rng import SeedLike
from ..decomposition.hpartition import (
    acyclic_orientation,
    default_threshold,
    h_partition,
)
from .algorithm_stats import TaskStats
from .forest_decomposition import forest_decomposition_algorithm2
from .results import OrientationResult, PseudoforestResult

Orientation = Dict[int, int]

ORIENTATION_METHODS = ("augmentation", "hpartition", "exact")


def _class_parent_arrays(snapshot, eids):
    """Root one color class; returns the (parent edge id, child vertex
    id) arrays plus the tree depth — pure per-class work, fanned out by
    the orient pass."""
    forest = rooted_forest_arrays(snapshot, eids)
    children = forest.parent_eid >= 0
    return (
        forest.parent_eid[children],
        snapshot.vertex_ids[children],
        forest.max_depth,
    )


def orientation_from_forest_decomposition(
    graph: MultiGraph,
    coloring: Dict[int, int],
    rounds: Optional[RoundCounter] = None,
    ctx: Optional[PipelineContext] = None,
) -> Orientation:
    """Orient every edge toward its tree root (Corollary 1.1 step).

    Out-degree is bounded by the number of colors.  Charges O(D) rounds
    where D is the largest tree diameter (the paper's conversion cost).
    Given a pipeline ``ctx``, the per-color rootings fan out through
    the scheduler (reconciled in sorted color order, so the orientation
    is identical on every schedule).
    """
    counter = ensure_counter(rounds)
    snapshot = snapshot_of(graph)
    classes = sorted(color_classes(coloring).items())
    if ctx is not None:
        per_class = ctx.fan_out(
            [
                (lambda eids=eids: _class_parent_arrays(snapshot, eids))
                for _color, eids in classes
            ]
        )
    else:
        per_class = [
            _class_parent_arrays(snapshot, eids) for _color, eids in classes
        ]
    orientation: Orientation = {}
    worst_depth = 0
    for parent_eids, child_ids, depth in per_class:
        worst_depth = max(worst_depth, depth)
        # tail = child; edge points to parent
        orientation.update(zip(parent_eids.tolist(), child_ids.tolist()))
    counter.charge(2 * worst_depth + 1, "orient toward roots")
    return orientation


# ----------------------------------------------------------------------
# Corollary 1.1 as a pass DAG
# ----------------------------------------------------------------------


def _or_setup(ctx: PipelineContext) -> None:
    if ctx["method"] not in ORIENTATION_METHODS:
        raise DecompositionError(
            f"unknown orientation method {ctx['method']!r}"
        )
    ctx["stats"] = TaskStats()


def _or_decompose(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    method = ctx["method"]
    if method == "augmentation":
        result = forest_decomposition_algorithm2(
            graph,
            ctx["epsilon"],
            alpha=ctx["alpha"],
            diameter_mode="auto",
            seed=ctx["seed"],
            rounds=ctx.counter,
            backend=ctx["backend"],
            workers=ctx["workers"],
            schedule=ctx.schedule,
        )
        ctx["forest_result"] = result
        ctx["bound"] = result.colors_used
        ctx.note(reconcile_volume=len(result.coloring))
    elif method == "hpartition":
        peel_backend = resolve_backend(
            graph, ctx["backend"], DecompositionError, peeling=True
        )
        pseudo = ctx["pseudoarboricity"]
        if pseudo is None:
            pseudo = exact_pseudoarboricity(graph)
        threshold = max(1, default_threshold(pseudo, ctx["epsilon"]))
        snapshot = snapshot_of(graph) if peel_backend != "dict" else None
        ctx["partition"] = h_partition(
            graph, threshold, ctx.counter, backend=peel_backend,
            snapshot=snapshot, workers=ctx["workers"],
            shard_plan=ctx["shard_plan"],
        )
        ctx["peel_backend"] = peel_backend
        ctx["snapshot"] = snapshot
        ctx["bound"] = threshold
        ctx.note(vertices_touched=graph.n)
    # "exact" needs no substrate — the orient pass computes the witness.


def _or_orient(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    method = ctx["method"]
    if method == "augmentation":
        ctx["orientation"] = orientation_from_forest_decomposition(
            graph, ctx["forest_result"].coloring, ctx.counter, ctx=ctx
        )
    elif method == "hpartition":
        ctx["orientation"] = acyclic_orientation(
            graph, ctx["partition"], ctx.counter,
            backend=ctx["peel_backend"], snapshot=ctx["snapshot"],
        )
    else:  # exact
        from ..nashwilliams.arboricity import exact_arboricity

        alpha = ctx["alpha"]
        if alpha is None:
            alpha = exact_arboricity(graph)
        bound = max(1, math.ceil((1.0 + ctx["epsilon"]) * max(alpha, 1)))
        witness = orientation_exists(graph, bound)
        if witness is None:
            raise DecompositionError(
                f"no {bound}-orientation exists (alpha underestimated?)"
            )
        ctx.counter.charge(1, "exact orientation (centralized witness)")
        ctx["orientation"] = witness
        ctx["bound"] = bound
    ctx.note(reconcile_volume=len(ctx["orientation"]))


def _or_finalize(ctx: PipelineContext) -> None:
    ctx["result"] = OrientationResult(
        ctx["orientation"], ctx["bound"], rounds=ctx.counter,
        stats=ctx["stats"], graph=ctx["graph"],
    )


def _pf_fold(ctx: PipelineContext) -> None:
    ctx["pf_coloring"] = pseudoforest_decomposition_from_orientation(
        ctx["graph"], ctx["orientation"]
    )
    ctx.note(reconcile_volume=len(ctx["pf_coloring"]))


def _pf_finalize(ctx: PipelineContext) -> None:
    ctx["result"] = PseudoforestResult(
        ctx["pf_coloring"], ctx["bound"], rounds=ctx.counter,
        stats=ctx["stats"], graph=ctx["graph"],
    )


_ORIENT_PASSES = [
    Pass(
        "setup", _or_setup,
        writes=("stats",),
        description="validate the method selection",
    ),
    Pass(
        "decompose", _or_decompose, deps=("setup",),
        writes=(
            "forest_result", "partition", "bound",
            "peel_backend", "snapshot",
        ),
        description="produce the substrate: Algorithm 2 forests "
                    "(augmentation), H-partition (hpartition), or "
                    "nothing (exact)",
        citation="Theorem 4.6 / Theorem 2.1(2)",
    ),
    Pass(
        "orient", _or_orient, deps=("decompose",),
        reads=("forest_result", "partition"),
        writes=("orientation", "bound"),
        description="point every edge at its parent / peel level / "
                    "flow witness; per-color rootings are the fan-out "
                    "unit",
        citation="Corollary 1.1",
    ),
]

#: Corollary 1.1 as a declared pass DAG.
ORIENTATION_PIPELINE = Pipeline(
    "orientation",
    _ORIENT_PASSES + [
        Pass(
            "finalize", _or_finalize, deps=("orient",),
            reads=("orientation", "bound"), writes=("result",),
            description="assemble the OrientationResult",
        ),
    ],
    description="Corollary 1.1: (1+ε)α low out-degree orientation",
)

#: The pseudoforest companion rides on the orientation passes and adds
#: a fold: out-edges of one vertex share a pseudoforest index.
PSEUDOFOREST_PIPELINE = Pipeline(
    "pseudoforest",
    _ORIENT_PASSES + [
        Pass(
            "fold", _pf_fold, deps=("orient",),
            reads=("orientation",), writes=("pf_coloring",),
            description="group each vertex's out-edges into one "
                        "pseudoforest per out-slot",
            citation="Corollary 1.1 companion",
        ),
        Pass(
            "finalize", _pf_finalize, deps=("fold",),
            reads=("pf_coloring", "bound"), writes=("result",),
            description="assemble the PseudoforestResult",
        ),
    ],
    description="Corollary 1.1 companion: (1+ε)α pseudoforest "
                "decomposition",
)


def _run_orientation_pipeline(
    pipeline: Pipeline,
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int],
    method: str,
    seed: SeedLike,
    counter: RoundCounter,
    backend: str,
    pseudoarboricity: Optional[int],
    workers: int,
    shard_plan,
    schedule: str,
):
    ctx = PipelineContext(
        counter=counter,
        values={
            "graph": graph,
            "epsilon": epsilon,
            "alpha": alpha,
            "method": method,
            "seed": seed,
            "backend": backend,
            "pseudoarboricity": pseudoarboricity,
            "workers": workers,
            "shard_plan": shard_plan,
        },
    )
    scheduler = Scheduler(resolve_schedule(graph, schedule), workers)
    result = scheduler.run(pipeline, ctx)
    result.stats.passes = ctx.pass_stats
    return result


def orientation_decomposition(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    pseudoarboricity: Optional[int] = None,
    workers: int = 0,
    shard_plan=None,
    schedule: str = "auto",
) -> OrientationResult:
    """Corollary 1.1 as a protocol result: runs
    :data:`ORIENTATION_PIPELINE` under ``schedule`` and returns the
    :class:`~repro.core.results.OrientationResult` (per-pass records in
    ``result.stats["passes"]``).  See :func:`low_outdegree_orientation`
    for the knobs; that wrapper unwraps this result into the historical
    ``(orientation, bound)`` tuple.
    """
    counter = ensure_counter(rounds)
    return _run_orientation_pipeline(
        ORIENTATION_PIPELINE, graph, epsilon, alpha, method, seed,
        counter, backend, pseudoarboricity, workers, shard_plan, schedule,
    )


def pseudoforest_decomposition_result(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    pseudoarboricity: Optional[int] = None,
    workers: int = 0,
    shard_plan=None,
    schedule: str = "auto",
) -> PseudoforestResult:
    """The pseudoforest companion of Corollary 1.1: runs
    :data:`PSEUDOFOREST_PIPELINE` (the orientation passes plus the
    fold) and returns the :class:`~repro.core.results.
    PseudoforestResult`."""
    counter = ensure_counter(rounds)
    return _run_orientation_pipeline(
        PSEUDOFOREST_PIPELINE, graph, epsilon, alpha, method, seed,
        counter, backend, pseudoarboricity, workers, shard_plan, schedule,
    )


def low_outdegree_orientation(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    pseudoarboricity: Optional[int] = None,
    workers: int = 0,
    shard_plan=None,
    schedule: str = "auto",
) -> Tuple[Orientation, int]:
    """A (1+ε)α-orientation; returns (orientation, out-degree bound).

    ``method``:

    * ``"augmentation"`` — Corollary 1.1: Algorithm 2 forest
      decomposition (with bounded diameter), then orient to roots.
      Out-degree ≤ #forests ≈ (1+ε)α; rounds linear in 1/ε.
    * ``"hpartition"`` — the (2+ε)α* baseline of Theorem 2.1(2).
    * ``"exact"`` — centralized flow witness at ⌈(1+ε)α⌉ (ground truth).

    ``backend`` selects the graph substrate (``"csr"`` kernel,
    ``"dict"`` reference, ``"sharded"`` multi-worker peeling with
    ``workers``/``shard_plan``, or ``"auto"``); the ``"exact"`` method
    ignores it.  ``pseudoarboricity`` lets callers (e.g. a
    :class:`~repro.core.session.Session`) inject the memoized exact
    value for the ``"hpartition"`` method instead of recomputing it,
    and ``shard_plan`` the session's cached shard plan.  ``schedule``
    picks the pass-DAG execution mode (outputs identical either way).
    """
    result = orientation_decomposition(
        graph, epsilon, alpha=alpha, method=method, seed=seed,
        rounds=rounds, backend=backend,
        pseudoarboricity=pseudoarboricity, workers=workers,
        shard_plan=shard_plan, schedule=schedule,
    )
    return result.orientation, result.bound
