"""(1+ε)α-orientations (Corollary 1.1).

A forest decomposition of diameter D converts into an orientation in
O(D) rounds: root every monochromatic tree and point every edge at its
parent.  Each vertex then has at most one out-edge (its parent edge)
per color, so the out-degree is bounded by the number of forests —
``(1+ε)α`` — which is how the paper derives the first orientation
algorithms with linear ``1/ε`` dependence.

Also provided: the (2+ε)α*-orientation baseline from the H-partition
(Theorem 2.1(2)) and the exact flow-based witness, so benches can
compare all three.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..errors import DecompositionError
from ..graph.csr import resolve_backend, rooted_forest_arrays, snapshot_of
from ..graph.forests import color_classes
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity, orientation_exists
from ..rng import SeedLike
from ..decomposition.hpartition import (
    acyclic_orientation,
    default_threshold,
    h_partition,
)
from .forest_decomposition import (
    ForestDecompositionResult,
    forest_decomposition_algorithm2,
)

Orientation = Dict[int, int]


def orientation_from_forest_decomposition(
    graph: MultiGraph,
    coloring: Dict[int, int],
    rounds: Optional[RoundCounter] = None,
) -> Orientation:
    """Orient every edge toward its tree root (Corollary 1.1 step).

    Out-degree is bounded by the number of colors.  Charges O(D) rounds
    where D is the largest tree diameter (the paper's conversion cost).
    """
    counter = ensure_counter(rounds)
    snapshot = snapshot_of(graph)
    orientation: Orientation = {}
    worst_depth = 0
    for _color, eids in sorted(color_classes(coloring).items()):
        forest = rooted_forest_arrays(snapshot, eids)
        worst_depth = max(worst_depth, forest.max_depth)
        children = forest.parent_eid >= 0
        # tail = child; edge points to parent
        orientation.update(
            zip(
                forest.parent_eid[children].tolist(),
                snapshot.vertex_ids[children].tolist(),
            )
        )
    counter.charge(2 * worst_depth + 1, "orient toward roots")
    return orientation


def low_outdegree_orientation(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    pseudoarboricity: Optional[int] = None,
    workers: int = 0,
    shard_plan=None,
) -> Tuple[Orientation, int]:
    """A (1+ε)α-orientation; returns (orientation, out-degree bound).

    ``method``:

    * ``"augmentation"`` — Corollary 1.1: Algorithm 2 forest
      decomposition (with bounded diameter), then orient to roots.
      Out-degree ≤ #forests ≈ (1+ε)α; rounds linear in 1/ε.
    * ``"hpartition"`` — the (2+ε)α* baseline of Theorem 2.1(2).
    * ``"exact"`` — centralized flow witness at ⌈(1+ε)α⌉ (ground truth).

    ``backend`` selects the graph substrate (``"csr"`` kernel,
    ``"dict"`` reference, ``"sharded"`` multi-worker peeling with
    ``workers``/``shard_plan``, or ``"auto"``); the ``"exact"`` method
    ignores it.  ``pseudoarboricity`` lets callers (e.g. a
    :class:`~repro.core.session.Session`) inject the memoized exact
    value for the ``"hpartition"`` method instead of recomputing it,
    and ``shard_plan`` the session's cached shard plan.
    """
    counter = ensure_counter(rounds)
    if method == "augmentation":
        result = forest_decomposition_algorithm2(
            graph,
            epsilon,
            alpha=alpha,
            diameter_mode="auto",
            seed=seed,
            rounds=counter,
            backend=backend,
            workers=workers,
        )
        orientation = orientation_from_forest_decomposition(
            graph, result.coloring, counter
        )
        return orientation, result.colors_used
    if method == "hpartition":
        peel_backend = resolve_backend(
            graph, backend, DecompositionError, peeling=True
        )
        pseudo = (
            pseudoarboricity
            if pseudoarboricity is not None
            else exact_pseudoarboricity(graph)
        )
        threshold = max(1, default_threshold(pseudo, epsilon))
        snapshot = snapshot_of(graph) if peel_backend != "dict" else None
        partition = h_partition(
            graph, threshold, counter, backend=peel_backend,
            snapshot=snapshot, workers=workers, shard_plan=shard_plan,
        )
        orientation = acyclic_orientation(
            graph, partition, counter, backend=peel_backend, snapshot=snapshot
        )
        return orientation, threshold
    if method == "exact":
        from ..nashwilliams.arboricity import exact_arboricity

        if alpha is None:
            alpha = exact_arboricity(graph)
        bound = max(1, math.ceil((1.0 + epsilon) * max(alpha, 1)))
        witness = orientation_exists(graph, bound)
        if witness is None:
            raise DecompositionError(
                f"no {bound}-orientation exists (alpha underestimated?)"
            )
        counter.charge(1, "exact orientation (centralized witness)")
        return witness, bound
    raise DecompositionError(f"unknown orientation method {method!r}")
