"""Task and backend registries: the one seam where decompositions and
graph substrates plug into the public API.

Every headline result of the paper is a *task* — a named recipe that
takes a :class:`~repro.core.session.Session` plus a
:class:`~repro.core.config.DecompositionConfig` and returns a
:class:`~repro.core.results.DecompositionResult`.  The six built-in
tasks (registered by :mod:`repro.core.session` on import) are::

    forest            Theorem 4.6   (1+ε)α forest decomposition
    star_forest       Theorem 5.4(1)
    list_forest       Theorem 4.10
    list_star_forest  Theorem 5.4(2) / Theorem 2.3 fallback
    pseudoforest      Corollary 1.1 companion
    orientation       Corollary 1.1

*Backends* name graph substrates with declared capabilities.  The
built-ins are ``auto`` / ``dict`` / ``csr``; the ROADMAP's upcoming
sharded-peeling backend registers here without touching any pipeline.
A backend ultimately resolves to the concrete substrate string the
lower layers understand (``"auto"``, ``"dict"`` or ``"csr"``), so a
custom backend is free to pick per-graph.

Use :func:`register_task` / :func:`register_backend` to extend either
registry (``override=True`` to replace an entry); unknown names raise
:class:`~repro.errors.RegistryError` listing what is available.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from ..errors import RegistryError

#: runner(session, config, rounds=..., **task_kwargs) -> DecompositionResult
TaskRunner = Callable[..., Any]


@dataclass(frozen=True)
class TaskSpec:
    """One decomposition task: name, runner, and declared behavior."""

    name: str
    runner: TaskRunner
    description: str = ""
    #: which theorem/corollary of the paper the task reproduces
    citation: str = ""
    #: default excess-color budget when config.epsilon is None
    default_epsilon: float = 0.5
    #: task only accepts simple graphs (Section 5 star-forest tasks)
    simple_only: bool = False
    #: task consumes per-edge palettes (list variants)
    needs_palettes: bool = False
    #: what the session precomputes for the task ("arboricity",
    #: "pseudoarboricity") — also documentation of what Session caching
    #: saves on repeated queries
    uses: Tuple[str, ...] = ()
    #: the declared :class:`~repro.pipeline.pipeline.Pipeline` the
    #: runner executes (None for opaque third-party runners); this is
    #: what ``repro.describe(task)`` prints — the runner stays the
    #: entry point, the pipeline is its declared structure
    pipeline: Optional[Any] = None
    #: optional incremental refresher consumed by the delta engine
    #: (:meth:`repro.core.session.Session.apply_delta`):
    #: ``delta(session, watch, info) -> DecompositionResult | None``,
    #: where ``None`` means "cannot repair this delta incrementally —
    #: fall back to a full recompute".  A refresher MUST return a
    #: result bit-identical to a from-scratch run of the task on the
    #: mutated graph; the delta-equivalence corpus enforces it for the
    #: built-ins.  Attached lazily via :func:`set_task_delta` so the
    #: service layer stays an optional import.
    delta: Optional[TaskRunner] = None


@dataclass(frozen=True)
class BackendSpec:
    """One graph substrate: name, resolution rule, capabilities."""

    name: str
    description: str = ""
    #: feature set the backend provides; purely declarative today, the
    #: dispatch seam for substrate-specific scheduling tomorrow
    capabilities: FrozenSet[str] = frozenset()
    #: maps (graph) -> the concrete substrate string the lower layers
    #: accept; defaults to the backend's own name
    resolve: Optional[Callable[[Any], str]] = None

    def substrate_for(self, graph: Any) -> str:
        if self.resolve is None:
            return self.name
        return self.resolve(graph)


_TASKS: Dict[str, TaskSpec] = {}
_BACKENDS: Dict[str, BackendSpec] = {}


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------


def register_task(spec: TaskSpec, override: bool = False) -> TaskSpec:
    """Register a decomposition task; ``override=True`` replaces."""
    if spec.name in _TASKS and not override:
        raise RegistryError(
            f"task {spec.name!r} is already registered "
            "(pass override=True to replace it)"
        )
    _TASKS[spec.name] = spec
    return spec


def unregister_task(name: str) -> None:
    """Remove a task (mainly for tests restoring a clean registry)."""
    _TASKS.pop(name, None)


def set_task_delta(name: str, delta: Optional[TaskRunner]) -> TaskSpec:
    """Attach (or clear) a task's incremental delta refresher.

    The built-in refreshers live in :mod:`repro.service.delta` and
    register themselves on first import, keeping the service subsystem
    out of the core import graph; third-party tasks use the same hook.
    """
    spec = get_task(name)
    spec = dataclasses.replace(spec, delta=delta)
    _TASKS[name] = spec
    return spec


def get_task(name: str) -> TaskSpec:
    try:
        return _TASKS[name]
    except KeyError:
        raise RegistryError(
            f"unknown task {name!r}; available: {available_tasks()}"
        ) from None


def available_tasks() -> Tuple[str, ...]:
    """Registered task names, sorted."""
    return tuple(sorted(_TASKS))


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def register_backend(spec: BackendSpec, override: bool = False) -> BackendSpec:
    """Register a graph-substrate backend; ``override=True`` replaces."""
    if spec.name in _BACKENDS and not override:
        raise RegistryError(
            f"backend {spec.name!r} is already registered "
            "(pass override=True to replace it)"
        )
    _BACKENDS[spec.name] = spec
    return spec


def unregister_backend(name: str) -> None:
    _BACKENDS.pop(name, None)


def get_backend(name: str) -> BackendSpec:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise RegistryError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))
