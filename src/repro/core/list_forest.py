"""(1+ε)α list-forest decomposition (Theorem 4.10).

Pipeline (declared as :data:`LIST_FOREST_PIPELINE`):

1. **Split** each edge's palette into ``Q0`` (main) and ``Q1``
   (reserve) with a vertex-color-splitting (Theorem 4.9), so that the
   two phases can be overlaid safely (Proposition 4.8).
2. **Algorithm 2** on ``Q0`` colors the bulk ``E0``; CUT's leftover has
   pseudo-arboricity ``O(ε'α)``.
3. **Diameter reduction** (Proposition 2.4) trims φ0's deep trees,
   producing a second small leftover.
4. **Theorem 2.3 LSFD** recolors all leftover edges from their reserve
   palettes ``Q1`` (stars are forests, so this is a valid LFD part).
5. **Combine** by Proposition 4.8.

A :class:`~repro.pipeline.pipeline.RetryRule` encodes the Las Vegas
loop: an empty reserve palette (:class:`~repro.errors.
ReservePaletteError`) restarts from the split pass with the same RNG
stream, exactly as the historical retry loop did.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import DecompositionError, ReservePaletteError
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from ..pipeline import Pass, Pipeline, PipelineContext, RetryRule, Scheduler, resolve_schedule
from ..rng import SeedLike, child_rng, make_rng
from ..decomposition.lsfd import list_star_forest_decomposition
from .algorithm_stats import ListForestStats
from .color_splitting import (
    VertexColorSplitting,
    cluster_correlated_splitting,
    combine_colorings,
    independent_splitting,
)
from .diameter_reduction import reduce_diameter
from .forest_decomposition import algorithm2
from .results import DecompositionResult

Palettes = Dict[int, Sequence[int]]


class ListForestDecompositionResult(DecompositionResult):
    """Final LFD: coloring + accounting.

    Implements the uniform result protocol
    (:class:`~repro.core.results.DecompositionResult`); validates as a
    forest decomposition, plus palette membership at ``level="full"``.
    """

    kind = "forest"

    def __init__(
        self,
        coloring: Dict[int, int],
        rounds: RoundCounter,
        stats: ListForestStats,
        graph: Optional[MultiGraph] = None,
    ) -> None:
        self.coloring = coloring
        self.rounds = rounds
        self.stats = stats
        self.graph = graph


def _lf_setup(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    ctx["stats"] = ListForestStats()
    ctx["empty"] = graph.m == 0
    if ctx["empty"]:
        return
    if ctx["alpha"] is None:
        ctx["alpha"] = exact_arboricity(graph)
    # The paper splits ε very conservatively (ε/1000) so the reserve
    # palettes dominate the leftover's pseudo-arboricity; ε/10 keeps the
    # same inequality direction at practical scales (PaletteError makes
    # any violation loud rather than silent).
    ctx["eps_prime"] = ctx["epsilon"] / 10.0


def _lf_split(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    with counter.phase("color splitting"):
        split = _make_splitting(
            ctx["graph"], ctx["palettes"], ctx["epsilon"],
            ctx["splitting"], ctx["reserve_probability"], ctx["rng"],
            counter,
        )
    ctx["split"] = split
    ctx["stats"].k0 = split.k0
    ctx["stats"].k1 = split.k1
    ctx.note(vertices_touched=ctx["graph"].n)


def _lf_algorithm2(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    with counter.phase("algorithm2"):
        result = algorithm2(
            ctx["graph"],
            ctx["split"].palettes_0,
            ctx["eps_prime"],
            ctx["alpha"],
            cut_rule=ctx["cut_rule"],
            radius=ctx["radius"],
            search_radius=ctx["search_radius"],
            seed=child_rng(ctx["rng"], "alg2"),
            rounds=counter,
            backend=ctx["backend"],
            workers=ctx["workers"],
        )
    ctx["coloring_0"] = dict(result.colored)
    ctx["leftover"] = set(result.leftover)
    ctx["stats"].algorithm2 = result.stats
    ctx.note(reconcile_volume=len(ctx["coloring_0"]))


def _lf_diameter_reduce(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    with counter.phase("diameter reduction"):
        reduction = reduce_diameter(
            ctx["graph"],
            ctx["coloring_0"],
            ctx["eps_prime"],
            ctx["alpha"],
            mode="auto",
            seed=child_rng(ctx["rng"], "diam"),
            rounds=counter,
            backend=ctx["backend"],
            workers=ctx["workers"],
            schedule=ctx.schedule,
        )
    ctx["coloring_0"] = dict(reduction.kept)
    ctx["leftover"].update(reduction.deleted)
    ctx["stats"].leftover_size = len(ctx["leftover"])
    ctx.note(
        items=len(set(ctx["coloring_0"].values())),
        reconcile_volume=len(reduction.deleted),
    )


def _lf_reserve(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        ctx["coloring_1"] = {}
        return
    counter = ctx.counter
    with counter.phase("reserve LSFD"):
        ctx["coloring_1"] = _reserve_lsfd(
            ctx["graph"], sorted(ctx["leftover"]),
            ctx["split"].palettes_1, counter,
            backend=ctx["backend"], workers=ctx["workers"],
        )
    ctx.note(reconcile_volume=len(ctx["coloring_1"]))


def _lf_combine(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        ctx["result"] = ListForestDecompositionResult(
            {}, ctx.counter, ctx["stats"], graph=ctx["graph"]
        )
        return
    combined = combine_colorings(ctx["coloring_0"], ctx["coloring_1"])
    ctx["result"] = ListForestDecompositionResult(
        combined, ctx.counter, ctx["stats"], graph=ctx["graph"]
    )
    ctx.note(reconcile_volume=len(combined))


def _lf_on_retry(ctx: PipelineContext) -> None:
    # Theorem 4.9 guarantees nonempty reserve palettes only w.h.p.;
    # the retry (fresh draws from the same parent stream) converts
    # that to Las Vegas.  The first attempt consumes the stream
    # exactly like a retry-free run, so seeds reproduce their
    # historical outputs.
    ctx["stats"].reserve_retries += 1


#: Theorem 4.10 as a declared pass DAG with a Las Vegas retry edge.
LIST_FOREST_PIPELINE = Pipeline(
    "list_forest",
    [
        Pass(
            "setup", _lf_setup,
            writes=("stats", "empty", "alpha", "eps_prime"),
            description="resolve α and split the ε budget (ε' = ε/10)",
        ),
        Pass(
            "split", _lf_split, deps=("setup",),
            reads=("palettes",), writes=("split", "stats"),
            description="vertex-color-splitting of every palette into "
                        "main Q0 / reserve Q1",
            citation="Theorem 4.9 / Proposition 4.8",
        ),
        Pass(
            "algorithm2", _lf_algorithm2, deps=("split",),
            reads=("split", "alpha"),
            writes=("coloring_0", "leftover", "stats"),
            description="Algorithm 2 on the main palettes colors E0",
            citation="Theorem 4.5",
        ),
        Pass(
            "diameter_reduce", _lf_diameter_reduce, deps=("algorithm2",),
            reads=("coloring_0",),
            writes=("coloring_0", "leftover", "stats"),
            description="depth-cut φ0's deep trees; deletions join the "
                        "leftover",
            citation="Proposition 2.4",
        ),
        Pass(
            "reserve", _lf_reserve, deps=("diameter_reduce",),
            reads=("leftover", "split"), writes=("coloring_1",),
            description="LSFD recolors the leftover from the reserve "
                        "palettes",
            citation="Theorem 2.3",
        ),
        Pass(
            "combine", _lf_combine, deps=("reserve",),
            reads=("coloring_0", "coloring_1"), writes=("result",),
            description="overlay the two phases",
            citation="Proposition 4.8",
        ),
    ],
    description="Theorem 4.10: (1+ε)α list-forest decomposition",
    retry=RetryRule(
        exceptions=(ReservePaletteError,),
        from_pass="split",
        max_attempts=5,
        on_retry=_lf_on_retry,
    ),
)


def list_forest_decomposition(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    alpha: Optional[int] = None,
    splitting: str = "cluster",
    cut_rule: str = "depth_residue",
    reserve_probability: Optional[float] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
) -> ListForestDecompositionResult:
    """Theorem 4.10: (1+ε)α-LFD of a multigraph.

    ``palettes`` must give every edge at least ``⌈(1+ε)α⌉`` colors.
    ``splitting`` chooses the Theorem 4.9 variant: ``"cluster"``
    (α ≥ Ω(log n) regime) or ``"independent"`` (ε²α ≥ Ω(log Δ) regime,
    LLL-based).

    Executes :data:`LIST_FOREST_PIPELINE` under ``schedule``; outputs
    are bit-identical across schedules, and the executed per-pass
    records (including any Las Vegas retries) land in
    ``result.stats["passes"]``.
    """
    counter = ensure_counter(rounds)
    ctx = PipelineContext(
        counter=counter,
        values={
            "graph": graph,
            "palettes": palettes,
            "epsilon": epsilon,
            "alpha": alpha,
            "splitting": splitting,
            "cut_rule": cut_rule,
            "reserve_probability": reserve_probability,
            "rng": make_rng(seed),
            "radius": radius,
            "search_radius": search_radius,
            "backend": backend,
            "workers": workers,
        },
    )
    scheduler = Scheduler(resolve_schedule(graph, schedule), workers)
    result = scheduler.run(LIST_FOREST_PIPELINE, ctx)
    result.stats.passes = ctx.pass_stats
    return result


def _make_splitting(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    mode: str,
    reserve_probability: Optional[float],
    rng,
    counter: RoundCounter,
) -> VertexColorSplitting:
    if mode == "cluster":
        return cluster_correlated_splitting(
            graph, palettes, epsilon, seed=child_rng(rng, "split"), rounds=counter
        )
    if mode == "independent":
        return independent_splitting(
            graph,
            palettes,
            epsilon,
            reserve_probability=reserve_probability,
            seed=child_rng(rng, "split"),
            rounds=counter,
        )
    raise DecompositionError(f"unknown splitting mode {mode!r}")


def _reserve_lsfd(
    graph: MultiGraph,
    leftover: List[int],
    reserve_palettes: Palettes,
    counter: RoundCounter,
    backend: str = "csr",
    workers: int = 0,
) -> Dict[int, int]:
    """Color the leftover edges from their reserve palettes via
    Theorem 2.3 (a star forest is in particular a forest).  The
    H-partition phase inherits the pipeline's backend/workers — the
    leftover subgraph re-resolves per its own size, so small leftovers
    stay serial."""
    if not leftover:
        return {}
    sub = graph.edge_subgraph(leftover)
    pseudo = max(1, exact_pseudoarboricity(sub))
    palettes = {eid: reserve_palettes[eid] for eid in leftover}
    deficient = [eid for eid in leftover if not palettes[eid]]
    if deficient:
        raise ReservePaletteError(
            f"reserve palettes empty for {len(deficient)} leftover edges; "
            "increase palette sizes or epsilon"
        )
    return list_star_forest_decomposition(
        sub, palettes, pseudo, 0.5, counter,
        backend=backend, workers=workers,
    )
