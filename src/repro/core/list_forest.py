"""(1+ε)α list-forest decomposition (Theorem 4.10).

Pipeline:

1. **Split** each edge's palette into ``Q0`` (main) and ``Q1``
   (reserve) with a vertex-color-splitting (Theorem 4.9), so that the
   two phases can be overlaid safely (Proposition 4.8).
2. **Algorithm 2** on ``Q0`` colors the bulk ``E0``; CUT's leftover has
   pseudo-arboricity ``O(ε'α)``.
3. **Diameter reduction** (Proposition 2.4) trims φ0's deep trees,
   producing a second small leftover.
4. **Theorem 2.3 LSFD** recolors all leftover edges from their reserve
   palettes ``Q1`` (stars are forests, so this is a valid LFD part).
5. **Combine** by Proposition 4.8.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DecompositionError, ReservePaletteError
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from ..rng import SeedLike, child_rng, make_rng
from ..decomposition.lsfd import list_star_forest_decomposition
from .algorithm_stats import ListForestStats
from .color_splitting import (
    VertexColorSplitting,
    cluster_correlated_splitting,
    combine_colorings,
    independent_splitting,
)
from .diameter_reduction import reduce_diameter
from .forest_decomposition import algorithm2
from .results import DecompositionResult

Palettes = Dict[int, Sequence[int]]


class ListForestDecompositionResult(DecompositionResult):
    """Final LFD: coloring + accounting.

    Implements the uniform result protocol
    (:class:`~repro.core.results.DecompositionResult`); validates as a
    forest decomposition, plus palette membership at ``level="full"``.
    """

    kind = "forest"

    def __init__(
        self,
        coloring: Dict[int, int],
        rounds: RoundCounter,
        stats: ListForestStats,
        graph: Optional[MultiGraph] = None,
    ) -> None:
        self.coloring = coloring
        self.rounds = rounds
        self.stats = stats
        self.graph = graph


def list_forest_decomposition(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    alpha: Optional[int] = None,
    splitting: str = "cluster",
    cut_rule: str = "depth_residue",
    reserve_probability: Optional[float] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
    backend: str = "auto",
    workers: int = 0,
) -> ListForestDecompositionResult:
    """Theorem 4.10: (1+ε)α-LFD of a multigraph.

    ``palettes`` must give every edge at least ``⌈(1+ε)α⌉`` colors.
    ``splitting`` chooses the Theorem 4.9 variant: ``"cluster"``
    (α ≥ Ω(log n) regime) or ``"independent"`` (ε²α ≥ Ω(log Δ) regime,
    LLL-based).
    """
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    stats = ListForestStats()
    if graph.m == 0:
        return ListForestDecompositionResult({}, counter, stats, graph=graph)
    if alpha is None:
        alpha = exact_arboricity(graph)

    # The paper splits ε very conservatively (ε/1000) so the reserve
    # palettes dominate the leftover's pseudo-arboricity; ε/10 keeps the
    # same inequality direction at practical scales (PaletteError makes
    # any violation loud rather than silent).
    eps_prime = epsilon / 10.0

    # Theorem 4.9 guarantees nonempty reserve palettes for the leftover
    # only w.h.p.; a fresh draw from the parent stream converts that to
    # Las Vegas.  The first attempt consumes the stream exactly like a
    # retry-free run, so seeds reproduce their historical outputs.
    max_attempts = 5
    for attempt in range(max_attempts):
        with counter.phase("color splitting"):
            split = _make_splitting(
                graph, palettes, epsilon, splitting, reserve_probability, rng, counter
            )
        stats.k0 = split.k0
        stats.k1 = split.k1

        with counter.phase("algorithm2"):
            result = algorithm2(
                graph,
                split.palettes_0,
                eps_prime,
                alpha,
                cut_rule=cut_rule,
                radius=radius,
                search_radius=search_radius,
                seed=child_rng(rng, "alg2"),
                rounds=counter,
                backend=backend,
                workers=workers,
            )
        coloring_0 = dict(result.colored)
        leftover = set(result.leftover)
        stats.algorithm2 = result.stats

        with counter.phase("diameter reduction"):
            reduction = reduce_diameter(
                graph,
                coloring_0,
                eps_prime,
                alpha,
                mode="auto",
                seed=child_rng(rng, "diam"),
                rounds=counter,
                backend=backend,
                workers=workers,
            )
        coloring_0 = dict(reduction.kept)
        leftover.update(reduction.deleted)
        stats.leftover_size = len(leftover)

        try:
            with counter.phase("reserve LSFD"):
                coloring_1 = _reserve_lsfd(
                    graph, sorted(leftover), split.palettes_1, counter,
                    backend=backend, workers=workers,
                )
        except ReservePaletteError:
            if attempt == max_attempts - 1:
                raise
            stats.reserve_retries += 1
            continue
        break

    combined = combine_colorings(coloring_0, coloring_1)
    return ListForestDecompositionResult(combined, counter, stats, graph=graph)


def _make_splitting(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    mode: str,
    reserve_probability: Optional[float],
    rng,
    counter: RoundCounter,
) -> VertexColorSplitting:
    if mode == "cluster":
        return cluster_correlated_splitting(
            graph, palettes, epsilon, seed=child_rng(rng, "split"), rounds=counter
        )
    if mode == "independent":
        return independent_splitting(
            graph,
            palettes,
            epsilon,
            reserve_probability=reserve_probability,
            seed=child_rng(rng, "split"),
            rounds=counter,
        )
    raise DecompositionError(f"unknown splitting mode {mode!r}")


def _reserve_lsfd(
    graph: MultiGraph,
    leftover: List[int],
    reserve_palettes: Palettes,
    counter: RoundCounter,
    backend: str = "csr",
    workers: int = 0,
) -> Dict[int, int]:
    """Color the leftover edges from their reserve palettes via
    Theorem 2.3 (a star forest is in particular a forest).  The
    H-partition phase inherits the pipeline's backend/workers — the
    leftover subgraph re-resolves per its own size, so small leftovers
    stay serial."""
    if not leftover:
        return {}
    sub = graph.edge_subgraph(leftover)
    pseudo = max(1, exact_pseudoarboricity(sub))
    palettes = {eid: reserve_palettes[eid] for eid in leftover}
    deficient = [eid for eid in leftover if not palettes[eid]]
    if deficient:
        raise ReservePaletteError(
            f"reserve palettes empty for {len(deficient)} leftover edges; "
            "increase palette sizes or epsilon"
        )
    return list_star_forest_decomposition(
        sub, palettes, pseudo, 0.5, counter,
        backend=backend, workers=workers,
    )
