"""High-level public API.

These wrappers are what downstream users should call; each maps to one
headline result of the paper.  Since the unified-API redesign they are
thin shims over the task registry, and since the pass-pipeline
redesign the dispatch plumbing is *config-first*: every wrapper
accepts ``config=`` directly, and its legacy keyword signature is
funneled through one shim (:func:`_config_from_kwargs`) into a
:class:`~repro.core.config.DecompositionConfig` before dispatching
through :func:`repro.decompose`.  The wrappers, the
:class:`~repro.core.session.Session` workflow, and the CLI therefore
share one code path (and one ``backend=`` / ``schedule=`` seam).
Return shapes are unchanged — result objects where they always were,
``(coloring, bound)`` tuples where they always were — so existing code
and the golden regressions are untouched.  The per-knob keyword
spellings remain supported indefinitely, but new code should prefer
passing ``config=`` (see the deprecation note in ``docs/api.md``).

:func:`describe` prints a task's declared pass DAG — names,
dependencies, and paper citations — without running anything.

For repeated queries against one graph prefer::

    session = repro.Session(graph)
    fd = session.decompose("forest", config)
    orient = session.decompose("orientation", config)   # reuses prep

which pays the graph-prep phase (CSR snapshot, exact arboricity /
pseudoarboricity) once.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter
from ..nashwilliams.arboricity import (
    exact_arboricity,
    exact_forest_decomposition,
)
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from ..rng import SeedLike
from ..decomposition.hpartition import (
    default_threshold,
    h_partition,
)
from .config import DecompositionConfig
from .forest_decomposition import (
    ForestDecompositionResult,
    algorithm2,
)
from .list_forest import ListForestDecompositionResult
from .orientation import Orientation
from .registry import (
    available_backends,
    available_tasks,
    get_task,
    register_backend,
    register_task,
)
from .results import (
    DecompositionResult,
    OrientationResult,
    PseudoforestResult,
)
from .session import Session, decompose
from .star_forest import StarForestResult, two_coloring_star_forests

__all__ = [
    # unified surface
    "decompose",
    "describe",
    "Session",
    "DecompositionConfig",
    "DecompositionResult",
    "register_task",
    "register_backend",
    "available_tasks",
    "available_backends",
    # task wrappers (legacy shapes, registry-backed)
    "forest_decomposition",
    "list_forest_decomposition",
    "star_forest_decomposition",
    "list_star_forest_decomposition",
    "pseudoforest_decomposition",
    "low_outdegree_orientation",
    "barenboim_elkin_forest_decomposition",
    # ground truth + building blocks
    "exact_arboricity",
    "exact_forest_decomposition",
    "exact_pseudoarboricity",
    "algorithm2",
    "two_coloring_star_forests",
    # result classes
    "ForestDecompositionResult",
    "ListForestDecompositionResult",
    "StarForestResult",
    "OrientationResult",
    "PseudoforestResult",
]


def _config_from_kwargs(
    config: Optional[DecompositionConfig] = None,
    **kwargs,
) -> DecompositionConfig:
    """The dispatch shim behind every legacy wrapper signature.

    ``config=`` wins when given (the config-first path — per-knob
    keywords are then ignored); otherwise the legacy keywords build a
    :class:`~repro.core.config.DecompositionConfig`.  Keeping the
    funnel in one place means the wrappers stay signature-compatible
    while the actual dispatch is uniformly config-shaped.
    """
    if config is not None:
        return config
    return DecompositionConfig(**kwargs)


def describe(task: str) -> str:
    """The declared pass DAG of a registered task, as text.

    Lists the passes in canonical (serial) topological order with
    their dependencies, descriptions and paper citations, plus any
    Las Vegas retry rule — without running anything.  Also available
    as ``python -m repro describe <task>``.
    """
    spec = get_task(task)
    lines = [f"task: {spec.name}"]
    if spec.description:
        lines.append(f"  {spec.description}")
    if spec.citation:
        lines.append(f"  [{spec.citation}]")
    if spec.pipeline is None:
        lines.append("  (opaque runner: no declared pass pipeline)")
        return "\n".join(lines)
    return "\n".join(lines) + "\n" + spec.pipeline.describe()


def forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    alpha: Optional[int] = None,
    diameter_mode: Optional[str] = None,
    cut_rule: str = "depth_residue",
    carve_rule: str = "doubling",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> ForestDecompositionResult:
    """(1+ε)α forest decomposition of a multigraph (Theorem 4.6).

    Parameters
    ----------
    graph:
        Any multigraph (no self-loops).
    epsilon:
        Excess-color budget: the decomposition targets ~(1+ε)α forests.
    alpha:
        The arboricity if known (e.g. by construction); computed
        exactly (centralized) when omitted.
    diameter_mode:
        None for unbounded forest diameter; ``"safe"`` for O(log n/ε);
        ``"strong"`` for O(1/ε) (regime α ≥ Ω(log n) per Cor. 2.5);
        ``"auto"`` picks by α.
    cut_rule:
        CUT implementation per Theorem 4.2: ``"depth_residue"`` or
        ``"conditioned_sampling"``.
    carve_rule:
        Ball-growth schedule of the network-decomposition phase:
        ``"doubling"`` (default) or ``"simultaneous"`` (multi-ball
        growth on the wave engine; deterministic for every worker
        count).
    backend:
        Graph substrate: ``"auto"`` (default), ``"dict"`` (reference),
        ``"csr"`` (kernel), ``"sharded"`` (multi-worker peeling with
        ``workers`` threads; csr below n = 50k), or any registered
        backend name.

    Returns a :class:`ForestDecompositionResult` whose ``coloring`` maps
    every edge id to a forest index, with ``colors_used`` and charged
    LOCAL ``rounds``; the result implements the uniform protocol
    (``forests()``, ``coloring_array()``, ``validate()``, ``to_json()``).
    ``schedule`` picks the pass-DAG execution mode (``"auto"`` /
    ``"serial"`` / ``"concurrent"``; outputs identical either way); or
    pass ``config=`` to skip the per-knob keywords entirely.
    """
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, diameter_mode=diameter_mode, cut_rule=cut_rule,
        carve_rule=carve_rule, schedule=schedule,
    )
    return decompose(graph, task="forest", config=config, rounds=rounds)


def list_forest_decomposition(
    graph: MultiGraph,
    palettes: Dict[int, Sequence[int]],
    epsilon: float,
    alpha: Optional[int] = None,
    splitting: str = "cluster",
    cut_rule: str = "depth_residue",
    reserve_probability: Optional[float] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> ListForestDecompositionResult:
    """(1+ε)α list-forest decomposition of a multigraph (Theorem 4.10).

    ``palettes`` must give every edge at least ``⌈(1+ε)α⌉`` colors;
    ``splitting`` chooses the Theorem 4.9 variant (``"cluster"`` or
    ``"independent"``).
    """
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, cut_rule=cut_rule, schedule=schedule,
    )
    return decompose(
        graph, task="list_forest", config=config, rounds=rounds,
        palettes=palettes, splitting=splitting,
        reserve_probability=reserve_probability,
        radius=radius, search_radius=search_radius,
    )


def star_forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.25,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> StarForestResult:
    """(1+O(ε))α star-forest decomposition of a simple graph
    (Theorem 5.4(1); regime α ≥ Ω(√log Δ + log α))."""
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, schedule=schedule,
    )
    return decompose(graph, task="star_forest", config=config, rounds=rounds)


def list_star_forest_decomposition(
    graph: MultiGraph,
    palettes: Dict[int, Sequence[int]],
    epsilon: float = 0.05,
    alpha: Optional[int] = None,
    method: str = "amr",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> StarForestResult:
    """List star-forest decomposition of a simple graph.

    ``method="amr"`` is Theorem 5.4(2) ((1+O(ε))α colors, regime
    α ≥ Ω(log Δ), palettes ≥ α(1+200ε)); ``method="hpartition"`` is the
    Theorem 2.3 fallback ((4+ε)α* colors, any α)."""
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, schedule=schedule,
    )
    return decompose(
        graph, task="list_star_forest", config=config, rounds=rounds,
        palettes=palettes, method=method,
    )


def pseudoforest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> Tuple[Dict[int, int], int]:
    """(1+ε)α pseudoforest decomposition (the Corollary 1.1 companion).

    A k-orientation is exactly a k-pseudoforest decomposition: rank each
    vertex's out-edges and each rank class is a functional graph.
    Returns (coloring, number of pseudoforests)."""
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, schedule=schedule,
    )
    result = decompose(
        graph, task="pseudoforest", config=config, rounds=rounds,
        method=method,
    )
    return result.coloring, result.k


def low_outdegree_orientation(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
    config: Optional[DecompositionConfig] = None,
) -> Tuple[Orientation, int]:
    """A (1+ε)α-orientation (Corollary 1.1); returns (orientation,
    out-degree bound).  ``method`` is ``"augmentation"`` (the paper),
    ``"hpartition"`` (the (2+ε)α* baseline) or ``"exact"`` (flow
    witness ground truth)."""
    config = _config_from_kwargs(
        config,
        epsilon=epsilon, alpha=alpha, seed=seed, backend=backend,
        workers=workers, schedule=schedule,
    )
    result = decompose(
        graph, task="orientation", config=config, rounds=rounds,
        method=method,
    )
    return result.orientation, result.bound


def barenboim_elkin_forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    pseudoarboricity: Optional[int] = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "auto",
    workers: int = 0,
) -> Tuple[Dict[int, int], int]:
    """The (2+ε)α baseline the paper improves on ([BE10] / Theorem 2.1).

    Returns (coloring, number of forests).  The coloring is the
    H-partition t-forest decomposition with t = ⌊(2+ε)α*⌋ (each
    vertex's out-edges get distinct forest labels)."""
    from ..graph.csr import resolve_backend, snapshot_of
    from ..errors import DecompositionError
    from ..local.rounds import ensure_counter

    counter = ensure_counter(rounds)
    if pseudoarboricity is None:
        pseudoarboricity = exact_pseudoarboricity(graph)
    threshold = max(1, default_threshold(pseudoarboricity, epsilon))
    from ..decomposition.hpartition import (
        acyclic_orientation,
        rooted_forests_from_orientation,
    )

    peel_backend = resolve_backend(
        graph, backend, DecompositionError, peeling=True
    )
    snapshot = snapshot_of(graph) if peel_backend != "dict" else None
    partition = h_partition(
        graph, threshold, counter, backend=peel_backend,
        snapshot=snapshot, workers=workers,
    )
    orientation = acyclic_orientation(
        graph, partition, counter, backend=peel_backend, snapshot=snapshot
    )
    forests = rooted_forests_from_orientation(graph, orientation)
    coloring: Dict[int, int] = {}
    for label, eids in enumerate(forests):
        for eid in eids:
            coloring[eid] = label
    return coloring, len([f for f in forests if f])
