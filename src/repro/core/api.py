"""High-level public API.

These wrappers are what downstream users should call; each maps to one
headline result of the paper and returns both the decomposition and its
accounting (colors used, LOCAL rounds charged, diagnostics).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter
from ..nashwilliams.arboricity import (
    exact_arboricity,
    exact_forest_decomposition,
)
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from ..rng import SeedLike
from ..decomposition.hpartition import (
    default_threshold,
    h_partition,
    star_forest_decomposition_via_hpartition,
)
from ..decomposition.lsfd import (
    list_star_forest_decomposition as _lsfd_theorem23,
)
from .forest_decomposition import (
    Algorithm2Result,
    ForestDecompositionResult,
    algorithm2,
    forest_decomposition_algorithm2,
)
from .list_forest import ListForestDecompositionResult, list_forest_decomposition
from .orientation import low_outdegree_orientation
from .star_forest import (
    StarForestResult,
    list_star_forest_decomposition_amr,
    star_forest_decomposition_amr,
    two_coloring_star_forests,
)

__all__ = [
    "forest_decomposition",
    "list_forest_decomposition",
    "star_forest_decomposition",
    "list_star_forest_decomposition",
    "pseudoforest_decomposition",
    "low_outdegree_orientation",
    "barenboim_elkin_forest_decomposition",
    "exact_arboricity",
    "exact_forest_decomposition",
    "exact_pseudoarboricity",
    "algorithm2",
    "two_coloring_star_forests",
]


def forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    alpha: Optional[int] = None,
    diameter_mode: Optional[str] = None,
    cut_rule: str = "depth_residue",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> ForestDecompositionResult:
    """(1+ε)α forest decomposition of a multigraph (Theorem 4.6).

    Parameters
    ----------
    graph:
        Any multigraph (no self-loops).
    epsilon:
        Excess-color budget: the decomposition targets ~(1+ε)α forests.
    alpha:
        The arboricity if known (e.g. by construction); computed
        exactly (centralized) when omitted.
    diameter_mode:
        None for unbounded forest diameter; ``"safe"`` for O(log n/ε);
        ``"strong"`` for O(1/ε) (regime α ≥ Ω(log n) per Cor. 2.5);
        ``"auto"`` picks by α.
    cut_rule:
        CUT implementation per Theorem 4.2: ``"depth_residue"`` or
        ``"conditioned_sampling"``.

    Returns a :class:`ForestDecompositionResult` whose ``coloring`` maps
    every edge id to a forest index, with ``colors_used`` and charged
    LOCAL ``rounds``.
    """
    return forest_decomposition_algorithm2(
        graph,
        epsilon,
        alpha=alpha,
        cut_rule=cut_rule,
        diameter_mode=diameter_mode,
        seed=seed,
        rounds=rounds,
    )


def star_forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.25,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> StarForestResult:
    """(1+O(ε))α star-forest decomposition of a simple graph
    (Theorem 5.4(1); regime α ≥ Ω(√log Δ + log α))."""
    return star_forest_decomposition_amr(
        graph, epsilon, alpha=alpha, seed=seed, rounds=rounds
    )


def list_star_forest_decomposition(
    graph: MultiGraph,
    palettes: Dict[int, Sequence[int]],
    epsilon: float = 0.05,
    alpha: Optional[int] = None,
    method: str = "amr",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> StarForestResult:
    """List star-forest decomposition of a simple graph.

    ``method="amr"`` is Theorem 5.4(2) ((1+O(ε))α colors, regime
    α ≥ Ω(log Δ), palettes ≥ α(1+200ε)); ``method="hpartition"`` is the
    Theorem 2.3 fallback ((4+ε)α* colors, any α)."""
    if method == "amr":
        return list_star_forest_decomposition_amr(
            graph, palettes, epsilon, alpha=alpha, seed=seed, rounds=rounds
        )
    if method == "hpartition":
        counter = rounds if rounds is not None else RoundCounter()
        pseudo = exact_pseudoarboricity(graph)
        coloring = _lsfd_theorem23(
            graph, palettes, max(1, pseudo), 0.5, counter
        )
        colors_used = len(set(coloring.values()))
        from .algorithm_stats import StarForestStats

        return StarForestResult(coloring, colors_used, counter, StarForestStats())
    raise ValueError(f"unknown LSFD method {method!r}")


def pseudoforest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    alpha: Optional[int] = None,
    method: str = "augmentation",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> Tuple[Dict[int, int], int]:
    """(1+ε)α pseudoforest decomposition (the Corollary 1.1 companion).

    A k-orientation is exactly a k-pseudoforest decomposition: rank each
    vertex's out-edges and each rank class is a functional graph.
    Returns (coloring, number of pseudoforests)."""
    from ..nashwilliams.pseudoarboricity import (
        pseudoforest_decomposition_from_orientation,
    )

    orientation, bound = low_outdegree_orientation(
        graph, epsilon, alpha=alpha, method=method, seed=seed, rounds=rounds
    )
    coloring = pseudoforest_decomposition_from_orientation(graph, orientation)
    return coloring, bound


def barenboim_elkin_forest_decomposition(
    graph: MultiGraph,
    epsilon: float = 0.5,
    pseudoarboricity: Optional[int] = None,
    rounds: Optional[RoundCounter] = None,
) -> Tuple[Dict[int, int], int]:
    """The (2+ε)α baseline the paper improves on ([BE10] / Theorem 2.1).

    Returns (coloring, number of forests).  The coloring is the
    H-partition t-forest decomposition with t = ⌊(2+ε)α*⌋ (each
    vertex's out-edges get distinct forest labels)."""
    counter = rounds if rounds is not None else RoundCounter()
    if pseudoarboricity is None:
        pseudoarboricity = exact_pseudoarboricity(graph)
    threshold = max(1, default_threshold(pseudoarboricity, epsilon))
    from ..decomposition.hpartition import (
        acyclic_orientation,
        rooted_forests_from_orientation,
    )
    from ..graph.csr import CSRGraph

    snapshot = CSRGraph.from_multigraph(graph)
    partition = h_partition(graph, threshold, counter, snapshot=snapshot)
    orientation = acyclic_orientation(graph, partition, counter, snapshot=snapshot)
    forests = rooted_forests_from_orientation(graph, orientation)
    coloring: Dict[int, int] = {}
    for label, eids in enumerate(forests):
        for eid in eids:
            coloring[eid] = label
    return coloring, len([f for f in forests if f])
