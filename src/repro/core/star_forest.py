"""Star-forest decompositions for simple graphs (Section 5).

The construction (after Alon–McDiarmid–Reed, strengthened by the
paper): fix a ``t``-orientation, ``t = ⌈(1+ε)α⌉``; every vertex ``v``
draws a color set ``C(v)`` and builds the bipartite graph ``H_v`` with
left nodes the colors, right nodes the out-neighbors ``A(v)``, and an
edge ``(i, u)`` iff ``i ∈ C(v) \\ C(u)`` (and ``i ∈ Q(uv)`` for the
list variant).  A matching ``(i, u) ∈ M_v`` colors edge ``vu`` with
``i``; every color class is a star forest (stars centered at vertices
not holding the color).  Lemma 5.2 (uniform random α-subsets) gives
matchings of size ≥ t − 2εα under a distributed LLL; Lemma 5.3
(independent (1−ε) color retention) gives *perfect* matchings for the
list variant.  Unmatched edges are recolored via Theorem 2.1(3)
(ordinary) — Proposition 5.1 bounds their pseudo-arboricity by the
matching deficit.

Both variants are declared pass DAGs (:data:`STAR_FOREST_PIPELINE`,
:data:`LIST_STAR_FOREST_PIPELINE`).  The per-vertex ``H_v`` matchings
are the natural fan-out unit: each LLL round maps the independent
matchings through ``ctx.fan_out`` (the color-set draws stay in the
single RNG stream, and matchings consume no randomness, so outputs are
bit-identical across schedules and worker counts).

Baselines for Corollary 1.2 are also here:
:func:`two_coloring_star_forests` (the classical ``αstar ≤ 2α``) and
the H-partition ``3t``-SFD re-export.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConvergenceError, DecompositionError, GraphError
from ..graph.csr import resolve_backend
from ..graph.forests import RootedForest, color_classes
from ..graph.matching import hopcroft_karp
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import (
    exact_pseudoarboricity,
    orientation_exists,
)
from ..pipeline import Pass, Pipeline, PipelineContext, Scheduler, resolve_schedule
from ..rng import SeedLike, make_rng
from ..decomposition.hpartition import (
    h_partition,
    star_forest_decomposition_via_hpartition,
)
from .algorithm_stats import StarForestStats
from .results import DecompositionResult

Palettes = Dict[int, Sequence[int]]


class StarForestResult(DecompositionResult):
    """Final SFD/LSFD: coloring + accounting.

    Implements the uniform result protocol
    (:class:`~repro.core.results.DecompositionResult`); validates each
    color class as a star forest.
    """

    kind = "star_forest"

    def __init__(
        self,
        coloring: Dict[int, object],
        colors_used: int,
        rounds: RoundCounter,
        stats: StarForestStats,
        graph: Optional[MultiGraph] = None,
    ) -> None:
        self.coloring = coloring
        self.colors_used = colors_used
        self.rounds = rounds
        self.stats = stats
        self.graph = graph


def _t_orientation(
    graph: MultiGraph,
    t: int,
    rounds: RoundCounter,
) -> Dict[int, int]:
    """A max-out-degree-``t`` orientation.

    Substitutes the [SV19a] CONGEST routine the paper calls; we use the
    exact flow witness and charge the cited O~(log² n / ε²) rounds.
    """
    orientation = orientation_exists(graph, t)
    if orientation is None:
        raise DecompositionError(
            f"no {t}-orientation exists; t below pseudoarboricity"
        )
    n = max(graph.n, 2)
    log_n = math.ceil(math.log2(n + 1))
    rounds.charge(log_n * log_n, "t-orientation ([SV19a] substitute)")
    return orientation


def _build_hv_adjacency(
    colors_v: Sequence[int],
    out_neighbors: Sequence[Optional[int]],
    color_sets: Dict[int, Set[int]],
    palette_for: Optional[Dict[int, Set[int]]],
) -> List[List[int]]:
    """Left-adjacency of H_v: for each color index, the right slots.

    ``out_neighbors`` contains vertex ids and ``None`` dummy slots
    (dummies accept every color — they pad A(v) to exactly t, as in the
    paper's setup).  ``palette_for[u]`` restricts colors allowed on the
    edge to u (list variant); None means unrestricted.
    """
    adjacency: List[List[int]] = []
    for color in colors_v:
        row: List[int] = []
        for slot, u in enumerate(out_neighbors):
            if u is None:
                row.append(slot)
                continue
            if color in color_sets[u]:
                continue
            if palette_for is not None and color not in palette_for[u]:
                continue
            row.append(slot)
        adjacency.append(row)
    return adjacency


def _sf_vertex_matching(
    graph: MultiGraph,
    v: int,
    out_edges: Dict[int, List[int]],
    t: int,
    color_sets: Dict[int, Set[int]],
) -> Tuple[Dict[int, int], int, int]:
    """Match colors to out-edge slots; returns
    ``(slot -> color, deficit, dummy slots)``.

    Slots are indices into ``sorted(out_edges[v])`` plus dummy padding
    to ``t``.  Pure per-vertex work — no shared-state mutation and no
    RNG draws — so the LLL round can fan these out concurrently.
    """
    slots: List[Optional[int]] = []
    for eid in sorted(out_edges[v]):
        slots.append(graph.other_endpoint(eid, v))
    dummies = t - len(slots)
    slots.extend([None] * dummies)
    colors_v = sorted(color_sets[v])
    adjacency = _build_hv_adjacency(colors_v, slots, color_sets, None)
    match_left, _ = hopcroft_karp(adjacency)
    slot_color: Dict[int, int] = {}
    for left_index, slot in match_left.items():
        slot_color[slot] = colors_v[left_index]
    real = len(out_edges[v])
    matched_real = sum(1 for slot in slot_color if slot < real)
    return slot_color, real - matched_real, dummies


# ----------------------------------------------------------------------
# Theorem 5.4(1): ordinary star-forest decomposition, as a pass DAG
# ----------------------------------------------------------------------


def _sf_setup(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    ctx["stats"] = StarForestStats()
    ctx["empty"] = graph.m == 0
    if ctx["empty"]:
        return
    alpha = ctx["alpha"]
    if alpha is None:
        alpha = exact_arboricity(graph)
    ctx["alpha"] = max(alpha, 1)
    ctx["t"] = max(1, math.ceil((1.0 + ctx["epsilon"]) * ctx["alpha"]))


def _sf_orient(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    orientation = _t_orientation(graph, ctx["t"], ctx.counter)
    ctx["stats"].orientation_bound = ctx["t"]
    out_edges: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for eid, tail in orientation.items():
        out_edges[tail].append(eid)
    ctx["out_edges"] = out_edges
    ctx.note(reconcile_volume=len(orientation))


def _sf_sample(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    t = ctx["t"]
    alpha = ctx["alpha"]
    color_space = list(range(t))
    ctx["deficit_budget"] = max(0, math.ceil(2.0 * ctx["epsilon"] * alpha))

    def sample_color_set(rng_) -> Set[int]:
        return set(rng_.sample(color_space, min(alpha, t)))

    ctx["sample_color_set"] = sample_color_set
    ctx["color_sets"] = {
        v: sample_color_set(ctx["rng"]) for v in graph.vertices()
    }
    ctx.counter.charge(1, "C(v) sampling")
    ctx.note(vertices_touched=graph.n)


def _sf_matchings(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    counter = ctx.counter
    stats = ctx["stats"]
    out_edges = ctx["out_edges"]
    t = ctx["t"]
    color_sets = ctx["color_sets"]
    deficit_budget = ctx["deficit_budget"]
    max_lll_rounds = ctx["max_lll_rounds"]
    verts = list(graph.vertices())
    matchings: Dict[int, Dict[int, int]] = {}
    lll_round = 0
    while True:
        results = ctx.fan_out(
            [
                (lambda v=v: _sf_vertex_matching(
                    graph, v, out_edges, t, color_sets
                ))
                for v in verts
            ]
        )
        deficits: Dict[int, int] = {}
        for v, (slot_color, deficit, dummies) in zip(verts, results):
            matchings[v] = slot_color
            deficits[v] = deficit
            stats.dummy_slots += dummies
        counter.charge(1, "H_v matchings")
        bad = [v for v, d in deficits.items() if d > deficit_budget]
        if not bad:
            stats.matching_deficits = sorted(deficits.values())
            break
        lll_round += 1
        stats.lll_rounds = lll_round
        if lll_round > max_lll_rounds:
            # Accept the current sets; excess deficit flows into the
            # leftover, which is recolored anyway — the output stays a
            # valid SFD, only the color count degrades (reported).
            stats.matching_deficits = sorted(deficits.values())
            break
        for v in bad:
            color_sets[v] = ctx["sample_color_set"](ctx["rng"])
        counter.charge(1, "LLL resampling")
    ctx["matchings"] = matchings


def _sf_assemble(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    out_edges = ctx["out_edges"]
    matchings = ctx["matchings"]
    coloring: Dict[int, object] = {}
    leftover: List[int] = []
    for v in graph.vertices():
        ordered = sorted(out_edges[v])
        slot_color = matchings[v]
        for slot, eid in enumerate(ordered):
            if slot in slot_color:
                coloring[eid] = ("amr", slot_color[slot])
            else:
                leftover.append(eid)
    ctx["coloring"] = coloring
    ctx["leftover"] = leftover
    ctx["stats"].leftover_size = len(leftover)
    ctx.note(reconcile_volume=len(coloring) + len(leftover))


def _sf_leftover_recolor(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    with counter.phase("leftover recoloring"):
        _recolor_leftover_stars(
            ctx["graph"], ctx["leftover"], ctx["coloring"], counter,
            backend=ctx["backend"], workers=ctx["workers"],
        )
    ctx.note(reconcile_volume=len(ctx["leftover"]))


def _sf_finalize(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        ctx["result"] = StarForestResult(
            {}, 0, ctx.counter, ctx["stats"], graph=ctx["graph"]
        )
        return
    coloring = ctx["coloring"]
    colors_used = len(set(coloring.values()))
    ctx["result"] = StarForestResult(
        coloring, colors_used, ctx.counter, ctx["stats"],
        graph=ctx["graph"],
    )


#: Theorem 5.4(1) as a declared pass DAG.
STAR_FOREST_PIPELINE = Pipeline(
    "star_forest",
    [
        Pass(
            "setup", _sf_setup,
            writes=("stats", "empty", "alpha", "t"),
            description="resolve α and the t = ⌈(1+ε)α⌉ budget",
        ),
        Pass(
            "orient", _sf_orient, deps=("setup",),
            reads=("t",), writes=("out_edges", "stats"),
            description="exact t-orientation ([SV19a] substitute)",
            citation="Theorem 5.4 setup",
        ),
        Pass(
            "sample", _sf_sample, deps=("orient",),
            writes=("color_sets", "deficit_budget", "sample_color_set"),
            description="uniform random α-subsets C(v)",
            citation="Lemma 5.2",
        ),
        Pass(
            "matchings", _sf_matchings, deps=("sample",),
            reads=("out_edges", "color_sets"), writes=("matchings",),
            description="per-vertex H_v matchings (fan-out unit), "
                        "LLL-resampling vertices whose deficit exceeds "
                        "⌈2εα⌉",
            citation="Lemma 5.2 (distributed LLL)",
        ),
        Pass(
            "assemble", _sf_assemble, deps=("matchings",),
            reads=("matchings", "out_edges"),
            writes=("coloring", "leftover", "stats"),
            description="matched slots become ('amr', i) colors; "
                        "unmatched edges join the leftover",
        ),
        Pass(
            "leftover_recolor", _sf_leftover_recolor, deps=("assemble",),
            reads=("leftover",), writes=("coloring",),
            description="Theorem 2.1(3) recoloring of the leftover "
                        "with fresh ('extra', ...) colors",
            citation="Proposition 5.1 / Theorem 2.1(3)",
        ),
        Pass(
            "finalize", _sf_finalize, deps=("leftover_recolor",),
            reads=("coloring",), writes=("result",),
            description="assemble the StarForestResult",
        ),
    ],
    description="Theorem 5.4(1): (1+O(ε))α star-forest decomposition",
)


def star_forest_decomposition_amr(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 60,
    backend: str = "auto",
    workers: int = 0,
    schedule: str = "auto",
) -> StarForestResult:
    """Theorem 5.4(1): (1+O(ε))α-SFD of a simple graph.

    Colors matched edges via per-vertex H_v matchings with uniformly
    random α-subsets C(v) (Lemma 5.2); vertices whose matching deficit
    exceeds ``⌈2εα⌉`` are resampled (distributed LLL); the unmatched
    leftover is recolored with fresh colors via Theorem 2.1(3) —
    ``backend``/``workers`` select that recoloring pass's peeling
    substrate (the matching phase itself is per-vertex work).

    Executes :data:`STAR_FOREST_PIPELINE` under ``schedule``; outputs
    are bit-identical across schedules, and the executed per-pass
    records land in ``result.stats["passes"]``.
    """
    if not graph.is_simple():
        raise GraphError("Section 5 star-forest decomposition needs a simple graph")
    counter = ensure_counter(rounds)
    ctx = PipelineContext(
        counter=counter,
        values={
            "graph": graph,
            "epsilon": epsilon,
            "alpha": alpha,
            "rng": make_rng(seed),
            "max_lll_rounds": max_lll_rounds,
            "backend": backend,
            "workers": workers,
        },
    )
    scheduler = Scheduler(resolve_schedule(graph, schedule), workers)
    result = scheduler.run(STAR_FOREST_PIPELINE, ctx)
    result.stats.passes = ctx.pass_stats
    return result


def _recolor_leftover_stars(
    graph: MultiGraph,
    leftover: List[int],
    coloring: Dict[int, object],
    counter: RoundCounter,
    backend: str = "auto",
    workers: int = 0,
) -> None:
    """Theorem 2.1(3) on the leftover subgraph, with fresh color names."""
    if not leftover:
        return
    sub = graph.edge_subgraph(leftover)
    pseudo = max(1, exact_pseudoarboricity(sub))
    # The leftover is a small subgraph; re-resolve so "sharded" (or
    # "auto") picks the right substrate for *its* size, and keep the
    # dict reference path out of this kernel-only helper.
    peel = resolve_backend(sub, backend, DecompositionError, peeling=True)
    if peel == "dict":
        peel = "csr"
    partition = h_partition(
        sub, max(1, math.floor(2.5 * pseudo)), counter,
        backend=peel, workers=workers,
    )
    star = star_forest_decomposition_via_hpartition(sub, partition, counter)
    for eid, label in star.items():
        coloring[eid] = ("extra", label)


# ----------------------------------------------------------------------
# Theorem 5.4(2): list star-forest decomposition, as a pass DAG
# ----------------------------------------------------------------------


def _lsf_vertex_matching(
    graph: MultiGraph,
    v: int,
    out_edges: Dict[int, List[int]],
    color_sets: Dict[int, Set[int]],
    palette_sets: Dict[int, Set[int]],
) -> Tuple[Dict[int, int], int]:
    """List-variant H_v matching (palette-restricted, no dummies);
    pure per-vertex work, fanned out per LLL round."""
    ordered = sorted(out_edges[v])
    slots: List[Optional[int]] = [
        graph.other_endpoint(eid, v) for eid in ordered
    ]
    palette_for = {
        graph.other_endpoint(eid, v): palette_sets[eid] for eid in ordered
    }
    colors_v = sorted(color_sets[v])
    adjacency = _build_hv_adjacency(colors_v, slots, color_sets, palette_for)
    match_left, _ = hopcroft_karp(adjacency)
    slot_color: Dict[int, int] = {}
    for left_index, slot in match_left.items():
        slot_color[slot] = colors_v[left_index]
    return slot_color, len(ordered) - len(slot_color)


def _lsf_setup(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    ctx["stats"] = StarForestStats()
    ctx["empty"] = graph.m == 0
    if ctx["empty"]:
        return
    alpha = ctx["alpha"]
    if alpha is None:
        alpha = exact_arboricity(graph)
    ctx["alpha"] = max(alpha, 1)
    ctx["t"] = max(1, math.ceil((1.0 + ctx["epsilon"]) * ctx["alpha"]))


def _lsf_sample(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    palettes = ctx["palettes"]
    color_space: Set[int] = set()
    for palette in palettes.values():
        color_space.update(palette)
    space = sorted(color_space)
    keep_probability = 1.0 - ctx["epsilon"]

    def sample_color_set(rng_) -> Set[int]:
        return {c for c in space if rng_.random() < keep_probability}

    ctx["sample_color_set"] = sample_color_set
    ctx["color_sets"] = {
        v: sample_color_set(ctx["rng"]) for v in graph.vertices()
    }
    ctx.counter.charge(1, "C(v) sampling")
    ctx["palette_sets"] = {
        eid: set(palette) for eid, palette in palettes.items()
    }
    ctx.note(vertices_touched=graph.n)


def _lsf_matchings(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    graph = ctx["graph"]
    counter = ctx.counter
    stats = ctx["stats"]
    out_edges = ctx["out_edges"]
    color_sets = ctx["color_sets"]
    palette_sets = ctx["palette_sets"]
    max_lll_rounds = ctx["max_lll_rounds"]
    verts = list(graph.vertices())
    matchings: Dict[int, Dict[int, int]] = {}
    for lll_round in range(max_lll_rounds + 1):
        results = ctx.fan_out(
            [
                (lambda v=v: _lsf_vertex_matching(
                    graph, v, out_edges, color_sets, palette_sets
                ))
                for v in verts
            ]
        )
        deficits: Dict[int, int] = {}
        for v, (slot_color, deficit) in zip(verts, results):
            matchings[v] = slot_color
            deficits[v] = deficit
        counter.charge(1, "H_v matchings")
        bad = [v for v, d in deficits.items() if d > 0]
        if not bad:
            stats.matching_deficits = sorted(deficits.values())
            stats.lll_rounds = lll_round
            break
        for v in bad:
            color_sets[v] = ctx["sample_color_set"](ctx["rng"])
        counter.charge(1, "LLL resampling")
    else:
        raise ConvergenceError(
            "LSFD matchings did not become perfect; the Lemma 5.3 regime "
            "needs alpha >= Omega(log Delta) and palettes of size "
            "alpha(1 + 200 epsilon)"
        )
    ctx["matchings"] = matchings


def _lsf_finalize(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        ctx["result"] = StarForestResult(
            {}, 0, ctx.counter, ctx["stats"], graph=ctx["graph"]
        )
        return
    graph = ctx["graph"]
    out_edges = ctx["out_edges"]
    matchings = ctx["matchings"]
    coloring: Dict[int, object] = {}
    for v in graph.vertices():
        ordered = sorted(out_edges[v])
        slot_color = matchings[v]
        for slot, eid in enumerate(ordered):
            coloring[eid] = slot_color[slot]
    colors_used = len(set(coloring.values()))
    ctx["result"] = StarForestResult(
        coloring, colors_used, ctx.counter, ctx["stats"],
        graph=ctx["graph"],
    )
    ctx.note(reconcile_volume=len(coloring))


#: Theorem 5.4(2) as a declared pass DAG (shares the orient pass shape
#: with the ordinary variant; matchings must be perfect, so there is no
#: leftover stage).
LIST_STAR_FOREST_PIPELINE = Pipeline(
    "list_star_forest",
    [
        Pass(
            "setup", _lsf_setup,
            writes=("stats", "empty", "alpha", "t"),
            description="resolve α and the t = ⌈(1+ε)α⌉ budget",
        ),
        Pass(
            "orient", _sf_orient, deps=("setup",),
            reads=("t",), writes=("out_edges", "stats"),
            description="exact t-orientation ([SV19a] substitute)",
            citation="Theorem 5.4 setup",
        ),
        Pass(
            "sample", _lsf_sample, deps=("orient",),
            reads=("palettes",),
            writes=("color_sets", "palette_sets", "sample_color_set"),
            description="independent (1−ε) color retention per vertex",
            citation="Lemma 5.3",
        ),
        Pass(
            "matchings", _lsf_matchings, deps=("sample",),
            reads=("out_edges", "color_sets", "palette_sets"),
            writes=("matchings",),
            description="per-vertex H_v matchings (fan-out unit); "
                        "must become perfect or ConvergenceError",
            citation="Lemma 5.3 (distributed LLL)",
        ),
        Pass(
            "finalize", _lsf_finalize, deps=("matchings",),
            reads=("matchings", "out_edges"), writes=("result",),
            description="matched slots become palette colors",
        ),
    ],
    description="Theorem 5.4(2): (1+O(ε))α list star-forest "
                "decomposition",
)


def list_star_forest_decomposition_amr(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 200,
    schedule: str = "auto",
) -> StarForestResult:
    """Theorem 5.4(2): (1+O(ε))α-LSFD of a simple graph.

    ``C(u)`` keeps each color independently with probability ``1 - ε``
    (Lemma 5.3); success requires *perfect* matchings in every H_v, so
    non-convergence raises :class:`ConvergenceError` (the list variant
    has no leftover to absorb deficits; Lemma 5.3's regime is
    α ≥ Ω(log Δ) with palettes of size α(1+200ε)).

    Executes :data:`LIST_STAR_FOREST_PIPELINE` under ``schedule``;
    outputs are bit-identical across schedules.
    """
    if not graph.is_simple():
        raise GraphError("Section 5 star-forest decomposition needs a simple graph")
    counter = ensure_counter(rounds)
    ctx = PipelineContext(
        counter=counter,
        values={
            "graph": graph,
            "palettes": palettes,
            "epsilon": epsilon,
            "alpha": alpha,
            "rng": make_rng(seed),
            "max_lll_rounds": max_lll_rounds,
        },
    )
    scheduler = Scheduler(resolve_schedule(graph, schedule), 0)
    result = scheduler.run(LIST_STAR_FOREST_PIPELINE, ctx)
    result.stats.passes = ctx.pass_stats
    return result


# ----------------------------------------------------------------------
# Baselines (Corollary 1.2 context)
# ----------------------------------------------------------------------


def two_coloring_star_forests(
    graph: MultiGraph,
    forest_coloring: Dict[int, int],
    rounds: Optional[RoundCounter] = None,
) -> Dict[int, Tuple[int, int]]:
    """The classical ``αstar ≤ 2α`` construction: split every forest of
    a forest decomposition by the depth parity of the parent endpoint."""
    counter = ensure_counter(rounds)
    coloring: Dict[int, Tuple[int, int]] = {}
    for color, eids in sorted(color_classes(forest_coloring).items()):
        forest = RootedForest(graph, eids)
        even, odd = forest.depth_parity_split()
        for eid in even:
            coloring[eid] = (color, 0)
        for eid in odd:
            coloring[eid] = (color, 1)
        counter.charge(
            2 * max(1, forest.max_depth()), "depth parity labelling"
        )
    return coloring
