"""Star-forest decompositions for simple graphs (Section 5).

The construction (after Alon–McDiarmid–Reed, strengthened by the
paper): fix a ``t``-orientation, ``t = ⌈(1+ε)α⌉``; every vertex ``v``
draws a color set ``C(v)`` and builds the bipartite graph ``H_v`` with
left nodes the colors, right nodes the out-neighbors ``A(v)``, and an
edge ``(i, u)`` iff ``i ∈ C(v) \\ C(u)`` (and ``i ∈ Q(uv)`` for the
list variant).  A matching ``(i, u) ∈ M_v`` colors edge ``vu`` with
``i``; every color class is a star forest (stars centered at vertices
not holding the color).  Lemma 5.2 (uniform random α-subsets) gives
matchings of size ≥ t − 2εα under a distributed LLL; Lemma 5.3
(independent (1−ε) color retention) gives *perfect* matchings for the
list variant.  Unmatched edges are recolored via Theorem 2.1(3)
(ordinary) — Proposition 5.1 bounds their pseudo-arboricity by the
matching deficit.

Baselines for Corollary 1.2 are also here:
:func:`two_coloring_star_forests` (the classical ``αstar ≤ 2α``) and
the H-partition ``3t``-SFD re-export.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConvergenceError, DecompositionError, GraphError
from ..graph.csr import resolve_backend
from ..graph.forests import RootedForest, color_classes
from ..graph.matching import hopcroft_karp
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import (
    exact_pseudoarboricity,
    orientation_exists,
)
from ..rng import SeedLike, child_rng, make_rng
from ..decomposition.hpartition import (
    h_partition,
    star_forest_decomposition_via_hpartition,
)
from .algorithm_stats import StarForestStats
from .results import DecompositionResult

Palettes = Dict[int, Sequence[int]]


class StarForestResult(DecompositionResult):
    """Final SFD/LSFD: coloring + accounting.

    Implements the uniform result protocol
    (:class:`~repro.core.results.DecompositionResult`); validates each
    color class as a star forest.
    """

    kind = "star_forest"

    def __init__(
        self,
        coloring: Dict[int, object],
        colors_used: int,
        rounds: RoundCounter,
        stats: StarForestStats,
        graph: Optional[MultiGraph] = None,
    ) -> None:
        self.coloring = coloring
        self.colors_used = colors_used
        self.rounds = rounds
        self.stats = stats
        self.graph = graph


def _t_orientation(
    graph: MultiGraph,
    t: int,
    rounds: RoundCounter,
) -> Dict[int, int]:
    """A max-out-degree-``t`` orientation.

    Substitutes the [SV19a] CONGEST routine the paper calls; we use the
    exact flow witness and charge the cited O~(log² n / ε²) rounds.
    """
    orientation = orientation_exists(graph, t)
    if orientation is None:
        raise DecompositionError(
            f"no {t}-orientation exists; t below pseudoarboricity"
        )
    n = max(graph.n, 2)
    log_n = math.ceil(math.log2(n + 1))
    rounds.charge(log_n * log_n, "t-orientation ([SV19a] substitute)")
    return orientation


def _build_hv_adjacency(
    colors_v: Sequence[int],
    out_neighbors: Sequence[Optional[int]],
    color_sets: Dict[int, Set[int]],
    palette_for: Optional[Dict[int, Set[int]]],
) -> List[List[int]]:
    """Left-adjacency of H_v: for each color index, the right slots.

    ``out_neighbors`` contains vertex ids and ``None`` dummy slots
    (dummies accept every color — they pad A(v) to exactly t, as in the
    paper's setup).  ``palette_for[u]`` restricts colors allowed on the
    edge to u (list variant); None means unrestricted.
    """
    adjacency: List[List[int]] = []
    for color in colors_v:
        row: List[int] = []
        for slot, u in enumerate(out_neighbors):
            if u is None:
                row.append(slot)
                continue
            if color in color_sets[u]:
                continue
            if palette_for is not None and color not in palette_for[u]:
                continue
            row.append(slot)
        adjacency.append(row)
    return adjacency


def star_forest_decomposition_amr(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 60,
    backend: str = "auto",
    workers: int = 0,
) -> StarForestResult:
    """Theorem 5.4(1): (1+O(ε))α-SFD of a simple graph.

    Colors matched edges via per-vertex H_v matchings with uniformly
    random α-subsets C(v) (Lemma 5.2); vertices whose matching deficit
    exceeds ``⌈2εα⌉`` are resampled (distributed LLL); the unmatched
    leftover is recolored with fresh colors via Theorem 2.1(3) —
    ``backend``/``workers`` select that recoloring pass's peeling
    substrate (the matching phase itself is per-vertex work).
    """
    if not graph.is_simple():
        raise GraphError("Section 5 star-forest decomposition needs a simple graph")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    stats = StarForestStats()
    if graph.m == 0:
        return StarForestResult({}, 0, counter, stats, graph=graph)
    if alpha is None:
        alpha = exact_arboricity(graph)
    alpha = max(alpha, 1)

    t = max(1, math.ceil((1.0 + epsilon) * alpha))
    orientation = _t_orientation(graph, t, counter)
    stats.orientation_bound = t
    out_edges: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for eid, tail in orientation.items():
        out_edges[tail].append(eid)

    color_space = list(range(t))
    deficit_budget = max(0, math.ceil(2.0 * epsilon * alpha))

    def sample_color_set(rng_) -> Set[int]:
        return set(rng_.sample(color_space, min(alpha, t)))

    color_sets: Dict[int, Set[int]] = {
        v: sample_color_set(rng) for v in graph.vertices()
    }
    counter.charge(1, "C(v) sampling")

    matchings: Dict[int, Dict[int, int]] = {}

    def vertex_matching(v: int) -> Tuple[Dict[int, int], int]:
        """Match colors to out-edge slots; returns (slot->color, deficit).

        Slots are indices into out_edges[v] plus dummy padding to t.
        """
        slots: List[Optional[int]] = []
        for eid in sorted(out_edges[v]):
            slots.append(graph.other_endpoint(eid, v))
        stats.dummy_slots += t - len(slots)
        slots.extend([None] * (t - len(slots)))
        colors_v = sorted(color_sets[v])
        adjacency = _build_hv_adjacency(colors_v, slots, color_sets, None)
        match_left, _ = hopcroft_karp(adjacency)
        slot_color: Dict[int, int] = {}
        for left_index, slot in match_left.items():
            slot_color[slot] = colors_v[left_index]
        real = len(out_edges[v])
        matched_real = sum(1 for slot in slot_color if slot < real)
        return slot_color, real - matched_real

    lll_round = 0
    while True:
        deficits: Dict[int, int] = {}
        for v in graph.vertices():
            slot_color, deficit = vertex_matching(v)
            matchings[v] = slot_color
            deficits[v] = deficit
        counter.charge(1, "H_v matchings")
        bad = [v for v, d in deficits.items() if d > deficit_budget]
        if not bad:
            stats.matching_deficits = sorted(deficits.values())
            break
        lll_round += 1
        stats.lll_rounds = lll_round
        if lll_round > max_lll_rounds:
            # Accept the current sets; excess deficit flows into the
            # leftover, which is recolored anyway — the output stays a
            # valid SFD, only the color count degrades (reported).
            stats.matching_deficits = sorted(deficits.values())
            break
        for v in bad:
            color_sets[v] = sample_color_set(rng)
        counter.charge(1, "LLL resampling")

    coloring: Dict[int, object] = {}
    leftover: List[int] = []
    for v in graph.vertices():
        ordered = sorted(out_edges[v])
        slot_color = matchings[v]
        for slot, eid in enumerate(ordered):
            if slot in slot_color:
                coloring[eid] = ("amr", slot_color[slot])
            else:
                leftover.append(eid)
    stats.leftover_size = len(leftover)

    with counter.phase("leftover recoloring"):
        _recolor_leftover_stars(
            graph, leftover, coloring, counter,
            backend=backend, workers=workers,
        )

    colors_used = len(set(coloring.values()))
    return StarForestResult(coloring, colors_used, counter, stats, graph=graph)


def _recolor_leftover_stars(
    graph: MultiGraph,
    leftover: List[int],
    coloring: Dict[int, object],
    counter: RoundCounter,
    backend: str = "auto",
    workers: int = 0,
) -> None:
    """Theorem 2.1(3) on the leftover subgraph, with fresh color names."""
    if not leftover:
        return
    sub = graph.edge_subgraph(leftover)
    pseudo = max(1, exact_pseudoarboricity(sub))
    # The leftover is a small subgraph; re-resolve so "sharded" (or
    # "auto") picks the right substrate for *its* size, and keep the
    # dict reference path out of this kernel-only helper.
    peel = resolve_backend(sub, backend, DecompositionError, peeling=True)
    if peel == "dict":
        peel = "csr"
    partition = h_partition(
        sub, max(1, math.floor(2.5 * pseudo)), counter,
        backend=peel, workers=workers,
    )
    star = star_forest_decomposition_via_hpartition(sub, partition, counter)
    for eid, label in star.items():
        coloring[eid] = ("extra", label)


def list_star_forest_decomposition_amr(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    alpha: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 200,
) -> StarForestResult:
    """Theorem 5.4(2): (1+O(ε))α-LSFD of a simple graph.

    ``C(u)`` keeps each color independently with probability ``1 - ε``
    (Lemma 5.3); success requires *perfect* matchings in every H_v, so
    non-convergence raises :class:`ConvergenceError` (the list variant
    has no leftover to absorb deficits; Lemma 5.3's regime is
    α ≥ Ω(log Δ) with palettes of size α(1+200ε)).
    """
    if not graph.is_simple():
        raise GraphError("Section 5 star-forest decomposition needs a simple graph")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    stats = StarForestStats()
    if graph.m == 0:
        return StarForestResult({}, 0, counter, stats, graph=graph)
    if alpha is None:
        alpha = exact_arboricity(graph)
    alpha = max(alpha, 1)

    t = max(1, math.ceil((1.0 + epsilon) * alpha))
    orientation = _t_orientation(graph, t, counter)
    stats.orientation_bound = t
    out_edges: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for eid, tail in orientation.items():
        out_edges[tail].append(eid)

    color_space: Set[int] = set()
    for palette in palettes.values():
        color_space.update(palette)
    space = sorted(color_space)
    keep_probability = 1.0 - epsilon

    def sample_color_set(rng_) -> Set[int]:
        return {c for c in space if rng_.random() < keep_probability}

    color_sets: Dict[int, Set[int]] = {
        v: sample_color_set(rng) for v in graph.vertices()
    }
    counter.charge(1, "C(v) sampling")

    palette_sets: Dict[int, Set[int]] = {
        eid: set(palette) for eid, palette in palettes.items()
    }

    def vertex_matching(v: int) -> Tuple[Dict[int, int], int]:
        ordered = sorted(out_edges[v])
        slots: List[Optional[int]] = [
            graph.other_endpoint(eid, v) for eid in ordered
        ]
        palette_for = {
            graph.other_endpoint(eid, v): palette_sets[eid] for eid in ordered
        }
        colors_v = sorted(color_sets[v])
        adjacency = _build_hv_adjacency(colors_v, slots, color_sets, palette_for)
        match_left, _ = hopcroft_karp(adjacency)
        slot_color: Dict[int, int] = {}
        for left_index, slot in match_left.items():
            slot_color[slot] = colors_v[left_index]
        return slot_color, len(ordered) - len(slot_color)

    matchings: Dict[int, Dict[int, int]] = {}
    for lll_round in range(max_lll_rounds + 1):
        deficits: Dict[int, int] = {}
        for v in graph.vertices():
            slot_color, deficit = vertex_matching(v)
            matchings[v] = slot_color
            deficits[v] = deficit
        counter.charge(1, "H_v matchings")
        bad = [v for v, d in deficits.items() if d > 0]
        if not bad:
            stats.matching_deficits = sorted(deficits.values())
            stats.lll_rounds = lll_round
            break
        for v in bad:
            color_sets[v] = sample_color_set(rng)
        counter.charge(1, "LLL resampling")
    else:
        raise ConvergenceError(
            "LSFD matchings did not become perfect; the Lemma 5.3 regime "
            "needs alpha >= Omega(log Delta) and palettes of size "
            "alpha(1 + 200 epsilon)"
        )

    coloring: Dict[int, object] = {}
    for v in graph.vertices():
        ordered = sorted(out_edges[v])
        slot_color = matchings[v]
        for slot, eid in enumerate(ordered):
            coloring[eid] = slot_color[slot]

    colors_used = len(set(coloring.values()))
    return StarForestResult(coloring, colors_used, counter, stats, graph=graph)


# ----------------------------------------------------------------------
# Baselines (Corollary 1.2 context)
# ----------------------------------------------------------------------


def two_coloring_star_forests(
    graph: MultiGraph,
    forest_coloring: Dict[int, int],
    rounds: Optional[RoundCounter] = None,
) -> Dict[int, Tuple[int, int]]:
    """The classical ``αstar ≤ 2α`` construction: split every forest of
    a forest decomposition by the depth parity of the parent endpoint."""
    counter = ensure_counter(rounds)
    coloring: Dict[int, Tuple[int, int]] = {}
    for color, eids in sorted(color_classes(forest_coloring).items()):
        forest = RootedForest(graph, eids)
        even, odd = forest.depth_parity_split()
        for eid in even:
            coloring[eid] = (color, 0)
        for eid in odd:
            coloring[eid] = (color, 1)
        counter.charge(
            2 * max(1, forest.max_depth()), "depth parity labelling"
        )
    return coloring
