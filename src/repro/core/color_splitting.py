"""Vertex-color-splitting (Definition 4.7 / Theorem 4.9).

To recombine list palettes after Algorithm 2, each vertex partitions
the color space into ``C_{v,0} ⊔ C_{v,1}``; edge palettes split into
``Q_i(uv) = Q(uv) ∩ C_{u,i} ∩ C_{v,i}``.  Proposition 4.8 then lets two
decompositions — one on each induced palette family — be overlaid
without creating monochromatic cycles, because no color can serve a
vertex on both sides.

Theorem 4.9 gives two randomized constructions:

1. **Cluster-correlated** (α ≥ Ω(log n)): per color, an MPX partial
   network decomposition correlates nearby vertices' side choices, so
   an edge's endpoints usually agree; Chernoff + union bound give
   ``k0 ≥ (1+ε/2)α`` and ``k1 ≥ εα/20`` w.h.p.
2. **Independent + LLL** (ε²α ≥ Ω(log Δ)): each (vertex, color) picks
   side 1 with probability ε/10 independently; the per-edge bad events
   are handled by Moser–Tardos.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConvergenceError, DecompositionError
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..rng import SeedLike, child_rng, make_rng
from ..decomposition.network_decomposition import partial_network_decomposition

Palettes = Dict[int, Sequence[int]]


class VertexColorSplitting:
    """Per-vertex color partitions plus the induced edge palettes."""

    def __init__(
        self,
        side_of: Dict[Tuple[int, int], int],
        palettes_0: Palettes,
        palettes_1: Palettes,
    ) -> None:
        self._side_of = side_of  # (vertex, color) -> 0 | 1
        self.palettes_0 = palettes_0
        self.palettes_1 = palettes_1

    def side(self, vertex: int, color: int) -> int:
        return self._side_of.get((vertex, color), 0)

    @property
    def k0(self) -> int:
        return min((len(p) for p in self.palettes_0.values()), default=0)

    @property
    def k1(self) -> int:
        return min((len(p) for p in self.palettes_1.values()), default=0)


def _induced_palettes(
    graph: MultiGraph,
    palettes: Palettes,
    side_of: Dict[Tuple[int, int], int],
) -> Tuple[Palettes, Palettes]:
    palettes_0: Palettes = {}
    palettes_1: Palettes = {}
    for eid, u, v in graph.edges():
        q0: List[int] = []
        q1: List[int] = []
        for color in palettes[eid]:
            su = side_of.get((u, color), 0)
            sv = side_of.get((v, color), 0)
            if su == 0 and sv == 0:
                q0.append(color)
            elif su == 1 and sv == 1:
                q1.append(color)
        palettes_0[eid] = q0
        palettes_1[eid] = q1
    return palettes_0, palettes_1


def cluster_correlated_splitting(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> VertexColorSplitting:
    """Theorem 4.9(1): per color, an MPX clustering with β = ε/10 and a
    per-cluster Bernoulli(1-ε/10) coin choosing side 0."""
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    beta = max(1e-6, min(1.0, epsilon / 10.0))
    colors: Set[int] = set()
    for palette in palettes.values():
        colors.update(palette)

    side_of: Dict[Tuple[int, int], int] = {}
    for color in sorted(colors):
        heads = partial_network_decomposition(
            graph, beta, seed=child_rng(rng, f"mpx-{color}"), rounds=counter
        )
        cluster_side: Dict[int, int] = {}
        for vertex in graph.vertices():
            head = heads[vertex]
            if head not in cluster_side:
                cluster_side[head] = 0 if rng.random() < 1.0 - epsilon / 10.0 else 1
            if cluster_side[head] == 1:
                side_of[(vertex, color)] = 1
    palettes_0, palettes_1 = _induced_palettes(graph, palettes, side_of)
    return VertexColorSplitting(side_of, palettes_0, palettes_1)


def independent_splitting(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    min_k0: Optional[int] = None,
    min_k1: Optional[int] = None,
    reserve_probability: Optional[float] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    max_rounds: int = 200,
) -> VertexColorSplitting:
    """Theorem 4.9(2): independent side choices with Moser–Tardos
    resampling of the endpoints of deficient edges.

    ``min_k0`` / ``min_k1`` are the per-edge size floors to enforce
    (defaults: the theorem's (1+ε/2)α-style floors scaled from the
    smallest input palette: k0 ≥ (1 - ε/5)|Q|, k1 ≥ ε²|Q|/200).
    ``reserve_probability`` overrides the paper's per-(vertex, color)
    side-1 probability ε/10; the theorem's regime ε²α ≥ Ω(log Δ) makes
    the default viable only for large palettes, so callers at small
    scale may pass a larger value (both floors are enforced either
    way).
    """
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    p1 = reserve_probability if reserve_probability is not None else epsilon / 10.0
    if not (0.0 < p1 < 1.0):
        raise DecompositionError(
            f"reserve probability must be in (0, 1), got {p1}"
        )
    min_palette = min((len(p) for p in palettes.values()), default=0)
    if min_k0 is None:
        # Mean (1-p1)^2 |Q| minus a 3-sigma margin: at the theorem's
        # parameters (p1 = ε/10, |Q| = (1+ε)α, ε²α >> 1) this is the
        # (1+ε/2)α floor; at small palettes it stays satisfiable.
        mean0 = ((1.0 - p1) ** 2) * min_palette
        min_k0 = max(1, math.floor(mean0 - 3.0 * math.sqrt(min_palette)))
    if min_k1 is None:
        min_k1 = max(1, math.floor((p1 ** 2) * min_palette / 2.0))

    colors_at: Dict[int, Set[int]] = {v: set() for v in graph.vertices()}
    for eid, u, v in graph.edges():
        for color in palettes[eid]:
            colors_at[u].add(color)
            colors_at[v].add(color)

    side_of: Dict[Tuple[int, int], int] = {}
    for vertex in graph.vertices():
        for color in colors_at[vertex]:
            side_of[(vertex, color)] = 1 if rng.random() < p1 else 0

    def deficient_edges() -> List[int]:
        bad = []
        for eid, u, v in graph.edges():
            q0 = q1 = 0
            for color in palettes[eid]:
                su = side_of.get((u, color), 0)
                sv = side_of.get((v, color), 0)
                if su == 0 and sv == 0:
                    q0 += 1
                elif su == 1 and sv == 1:
                    q1 += 1
            if q0 < min_k0 or q1 < min_k1:
                bad.append(eid)
        return bad

    for _iteration in range(max_rounds):
        bad = deficient_edges()
        counter.charge(1, "splitting LLL round")
        if not bad:
            palettes_0, palettes_1 = _induced_palettes(graph, palettes, side_of)
            return VertexColorSplitting(side_of, palettes_0, palettes_1)
        resample: Set[int] = set()
        for eid in bad:
            u, v = graph.endpoints(eid)
            resample.add(u)
            resample.add(v)
        for vertex in resample:
            for color in colors_at[vertex]:
                side_of[(vertex, color)] = 1 if rng.random() < p1 else 0

    raise ConvergenceError(
        f"color splitting did not satisfy k0>={min_k0}, k1>={min_k1} "
        f"within {max_rounds} resampling rounds"
    )


def combine_colorings(
    coloring_0: Dict[int, int], coloring_1: Dict[int, int]
) -> Dict[int, int]:
    """Proposition 4.8: overlay two disjoint-support colorings."""
    overlap = set(coloring_0) & set(coloring_1)
    if overlap:
        raise DecompositionError(
            f"colorings overlap on {len(overlap)} edges (e.g. {sorted(overlap)[:4]})"
        )
    combined = dict(coloring_0)
    combined.update(coloring_1)
    return combined
