"""Snapshot-reusing sessions and the :func:`decompose` dispatcher.

The production story of this library is *repeated* decomposition
queries against one graph: decide a forest decomposition, then an
orientation, then a star-forest schedule, sweep epsilon for a latency
budget, ...  Before :class:`Session`, every call re-paid graph prep —
the CSR snapshot and, far worse, the exact arboricity /
pseudoarboricity ground truth (Gabow–Westermann matroid machinery) —
because each wrapper was a standalone function.

A ``Session(graph)`` owns that shared state:

* the cached CSR snapshot (delegating to
  :func:`~repro.graph.csr.snapshot_of`, so the cache is shared with
  every internal kernel path);
* memoized exact arboricity and pseudoarboricity;
* per-color sub-CSR adjacency extractions (:meth:`Session.sub_csr`),
  the sharding handle for color-class passes (digest-keyed,
  LRU-bounded);
* the :class:`~repro.parallel.plan.ShardPlan` the wave-engine
  backends consume (:meth:`Session.shard_plan`), plus
  :meth:`Session.wave_engine` handing out the shared
  :class:`~repro.parallel.engine.WaveEngine` over it (pool stats show
  up in :meth:`Session.cache_info` under ``"worker_pools"``);

all keyed by the graph's mutation fingerprint, so mutating the graph
transparently invalidates everything and N queries on an unchanged
graph pay prep once (see ``bench_session`` in
``benchmarks/bench_kernel.py`` for the measured effect).

Dispatch goes through the task registry: ``session.decompose(task=...)``
looks the task up, resolves the config (task-default epsilon, memoized
alpha, backend substrate), runs it, binds the graph/config to the
result, and optionally validates per ``config.validation``.  The
module-level :func:`decompose` is the one-shot convenience that makes a
throwaway session.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from ..errors import DecompositionError, GraphError, PaletteError, ValidationError
from ..graph.csr import SHARDED_AUTO_CUTOFF, mutation_fingerprint, snapshot_of
from ..graph.shard import plan_of
from ..parallel.engine import engine_for, pool_stats
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from .config import DecompositionConfig
from .forest_decomposition import (
    FOREST_PIPELINE,
    forest_decomposition_algorithm2,
)
from .list_forest import LIST_FOREST_PIPELINE, list_forest_decomposition
from .orientation import (
    ORIENTATION_PIPELINE,
    PSEUDOFOREST_PIPELINE,
    orientation_decomposition,
    pseudoforest_decomposition_result,
)
from .registry import (
    BackendSpec,
    TaskSpec,
    available_backends,
    available_tasks,
    get_backend,
    get_task,
    register_backend,
    register_task,
)
from .results import DecompositionResult, OrientationResult, PseudoforestResult
from .star_forest import (
    LIST_STAR_FOREST_PIPELINE,
    STAR_FOREST_PIPELINE,
    StarForestResult,
    list_star_forest_decomposition_amr,
    star_forest_decomposition_amr,
)


class Session:
    """Cached graph-prep state shared by repeated decomposition queries.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.multigraph.MultiGraph` all queries run
        against.  Mutating it between queries is allowed — caches are
        fingerprint-keyed and rebuild on demand.
    config:
        Default :class:`~repro.core.config.DecompositionConfig` for
        :meth:`decompose` calls that do not pass their own.
    """

    #: LRU bound on cached per-color sub-CSR extractions; a long-lived
    #: session sweeping many distinct color classes stays bounded.
    SUB_CSR_CACHE_SIZE = 64

    def __init__(
        self, graph, config: Optional[DecompositionConfig] = None
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else DecompositionConfig()
        self._memo: Dict[str, Tuple[Tuple[int, int, int], Any]] = {}
        self._sub_csr: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._evictions: Dict[str, int] = {}
        #: per-pass execution totals accumulated across decompose()
        #: calls: pass name -> {"runs", "wall_ms", "engine_waves"}
        self._pass_totals: Dict[str, Dict[str, float]] = {}
        #: wall-clock seconds of the graph-prep phase of the most
        #: recent :meth:`prepare` (cache hits make this ~0)
        self.last_prep_seconds: float = 0.0
        #: task name -> WatchState of decompositions maintained by
        #: :meth:`apply_delta` (populated by :meth:`watch`)
        self._watches: "OrderedDict[str, Any]" = OrderedDict()
        #: DeltaReports of past :meth:`apply_delta` batches (bounded)
        self._delta_reports: list = []
        #: lazily created repro.service.delta.DeltaState
        self._delta_state: Any = None

    # ------------------------------------------------------------------
    # Fingerprint-keyed caches
    # ------------------------------------------------------------------

    def fingerprint(self) -> Tuple[int, int, int]:
        """The graph's current mutation fingerprint (cache key)."""
        return mutation_fingerprint(self.graph)

    def _memoized(self, key: str, compute):
        fingerprint = self.fingerprint()
        entry = self._memo.get(key)
        if entry is not None and entry[0] == fingerprint:
            self._hits[key] = self._hits.get(key, 0) + 1
            return entry[1]
        value = compute()
        self._memo[key] = (fingerprint, value)
        self._misses[key] = self._misses.get(key, 0) + 1
        return value

    def snapshot(self):
        """The graph's CSR snapshot (built once per fingerprint)."""
        return self._memoized("snapshot", lambda: snapshot_of(self.graph))

    def arboricity(self) -> int:
        """Memoized exact arboricity (Nash-Williams ground truth)."""
        return self._memoized(
            "arboricity", lambda: exact_arboricity(self.graph)
        )

    def pseudoarboricity(self) -> int:
        """Memoized exact pseudoarboricity."""
        return self._memoized(
            "pseudoarboricity", lambda: exact_pseudoarboricity(self.graph)
        )

    def sub_csr(self, eids: Iterable[int]):
        """Cached CSR adjacency ``(offsets, neighbors, edge ids)`` of
        the subgraph on ``eids`` — the per-color extraction reused
        across queries that walk the same color class (e.g. a forest
        decomposition's trees feeding a later orientation query).

        The cache key is a fixed-width digest of the sorted edge-id
        array (hashing the contiguous bytes once is far cheaper than
        building and hashing a ``frozenset`` of Python ints per
        lookup), and the cache is LRU-bounded at
        :attr:`SUB_CSR_CACHE_SIZE` entries — evictions show up in
        :meth:`cache_info`.
        """
        fingerprint = self.fingerprint()
        eid_array = np.unique(np.fromiter(eids, dtype=np.int64))
        digest = hashlib.blake2b(
            eid_array.tobytes(), digest_size=16
        ).digest()
        key = (fingerprint, int(eid_array.size), digest)
        cached = self._sub_csr.get(key)
        if cached is not None:
            self._sub_csr.move_to_end(key)
            self._hits["sub_csr"] = self._hits.get("sub_csr", 0) + 1
            return cached
        # A mutation invalidates every cached extraction at once; drop
        # the stale generation so a long-lived session on an evolving
        # graph doesn't accumulate dead arrays.
        stale = [k for k in self._sub_csr if k[0] != fingerprint]
        for k in stale:
            del self._sub_csr[k]
        arrays = self.snapshot().edge_subset_csr_arrays(eid_array)
        self._sub_csr[key] = arrays
        while len(self._sub_csr) > self.SUB_CSR_CACHE_SIZE:
            self._sub_csr.popitem(last=False)
            self._evictions["sub_csr"] = (
                self._evictions.get("sub_csr", 0) + 1
            )
        self._misses["sub_csr"] = self._misses.get("sub_csr", 0) + 1
        return arrays

    def shard_plan(self, num_shards: Optional[int] = None):
        """The :class:`~repro.parallel.plan.ShardPlan` for this graph's
        snapshot, fingerprint-cached like the snapshot itself (the
        plan is a pure function of the snapshot, so it invalidates
        exactly when the snapshot does).  Tasks running on the
        wave-engine backends reuse it across queries instead of
        re-balancing shards per call."""
        if num_shards is not None:
            return plan_of(self.snapshot(), num_shards)
        return self._memoized(
            "shard_plan", lambda: plan_of(self.snapshot())
        )

    def wave_engine(self, workers: int = 0, mp: bool = False):
        """A :class:`~repro.parallel.engine.WaveEngine` over this
        graph's cached snapshot and shard plan — the runtime the
        ``sharded`` / ``parallel`` backends execute their waves on
        (``mp=True`` builds the process-pool
        :class:`~repro.parallel.engine.MPWaveEngine` the ``mp``
        backend uses).  ``workers=0`` falls back to the session
        config's ``workers`` knob (then to the auto sizing); worker
        count never changes results."""
        if workers == 0:
            workers = self.config.workers
        return engine_for(self.snapshot(), workers, self.shard_plan(), mp=mp)

    def prepare(self) -> "Session":
        """Force the graph-prep phase now: snapshot + exact arboricity
        + pseudoarboricity.  Every task runs this implicitly; calling
        it up front moves the cost off the first query's latency.
        Records the elapsed wall-clock in :attr:`last_prep_seconds`.
        """
        start = time.perf_counter()
        self.snapshot()
        self.arboricity()
        self.pseudoarboricity()
        self.last_prep_seconds = time.perf_counter() - start
        return self

    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counts per cached computation, plus the
        process-wide wave-engine pool stats under ``"worker_pools"``
        (live pools, their total threads, waves dispatched to a pool —
        see :func:`repro.parallel.engine.pool_stats`)."""
        keys = set(self._hits) | set(self._misses) | set(self._evictions)
        info = {
            key: {
                "hits": self._hits.get(key, 0),
                "misses": self._misses.get(key, 0),
                "evictions": self._evictions.get(key, 0),
            }
            for key in sorted(keys)
        }
        info["worker_pools"] = pool_stats()
        info["passes"] = {
            name: dict(totals)
            for name, totals in sorted(self._pass_totals.items())
        }
        if self._delta_state is not None:
            delta = self._delta_state.oracle.stats()
            delta["seq"] = self._delta_state.seq
            delta["watches"] = len(self._watches)
            info["delta"] = delta
        return info

    def _record_passes(self, result: "DecompositionResult") -> None:
        """Fold a result's per-pass records into the session totals
        (surfaced by :meth:`cache_info` under ``"passes"``)."""
        passes = getattr(getattr(result, "stats", None), "passes", None)
        if not passes:
            return
        for record in passes:
            totals = self._pass_totals.setdefault(
                record.name,
                {"runs": 0, "wall_ms": 0.0, "engine_waves": 0},
            )
            totals["runs"] += 1
            totals["wall_ms"] += record.wall_ms
            totals["engine_waves"] += record.engine_waves

    # ------------------------------------------------------------------
    # Config resolution
    # ------------------------------------------------------------------

    def resolve_alpha(self, config: DecompositionConfig) -> int:
        """``config.alpha`` when given, else the memoized exact value."""
        if config.alpha is not None:
            return config.alpha
        return self.arboricity()

    def substrate(self, config: DecompositionConfig) -> str:
        """The concrete substrate string for ``config.backend``,
        resolved through the backend registry."""
        return get_backend(config.backend).substrate_for(self.graph)

    def resolve_schedule(self, config: Optional[DecompositionConfig] = None) -> str:
        """The concrete pass-DAG schedule (``"serial"`` or
        ``"concurrent"``) that ``config.schedule`` resolves to for this
        graph — the same gate the pipelines apply internally."""
        from ..pipeline import resolve_schedule as _resolve

        cfg = config if config is not None else self.config
        return _resolve(self.graph, cfg.schedule)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def decompose(
        self,
        task: str = "forest",
        config: Optional[DecompositionConfig] = None,
        rounds: Optional[RoundCounter] = None,
        **kwargs: Any,
    ) -> DecompositionResult:
        """Run a registered task on this session's graph.

        ``config`` falls back to the session default; task-specific
        kwargs (``palettes``, ``method``, ``splitting``, ...) may come
        from ``config.options`` or be passed directly (direct wins).
        Returns a :class:`~repro.core.results.DecompositionResult`
        bound to the graph and config; validated per
        ``config.validation``.
        """
        spec = get_task(task)
        cfg = config if config is not None else self.config
        if not isinstance(cfg, DecompositionConfig):
            raise ValidationError(
                f"config must be a DecompositionConfig, got {type(cfg).__name__}"
            )
        cfg = cfg.with_defaults(spec.default_epsilon)
        # registry-level checks happen here, once, for every task —
        # including third-party registrations
        get_backend(cfg.backend)
        if spec.simple_only and not self.graph.is_simple():
            raise GraphError(
                f"task {spec.name!r} needs a simple graph "
                "(parallel edges present)"
            )
        merged: Dict[str, Any] = dict(cfg.options)
        merged.update(kwargs)
        result = spec.runner(self, cfg, rounds=rounds, **merged)
        if result.graph is None:
            result.graph = self.graph
        result.config = cfg
        self._record_passes(result)
        if spec.needs_palettes and result.palettes is None:
            result.palettes = merged.get("palettes")
        if cfg.validation != "none":
            result.validate(level=cfg.validation)
        return result

    # ------------------------------------------------------------------
    # Incremental maintenance (the delta engine, repro.service.delta)
    # ------------------------------------------------------------------

    def watch(
        self,
        task: str = "forest",
        config: Optional[DecompositionConfig] = None,
        **kwargs: Any,
    ) -> DecompositionResult:
        """Run ``task`` once and keep its result maintained: every
        subsequent :meth:`apply_delta` batch refreshes it (repairing
        the dirty cascade incrementally when the task supports it,
        recomputing otherwise) so :meth:`current` always equals a
        fresh ``decompose`` on the mutated graph — bit-identically.
        Re-watching a task replaces its knobs."""
        from ..service.delta import watch_task

        return watch_task(self, task, config, kwargs)

    def unwatch(self, task: Optional[str] = None) -> None:
        """Stop maintaining ``task`` (every watched task when None)."""
        if task is None:
            self._watches.clear()
        else:
            self._watches.pop(task, None)

    def watched(self) -> Tuple[str, ...]:
        """Names of the tasks currently maintained, in watch order."""
        return tuple(self._watches)

    def current(self, task: str) -> DecompositionResult:
        """The maintained result of a watched task (no recompute)."""
        try:
            return self._watches[task].result
        except KeyError:
            raise ValidationError(
                f"task {task!r} is not watched; call "
                f"session.watch({task!r}, ...) first"
            ) from None

    def apply_delta(
        self,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[int] = (),
        config: Optional[DecompositionConfig] = None,
    ):
        """Mutate the graph by one batch of edge edits and refresh
        every watched decomposition.

        ``inserts`` is an iterable of ``(u, v)`` endpoint pairs (edge
        ids are assigned by the graph, reported in the returned
        :class:`~repro.service.delta.DeltaReport`); ``deletes`` an
        iterable of edge ids.  The batch is validated up front and
        applied atomically — a bad edit raises and leaves the graph
        untouched.

        **Contract:** after the call, :meth:`current` of every watched
        task is bit-identical (same coloring/orientation content, same
        bound) to running the task from scratch on the mutated graph.
        ``config.delta_mode`` / ``config.delta_threshold`` (from the
        per-call ``config``, falling back to the session default)
        choose between incremental repair and full recompute; they
        never change results, only latency.
        """
        from ..service.delta import apply_delta as _apply_delta

        return _apply_delta(
            self, tuple(inserts), tuple(deletes), config=config
        )

    def content_digest(self) -> str:
        """A blake2b digest of the graph's full content (vertex set +
        edge multiset, ids included), maintained in O(|delta|) per
        :meth:`apply_delta` batch instead of rehashing the edge list;
        out-of-band mutations trigger one full resync."""
        from ..service.delta import content_digest as _content_digest

        return _content_digest(self)

    def delta_reports(self) -> Tuple[Any, ...]:
        """DeltaReports of the :meth:`apply_delta` batches so far."""
        return tuple(self._delta_reports)


def decompose(
    graph,
    task: str = "forest",
    config: Optional[DecompositionConfig] = None,
    session: Optional[Session] = None,
    rounds: Optional[RoundCounter] = None,
    **kwargs: Any,
) -> DecompositionResult:
    """One-shot dispatcher: ``repro.decompose(graph, task="forest")``.

    Equivalent to ``Session(graph).decompose(task, ...)``; pass an
    existing ``session`` to reuse its caches (or call the method on the
    session directly).  See :class:`Session` for the repeated-query
    workflow.
    """
    if session is None:
        session = Session(graph)
    elif session.graph is not graph:
        raise ValidationError("session is bound to a different graph")
    return session.decompose(task, config=config, rounds=rounds, **kwargs)


# ----------------------------------------------------------------------
# Built-in task runners
# ----------------------------------------------------------------------


def _run_forest(
    session: Session,
    config: DecompositionConfig,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
) -> DecompositionResult:
    return forest_decomposition_algorithm2(
        session.graph,
        config.epsilon,
        alpha=session.resolve_alpha(config),
        cut_rule=config.cut_rule,
        carve_rule=config.carve_rule,
        diameter_mode=config.diameter_mode,
        seed=config.seed,
        rounds=rounds,
        radius=radius,
        search_radius=search_radius,
        backend=session.substrate(config),
        workers=config.workers,
        schedule=config.schedule,
    )


def _run_list_forest(
    session: Session,
    config: DecompositionConfig,
    palettes=None,
    splitting: str = "cluster",
    reserve_probability=None,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
) -> DecompositionResult:
    if palettes is None:
        raise PaletteError("task 'list_forest' requires palettes=")
    return list_forest_decomposition(
        session.graph,
        palettes,
        config.epsilon,
        alpha=session.resolve_alpha(config),
        splitting=splitting,
        cut_rule=config.cut_rule,
        reserve_probability=reserve_probability,
        seed=config.seed,
        rounds=rounds,
        radius=radius,
        search_radius=search_radius,
        backend=session.substrate(config),
        workers=config.workers,
        schedule=config.schedule,
    )


def _run_star_forest(
    session: Session,
    config: DecompositionConfig,
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 60,
) -> DecompositionResult:
    return star_forest_decomposition_amr(
        session.graph,
        config.epsilon,
        alpha=session.resolve_alpha(config) if session.graph.m else None,
        seed=config.seed,
        rounds=rounds,
        max_lll_rounds=max_lll_rounds,
        backend=session.substrate(config),
        workers=config.workers,
        schedule=config.schedule,
    )


def _run_list_star_forest(
    session: Session,
    config: DecompositionConfig,
    palettes=None,
    method: str = "amr",
    rounds: Optional[RoundCounter] = None,
    max_lll_rounds: int = 200,
) -> DecompositionResult:
    if palettes is None:
        raise PaletteError("task 'list_star_forest' requires palettes=")
    if method == "amr":
        return list_star_forest_decomposition_amr(
            session.graph,
            palettes,
            config.epsilon,
            alpha=session.resolve_alpha(config) if session.graph.m else None,
            seed=config.seed,
            rounds=rounds,
            max_lll_rounds=max_lll_rounds,
            schedule=config.schedule,
        )
    if method == "hpartition":
        from ..decomposition.lsfd import (
            list_star_forest_decomposition as lsfd_theorem23,
        )
        from .algorithm_stats import StarForestStats

        counter = ensure_counter(rounds)
        pseudo = session.pseudoarboricity()
        coloring = lsfd_theorem23(
            session.graph, palettes, max(1, pseudo), 0.5, counter,
            backend=session.substrate(config), workers=config.workers,
        )
        colors_used = len(set(coloring.values()))
        return StarForestResult(
            coloring, colors_used, counter, StarForestStats(),
            graph=session.graph,
        )
    raise DecompositionError(f"unknown LSFD method {method!r}")


def _run_orientation(
    session: Session,
    config: DecompositionConfig,
    method: str = "augmentation",
    rounds: Optional[RoundCounter] = None,
    pseudoarboricity: Optional[int] = None,
) -> OrientationResult:
    # hpartition ignores alpha (it peels by pseudoarboricity), so only
    # the alpha-consuming methods pull the session's memoized value.
    # A caller-pinned pseudoarboricity (config.options or kwarg) skips
    # the exact flow computation entirely — the knob the delta engine
    # and the serve daemon lean on for large evolving graphs.
    return orientation_decomposition(
        session.graph,
        config.epsilon,
        alpha=config.alpha if method == "hpartition"
        else session.resolve_alpha(config),
        method=method,
        seed=config.seed,
        rounds=rounds,
        backend=session.substrate(config),
        workers=config.workers,
        pseudoarboricity=(
            pseudoarboricity if pseudoarboricity is not None
            else session.pseudoarboricity()
        )
        if method == "hpartition" else None,
        shard_plan=session.shard_plan()
        if method == "hpartition"
        and session.substrate(config) in ("sharded", "parallel", "mp")
        else None,
        schedule=config.schedule,
    )


def _run_pseudoforest(
    session: Session,
    config: DecompositionConfig,
    method: str = "augmentation",
    rounds: Optional[RoundCounter] = None,
    pseudoarboricity: Optional[int] = None,
) -> PseudoforestResult:
    return pseudoforest_decomposition_result(
        session.graph,
        config.epsilon,
        alpha=config.alpha if method == "hpartition"
        else session.resolve_alpha(config),
        method=method,
        seed=config.seed,
        rounds=rounds,
        backend=session.substrate(config),
        workers=config.workers,
        pseudoarboricity=(
            pseudoarboricity if pseudoarboricity is not None
            else session.pseudoarboricity()
        )
        if method == "hpartition" else None,
        shard_plan=session.shard_plan()
        if method == "hpartition"
        and session.substrate(config) in ("sharded", "parallel", "mp")
        else None,
        schedule=config.schedule,
    )


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------

register_task(TaskSpec(
    name="forest",
    runner=_run_forest,
    pipeline=FOREST_PIPELINE,
    description="(1+eps)alpha forest decomposition of a multigraph",
    citation="Theorem 4.6",
    default_epsilon=0.5,
    uses=("arboricity",),
))
register_task(TaskSpec(
    name="list_forest",
    runner=_run_list_forest,
    pipeline=LIST_FOREST_PIPELINE,
    description="(1+eps)alpha list-forest decomposition",
    citation="Theorem 4.10",
    default_epsilon=0.5,
    needs_palettes=True,
    uses=("arboricity",),
))
register_task(TaskSpec(
    name="star_forest",
    runner=_run_star_forest,
    pipeline=STAR_FOREST_PIPELINE,
    description="(1+O(eps))alpha star-forest decomposition (simple graphs)",
    citation="Theorem 5.4(1)",
    default_epsilon=0.25,
    simple_only=True,
    uses=("arboricity",),
))
register_task(TaskSpec(
    name="list_star_forest",
    runner=_run_list_star_forest,
    pipeline=LIST_STAR_FOREST_PIPELINE,
    description="list star-forest decomposition (simple graphs)",
    citation="Theorem 5.4(2) / Theorem 2.3",
    default_epsilon=0.05,
    simple_only=True,
    needs_palettes=True,
    uses=("arboricity", "pseudoarboricity"),
))
register_task(TaskSpec(
    name="orientation",
    runner=_run_orientation,
    pipeline=ORIENTATION_PIPELINE,
    description="(1+eps)alpha low out-degree orientation",
    citation="Corollary 1.1",
    default_epsilon=0.5,
    uses=("arboricity", "pseudoarboricity"),
))
register_task(TaskSpec(
    name="pseudoforest",
    runner=_run_pseudoforest,
    pipeline=PSEUDOFOREST_PIPELINE,
    description="(1+eps)alpha pseudoforest decomposition",
    citation="Corollary 1.1 companion",
    default_epsilon=0.5,
    uses=("arboricity", "pseudoarboricity"),
))

register_backend(BackendSpec(
    name="auto",
    description="per-callsite choice: kernel for large graphs and CSR "
    "inputs, dict reference for small ones",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
))
register_backend(BackendSpec(
    name="dict",
    description="dict-of-dicts reference paths (byte-identical goldens)",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
))
register_backend(BackendSpec(
    name="csr",
    description="flat-array CSR kernel (vectorized peeling/traversal)",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
))
register_backend(BackendSpec(
    name="sharded",
    description="multi-worker sharded peeling waves over the CSR "
    "kernel (bit-identical to csr for every worker count); "
    f"auto-selects at n >= {SHARDED_AUTO_CUTOFF}, csr below",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
    resolve=lambda graph: (
        "sharded" if graph.n >= SHARDED_AUTO_CUTOFF else "csr"
    ),
))
register_backend(BackendSpec(
    name="parallel",
    description="the full wave-engine substrate: sharded peeling "
    "waves plus engine-backed BFS paths (ball carving, color-class "
    "scans, diameter reduction), bit-identical to csr for every "
    f"worker count; auto-selects at n >= {SHARDED_AUTO_CUTOFF}, "
    "csr below",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
    resolve=lambda graph: (
        "parallel" if graph.n >= SHARDED_AUTO_CUTOFF else "csr"
    ),
))
register_backend(BackendSpec(
    name="mp",
    description="the wave-engine substrate on worker *processes*: "
    "shard kernels ship as shared-memory descriptors and run on a "
    "spawn-safe process pool (true multi-core, no GIL), bit-identical "
    f"to csr for every worker count; auto-selects at n >= "
    f"{SHARDED_AUTO_CUTOFF}, csr below",
    capabilities=frozenset({"peeling", "traversal", "color_bfs"}),
    resolve=lambda graph: (
        "mp" if graph.n >= SHARDED_AUTO_CUTOFF else "csr"
    ),
))

__all__ = [
    "Session",
    "decompose",
    "available_tasks",
    "available_backends",
    "get_task",
    "get_backend",
    "register_task",
    "register_backend",
]
