"""Augmenting sequences for list-forest decompositions (Section 3).

An *augmenting sequence* w.r.t. a partial LFD ψ is
``P = (e_1, c_1, ..., e_ℓ, c_ℓ)`` with

  (A1) ``e_1`` uncolored;
  (A2) ``e_i ∈ C(e_{i-1}, c_{i-1})`` for 2 <= i <= ℓ;
  (A3) ``e_i ∉ C(e_j, c_j)`` for all j < i - 1;
  (A4) ``C(e_ℓ, c_ℓ) = ∅``;
  (A5) ``c_i ∈ Q(e_i)``.

Applying the augmentation (ψ(e_i) := c_i for all i) keeps every color
class a forest (Lemma 3.1).  Theorem 3.2 guarantees existence within
radius O(log n / ε) of the uncolored edge whenever palettes have size
(1+ε)α; Algorithm 1 finds an *almost* augmenting sequence (drops A3) by
exponential growth, and Proposition 3.4 short-circuits it into a true
augmenting sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AugmentationError, ValidationError
from .partial_coloring import PartialListForestDecomposition

Sequence_ = List[Tuple[int, int]]  # [(edge id, color), ...]


class AugmentationStats:
    """Counters exposed by the search (used by the Figure 2 bench)."""

    def __init__(self) -> None:
        self.iterations = 0
        self.explored_sizes: List[int] = []  # |E_i| after each iteration
        self.sequence_length = 0
        self.shortcut_removed = 0

    def growth_factors(self) -> List[float]:
        """|E_{i+1}| / |E_i| per iteration of Algorithm 1."""
        sizes = self.explored_sizes
        return [
            sizes[i + 1] / sizes[i]
            for i in range(len(sizes) - 1)
            if sizes[i] > 0
        ]


def find_almost_augmenting_sequence(
    state: PartialListForestDecomposition,
    start: int,
    allowed_vertices: Optional[Set[int]] = None,
    max_iterations: Optional[int] = None,
    stats: Optional[AugmentationStats] = None,
) -> Optional[Sequence_]:
    """Algorithm 1: grow edge sets ``E_1 ⊆ E_2 ⊆ ...`` from the
    uncolored edge ``start`` until some (edge, color) pair has
    ``C(e, c) = ∅``; backtrack the discovery pointers into an almost
    augmenting sequence.

    ``allowed_vertices`` restricts exploration (both endpoints of every
    explored edge must lie inside) — Algorithm 2 passes the cluster
    ball so the search is local.  Returns None if the search saturates
    without terminating (cannot happen with (1+ε)α palettes on an
    unrestricted search, by Proposition 3.3).
    """
    if state.color_of(start) is not None:
        raise AugmentationError(f"edge {start} is already colored")
    if state.is_leftover(start):
        raise AugmentationError(f"edge {start} was removed by CUT")

    # Flat-array endpoint lookups (shared snapshot): the growth loop
    # below touches every explored edge's endpoints once per iteration,
    # which dominates the search on large neighborhoods.
    u_of, v_of = state.csr_snapshot().endpoint_maps()

    def allowed(eid: int) -> bool:
        if allowed_vertices is None:
            return True
        return u_of[eid] in allowed_vertices and v_of[eid] in allowed_vertices

    explored: Set[int] = {start}
    discovery: Dict[int, int] = {}  # π: newly added edge -> source edge
    # Vertices spanned by explored edges, for fast adjacency tests.
    spanned: Set[int] = {u_of[start], v_of[start]}
    path_cache: Dict[Tuple[int, int], Optional[List[int]]] = {}

    iteration = 0
    while True:
        iteration += 1
        if stats is not None:
            stats.iterations = iteration
            stats.explored_sizes.append(len(explored))
        if max_iterations is not None and iteration > max_iterations:
            return None
        newly_added: List[int] = []
        for eid in sorted(explored):
            own_color = state.color_of(eid)
            for color in state.palette(eid):
                if color == own_color:
                    continue
                key = (eid, color)
                if key in path_cache:
                    path = path_cache[key]
                else:
                    path = state.color_path(eid, color)
                    path_cache[key] = path
                if path is None:
                    # C(e, c) = ∅: almost augmenting sequence found.
                    return _backtrack(state, start, discovery, eid, color)
                for member in path:
                    if member in explored or not allowed(member):
                        continue
                    if u_of[member] in spanned or v_of[member] in spanned:
                        explored.add(member)
                        discovery[member] = eid
                        newly_added.append(member)
        if not newly_added:
            return None
        for eid in newly_added:
            spanned.add(u_of[eid])
            spanned.add(v_of[eid])


def _backtrack(
    state: PartialListForestDecomposition,
    start: int,
    discovery: Dict[int, int],
    terminal: int,
    terminal_color: int,
) -> Sequence_:
    """Reconstruct the almost augmenting sequence ending at
    ``(terminal, terminal_color)`` via the π pointers: for each j,
    ``e_{j-1} = π(e_j)`` and ``c_{j-1} = ψ(e_j)``."""
    sequence: Sequence_ = [(terminal, terminal_color)]
    edge = terminal
    while edge != start:
        source = discovery[edge]
        own_color = state.color_of(edge)
        assert own_color is not None, "explored non-start edges are colored"
        sequence.append((source, own_color))
        edge = source
    sequence.reverse()
    return sequence


def shortcut_sequence(
    state: PartialListForestDecomposition,
    sequence: Sequence_,
    stats: Optional[AugmentationStats] = None,
) -> Sequence_:
    """Proposition 3.4: repeatedly splice out violations of (A3) until
    the sequence is a genuine augmenting sequence."""
    current = list(sequence)
    path_cache: Dict[Tuple[int, int], Optional[List[int]]] = {}

    def path_members(eid: int, color: int) -> Set[int]:
        key = (eid, color)
        if key not in path_cache:
            path = state.color_path(eid, color)
            path_cache[key] = path
        path = path_cache[key]
        return set(path) if path else set()

    changed = True
    while changed:
        changed = False
        for j in range(len(current)):
            members = path_members(*current[j])
            # Find the largest i > j + 1 with e_i on C(e_j, c_j).
            for i in range(len(current) - 1, j + 1, -1):
                if current[i][0] in members:
                    if stats is not None:
                        stats.shortcut_removed += i - (j + 1)
                    current = current[: j + 1] + current[i:]
                    changed = True
                    break
            if changed:
                break
    return current


def is_augmenting_sequence(
    state: PartialListForestDecomposition,
    sequence: Sequence_,
    require_a3: bool = True,
) -> bool:
    """Check properties (A1)-(A5) of a sequence against ``state``."""
    if not sequence:
        return False
    first_edge, _ = sequence[0]
    if state.color_of(first_edge) is not None:  # (A1)
        return False
    for eid, color in sequence:  # (A5)
        if color not in state.palette(eid):
            return False
    paths: List[Optional[List[int]]] = [
        state.color_path(eid, color) for eid, color in sequence
    ]
    if paths[-1] is not None:  # (A4)
        return False
    for i in range(1, len(sequence)):  # (A2)
        prior = paths[i - 1]
        if prior is None or sequence[i][0] not in prior:
            return False
    if require_a3:  # (A3)
        for i in range(len(sequence)):
            for j in range(i - 1):
                members = paths[j]
                if members is not None and sequence[i][0] in members:
                    return False
    return True


def apply_augmentation(
    state: PartialListForestDecomposition,
    sequence: Sequence_,
) -> None:
    """Lemma 3.1: recolor ψ(e_i) := c_i along the sequence.

    Colors are applied back-to-front: the terminal edge moves into its
    empty target first, freeing its old color class for its predecessor,
    and so on.  The per-step cycle check in ``set_color`` makes a
    violation of Lemma 3.1 loud rather than silent.
    """
    for eid, color in reversed(sequence):
        state.set_color(eid, color)


def augment_edge(
    state: PartialListForestDecomposition,
    start: int,
    allowed_vertices: Optional[Set[int]] = None,
    max_iterations: Optional[int] = None,
    stats: Optional[AugmentationStats] = None,
) -> Sequence_:
    """Find and apply an augmenting sequence from ``start``.

    Returns the applied sequence; raises :class:`AugmentationError` if
    the (possibly restricted) search fails.
    """
    almost = find_almost_augmenting_sequence(
        state, start, allowed_vertices, max_iterations, stats
    )
    if almost is None:
        raise AugmentationError(
            f"no augmenting sequence from edge {start} "
            f"({'restricted' if allowed_vertices is not None else 'global'} search)"
        )
    sequence = shortcut_sequence(state, almost, stats)
    if stats is not None:
        stats.sequence_length = len(sequence)
    apply_augmentation(state, sequence)
    return sequence
