"""Forest-diameter reduction (Proposition 2.4 / Corollary 2.5).

Given a (list-)forest decomposition φ, delete a sparse set of edges so
that every surviving monochromatic tree has small strong diameter, then
recolor the deleted edges with ``O(εα)`` fresh forests.  Two deletion
modes mirror the two cases of Proposition 2.4:

* ``depth_cut(z)``: root every tree of every color class and delete
  each edge whose depth is congruent to a per-color random residue
  mod ``z``.  Surviving chains span fewer than ``z`` depth levels, so
  tree diameter is at most ``2(z-1) = O(z)``.  Each vertex loses each
  parent edge with probability ``1/z``, so the expected per-vertex
  deletion load is ``(#colors)/z`` — the paper's two regimes are
  ``z = Θ(1/ε)`` (diameter O(1/ε), needs α ≥ Ω(log n) or the LLL for
  the load bound) and ``z = Θ(log n/ε)`` (diameter O(log n/ε), load
  εα/Θ(log n) per color class in expectation).

* ``random_sparse``: the unbounded-α case — every vertex flips a coin
  and deletes ⌈εα/20⌉ random out-edges of a 3α*-orientation, then a
  correction pass depth-cuts any tree whose diameter still exceeds the
  target.  (Theorem B's analysis shows the correction is vanishingly
  rare at scale; we execute it deterministically so the output bound
  always holds.)

The deleted edges are returned with a child-to-parent orientation whose
max out-degree certifies their pseudo-arboricity.

Backends: ``depth_cut`` / ``reduce_diameter`` accept the shared
``backend`` knob.  The dict path (default for direct callers) roots
every color class with :class:`~repro.graph.forests.RootedForest`; the
kernel path roots large classes on flat arrays
(:func:`~repro.graph.csr.rooted_forest_arrays` — identical root
selection and depths, one vectorized multi-source BFS per class) and
the parallel path additionally fans each BFS level through the shared
:class:`~repro.parallel.engine.WaveEngine`.  Small color classes stay
on the dict path under any kernel backend (the array extraction costs
more than the walk there); every path produces byte-identical cuts
because tree depths are unique.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import DecompositionError
from ..graph.csr import (
    resolve_backend,
    rooted_forest_arrays,
    rooted_forest_class_depths,
    snapshot_of,
)
from ..graph.forests import RootedForest, color_classes
from ..graph.multigraph import MultiGraph
from ..local.rounds import RoundCounter, ensure_counter
from ..parallel.engine import engine_for
from ..rng import SeedLike, make_rng

Coloring = Dict[int, int]

#: color classes below this edge count keep the dict rooting — the
#: sub-CSR extraction costs more than the walk (outputs identical).
DEPTH_CUT_ARRAYS_MIN_EDGES = 64


class DiameterReductionResult:
    """Outcome of a diameter-reduction pass."""

    def __init__(
        self,
        kept: Coloring,
        deleted: List[int],
        deletion_tail: Dict[int, int],
        target_diameter: int,
    ) -> None:
        self.kept = kept  # surviving edges with their original colors
        self.deleted = deleted  # edge ids removed
        self.deletion_tail = deletion_tail  # edge id -> charged vertex
        self.target_diameter = target_diameter

    def max_deletion_out_degree(self) -> int:
        counts: Dict[int, int] = {}
        for _eid, tail in self.deletion_tail.items():
            counts[tail] = counts.get(tail, 0) + 1
        return max(counts.values(), default=0)


def depth_cut(
    graph: MultiGraph,
    coloring: Coloring,
    z: int,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "dict",
    workers: int = 0,
    schedule: str = "serial",
) -> DiameterReductionResult:
    """Cut every color forest at a random depth residue mod ``z``.

    The result's trees have strong diameter at most ``2(z-1)``.  Every
    backend produces the same cuts (see the module docstring); the
    default stays on the dict reference path, the pipelines pass their
    own backend through.

    ``schedule="concurrent"`` (from the pass scheduler) roots *all*
    array-eligible color classes in one stacked
    :func:`~repro.graph.csr.rooted_forest_class_depths` call instead of
    a per-class union-find + BFS — identical roots, depths and cuts,
    with the per-class residue draws kept in the same sorted-color
    order (rooting consumes no randomness).
    """
    if z < 1:
        raise DecompositionError(f"z must be >= 1, got {z}")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    resolved = resolve_backend(graph, backend, DecompositionError)
    engine = None
    if resolved in ("parallel", "mp"):
        engine = engine_for(snapshot_of(graph), workers, mp=resolved == "mp")
    classes = sorted(color_classes(coloring).items())
    batched: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    if schedule == "concurrent" and resolved in ("csr", "parallel", "mp"):
        snap = snapshot_of(graph)
        eligible = [
            i
            for i, (_color, eids) in enumerate(classes)
            if len(eids) >= DEPTH_CUT_ARRAYS_MIN_EDGES
        ]
        if eligible:
            per_class, _waves = rooted_forest_class_depths(
                snap,
                [snap.edge_positions(classes[i][1]) for i in eligible],
            )
            batched = dict(zip(eligible, per_class))
    kept: Coloring = {}
    deleted: List[int] = []
    deletion_tail: Dict[int, int] = {}
    for index, (color, eids) in enumerate(classes):
        use_arrays = (
            resolved in ("csr", "parallel", "mp")
            and len(eids) >= DEPTH_CUT_ARRAYS_MIN_EDGES
        )
        if use_arrays:
            if index in batched:
                du, dv, child_ids = batched[index]
                residue = rng.randrange(z)
            else:
                snap = snapshot_of(graph)
                arrays = rooted_forest_arrays(snap, eids, engine=engine)
                residue = rng.randrange(z)
                positions = snap.edge_positions(eids)
                du = arrays.depth[snap.edge_u[positions]]
                dv = arrays.depth[snap.edge_v[positions]]
                child_ids = np.where(
                    du > dv,
                    snap.edge_u_ids[positions],
                    snap.edge_v_ids[positions],
                )
            # The child endpoint of a forest edge is the deeper one
            # (depths differ by exactly 1); cutting the parent edges of
            # vertices at depth ≡ residue (mod z) is cutting the edges
            # whose child depth hits the residue.
            is_cut = (np.maximum(du, dv) % z) == (residue % z)
            for eid, cut, child in zip(
                eids, is_cut.tolist(), child_ids.tolist()
            ):
                if cut:
                    deleted.append(eid)
                    deletion_tail[eid] = int(child)
                else:
                    kept[eid] = coloring[eid]
            continue
        forest = RootedForest(graph, eids)
        residue = rng.randrange(z)
        cut_edges = set(forest.edges_at_depth_residue(residue, z))
        for eid in eids:
            if eid in cut_edges:
                u, v = graph.endpoints(eid)
                child = u if forest.depth[u] > forest.depth[v] else v
                deleted.append(eid)
                deletion_tail[eid] = child
            else:
                kept[eid] = coloring[eid]
    # Rooting + cutting is O(z) rounds distributed (depth mod z is known
    # within z hops of the root segment); we charge the target diameter.
    counter.charge(2 * z, "depth-cut diameter reduction")
    return DiameterReductionResult(kept, deleted, deletion_tail, 2 * (z - 1))


def random_sparse_cut(
    graph: MultiGraph,
    coloring: Coloring,
    epsilon: float,
    alpha: int,
    orientation: Dict[int, int],
    target_diameter: int,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
) -> DiameterReductionResult:
    """Proposition 2.4, unbounded-α case: random out-edge deletion with a
    deterministic correction pass.

    ``orientation`` must be an acyclic O(α*)-orientation of the colored
    edges (Theorem 2.1(2)); ``target_diameter`` is the bound the caller
    wants (Θ(log n / ε) in the paper).
    """
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    quota = max(1, math.ceil(epsilon * alpha / 20.0))

    out_edges: Dict[int, List[int]] = {}
    for eid in coloring:
        out_edges.setdefault(orientation[eid], []).append(eid)

    deleted_set: Set[int] = set()
    deletion_tail: Dict[int, int] = {}
    for vertex in sorted(out_edges):
        if rng.random() < 0.5:
            candidates = sorted(out_edges[vertex])
            rng.shuffle(candidates)
            for eid in candidates[:quota]:
                deleted_set.add(eid)
                deletion_tail[eid] = vertex
    counter.charge(1, "random deletion round")

    # Correction: depth-cut any color class whose trees are still deep.
    z = max(1, target_diameter // 2)
    survivors = {e: c for e, c in coloring.items() if e not in deleted_set}
    for color, eids in sorted(color_classes(survivors).items()):
        forest = RootedForest(graph, eids)
        if forest.max_strong_diameter() <= target_diameter:
            continue
        residue = rng.randrange(z)
        for eid in forest.edges_at_depth_residue(residue, z):
            u, v = graph.endpoints(eid)
            child = u if forest.depth[u] > forest.depth[v] else v
            deleted_set.add(eid)
            deletion_tail[eid] = child
    counter.charge(2 * z, "correction pass")

    kept = {e: c for e, c in coloring.items() if e not in deleted_set}
    return DiameterReductionResult(
        kept, sorted(deleted_set), deletion_tail, target_diameter
    )


def reduce_diameter(
    graph: MultiGraph,
    coloring: Coloring,
    epsilon: float,
    alpha: int,
    mode: str = "auto",
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    backend: str = "dict",
    workers: int = 0,
    schedule: str = "serial",
) -> DiameterReductionResult:
    """Corollary 2.5 front-end: pick ``z`` by regime.

    * ``mode="strong"``: ``z = ⌈20/ε⌉`` — diameter O(1/ε); the load
      bound needs α ≥ Ω(min(log n/ε, log Δ/ε²)), as in the paper.
    * ``mode="safe"``: ``z = ⌈20 log₂(n)/ε⌉`` — diameter O(log n/ε)
      with per-vertex load ~ εα/20 in expectation at any α.
    * ``mode="auto"``: strong when α ≥ log₂ n, else safe.

    ``backend`` / ``workers`` select the rooting substrate per color
    class (see :func:`depth_cut`); cuts are identical on every backend.
    """
    n = max(graph.n, 2)
    if mode == "auto":
        mode = "strong" if alpha >= math.log2(n) else "safe"
    if mode == "strong":
        z = max(2, math.ceil(20.0 / epsilon))
    elif mode == "safe":
        z = max(2, math.ceil(20.0 * math.log2(n) / epsilon))
    else:
        raise DecompositionError(f"unknown diameter-reduction mode {mode!r}")
    return depth_cut(
        graph, coloring, z, seed=seed, rounds=rounds,
        backend=backend, workers=workers, schedule=schedule,
    )
