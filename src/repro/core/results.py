"""The uniform result protocol shared by every decomposition task.

Each pipeline historically returned its own shape — a result class
here, a bare ``(coloring, bound)`` tuple there — so downstream code had
to know which task it ran to do anything generic (validate, serialize,
feed a per-color pass).  :class:`DecompositionResult` is the shared
base: every task run through the registry returns an object exposing

* ``coloring`` — edge id -> color (task-specific color values);
* :meth:`forests` — the color classes as edge-id lists, in canonical
  color order;
* :meth:`coloring_array` — a CSR-aligned numpy view: one dense color
  index per snapshot edge position (``-1`` = uncolored), so kernel
  passes can consume a result without dict lookups;
* :meth:`validate` — the independent :mod:`repro.verify` checker for
  this result kind;
* :meth:`to_json` / :meth:`from_json` — structured serialization
  (colors, stats, accounting), used by ``python -m repro --json``;
* ``stats`` / ``rounds`` — per-task diagnostics and LOCAL-round
  accounting.

The existing task results (:class:`~repro.core.forest_decomposition.
ForestDecompositionResult`, :class:`~repro.core.star_forest.
StarForestResult`, :class:`~repro.core.list_forest.
ListForestDecompositionResult`) subclass this base;
:class:`OrientationResult` and :class:`PseudoforestResult` wrap the
formerly bare tuple outputs.  The legacy tuple-returning wrappers in
:mod:`repro.core.api` unwrap them, so nothing downstream moves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..graph.csr import snapshot_of

RESULT_JSON_SCHEMA_VERSION = 1


def stats_to_dict(stats: Any) -> Dict[str, Any]:
    """JSON view of a stats object.

    Typed stats (anything exposing ``to_json()`` — the
    :class:`~repro.core.algorithm_stats.TaskStats` family) use their
    explicit, documented schema.  The legacy best-effort ``vars()``
    walk remains as the fallback for external stats objects.
    """
    if stats is None:
        return {}
    if hasattr(stats, "to_json"):
        return stats.to_json()
    if isinstance(stats, dict):
        source = stats
    else:
        source = dict(vars(stats))
        for name in dir(type(stats)):
            if name.startswith("_"):
                continue
            attr = getattr(type(stats), name, None)
            if isinstance(attr, property):
                source[name] = getattr(stats, name)
    out: Dict[str, Any] = {}
    for key, value in source.items():
        if hasattr(value, "__dict__") and not isinstance(value, type):
            out[key] = stats_to_dict(value)
        elif isinstance(value, (list, tuple)):
            out[key] = list(value)
        else:
            out[key] = value
    return out


def _color_sort_key(color: Any) -> Tuple:
    """Deterministic total order over heterogeneous color values.

    Ints order numerically (so forest colors 0..11 keep their natural
    order — dense index i of :meth:`DecompositionResult.coloring_array`
    is forest i), strings lexicographically, tuples like ``("amr", 3)``
    element-wise by the same rule; distinct types group apart."""
    if isinstance(color, bool):
        return (1, "", int(color), ())
    if isinstance(color, int):
        return (0, "", color, ())
    if isinstance(color, str):
        return (2, color, 0, ())
    if isinstance(color, tuple):
        return (3, "", 0, tuple(_color_sort_key(part) for part in color))
    return (4, repr(color), 0, ())


def _color_to_json(color: Any) -> Any:
    """Tuples become lists, recursively (e.g. ``("extra", (0, 1))``);
    everything else must already be JSON."""
    if isinstance(color, tuple):
        return [_color_to_json(part) for part in color]
    return color


def _color_from_json(color: Any) -> Any:
    if isinstance(color, list):
        return tuple(_color_from_json(part) for part in color)
    return color


class DecompositionResult:
    """Base class implementing the uniform result protocol.

    Subclasses set ``kind`` (which selects the :meth:`validate`
    checker) and may add task-specific attributes; the protocol methods
    only rely on ``coloring``, ``graph``, ``stats`` and ``rounds``.
    ``graph`` may be ``None`` for results rebuilt from JSON — the
    methods that need it then require it as an argument.
    """

    #: validator dispatch key: "forest", "star_forest", "pseudoforest",
    #: "orientation" (list variants validate as their base kind plus
    #: palette membership at level="full").
    kind: str = "forest"

    coloring: Dict[int, Any]
    graph: Any = None
    stats: Any = None
    rounds: Any = None
    #: set by the dispatcher so validate(level="full") can check
    #: palette membership on list tasks
    palettes: Optional[Dict[int, Sequence[Any]]] = None
    #: the config the result was produced under (set by the dispatcher)
    config: Any = None

    # ------------------------------------------------------------------
    # Color classes
    # ------------------------------------------------------------------

    def color_order(self) -> List[Any]:
        """Distinct colors in canonical (deterministic) order."""
        distinct = {c for c in self.coloring.values() if c is not None}
        return sorted(distinct, key=_color_sort_key)

    def num_colors(self) -> int:
        return len({c for c in self.coloring.values() if c is not None})

    def forests(self) -> List[List[int]]:
        """Color classes as sorted edge-id lists, in canonical color
        order (parallel to :meth:`color_order`)."""
        by_color: Dict[Any, List[int]] = {}
        for eid, color in self.coloring.items():
            if color is None:
                continue
            by_color.setdefault(color, []).append(eid)
        return [sorted(by_color[c]) for c in self.color_order()]

    def coloring_array(self, snapshot=None) -> np.ndarray:
        """CSR-aligned color view: ``out[p]`` is the dense color index
        of the edge at snapshot position ``p`` (-1 = uncolored).

        Positions follow ``snapshot.edge_id`` (MultiGraph insertion
        order), so the array plugs straight into per-color kernel
        passes.  Dense indices follow :meth:`color_order`.
        """
        if snapshot is None:
            if self.graph is None:
                raise ValidationError(
                    "result is not bound to a graph; pass snapshot="
                )
            snapshot = snapshot_of(self.graph)
        index = {c: i for i, c in enumerate(self.color_order())}
        out = np.full(snapshot.num_edges, -1, dtype=np.int64)
        for position, eid in enumerate(snapshot.edge_id.tolist()):
            color = self.coloring.get(eid)
            if color is not None:
                out[position] = index[color]
        return out

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, level: str = "basic", graph=None) -> "DecompositionResult":
        """Re-derive this result's guarantee with the independent
        :mod:`repro.verify` checkers; raises
        :class:`~repro.errors.ValidationError` on any violation.

        ``level="basic"`` checks structure (acyclicity / star shape /
        out-degree); ``level="full"`` additionally checks palette
        membership when the result carries palettes.  Returns ``self``
        so calls chain.
        """
        if level == "none":
            return self
        if level not in ("basic", "full"):
            raise ValidationError(f"unknown validation level {level!r}")
        graph = graph if graph is not None else self.graph
        if graph is None:
            raise ValidationError("result is not bound to a graph; pass graph=")
        from ..verify import validators as v

        if self.kind == "forest":
            v.check_forest_decomposition(graph, self.coloring)
        elif self.kind == "star_forest":
            v.check_star_forest_decomposition(graph, self.coloring)
        elif self.kind == "pseudoforest":
            v.check_pseudoforest_decomposition(graph, self.coloring)
        elif self.kind == "orientation":
            v.check_orientation(graph, self.coloring, self.bound)
        else:
            raise ValidationError(f"no validator for result kind {self.kind!r}")
        if level == "full" and self.palettes is not None:
            v.check_palettes_respected(self.coloring, self.palettes)
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Structured, JSON-serializable summary: kind, coloring,
        color/round accounting, stats, and the producing config."""
        payload: Dict[str, Any] = {
            "schema_version": RESULT_JSON_SCHEMA_VERSION,
            "kind": self.kind,
            "colors_used": self.num_colors(),
            "rounds": getattr(self.rounds, "total", None),
            "stats": stats_to_dict(self.stats),
            "coloring": [
                [eid, _color_to_json(color)]
                for eid, color in sorted(
                    self.coloring.items(),
                    key=lambda item: (item[0], _color_sort_key(item[1])),
                )
                if color is not None
            ],
        }
        for extra in self._json_extras():
            payload[extra] = getattr(self, extra)
        if self.config is not None:
            payload["config"] = self.config.to_json()
        return payload

    def _json_extras(self) -> Tuple[str, ...]:
        """Subclass hook: names of extra scalar fields to serialize."""
        return ()

    @classmethod
    def from_json(cls, payload: Dict[str, Any], graph=None) -> "DecompositionResult":
        """Rebuild a result from :meth:`to_json` output.

        The rebuilt object carries the coloring, kind, stats dict and
        extras; bind ``graph`` to re-enable :meth:`validate` /
        :meth:`coloring_array`.
        """
        if payload.get("schema_version") != RESULT_JSON_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported result schema {payload.get('schema_version')!r}"
            )
        result = DecompositionResult.__new__(DecompositionResult)
        result.kind = payload["kind"]
        result.coloring = {
            int(eid): _color_from_json(color)
            for eid, color in payload["coloring"]
        }
        result.graph = graph
        result.stats = payload.get("stats", {})
        result.rounds = None
        result.palettes = None
        result.config = None
        for key in ("bound", "k"):
            if key in payload:
                setattr(result, key, payload[key])
        return result


class OrientationResult(DecompositionResult):
    """A (1+ε)α-orientation (Corollary 1.1) as a protocol result.

    ``coloring`` maps each edge id to its *tail* vertex (the classic
    orientation encoding); each "color class" is therefore the out-edge
    star of one vertex.  ``bound`` is the guaranteed max out-degree.
    """

    kind = "orientation"

    def __init__(self, orientation, bound, rounds=None, stats=None, graph=None):
        self.coloring = orientation
        self.bound = bound
        self.rounds = rounds
        self.stats = stats
        self.graph = graph

    @property
    def orientation(self) -> Dict[int, int]:
        return self.coloring

    def _json_extras(self) -> Tuple[str, ...]:
        return ("bound",)


class PseudoforestResult(DecompositionResult):
    """A (1+ε)α pseudoforest decomposition (the Corollary 1.1
    companion): ``coloring`` maps edge id -> pseudoforest index,
    ``k`` is the guaranteed pseudoforest count."""

    kind = "pseudoforest"

    def __init__(self, coloring, k, rounds=None, stats=None, graph=None):
        self.coloring = coloring
        self.k = k
        self.rounds = rounds
        self.stats = stats
        self.graph = graph

    def _json_extras(self) -> Tuple[str, ...]:
        return ("k",)
