"""Shared statistics containers for the core pipelines."""

from __future__ import annotations

from typing import Optional


class ListForestStats:
    """Diagnostics from the Theorem 4.10 pipeline."""

    def __init__(self) -> None:
        self.k0 = 0  # smallest main-side palette after splitting
        self.k1 = 0  # smallest reserve-side palette after splitting
        self.leftover_size = 0
        self.algorithm2 = None  # Algorithm2Stats of the inner run
        self.reserve_retries = 0  # Las Vegas re-runs after an empty reserve


class StarForestStats:
    """Diagnostics from the Section 5 pipeline."""

    def __init__(self) -> None:
        self.matching_deficits: list = []  # per-vertex t - |M_v|
        self.lll_rounds = 0
        self.leftover_size = 0
        self.orientation_bound = 0
        self.dummy_slots = 0

    @property
    def max_deficit(self) -> int:
        return max(self.matching_deficits, default=0)
