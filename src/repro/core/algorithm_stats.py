"""Typed statistics containers for the core pipelines.

Every task-level stats object is a dataclass deriving from
:class:`TaskStats`: it carries the executed per-pass
:class:`~repro.pipeline.passes.PassStats` records in ``passes``,
indexes like a mapping (``result.stats["passes"]``), and serializes
through an explicit, documented :meth:`TaskStats.to_json` schema
(replacing the old best-effort ``vars()`` walk — the old keys are all
kept, including derived properties like ``max_deficit``, so existing
consumers of ``result.to_json()["stats"]`` see a superset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..pipeline.passes import PassStats


@dataclass
class TaskStats:
    """Base stats record: the per-pass execution history plus mapping
    access over the declared fields.

    ``to_json()`` emits every dataclass field by name; ``passes``
    serializes as a list of :meth:`PassStats.to_json` dicts; nested
    stats objects recurse through their own ``to_json``.
    """

    passes: List[PassStats] = field(default_factory=list)

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key, default)

    def _alias_fields(self) -> Dict[str, Any]:
        """Subclass hook: derived old-key aliases to keep in the JSON
        view (one-release compatibility with the ``vars()`` walk)."""
        return {}

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, value in vars(self).items():
            if name == "passes":
                continue
            if hasattr(value, "to_json"):
                out[name] = value.to_json()
            elif isinstance(value, (list, tuple)):
                out[name] = list(value)
            else:
                out[name] = value
        out.update(self._alias_fields())
        out["passes"] = [p.to_json() for p in self.passes]
        return out


@dataclass
class ListForestStats(TaskStats):
    """Diagnostics from the Theorem 4.10 pipeline."""

    k0: int = 0  # smallest main-side palette after splitting
    k1: int = 0  # smallest reserve-side palette after splitting
    leftover_size: int = 0
    algorithm2: Optional[Any] = None  # Algorithm2Stats of the inner run
    reserve_retries: int = 0  # Las Vegas re-runs after an empty reserve


@dataclass
class StarForestStats(TaskStats):
    """Diagnostics from the Section 5 pipeline."""

    matching_deficits: List[int] = field(default_factory=list)
    lll_rounds: int = 0
    leftover_size: int = 0
    orientation_bound: int = 0
    dummy_slots: int = 0

    @property
    def max_deficit(self) -> int:
        return max(self.matching_deficits, default=0)

    def _alias_fields(self) -> Dict[str, Any]:
        # The vars() walk used to export the property too.
        return {"max_deficit": self.max_deficit}
