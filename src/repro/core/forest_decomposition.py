"""Algorithm 2 and the full (1+ε)α forest-decomposition pipelines
(Theorems 4.1, 4.5, 4.6).

``algorithm2`` is the paper's main loop: a network decomposition of the
power graph ``G^{2(R+R')}`` schedules cluster balls; per cluster, CUT
severs monochromatic escape paths, then every uncolored edge touching
the cluster is colored by a locally-found augmenting sequence.  The
output is a partition ``E = E0 ⊔ E1`` with a list-forest decomposition
on ``E0`` and a small-pseudo-arboricity leftover ``E1``.

``forest_decomposition_algorithm2`` = Theorem 4.6: run Algorithm 2 with
ordinary palettes ``{0..⌈(1+ε')α⌉-1}``, recolor the leftover with fresh
colors via Theorem 2.1, and optionally reduce forest diameters via
Corollary 2.5 (recoloring that pass's deletions as star forests, whose
diameter is 2).

Locality note: the augmenting search is radius-capped at ``R'``; when a
cap is too small for the instance (paper constants are asymptotic) the
search falls back to an uncapped run and the event is counted in
``stats.locality_violations`` — the output is still a valid
decomposition, and benches report the violation rate per regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import AugmentationError, DecompositionError
from ..graph.csr import resolve_backend
from ..graph.multigraph import MultiGraph
from ..graph.traversal import power_graph
from ..local.rounds import RoundCounter, ensure_counter
from ..nashwilliams.arboricity import exact_arboricity
from ..nashwilliams.pseudoarboricity import exact_pseudoarboricity
from ..rng import SeedLike, child_rng, make_rng
from ..decomposition.hpartition import (
    acyclic_orientation,
    h_partition,
    list_forest_decomposition_via_hpartition,
    star_forest_decomposition_via_hpartition,
)
from ..decomposition.network_decomposition import network_decomposition
from ..pipeline import Pass, Pipeline, PipelineContext, Scheduler, resolve_schedule
from .algorithm_stats import TaskStats
from .augmenting import AugmentationStats, augment_edge
from .cut import CutController, is_cut_good
from .diameter_reduction import reduce_diameter
from .partial_coloring import PartialListForestDecomposition
from .results import DecompositionResult

Palettes = Dict[int, Sequence[int]]


def _split_backend(backend: str) -> Tuple[str, str]:
    """``(peel, substrate)`` substrates for a pipeline backend string.

    The sharded backend only specializes threshold peeling (its
    traversal phases run on plain CSR arrays); the parallel backend
    additionally routes the BFS-shaped phases (ball carving,
    color-class scans, diameter reduction) through the shared wave
    engine — ``resolve_backend`` gates each callsite by size.
    """
    if backend == "dict":
        return "dict", "dict"
    if backend == "sharded":
        return "sharded", "csr"
    if backend == "parallel":
        return "sharded", "parallel"
    if backend == "mp":
        return "mp", "mp"
    return "csr", "csr"


@dataclass
class Algorithm2Stats(TaskStats):
    """Diagnostics for benches and tests (typed; explicit
    ``to_json()`` via :class:`~repro.core.algorithm_stats.TaskStats`)."""

    clusters_processed: int = 0
    edges_augmented: int = 0
    locality_violations: int = 0
    cut_removed: int = 0
    cut_fallback_removed: int = 0
    max_cut_load: int = 0
    good_cuts: int = 0
    bad_cuts: int = 0
    max_sequence_length: int = 0
    radius: int = 0
    search_radius: int = 0


class Algorithm2Result:
    """E0/E1 split produced by Algorithm 2 (Theorem 4.5)."""

    def __init__(
        self,
        state: PartialListForestDecomposition,
        stats: Algorithm2Stats,
        rounds: RoundCounter,
    ) -> None:
        self.state = state
        self.stats = stats
        self.rounds = rounds

    @property
    def colored(self) -> Dict[int, int]:
        """E0 with its list-forest coloring."""
        return self.state.colored_edges()

    @property
    def leftover(self) -> List[int]:
        """E1: edges removed by CUT."""
        return self.state.leftover_edges()

    def leftover_orientation(self) -> Dict[int, int]:
        return self.state.leftover_orientation()


def default_radii(n: int, epsilon: float) -> Tuple[int, int]:
    """Practical (R, R') defaults: both Θ(log n / ε) with constant 2.

    The paper's constants are asymptotic; these defaults keep the same
    functional form so the charged-round scaling matches the theory,
    while remaining meaningful at laptop n.
    """
    log_n = max(1.0, math.log2(n + 1))
    r = max(4, math.ceil(2.0 * log_n / max(epsilon, 1e-9)))
    r_prime = max(4, math.ceil(2.0 * log_n / max(epsilon, 1e-9)))
    return r, r_prime


def algorithm2(
    graph: MultiGraph,
    palettes: Palettes,
    epsilon: float,
    alpha: int,
    cut_rule: str = "depth_residue",
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    strict_locality: bool = False,
    backend: str = "auto",
    workers: int = 0,
    carve_rule: str = "doubling",
) -> Algorithm2Result:
    """Run Algorithm 2 on ``graph`` with the given per-edge palettes.

    Parameters
    ----------
    palettes:
        Per-edge palettes; sizes ≥ ⌈(1+ε)α⌉ guarantee every non-leftover
        edge is colored (Theorem 3.2).
    epsilon, alpha:
        The decomposition parameters; ``⌈εα⌉`` is the leftover budget.
    cut_rule:
        ``"depth_residue"`` or ``"conditioned_sampling"`` (Theorem 4.2).
    carve_rule:
        Ball-growth schedule of the network decomposition phase:
        ``"doubling"`` (default) or ``"simultaneous"`` (see
        :func:`~repro.decomposition.network_decomposition`).
    radius, search_radius:
        ``R`` and ``R'``; defaults follow :func:`default_radii`.
    strict_locality:
        If True, a failed radius-capped augmenting search raises instead
        of falling back to an uncapped search.
    backend:
        Graph substrate: ``"auto"`` (default, kernel-backed),
        ``"dict"`` (the byte-identical reference paths throughout),
        ``"csr"``, or ``"sharded"`` (multi-worker peeling waves with
        ``workers`` threads; traversal/color phases run on the same
        CSR arrays as ``"csr"``).  Outputs are identical across
        backends and worker counts (certified by the
        kernel-equivalence suite).
    """
    if backend not in ("auto", "dict", "csr", "sharded", "parallel", "mp"):
        raise DecompositionError(f"unknown backend {backend!r}")
    counter = ensure_counter(rounds)
    rng = make_rng(seed)
    stats = Algorithm2Stats()
    state = PartialListForestDecomposition(
        graph, palettes,
        backend="csr" if backend == "sharded" else backend,
        workers=workers,
    )
    if graph.m == 0:
        return Algorithm2Result(state, stats, counter)

    n = graph.n
    default_r, default_r_prime = default_radii(n, epsilon)
    r = radius if radius is not None else default_r
    r_prime = search_radius if search_radius is not None else default_r_prime
    stats.radius = r
    stats.search_radius = r_prime
    d = r + r_prime

    peel_backend, substrate = _split_backend(backend)
    orientation_j = None
    if cut_rule == "conditioned_sampling":
        with counter.phase("orientation J"):
            pseudo = exact_pseudoarboricity(graph)
            snapshot = None if substrate == "dict" else state.csr_snapshot()
            partition = h_partition(
                graph, max(1, 3 * pseudo), counter,
                backend=peel_backend, snapshot=snapshot, workers=workers,
            )
            orientation_j = acyclic_orientation(
                graph, partition, counter,
                backend=peel_backend, snapshot=snapshot,
            )

    controller = CutController(
        state,
        epsilon,
        alpha,
        rule=cut_rule,
        orientation=orientation_j,
        probability=None,
        seed=child_rng(rng, "cut"),
        rounds=counter,
    )

    with counter.phase("network decomposition"):
        # The run's CSR snapshot feeds the power graph directly: the
        # radius-bounded frontier sweeps assemble G^{2(R+R')} as a CSR
        # snapshot without ever materializing a dict multigraph, and the
        # ball carving consumes it on the same arrays.  Clusters are
        # identical to the dict reference path (kernel-equivalence
        # suite + golden regression certify this).
        if substrate == "dict":
            power = power_graph(
                graph, max(1, min(2 * d, 2 * n)), backend="dict"
            )
        else:
            power = power_graph(
                state.csr_snapshot(), max(1, min(2 * d, 2 * n)), backend="csr"
            )
        nd = network_decomposition(
            power, counter, radius_cost=2 * d, backend=substrate,
            workers=workers, carve_rule=carve_rule,
        )

    log_n = max(1, math.ceil(math.log2(n + 1)))
    with counter.phase("cluster processing"):
        for clusters in nd.classes:
            with counter.parallel():
                for cluster in clusters:
                    _process_cluster(
                        graph,
                        state,
                        controller,
                        cluster,
                        r,
                        r_prime,
                        stats,
                        strict_locality,
                        counter,
                    )
            counter.charge(2 * d * log_n, "class simulation")

    stats.cut_removed = controller.stats.removed_edges
    stats.cut_fallback_removed = controller.stats.fallback_removed
    stats.max_cut_load = controller.stats.max_load
    return Algorithm2Result(state, stats, counter)


def _process_cluster(
    graph: MultiGraph,
    state: PartialListForestDecomposition,
    controller: CutController,
    cluster: Sequence[int],
    r: int,
    r_prime: int,
    stats: Algorithm2Stats,
    strict_locality: bool,
    counter: RoundCounter,
) -> None:
    stats.clusters_processed += 1
    snapshot = state.csr_snapshot()
    core = snapshot.neighborhood_set(cluster, r_prime)  # C' = N^{R'}(C)
    controller.cut(core, r)
    if is_cut_good(state, core, r):
        stats.good_cuts += 1
    else:
        stats.bad_cuts += 1

    cluster_set = set(cluster)
    pending = [
        eid
        for eid in state.uncolored_edges()
        if any(v in cluster_set for v in graph.endpoints(eid))
    ]
    for eid in sorted(pending):
        if state.color_of(eid) is not None or state.is_leftover(eid):
            continue
        u, v = graph.endpoints(eid)
        ball = snapshot.neighborhood_set((u, v), r_prime)
        search_stats = AugmentationStats()
        try:
            sequence = augment_edge(state, eid, ball, stats=search_stats)
        except AugmentationError:
            if strict_locality:
                raise
            stats.locality_violations += 1
            sequence = augment_edge(state, eid, None, stats=search_stats)
        stats.edges_augmented += 1
        stats.max_sequence_length = max(
            stats.max_sequence_length, len(sequence)
        )


# ----------------------------------------------------------------------
# Theorem 4.6: ordinary (1+ε)α forest decomposition
# ----------------------------------------------------------------------


class ForestDecompositionResult(DecompositionResult):
    """Final (1+ε)α-FD: coloring + provenance + accounting.

    Implements the uniform result protocol
    (:class:`~repro.core.results.DecompositionResult`): ``forests()``,
    ``coloring_array()``, ``validate()``, ``to_json()``.
    """

    kind = "forest"

    def __init__(
        self,
        graph: MultiGraph,
        coloring: Dict[int, int],
        alpha: int,
        epsilon: float,
        colors_used: int,
        rounds: RoundCounter,
        stats: Algorithm2Stats,
        leftover_size: int,
    ) -> None:
        self.graph = graph
        self.coloring = coloring
        self.alpha = alpha
        self.epsilon = epsilon
        self.colors_used = colors_used
        self.rounds = rounds
        self.stats = stats
        self.leftover_size = leftover_size

    @property
    def color_budget(self) -> int:
        """The (1+ε)α target the run was configured for."""
        return max(1, math.ceil((1.0 + self.epsilon) * self.alpha))


def _forest_setup(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    alpha = ctx["alpha"]
    if alpha is None:
        alpha = exact_arboricity(graph)
        ctx["alpha"] = alpha
    ctx["empty"] = alpha == 0
    if ctx["empty"]:
        return
    eps_prime = ctx["epsilon"] / 6.0
    base_colors = max(1, math.ceil((1.0 + eps_prime) * alpha))
    ctx["eps_prime"] = eps_prime
    ctx["base_colors"] = base_colors
    ctx["palettes"] = {eid: range(base_colors) for eid in graph.edge_ids()}
    ctx.note(vertices_touched=graph.n)


def _forest_algorithm2(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    with counter.phase("algorithm2"):
        result = algorithm2(
            ctx["graph"],
            ctx["palettes"],
            ctx["eps_prime"],
            ctx["alpha"],
            cut_rule=ctx["cut_rule"],
            radius=ctx["radius"],
            search_radius=ctx["search_radius"],
            seed=child_rng(ctx["rng"], "alg2"),
            rounds=counter,
            backend=ctx["backend"],
            workers=ctx["workers"],
            carve_rule=ctx["carve_rule"],
        )
    ctx["alg2"] = result
    ctx["coloring"] = dict(result.colored)
    ctx["next_color"] = ctx["base_colors"]
    ctx["leftover"] = result.leftover
    ctx.note(reconcile_volume=len(ctx["coloring"]))


def _forest_leftover_recolor(ctx: PipelineContext) -> None:
    if ctx["empty"]:
        return
    counter = ctx.counter
    peel_backend, _substrate = _split_backend(ctx["backend"])
    with counter.phase("leftover recoloring"):
        ctx["next_color"] = _recolor_fresh(
            ctx["graph"], ctx["leftover"], ctx["coloring"],
            ctx["next_color"], counter,
            as_star_forests=ctx["diameter_mode"] is not None,
            backend=peel_backend,
            workers=ctx["workers"],
        )
    ctx.note(reconcile_volume=len(ctx["leftover"]))


def _forest_diameter_reduce(ctx: PipelineContext) -> None:
    if ctx["empty"] or ctx["diameter_mode"] is None:
        return
    counter = ctx.counter
    peel_backend, _substrate = _split_backend(ctx["backend"])
    with counter.phase("diameter reduction"):
        reduction = reduce_diameter(
            ctx["graph"],
            ctx["coloring"],
            ctx["epsilon"] / 6.0,
            ctx["alpha"],
            mode=ctx["diameter_mode"],
            seed=child_rng(ctx["rng"], "diam"),
            rounds=counter,
            backend=ctx["backend"],
            workers=ctx["workers"],
            schedule=ctx.schedule,
        )
        ctx["coloring"] = dict(reduction.kept)
        ctx["next_color"] = _recolor_fresh(
            ctx["graph"],
            reduction.deleted,
            ctx["coloring"],
            ctx["next_color"],
            counter,
            as_star_forests=True,
            backend=peel_backend,
            workers=ctx["workers"],
        )
    ctx.note(
        items=len(set(ctx["coloring"].values())),
        reconcile_volume=len(reduction.deleted),
    )


def _forest_finalize(ctx: PipelineContext) -> None:
    graph = ctx["graph"]
    if ctx["empty"]:
        ctx["result"] = ForestDecompositionResult(
            graph, {}, 0, ctx["epsilon"], 0, ctx.counter,
            Algorithm2Stats(), 0,
        )
        return
    coloring = ctx["coloring"]
    colors_used = len(set(coloring.values()))
    ctx["result"] = ForestDecompositionResult(
        graph,
        coloring,
        ctx["alpha"],
        ctx["epsilon"],
        colors_used,
        ctx.counter,
        ctx["alg2"].stats,
        len(ctx["leftover"]),
    )


#: Theorem 4.6 as a declared pass DAG (a dependency chain: each stage
#: consumes the previous stage's coloring, so levels are singletons and
#: the concurrency lives inside the diameter pass's batched rooting).
FOREST_PIPELINE = Pipeline(
    "forest",
    [
        Pass(
            "setup", _forest_setup,
            writes=("alpha", "empty", "eps_prime", "base_colors", "palettes"),
            description="resolve α (Gabow–Westermann exact) and build "
                        "the (1+ε/6)α ordinary palettes",
            citation="Theorem 4.6 budget split",
        ),
        Pass(
            "algorithm2", _forest_algorithm2, deps=("setup",),
            reads=("graph", "palettes", "eps_prime", "alpha"),
            writes=("alg2", "coloring", "next_color", "leftover"),
            description="Algorithm 2: network decomposition schedules "
                        "cluster balls; CUT + augmenting sequences "
                        "color E0",
            citation="Theorem 4.5",
        ),
        Pass(
            "leftover_recolor", _forest_leftover_recolor,
            deps=("algorithm2",),
            reads=("leftover",), writes=("coloring", "next_color"),
            description="recolor the CUT leftover with fresh colors "
                        "via an H-partition",
            citation="Theorem 2.1(4)",
        ),
        Pass(
            "diameter_reduce", _forest_diameter_reduce,
            deps=("leftover_recolor",),
            reads=("coloring",), writes=("coloring", "next_color"),
            description="depth-cut every color class at a random "
                        "residue mod z, recolor deletions as star "
                        "forests (no-op unless diameter_mode is set)",
            citation="Corollary 2.5",
        ),
        Pass(
            "finalize", _forest_finalize, deps=("diameter_reduce",),
            reads=("coloring",), writes=("result",),
            description="assemble the ForestDecompositionResult",
        ),
    ],
    description="Theorem 4.6: (1+ε)α forest decomposition",
)


def forest_decomposition_algorithm2(
    graph: MultiGraph,
    epsilon: float,
    alpha: Optional[int] = None,
    cut_rule: str = "depth_residue",
    diameter_mode: Optional[str] = None,
    seed: SeedLike = None,
    rounds: Optional[RoundCounter] = None,
    radius: Optional[int] = None,
    search_radius: Optional[int] = None,
    backend: str = "auto",
    workers: int = 0,
    carve_rule: str = "doubling",
    schedule: str = "auto",
) -> ForestDecompositionResult:
    """Theorem 4.6: a (1+ε)α-forest decomposition of a multigraph.

    Budget split (ε' = ε/6 each): Algorithm 2 colors E0 with
    ⌈(1+ε')α⌉ colors; the CUT leftover (pseudo-arboricity ≤ ⌈ε'α⌉) is
    recolored with fresh colors via Theorem 2.1(4); with
    ``diameter_mode`` in {"strong", "safe", "auto"} a Corollary 2.5
    pass then bounds forest diameters, recoloring its own deletions as
    star forests (diameter 2).

    Executes :data:`FOREST_PIPELINE` under ``schedule`` (``"auto"`` /
    ``"serial"`` / ``"concurrent"``); outputs are bit-identical across
    schedules, and the executed per-pass records land in
    ``result.stats["passes"]``.
    """
    counter = ensure_counter(rounds)
    ctx = PipelineContext(
        counter=counter,
        values={
            "graph": graph,
            "epsilon": epsilon,
            "alpha": alpha,
            "cut_rule": cut_rule,
            "diameter_mode": diameter_mode,
            "rng": make_rng(seed),
            "radius": radius,
            "search_radius": search_radius,
            "backend": backend,
            "workers": workers,
            "carve_rule": carve_rule,
        },
    )
    scheduler = Scheduler(resolve_schedule(graph, schedule), workers)
    result = scheduler.run(FOREST_PIPELINE, ctx)
    result.stats.passes = ctx.pass_stats
    return result


def _recolor_fresh(
    graph: MultiGraph,
    eids: Sequence[int],
    coloring: Dict[int, int],
    next_color: int,
    counter: RoundCounter,
    as_star_forests: bool,
    backend: str = "csr",
    workers: int = 0,
) -> int:
    """Color ``eids`` with fresh colors starting at ``next_color`` via
    Theorem 2.1; returns the next unused color index."""
    if not eids:
        return next_color
    sub = graph.edge_subgraph(eids)
    pseudo = max(1, exact_pseudoarboricity(sub))
    threshold = max(1, math.floor(2.5 * pseudo))
    # Re-resolve per subgraph: the leftover is usually far below the
    # sharding cutoff even when the host graph runs sharded.
    peel = resolve_backend(sub, backend, DecompositionError, peeling=True)
    partition = h_partition(
        sub, threshold, counter, backend=peel, workers=workers
    )
    if as_star_forests:
        star = star_forest_decomposition_via_hpartition(sub, partition, counter)
        labels = sorted(set(star.values()))
        index = {label: next_color + i for i, label in enumerate(labels)}
        for eid, label in star.items():
            coloring[eid] = index[label]
        return next_color + len(labels)
    t = threshold
    palettes = {eid: range(next_color, next_color + t) for eid in sub.edge_ids()}
    lfd = list_forest_decomposition_via_hpartition(sub, partition, palettes, counter)
    used = sorted(set(lfd.values()))
    remap = {c: next_color + i for i, c in enumerate(used)}
    for eid, c in lfd.items():
        coloring[eid] = remap[c]
    return next_color + len(used)
