"""One configuration object for every decomposition task.

Before this module each public entry point grew its own kwarg set
(``diameter_mode`` on forests, ``method`` on orientations, ``splitting``
on list forests, ...), which made it impossible to hold "how we
decompose" as a value — to serialize it next to a result, to share it
across the tasks of a :class:`~repro.core.session.Session`, or to sweep
it in a benchmark.  :class:`DecompositionConfig` is that value: the
knobs every task understands, JSON round-trippable, with task-specific
extras carried in :attr:`DecompositionConfig.options`.

Semantics of the shared fields:

* ``epsilon`` — excess-color budget; ``None`` means "this task's
  conventional default" (0.5 for forests, 0.25 for star forests, ...),
  resolved at dispatch time by the task spec.
* ``alpha`` — arboricity if known; ``None`` defers to the session's
  memoized exact computation (Gabow–Westermann ground truth).
* ``seed`` — root of the deterministic RNG tree; equal seeds reproduce
  results bit-for-bit.
* ``backend`` — graph-substrate name resolved through the backend
  registry: ``"auto"`` (default), ``"dict"`` (byte-identical reference
  paths), ``"csr"`` (flat-array kernel), ``"sharded"`` (multi-worker
  peeling waves at ``n >= 50k``, csr below), ``"parallel"`` (the full
  wave-engine substrate: sharded peeling plus engine-backed BFS paths
  — ball carving, color-class scans, diameter reduction), ``"mp"``
  (the same substrate on worker *processes*: shard kernels ship as
  shared-memory descriptors to a spawn-safe process pool — true
  multi-core, no GIL), or any registered name.
* ``workers`` — worker count for the wave-engine backends
  (``sharded`` / ``parallel`` / ``mp``); ``0`` (default) auto-sizes
  to the machine (one cached ``REPRO_SHARD_WORKERS`` /
  ``REPRO_MP_WORKERS`` read, cores otherwise).  Results are
  bit-identical for every value, so this is purely a throughput knob.
* ``diameter_mode`` — forest-diameter bounding per Corollary 2.5:
  ``None`` (unbounded), ``"safe"``, ``"strong"``, or ``"auto"``.
* ``cut_rule`` — CUT implementation per Theorem 4.2.
* ``carve_rule`` — ball-growth schedule of the network decomposition:
  ``"doubling"`` (default; one ball at a time, grow until the next
  shell stops doubling it) or ``"simultaneous"`` (every unvisited
  vertex is a live seed on a staggered start; contested vertices
  resolve by ``(level, seed id)``, so output stays bit-identical for
  every worker and shard count while the carve waves are finally wide
  enough for the engine to fan out).
* ``validation`` — ``"none"`` (default), ``"basic"`` (structural
  checks via :mod:`repro.verify` after the run), or ``"full"``
  (structure + palette membership where applicable).
* ``schedule`` — how the task's declared pass pipeline executes:
  ``"serial"`` (topological order, the bit-identical reference),
  ``"concurrent"`` (independent passes and per-color-class fan-outs
  overlap on the wave engine's pools / batched kernels), or
  ``"auto"`` (default; concurrent at ``n >= 50k`` or under
  ``REPRO_FORCE_PARALLEL=1``, matching the backend auto-gating).
  Outputs are bit-identical across schedules — purely a throughput
  knob, like ``workers``.
* ``delta_mode`` — how :meth:`~repro.core.session.Session.apply_delta`
  maintains watched decompositions under edge-stream mutations:
  ``"auto"`` (default; repair the dirty cascade incrementally, fall
  back to a full recompute when the dirty fraction crosses
  ``delta_threshold``), ``"incremental"`` (never fall back on dirty
  fraction — still recomputes when repair is structurally
  impossible), or ``"full"`` (always recompute from scratch).  The
  post-delta result is bit-identical in every mode — this is purely a
  latency knob.
* ``delta_threshold`` — dirty-fraction cutoff for ``delta_mode="auto"``
  in ``[0, 1]``: when more than ``delta_threshold * n`` vertices
  change their H-partition wave during repair, the delta engine
  abandons the cascade and recomputes from scratch.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ValidationError
from ..rng import SeedLike

VALIDATION_LEVELS = ("none", "basic", "full")
CARVE_RULES = ("doubling", "simultaneous")
SCHEDULE_MODES = ("auto", "serial", "concurrent")
DELTA_MODES = ("auto", "incremental", "full")


@dataclass(frozen=True)
class DecompositionConfig:
    """Shared knobs for every task run through the registry."""

    epsilon: Optional[float] = None
    alpha: Optional[int] = None
    seed: SeedLike = None
    backend: str = "auto"
    workers: int = 0
    diameter_mode: Optional[str] = None
    cut_rule: str = "depth_residue"
    carve_rule: str = "doubling"
    validation: str = "none"
    schedule: str = "auto"
    delta_mode: str = "auto"
    delta_threshold: float = 0.25
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ValidationError(
                f"workers must be a nonnegative int (0 = auto), "
                f"got {self.workers!r}"
            )
        if self.validation not in VALIDATION_LEVELS:
            raise ValidationError(
                f"unknown validation level {self.validation!r}; "
                f"expected one of {VALIDATION_LEVELS}"
            )
        if self.diameter_mode not in (None, "safe", "strong", "auto"):
            raise ValidationError(
                f"unknown diameter_mode {self.diameter_mode!r}"
            )
        if self.carve_rule not in CARVE_RULES:
            raise ValidationError(
                f"unknown carve_rule {self.carve_rule!r}; "
                f"expected one of {CARVE_RULES}"
            )
        if self.schedule not in SCHEDULE_MODES:
            raise ValidationError(
                f"unknown schedule {self.schedule!r}; "
                f"expected one of {SCHEDULE_MODES}"
            )
        if self.epsilon is not None and self.epsilon <= 0:
            raise ValidationError(
                f"epsilon must be positive, got {self.epsilon}"
            )
        if self.delta_mode not in DELTA_MODES:
            raise ValidationError(
                f"unknown delta_mode {self.delta_mode!r}; "
                f"expected one of {DELTA_MODES}"
            )
        if (
            not isinstance(self.delta_threshold, (int, float))
            or isinstance(self.delta_threshold, bool)
            or not 0.0 <= self.delta_threshold <= 1.0
        ):
            raise ValidationError(
                f"delta_threshold must be a fraction in [0, 1], "
                f"got {self.delta_threshold!r}"
            )

    # -- evolution ------------------------------------------------------

    def replace(self, **changes: Any) -> "DecompositionConfig":
        """A copy with ``changes`` applied (the config is frozen)."""
        return dataclasses.replace(self, **changes)

    def with_defaults(self, epsilon: float) -> "DecompositionConfig":
        """Resolve ``epsilon=None`` against a task's default."""
        if self.epsilon is not None:
            return self
        return self.replace(epsilon=epsilon)

    # -- serialization --------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict; inverse of :meth:`from_json`."""
        payload = dataclasses.asdict(self)
        if not _json_roundtrips(payload["seed"]):
            raise ValidationError(
                f"seed {self.seed!r} is not JSON-serializable; use an "
                "int/str seed for configs that must round-trip"
            )
        for key, value in payload["options"].items():
            if not _json_roundtrips(value):
                raise ValidationError(
                    f"options[{key!r}] = {value!r} is not "
                    "JSON-serializable; configs that must round-trip "
                    "need plain JSON option values"
                )
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "DecompositionConfig":
        """Rebuild a config from :meth:`to_json` output.

        Unknown keys raise so that configs written by a newer library
        version fail loudly instead of being silently truncated.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown DecompositionConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)


def _json_roundtrips(value: Any) -> bool:
    try:
        json.dumps(value)
    except TypeError:
        return False
    return True
