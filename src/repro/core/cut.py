"""CUT: breaking monochromatic paths out of cluster balls (Theorem 4.2).

Given a partial forest decomposition and a cluster ball ``C'``,
``CUT(C', R)`` must remove edges from ``E(N^R(C')) \\ E(C')`` so that no
monochromatic path connects ``C'`` to ``V \\ N^R(C')`` ("the execution
is good"), while the removed ("leftover") edges keep pseudo-arboricity
at most ``⌈εα⌉``.  The paper gives four parameter/rule combinations; we
implement the two mechanisms behind them:

* **Depth-residue cutting** (rules 1, 2): root every tree of the
  c-colored ring forest at the cluster boundary and delete the edges
  whose depth is congruent to a per-color random residue ``J_c mod N``;
  every surviving ring chain is shorter than ``2N <= R``, so the cut is
  *always* good.  Each deleted edge is oriented away from its child,
  and a vertex loses each specific parent edge with probability
  ``1/N`` — the negative-correlation Chernoff argument of Theorem
  4.2(2) bounds the leftover out-degree by ``εα`` w.h.p.

* **Conditioned sampling** (rules 3, 4, extending [SV19b]): a fixed
  3α*-orientation ``J`` is computed once; on each invocation every
  vertex with load ``L(v) < εα`` deletes, with probability ``p``, one
  random present out-edge.  Loads never exceed ``⌈εα⌉`` by
  construction, so the leftover bound holds with probability one; the
  cut is good w.h.p. for the paper's ``p``, and a deterministic
  depth-residue fallback repairs any surviving path (counted in
  ``stats`` — at the paper's asymptotic parameters the fallback never
  fires).

All removals go through
:meth:`~repro.core.partial_coloring.PartialListForestDecomposition.remove_to_leftover`
with the charged tail vertex, so validators can re-check the
out-degree accounting."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DecompositionError
from ..graph.forests import RootedForest
from ..graph.multigraph import MultiGraph
from ..graph.traversal import neighborhood
from ..local.rounds import RoundCounter, ensure_counter
from ..rng import SeedLike, make_rng
from .partial_coloring import PartialListForestDecomposition


class CutStats:
    """Counters for the Figure 3 / Theorem 4.2 benches."""

    def __init__(self) -> None:
        self.invocations = 0
        self.removed_edges = 0
        self.fallback_removed = 0
        self.max_load = 0


class CutController:
    """Stateful CUT executor shared across all invocations of one
    Algorithm 2 run (the conditioned-sampling rule keeps per-vertex
    loads and a fixed orientation between invocations).

    Parameters
    ----------
    state:
        The partial decomposition being protected.
    epsilon, alpha:
        Decomposition parameters; the leftover budget is ``⌈εα⌉`` per
        vertex (out-degree in the recorded orientation).
    rule:
        ``"depth_residue"`` (Theorem 4.2(1)/(2)) or
        ``"conditioned_sampling"`` (Theorem 4.2(3)/(4)).
    orientation:
        For conditioned sampling: the fixed 3α*-orientation ``J``
        (edge id -> tail vertex).  Required for that rule.
    probability:
        For conditioned sampling: the deletion probability ``p``
        (defaults to the Lemma 4.4 schedule with η = 1/2).
    """

    def __init__(
        self,
        state: PartialListForestDecomposition,
        epsilon: float,
        alpha: int,
        rule: str = "depth_residue",
        orientation: Optional[Dict[int, int]] = None,
        probability: Optional[float] = None,
        seed: SeedLike = None,
        rounds: Optional[RoundCounter] = None,
    ) -> None:
        if rule not in ("depth_residue", "conditioned_sampling"):
            raise DecompositionError(f"unknown CUT rule {rule!r}")
        if rule == "conditioned_sampling" and orientation is None:
            raise DecompositionError(
                "conditioned_sampling requires a fixed orientation J"
            )
        self.state = state
        self.graph = state.graph
        self.epsilon = epsilon
        self.alpha = alpha
        self.rule = rule
        self.orientation = orientation
        self.probability = probability
        self.rng = make_rng(seed)
        self.rounds = ensure_counter(rounds)
        self.load: Dict[int, int] = {v: 0 for v in self.graph.vertices()}
        self.load_budget = max(1, math.ceil(epsilon * alpha))
        self.stats = CutStats()
        # Flat-array snapshot shared with the augmenting searches: the
        # region BFS and the E(N^R(C')) \ E(C') scan run vectorized.
        self.snapshot = state.csr_snapshot()

    # ------------------------------------------------------------------

    def cut(self, core: Set[int], radius: int) -> List[int]:
        """Execute CUT(core, R); returns the removed edge ids."""
        self.stats.invocations += 1
        region_mask = self.snapshot.neighborhood_mask(core, radius)
        region = self.snapshot.vertex_set_from_mask(region_mask)
        removable = self._removable_edges(core, region_mask)
        if self.rule == "depth_residue":
            removed = self._cut_depth_residue(core, region, removable, radius)
        else:
            removed = self._cut_conditioned_sampling(core, region, removable)
            repair = self._repair_if_bad(core, region, removable, radius)
            removed.extend(repair)
        self.stats.removed_edges += len(removed)
        if self.load:
            self.stats.max_load = max(self.stats.max_load, max(self.load.values()))
        self.rounds.charge(2 * radius + 1, "CUT invocation")
        return removed

    def _removable_edges(self, core: Set[int], region_mask) -> Set[int]:
        """E(N^R(core)) \\ E(core): candidates for removal.

        ``region_mask`` is the dense-index membership mask of
        ``N^R(core)``; the both-endpoints tests evaluate as three array
        ops instead of a Python loop over every edge.
        """
        snap = self.snapshot
        if snap.num_edges == 0:
            return set()
        core_mask = snap.mask_of(core)
        in_region = region_mask[snap.edge_u] & region_mask[snap.edge_v]
        in_core = core_mask[snap.edge_u] & core_mask[snap.edge_v]
        return set(snap.edge_id[in_region & ~in_core].tolist())

    # -- depth-residue rule ---------------------------------------------

    def _cut_depth_residue(
        self,
        core: Set[int],
        region: Set[int],
        removable: Set[int],
        radius: int,
    ) -> List[int]:
        modulus = max(1, radius // 2)
        removed: List[int] = []
        for color in sorted(self.state.used_colors()):
            ring_edges = [
                eid
                for eid in self.state.class_edges(color)
                if eid in removable and self.state.color_of(eid) == color
            ]
            if not ring_edges:
                continue
            forest = RootedForest(self.graph, ring_edges, roots=core)
            residue = self.rng.randrange(modulus)
            for eid in forest.edges_at_depth_residue(residue, modulus):
                u, v = self.graph.endpoints(eid)
                # Orient away from the child (deeper endpoint).
                child = u if forest.depth[u] > forest.depth[v] else v
                self.state.remove_to_leftover(eid, tail=child)
                self.load[child] += 1
                removed.append(eid)
        return removed

    # -- conditioned-sampling rule ----------------------------------------

    def default_probability(self, radius: int, total_classes: int) -> float:
        """The Lemma 4.4 schedule ``p = K α log n / (η R)`` with η = 1/2,
        clamped to [0, 1]; K is folded into a practical constant."""
        n = max(self.graph.n, 2)
        value = 2.0 * self.alpha * math.log(n) / max(1, radius)
        return min(1.0, value / max(1, total_classes))

    def _cut_conditioned_sampling(
        self, core: Set[int], region: Set[int], removable: Set[int]
    ) -> List[int]:
        assert self.orientation is not None
        p = self.probability if self.probability is not None else 0.5
        out_edges: Dict[int, List[int]] = {}
        for eid in removable:
            if self.state.is_leftover(eid):
                continue
            tail = self.orientation[eid]
            out_edges.setdefault(tail, []).append(eid)
        removed: List[int] = []
        for vertex in sorted(out_edges):
            if self.load[vertex] >= self.load_budget:
                continue
            if self.rng.random() >= p:
                continue
            eid = self.rng.choice(sorted(out_edges[vertex]))
            self.state.remove_to_leftover(eid, tail=vertex)
            self.load[vertex] += 1
            removed.append(eid)
        return removed

    # -- goodness ---------------------------------------------------------

    def _repair_if_bad(
        self,
        core: Set[int],
        region: Set[int],
        removable: Set[int],
        radius: int,
    ) -> List[int]:
        """Force-cut any monochromatic escape path the sampling missed,
        using the depth-residue rule on the offending colors only."""
        removed: List[int] = []
        for color in sorted(self.state.used_colors()):
            if self._color_escapes(core, region, color):
                before = len(removed)
                modulus = max(1, radius // 2)
                ring_edges = [
                    eid
                    for eid in self.state.class_edges(color)
                    if eid in removable
                ]
                if not ring_edges:
                    continue
                forest = RootedForest(self.graph, ring_edges, roots=core)
                residue = self.rng.randrange(modulus)
                for eid in forest.edges_at_depth_residue(residue, modulus):
                    u, v = self.graph.endpoints(eid)
                    child = u if forest.depth[u] > forest.depth[v] else v
                    self.state.remove_to_leftover(eid, tail=child)
                    self.load[child] += 1
                    removed.append(eid)
                self.stats.fallback_removed += len(removed) - before
        return removed

    def _color_escapes(self, core: Set[int], region: Set[int], color: int) -> bool:
        """True if a color-``color`` path leaves ``region`` from ``core``."""
        for start in core:
            reached = self.state.color_component_vertices(start, color)
            if any(v not in region for v in reached):
                return True
        return False


def is_cut_good(
    state: PartialListForestDecomposition,
    core: Set[int],
    radius: int,
) -> bool:
    """Check the goodness condition of Algorithm 2 for one cluster:
    no monochromatic path from ``core`` reaches outside ``N^R(core)``."""
    region = neighborhood(state.graph, core, radius)
    for color in state.used_colors():
        seen: Set[int] = set()
        for start in core:
            if start in seen:
                continue
            component = state.color_component_vertices(start, color)
            seen.update(component)
            if any(v not in region for v in component):
                return False
    return True
