"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Validation failures carry enough context to
debug which invariant broke (color, edge, vertex).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (unknown vertex/edge, bad input)."""


class DecompositionError(ReproError):
    """A decomposition routine could not produce a valid result."""


class ValidationError(ReproError):
    """An output failed verification against its specification."""


class AugmentationError(DecompositionError):
    """No augmenting sequence could be found for an uncolored edge."""


class PaletteError(DecompositionError):
    """An edge palette is too small or a color is outside the palette."""


class ConvergenceError(DecompositionError):
    """A randomized procedure exhausted its retry budget."""


class ReservePaletteError(DecompositionError):
    """A leftover edge drew an empty reserve palette (the Theorem 4.9
    guarantee is only w.h.p.; callers convert it to Las Vegas by
    retrying with a fresh stream)."""


class RegistryError(ReproError):
    """Unknown or conflicting task/backend name in the decomposition
    registry (see :mod:`repro.core.registry`)."""


class LocalModelError(ReproError):
    """Misuse of the LOCAL simulator (message after halt, bad neighbor)."""
