"""Round accounting for the LOCAL model.

The composite algorithms in this library (Algorithm 2, the star-forest
pipeline, ...) are executed centrally but *locality-faithfully*: every
step only reads neighborhoods the distributed algorithm could see, and
charges the number of synchronous LOCAL rounds its distributed
counterpart would spend.  :class:`RoundCounter` accumulates those
charges, hierarchically labelled, so benches can report both total
round complexity and a per-phase breakdown.

Charging conventions (mirroring Section 1.1 and Theorem 4.1):

* simulating the power graph ``G^r`` costs ``r`` rounds of ``G``;
* collecting the radius-``r`` neighborhood of every vertex costs ``r``;
* processing a cluster of weak diameter ``d`` centrally costs ``O(d)``
  rounds (gather + scatter); we charge ``2 d + 1``;
* one synchronous message exchange costs 1 round.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class RoundCounter:
    """Hierarchical LOCAL-round accounting.

    Charges are attributed to the current label path (set with the
    :meth:`phase` context manager), e.g. ``algorithm2/network_decomposition``.
    Parallel structure matters in the LOCAL model: work done by distinct
    clusters of the same network-decomposition class happens in the same
    rounds.  Use :meth:`parallel` to record the *maximum* of a group of
    charges instead of their sum.
    """

    def __init__(self) -> None:
        self.total = 0
        self._by_phase: Dict[str, int] = {}
        self._stack: List[str] = []
        self._parallel_depth = 0
        self._parallel_max = 0

    # -- charging -------------------------------------------------------

    def charge(self, rounds: int, note: str = "") -> None:
        """Charge ``rounds`` LOCAL rounds to the current phase."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds: {rounds}")
        if self._parallel_depth > 0:
            self._parallel_max = max(self._parallel_max, rounds)
            return
        self.total += rounds
        key = "/".join(self._stack) if self._stack else "(top)"
        self._by_phase[key] = self._by_phase.get(key, 0) + rounds

    def charge_power_graph(self, radius: int) -> None:
        """Simulating ``G^r`` from ``G`` costs ``r`` rounds."""
        self.charge(max(0, radius), "power graph simulation")

    def charge_neighborhood(self, radius: int) -> None:
        """Gathering radius-``r`` balls costs ``r`` rounds."""
        self.charge(max(0, radius), "neighborhood gather")

    def charge_cluster(self, weak_diameter: int) -> None:
        """Central processing of a cluster: gather + scatter."""
        self.charge(2 * max(0, weak_diameter) + 1, "cluster processing")

    # -- structure ------------------------------------------------------

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute nested charges to ``label``."""
        self._stack.append(label)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def parallel(self) -> Iterator[None]:
        """Record the max (not the sum) of charges made inside.

        Models clusters of one network-decomposition class working in
        the same synchronous rounds.
        """
        self._parallel_depth += 1
        outer_max = self._parallel_max
        self._parallel_max = 0
        try:
            yield
        finally:
            self._parallel_depth -= 1
            group_max = self._parallel_max
            self._parallel_max = outer_max
            if self._parallel_depth > 0:
                self._parallel_max = max(self._parallel_max, group_max)
            else:
                self.charge(group_max, "parallel group")

    # -- reporting ------------------------------------------------------

    def by_phase(self) -> Dict[str, int]:
        """Copy of the per-phase totals."""
        return dict(self._by_phase)

    def report(self) -> str:
        """Human-readable multi-line accounting report."""
        lines = [f"total LOCAL rounds: {self.total}"]
        for key in sorted(self._by_phase):
            lines.append(f"  {key}: {self._by_phase[key]}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RoundCounter(total={self.total})"


def ensure_counter(counter: Optional[RoundCounter]) -> RoundCounter:
    """Return ``counter`` or a fresh one — lets every algorithm accept
    ``rounds=None`` without littering call sites with conditionals."""
    return counter if counter is not None else RoundCounter()
