"""LOCAL model: synchronous simulator, node programs, round accounting."""

from .network import LocalNetwork, NodeAlgorithm, NodeView, broadcast_gather
from .rounds import RoundCounter, ensure_counter
from .algorithms import (
    cole_vishkin_iterations,
    run_distributed_hpartition,
    run_distributed_list_forest_coloring,
    run_distributed_tree_coloring,
)

__all__ = [
    "LocalNetwork",
    "NodeAlgorithm",
    "NodeView",
    "broadcast_gather",
    "RoundCounter",
    "ensure_counter",
    "run_distributed_hpartition",
    "run_distributed_tree_coloring",
    "run_distributed_list_forest_coloring",
    "cole_vishkin_iterations",
]
