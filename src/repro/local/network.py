"""Synchronous message-passing simulator for the distributed LOCAL model.

In the LOCAL model (Linial), computation proceeds in synchronized
rounds; per round every vertex (1) sends one message of unbounded size
to each neighbor, (2) receives its neighbors' messages, (3) does
arbitrary local computation.  Vertices have unique O(log n)-bit ids.
Round complexity = number of rounds until every vertex halts with its
part of the output.

This module runs genuine node programs under that discipline.  A node
program subclasses :class:`NodeAlgorithm`; the simulator enforces that
a node sees *only* messages from its graph neighbors and its own local
state — the isolation the LOCAL model promises.

The heavyweight decomposition algorithms of the paper are run under the
charging model of :mod:`repro.local.rounds` instead, but the primitive
building blocks (H-partition, Cole–Vishkin) also have genuine node
programs in :mod:`repro.local.algorithms`, and tests cross-check the
two implementations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import LocalModelError
from ..graph.multigraph import MultiGraph


class NodeView:
    """What a single node is allowed to see: its id, degree, ports.

    Ports number the incident edges ``0..deg-1``; a message sent on a
    port is delivered to the node at the other end of that edge.  Port
    numbering hides neighbor ids (nodes may still learn them through
    messages, as the LOCAL model allows).
    """

    def __init__(self, node_id: int, ports: List[Tuple[int, int]]) -> None:
        self.node_id = node_id
        self._ports = ports  # list of (edge id, neighbor) per port

    @property
    def degree(self) -> int:
        return len(self._ports)

    def edge_of_port(self, port: int) -> int:
        """Edge id behind ``port`` (edge ids are public in our graphs)."""
        return self._ports[port][0]


class NodeAlgorithm:
    """Base class for LOCAL node programs.

    Lifecycle per node: ``init(view)`` once; then each round
    ``send() -> {port: message}`` followed by
    ``receive({port: message})``.  A node halts by setting
    ``self.halted = True``; its output is read from ``self.output``.
    The simulator keeps delivering messages to halted nodes' neighbors
    as empty; halted nodes neither send nor receive.
    """

    def __init__(self) -> None:
        self.view: Optional[NodeView] = None
        self.halted = False
        self.output: Any = None

    def init(self, view: NodeView) -> None:
        self.view = view

    def send(self) -> Dict[int, Any]:
        """Messages to emit this round, keyed by port."""
        return {}

    def receive(self, messages: Dict[int, Any]) -> None:
        """Handle messages received this round, keyed by port."""


class LocalNetwork:
    """Synchronous executor for node programs over a :class:`MultiGraph`."""

    def __init__(self, graph: MultiGraph) -> None:
        self.graph = graph
        # port tables: for each vertex, ordered (eid, neighbor) pairs
        self._ports: Dict[int, List[Tuple[int, int]]] = {
            v: sorted(graph.incident(v)) for v in graph.vertices()
        }
        # reverse map: (vertex, eid) -> port index
        self._port_of: Dict[Tuple[int, int], int] = {}
        for v, plist in self._ports.items():
            for port, (eid, _nbr) in enumerate(plist):
                self._port_of[(v, eid)] = port
        self.rounds_used = 0

    def run(
        self,
        make_node: "callable",
        max_rounds: int = 10_000,
    ) -> Dict[int, Any]:
        """Run one node program instance per vertex until all halt.

        Parameters
        ----------
        make_node:
            Called as ``make_node(vertex)``; must return a
            :class:`NodeAlgorithm`.
        max_rounds:
            Safety valve; exceeding it raises :class:`LocalModelError`.

        Returns
        -------
        dict vertex -> output.
        """
        nodes: Dict[int, NodeAlgorithm] = {}
        for v in self.graph.vertices():
            node = make_node(v)
            if not isinstance(node, NodeAlgorithm):
                raise LocalModelError("make_node must return a NodeAlgorithm")
            node.init(NodeView(v, self._ports[v]))
            nodes[v] = node

        self.rounds_used = 0
        while any(not node.halted for node in nodes.values()):
            if self.rounds_used >= max_rounds:
                raise LocalModelError(
                    f"LOCAL simulation exceeded {max_rounds} rounds"
                )
            # Phase 1: collect all sends (synchronous semantics — sends
            # of round t may not depend on receives of round t).
            outboxes: Dict[int, Dict[int, Any]] = {}
            for v, node in nodes.items():
                if node.halted:
                    continue
                out = node.send()
                if out:
                    for port in out:
                        if not (0 <= port < len(self._ports[v])):
                            raise LocalModelError(
                                f"node {v} sent on invalid port {port}"
                            )
                    outboxes[v] = out
            # Phase 2: route and deliver.
            inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in nodes}
            for v, out in outboxes.items():
                for port, message in out.items():
                    eid, neighbor = self._ports[v][port]
                    their_port = self._port_of[(neighbor, eid)]
                    inboxes[neighbor][their_port] = message
            for v, node in nodes.items():
                if not node.halted:
                    node.receive(inboxes[v])
            self.rounds_used += 1

        return {v: node.output for v, node in nodes.items()}


def broadcast_gather(
    network: LocalNetwork, values: Dict[int, Any], radius: int
) -> Dict[int, Dict[int, Any]]:
    """Utility: every vertex learns the ``values`` of its radius-``r`` ball.

    Implemented as a genuine flooding node program, so it costs exactly
    ``radius`` rounds in the simulator.  Returns vertex -> {vertex: value}.
    """

    class Flood(NodeAlgorithm):
        def __init__(self, vertex: int) -> None:
            super().__init__()
            self.known: Dict[int, Any] = {vertex: values[vertex]}
            self.age = 0

        def send(self) -> Dict[int, Any]:
            payload = dict(self.known)
            return {port: payload for port in range(self.view.degree)}

        def receive(self, messages: Dict[int, Any]) -> None:
            for payload in messages.values():
                self.known.update(payload)
            self.age += 1
            if self.age >= radius:
                self.halted = True
                self.output = self.known

    if radius == 0:
        return {v: {v: values[v]} for v in network.graph.vertices()}
    return network.run(Flood)
