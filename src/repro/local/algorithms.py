"""Genuine message-passing node programs for primitive algorithms.

These are real distributed implementations run under the
:class:`~repro.local.network.LocalNetwork` simulator.  They exist to
(1) demonstrate the substrate is a faithful LOCAL model and
(2) cross-validate the centralized, round-charged implementations in
:mod:`repro.decomposition` — tests assert both produce outputs with
identical guarantees.

Programs included:

* :func:`run_distributed_hpartition` — the peeling H-partition of
  Barenboim–Elkin (Theorem 2.1(1)): vertices of remaining degree at
  most ``t`` leave in waves; each wave costs two rounds.
* :func:`run_distributed_tree_coloring` — Cole–Vishkin color reduction
  on rooted trees down to 6 colors in O(log* n) rounds, then three
  shift-down/eliminate phases to reach a proper 3-coloring.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import LocalModelError
from ..graph.multigraph import MultiGraph
from .network import LocalNetwork, NodeAlgorithm


# ----------------------------------------------------------------------
# Distributed H-partition
# ----------------------------------------------------------------------


class _HPartitionNode(NodeAlgorithm):
    """Peel vertices of remaining degree <= t, in synchronized waves.

    Wave ``i`` takes one round: low-degree vertices announce departure
    and assign themselves class ``i``; survivors decrement their
    remaining degree by the number of incident departures.
    """

    def __init__(self, threshold: int) -> None:
        super().__init__()
        self.threshold = threshold
        self.remaining_degree = 0
        self.wave = 1
        self.leaving = False

    def init(self, view) -> None:
        super().init(view)
        self.remaining_degree = view.degree

    def send(self) -> Dict[int, Any]:
        if self.remaining_degree <= self.threshold and not self.leaving:
            self.leaving = True
            return {port: ("leave",) for port in range(self.view.degree)}
        return {}

    def receive(self, messages: Dict[int, Any]) -> None:
        if self.leaving:
            self.output = self.wave
            self.halted = True
            return
        departures = sum(1 for m in messages.values() if m == ("leave",))
        self.remaining_degree -= departures
        self.wave += 1


def run_distributed_hpartition(
    graph: MultiGraph, threshold: int, max_rounds: int = 100_000
) -> Tuple[Dict[int, int], int]:
    """Run the H-partition node program; return (vertex -> class, rounds).

    Classes are 1-based wave numbers, matching ``H_1, ..., H_k`` of
    Theorem 2.1.  ``threshold`` must be at least the maximum average
    degree of any subgraph (e.g. ``⌊(2+ε)α*⌋``), otherwise the peeling
    stalls and the round limit raises :class:`LocalModelError`.
    """
    network = LocalNetwork(graph)
    classes = network.run(lambda v: _HPartitionNode(threshold), max_rounds)
    return classes, network.rounds_used


# ----------------------------------------------------------------------
# Distributed Cole–Vishkin tree coloring
# ----------------------------------------------------------------------


def _lowest_differing_bit(a: int, b: int) -> int:
    """Index of the lowest bit where a and b differ (requires a != b)."""
    return ((a ^ b) & -(a ^ b)).bit_length() - 1


def cole_vishkin_iterations(n: int) -> int:
    """Number of bit-reduction iterations to go from n ids to 6 colors."""
    bound = max(n, 2)
    iterations = 0
    while bound > 6:
        bound = 2 * ((bound - 1).bit_length())
        iterations += 1
    return iterations + 1  # one spare iteration for safety; idempotent at <= 6


class _CVReducer(NodeAlgorithm):
    """Bit-reduction rounds: color <- 2 * b + bit_b(color), where b is the
    lowest bit on which the color differs from the parent's color.
    Roots use a fabricated parent color differing in bit 0."""

    def __init__(self, vertex: int, parent_edge: Optional[int], iterations: int) -> None:
        super().__init__()
        self.vertex = vertex
        self.parent_edge = parent_edge
        self.color = vertex
        self.left = iterations
        self.parent_port: Optional[int] = None

    def init(self, view) -> None:
        super().init(view)
        if self.parent_edge is not None:
            for port in range(view.degree):
                if view.edge_of_port(port) == self.parent_edge:
                    self.parent_port = port
                    return
            raise LocalModelError(f"vertex {self.vertex}: parent edge not incident")

    def send(self) -> Dict[int, Any]:
        return {port: self.color for port in range(self.view.degree)}

    def receive(self, messages: Dict[int, Any]) -> None:
        if self.parent_port is not None:
            parent_color = messages[self.parent_port]
        else:
            parent_color = self.color ^ 1
        if parent_color == self.color:
            raise LocalModelError("improper coloring during Cole-Vishkin")
        bit = _lowest_differing_bit(self.color, parent_color)
        self.color = 2 * bit + ((self.color >> bit) & 1)
        self.left -= 1
        if self.left <= 0:
            self.output = self.color
            self.halted = True


class _ShiftEliminate(NodeAlgorithm):
    """One shift-down + eliminate-one-color phase; two rounds.

    Round 1: announce the pre-shift color.  Each non-root adopts its
    parent's announced color; a root adopts the least color in {0,1,2}
    different from its own (so shift-down never raises the maximum).
    After this, all children of a vertex share a color, namely the
    vertex's pre-shift color.

    Round 2: announce the post-shift color.  Vertices whose post-shift
    color equals ``target`` recolor to the least color in {0,1,2} not
    equal to their parent's post-shift color nor their children's
    common post-shift color (their own pre-shift color).  Recoloring
    vertices form an independent set, so this is conflict-free.
    """

    def __init__(
        self, vertex: int, parent_edge: Optional[int], color: int, target: int
    ) -> None:
        super().__init__()
        self.vertex = vertex
        self.parent_edge = parent_edge
        self.color = color
        self.target = target
        self.parent_port: Optional[int] = None
        self.stage = 1
        self.pre_shift: Optional[int] = None

    def init(self, view) -> None:
        super().init(view)
        if self.parent_edge is not None:
            for port in range(view.degree):
                if view.edge_of_port(port) == self.parent_edge:
                    self.parent_port = port
                    return
            raise LocalModelError(f"vertex {self.vertex}: parent edge not incident")

    def send(self) -> Dict[int, Any]:
        return {port: self.color for port in range(self.view.degree)}

    def receive(self, messages: Dict[int, Any]) -> None:
        if self.stage == 1:
            self.pre_shift = self.color
            if self.parent_port is not None:
                self.color = messages[self.parent_port]
            else:
                self.color = min(c for c in (0, 1, 2) if c != self.color)
            self.stage = 2
            return
        # Stage 2: eliminate `target`.
        if self.color == self.target:
            if self.parent_port is not None:
                parent_post = messages[self.parent_port]
            else:
                parent_post = -1  # roots never hold the target; defensive
            forbidden = {parent_post, self.pre_shift}
            self.color = min(c for c in (0, 1, 2) if c not in forbidden)
        self.output = self.color
        self.halted = True


# ----------------------------------------------------------------------
# Distributed acyclic orientation + list-forest coloring (Thm 2.1(2),(4))
# ----------------------------------------------------------------------


class _OrientAndPickNode(NodeAlgorithm):
    """Given its H-class, a node orients edges (low class -> high class,
    ties by id) and greedily assigns palette colors to its out-edges.

    Two rounds: exchange (class, id); then each node locally picks
    distinct colors for its out-edges — exactly Theorem 2.1(2)+(4),
    fully local once the H-partition is known.
    """

    def __init__(self, vertex: int, h_class: int, palettes: Dict[int, Any]) -> None:
        super().__init__()
        self.vertex = vertex
        self.h_class = h_class
        self.palettes = palettes

    def send(self) -> Dict[int, Any]:
        return {
            port: (self.h_class, self.vertex)
            for port in range(self.view.degree)
        }

    def receive(self, messages: Dict[int, Any]) -> None:
        chosen: Dict[int, Any] = {}
        used = set()
        for port in range(self.view.degree):
            neighbor_key = messages[port]
            if (self.h_class, self.vertex) < neighbor_key:
                eid = self.view.edge_of_port(port)
                color = next(
                    (c for c in self.palettes[eid] if c not in used), None
                )
                if color is None:
                    raise LocalModelError(
                        f"vertex {self.vertex}: palette exhausted on edge {eid}"
                    )
                used.add(color)
                chosen[eid] = color
        self.output = chosen
        self.halted = True


def run_distributed_list_forest_coloring(
    graph: MultiGraph,
    h_classes: Dict[int, int],
    palettes: Dict[int, Any],
    max_rounds: int = 100,
) -> Tuple[Dict[int, Any], int]:
    """Theorem 2.1(2)+(4) as a genuine node program.

    ``h_classes`` comes from :func:`run_distributed_hpartition`; each
    vertex must have palettes of size at least its out-degree under the
    class-then-id orientation.  Returns (edge coloring, rounds used).
    """
    network = LocalNetwork(graph)
    per_vertex = network.run(
        lambda v: _OrientAndPickNode(v, h_classes[v], palettes), max_rounds
    )
    coloring: Dict[int, Any] = {}
    for _vertex, chosen in per_vertex.items():
        coloring.update(chosen)
    return coloring, network.rounds_used


def run_distributed_tree_coloring(
    graph: MultiGraph,
    parent_edges: Dict[int, Optional[int]],
    max_rounds: int = 10_000,
) -> Tuple[Dict[int, int], int]:
    """Distributed Cole–Vishkin: proper 3-coloring of rooted trees.

    ``parent_edges[v]`` is the edge id toward v's parent, or None for
    roots.  Edges not designated as anyone's parent edge must not exist
    (the graph must be exactly the forest).  Returns
    (vertex -> color in {0,1,2}, total rounds used).
    """
    iterations = cole_vishkin_iterations(graph.n)
    network = LocalNetwork(graph)
    colors = network.run(
        lambda v: _CVReducer(v, parent_edges.get(v), iterations), max_rounds
    )
    total_rounds = network.rounds_used

    current = dict(colors)
    for target in (5, 4, 3):
        network = LocalNetwork(graph)
        current = network.run(
            lambda v, t=target: _ShiftEliminate(
                v, parent_edges.get(v), current[v], t
            ),
            max_rounds,
        )
        total_rounds += network.rounds_used
    return current, total_rounds
