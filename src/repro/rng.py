"""Randomness helpers.

All randomized algorithms in this library take an explicit seed or
:class:`random.Random` instance so runs are reproducible.  The helpers
here normalize the two calling conventions and derive independent child
streams for sub-procedures (so that changing one sub-procedure's
consumption pattern does not perturb another's).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Union

SeedLike = Union[None, int, random.Random]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, instance, or ``None``.

    Passing an existing ``Random`` returns it unchanged (shared stream);
    an int seeds a fresh generator; ``None`` gives a fresh nondeterministic
    generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def child_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``rng`` tagged by ``label``.

    The child is seeded from the parent stream plus a stable hash of the
    label, so distinct labels produce distinct streams deterministically.
    The label digest must not come from ``hash(str)``: that value is
    randomized per process (PYTHONHASHSEED), which would make "seeded"
    runs irreproducible across processes — and flake CI.
    """
    base = rng.getrandbits(64)
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    mix = int.from_bytes(digest, "big")
    return random.Random(base ^ mix)


def coin(rng: random.Random, probability: float) -> bool:
    """Return True with the given probability."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return rng.random() < probability


def sample_subset(rng: random.Random, items: list, size: int) -> list:
    """Uniformly sample a ``size``-subset of ``items`` (without replacement)."""
    if size >= len(items):
        return list(items)
    return rng.sample(items, size)


def random_partition_index(rng: random.Random, modulus: int) -> int:
    """Uniform integer in ``[0, modulus)``; modulus must be positive."""
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return rng.randrange(modulus)


def maybe_seeded(seed: SeedLike, default_seed: Optional[int] = None) -> random.Random:
    """Like :func:`make_rng` but with a configurable default seed."""
    if seed is None and default_seed is not None:
        return random.Random(default_seed)
    return make_rng(seed)
