"""repro — reproduction of Harris, Su & Vu (PODC 2021):
"On the Locality of Nash-Williams Forest Decomposition and
Star-Forest Decomposition".

Public API (see README for a tour):

* :class:`repro.MultiGraph` — the multigraph substrate.
* :func:`repro.forest_decomposition` — (1+ε)α forest decomposition
  (Algorithm 2 + leftover recoloring; Theorems 4.5/4.6).
* :func:`repro.list_forest_decomposition` — (1+ε)α list variant
  (Theorem 4.10).
* :func:`repro.star_forest_decomposition` /
  :func:`repro.list_star_forest_decomposition` — Section 5.
* :func:`repro.low_outdegree_orientation` — Corollary 1.1.
* :func:`repro.exact_arboricity` / :func:`repro.exact_forest_decomposition`
  — centralized Nash-Williams ground truth (Gabow–Westermann style).
* :mod:`repro.verify` — independent validity checkers.
"""

from .errors import (
    AugmentationError,
    ConvergenceError,
    DecompositionError,
    GraphError,
    LocalModelError,
    PaletteError,
    ReproError,
    ValidationError,
)
from .graph import MultiGraph

__version__ = "1.0.0"

__all__ = [
    "MultiGraph",
    "ReproError",
    "GraphError",
    "DecompositionError",
    "ValidationError",
    "AugmentationError",
    "PaletteError",
    "ConvergenceError",
    "LocalModelError",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports of the high-level API (avoids import cycles and
    keeps ``import repro`` fast)."""
    import importlib

    if name in ("core", "decomposition", "nashwilliams", "local", "verify", "graph"):
        return importlib.import_module(f".{name}", __name__)
    api = importlib.import_module(".core.api", __name__)
    try:
        value = getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return value
