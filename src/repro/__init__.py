"""repro — reproduction of Harris, Su & Vu (PODC 2021):
"On the Locality of Nash-Williams Forest Decomposition and
Star-Forest Decomposition".

API tour (full reference: ``docs/api.md``)
------------------------------------------

The unified entry point is :func:`repro.decompose`: one dispatcher,
six registered tasks, one shared config::

    import repro

    graph = repro.MultiGraph.with_vertices(8)
    ...
    config = repro.DecompositionConfig(epsilon=0.5, seed=7)
    result = repro.decompose(graph, task="forest", config=config)
    result.validate()                  # independent checker
    result.forests()                   # color classes
    result.coloring_array()            # CSR-aligned numpy view
    result.to_json()                   # structured output

Tasks: ``"forest"`` (Theorem 4.6), ``"list_forest"`` (Theorem 4.10),
``"star_forest"`` / ``"list_star_forest"`` (Section 5),
``"pseudoforest"`` / ``"orientation"`` (Corollary 1.1).

For repeated queries against one graph, a :class:`repro.Session` caches
the graph-prep phase — CSR snapshot, exact arboricity /
pseudoarboricity (the Gabow–Westermann ground truth), per-color
sub-CSRs — across calls::

    session = repro.Session(graph)
    fd = session.decompose("forest", config)
    orient = session.decompose("orientation", config)   # prep reused

Key pieces:

* :class:`repro.MultiGraph` — the multigraph substrate.
* :func:`repro.decompose` / :class:`repro.Session` — the unified
  dispatcher and the snapshot-reusing session.
* :class:`repro.DecompositionConfig` — shared knobs (epsilon, alpha,
  seed, backend, diameter_mode, cut_rule, validation), JSON
  round-trippable.
* :func:`repro.register_task` / :func:`repro.register_backend` — the
  extension seam (the dict/csr substrates live here, as do the
  wave-engine ``sharded``, ``parallel`` and ``mp`` backends).
* Legacy-shaped wrappers, all registry-backed and accepting
  ``backend=``: :func:`repro.forest_decomposition`,
  :func:`repro.list_forest_decomposition`,
  :func:`repro.star_forest_decomposition`,
  :func:`repro.list_star_forest_decomposition`,
  :func:`repro.pseudoforest_decomposition`,
  :func:`repro.low_outdegree_orientation`.
* :func:`repro.exact_arboricity` / :func:`repro.exact_forest_decomposition`
  — centralized Nash-Williams ground truth (Gabow–Westermann style).
* :mod:`repro.verify` — independent validity checkers.

The CLI mirrors the library: ``python -m repro decompose graph.txt
--task forest --backend csr --json``.
"""

from .errors import (
    AugmentationError,
    ConvergenceError,
    DecompositionError,
    GraphError,
    LocalModelError,
    PaletteError,
    RegistryError,
    ReproError,
    ValidationError,
)
from .graph import MultiGraph

__version__ = "1.1.0"

# Names resolved lazily from repro.core.api (see __getattr__): the
# unified API plus the task wrappers.  Keeping them lazy avoids import
# cycles and keeps bare ``import repro`` fast; listing them here makes
# ``dir(repro)`` and tab completion honest.
_API_EXPORTS = (
    "decompose",
    "describe",
    "Session",
    "DecompositionConfig",
    "DecompositionResult",
    "register_task",
    "register_backend",
    "available_tasks",
    "available_backends",
    "forest_decomposition",
    "list_forest_decomposition",
    "star_forest_decomposition",
    "list_star_forest_decomposition",
    "pseudoforest_decomposition",
    "low_outdegree_orientation",
    "barenboim_elkin_forest_decomposition",
    "exact_arboricity",
    "exact_forest_decomposition",
    "exact_pseudoarboricity",
    "algorithm2",
    "two_coloring_star_forests",
)

_SUBMODULES = (
    "core",
    "decomposition",
    "nashwilliams",
    "local",
    "parallel",
    "pipeline",
    "service",
    "verify",
    "graph",
)

__all__ = [
    "MultiGraph",
    *_API_EXPORTS,
    "ReproError",
    "GraphError",
    "DecompositionError",
    "ValidationError",
    "AugmentationError",
    "PaletteError",
    "ConvergenceError",
    "RegistryError",
    "LocalModelError",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports of the high-level API (avoids import cycles and
    keeps ``import repro`` fast)."""
    import importlib

    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    api = importlib.import_module(".core.api", __name__)
    try:
        value = getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return value


def __dir__():
    """Make ``dir(repro)`` / tab completion list the lazy exports too."""
    return sorted(set(globals()) | set(__all__) | set(_SUBMODULES))
