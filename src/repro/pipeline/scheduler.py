"""Stage scheduler: executes a validated Pipeline over a context.

Two schedules, one contract:

* ``"serial"`` — every pass runs inline in the pipeline's canonical
  topological order.  This is the bit-identical reference.
* ``"concurrent"`` — passes that share a DAG level (mutually
  independent by construction) may run on the wave engine's shared
  thread pools, and pass fan-outs (``ctx.fan_out``) route through the
  pool or a batched vectorized kernel.  Outputs are required to be
  identical to the serial schedule for every worker count — the same
  determinism contract the sharded/parallel backends honor — which is
  why fan-outs preserve item order and batched kernels must reproduce
  the per-item results exactly.

``schedule="auto"`` picks concurrent for graphs at or above the same
size cutoff that auto-gates the sharded/parallel backends (or whenever
``REPRO_FORCE_PARALLEL=1`` forces the parallel substrate), serial
below it.

Shared-counter constraint: :class:`~repro.local.rounds.RoundCounter`
is not thread-safe, so only one pass of a concurrently-running level
may charge rounds.  The built-in task pipelines are dependency chains
(every level has exactly one pass), which satisfies this trivially;
synthetic multi-pass levels must keep their extra passes charge-free.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence

from ..errors import RegistryError
from .passes import Pass, PassStats, PipelineContext
from .pipeline import Pipeline

SCHEDULES = ("auto", "serial", "concurrent")


def resolve_schedule(graph_or_n: Any, schedule: str = "auto") -> str:
    """Resolve an ``"auto"`` schedule against the graph size, mirroring
    the backend auto-gating: concurrent at n >= the sharded cutoff or
    under ``REPRO_FORCE_PARALLEL=1``, serial below."""
    if schedule not in SCHEDULES:
        raise RegistryError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    if schedule != "auto":
        return schedule
    from ..graph.csr import SHARDED_AUTO_CUTOFF, force_parallel_traversal

    if force_parallel_traversal():
        return "concurrent"
    n = getattr(graph_or_n, "n", graph_or_n)
    if n is None:
        return "serial"
    return "concurrent" if int(n) >= SHARDED_AUTO_CUTOFF else "serial"


class Scheduler:
    """Runs a :class:`Pipeline`'s passes under a resolved schedule."""

    def __init__(self, schedule: str = "serial", workers: int = 0) -> None:
        if schedule not in ("serial", "concurrent"):
            raise RegistryError(
                f"scheduler requires a resolved schedule, got {schedule!r} "
                "(resolve 'auto' via resolve_schedule first)"
            )
        self.schedule = schedule
        self.workers = workers

    @property
    def concurrent(self) -> bool:
        return self.schedule == "concurrent"

    # -- fan-out ---------------------------------------------------------

    def map_items(
        self,
        thunks: Sequence[Callable[[], Any]],
        batched: Optional[Callable[[], List[Any]]] = None,
    ) -> List[Any]:
        """Run independent thunks, preserving item order.

        Concurrent schedule: prefer the batched kernel (one vectorized
        call replacing the whole loop — the algorithmic win on
        single-core hosts), else fan onto the engine pool when more
        than one worker is available.  Serial schedule, single items,
        and dead-pool fallback all take the plain in-order loop.
        """
        thunks = list(thunks)
        if self.concurrent and len(thunks) > 1:
            if batched is not None:
                return batched()
            from ..parallel.engine import _map_on_pool, resolve_workers

            workers = resolve_workers(self.workers)
            if workers > 1:
                out = _map_on_pool(workers, _call_thunk, thunks)
                if out is not None:
                    return out
        return [thunk() for thunk in thunks]

    # -- pass execution --------------------------------------------------

    def run(self, pipeline: Pipeline, ctx: PipelineContext) -> Any:
        """Execute the pipeline over ``ctx``; returns
        ``ctx[pipeline.result_key]`` (or ``None`` if unset).

        Retry semantics: when a :class:`RetryRule` exception escapes a
        pass, execution restarts from the level containing
        ``retry.from_pass``; the final attempt re-raises.  PassStats
        of re-executed passes are appended again, so
        ``result.stats["passes"]`` shows the true execution history.
        """
        ctx.scheduler = self
        retry = pipeline.retry
        restart_level = pipeline.retry_level()
        attempt = 1
        level_idx = 0
        levels = pipeline.levels
        while level_idx < len(levels):
            try:
                self._run_level(levels[level_idx], ctx)
            except Exception as exc:
                if (
                    retry is not None
                    and isinstance(exc, retry.exceptions)
                    and attempt < retry.max_attempts
                ):
                    attempt += 1
                    if retry.on_retry is not None:
                        retry.on_retry(ctx)
                    level_idx = restart_level
                    continue
                raise
            level_idx += 1
        return ctx.get(pipeline.result_key)

    def _run_level(self, level: Sequence[Pass], ctx: PipelineContext) -> None:
        if len(level) == 1 or not self.concurrent:
            for p in level:
                self._run_pass(p, ctx)
            return
        # Concurrent multi-pass level: overlap on the engine pool, but
        # record PassStats in declaration order so the stats surface is
        # schedule-independent.  Fall back inline on a dead pool.
        from ..parallel.engine import _map_on_pool, resolve_workers

        workers = resolve_workers(self.workers)
        records = [
            PassStats(name=p.name, schedule=self.schedule) for p in level
        ]
        if workers > 1:
            thunks = [
                _PassThunk(self, p, ctx, rec)
                for p, rec in zip(level, records)
            ]
            out = _map_on_pool(workers, _call_thunk, thunks)
            if out is not None:
                errors = [e for e in out if e is not None]
                ctx.pass_stats.extend(records)
                if errors:
                    raise errors[0]
                return
        for p, rec in zip(level, records):
            self._execute_pass(p, ctx, rec)
        ctx.pass_stats.extend(records)

    def _run_pass(self, p: Pass, ctx: PipelineContext) -> None:
        record = PassStats(name=p.name, schedule=self.schedule)
        try:
            self._execute_pass(p, ctx, record)
        finally:
            ctx.pass_stats.append(record)

    def _execute_pass(
        self, p: Pass, ctx: PipelineContext, record: PassStats
    ) -> None:
        counter = ctx.counter
        rounds_before = counter.total if counter is not None else 0
        waves_before = _engine_dispatches()
        # repro: allow(det-wallclock) — observability only: wall_ms feeds
        # PassStats reporting, never any ordering or algorithmic choice.
        started = time.perf_counter()
        ctx._begin(record)
        try:
            p.runner(ctx)
        finally:
            ctx._end()
            # repro: allow(det-wallclock) — observability only: timing lands
            # in PassStats.wall_ms and is never read back by the scheduler.
            record.wall_ms += (time.perf_counter() - started) * 1000.0
            if counter is not None:
                record.rounds += counter.total - rounds_before
            record.engine_waves += _engine_dispatches() - waves_before


class _PassThunk:
    """Picklable-free callable wrapper for pooled pass execution;
    returns the raised exception (or None) so the pool map never
    swallows one mid-level."""

    def __init__(self, scheduler, p, ctx, record) -> None:
        self.scheduler = scheduler
        self.p = p
        self.ctx = ctx
        self.record = record

    def __call__(self):
        try:
            self.scheduler._execute_pass(self.p, self.ctx, self.record)
        except Exception as exc:  # re-raised by the caller, in order
            return exc
        return None


def _call_thunk(thunk: Callable[[], Any]) -> Any:
    return thunk()


def _engine_dispatches() -> int:
    from ..parallel.engine import pool_stats

    return pool_stats()["dispatches"]
