"""Pass-pipeline compiler: declared stage DAGs + a stage scheduler.

The paper's algorithms are fixed sequences of frontier-synchronous
stages.  This package turns each registered task's run into a declared
:class:`Pipeline` of :class:`Pass` stages, validated as a DAG and
executed by a :class:`Scheduler` — serially in topological order (the
bit-identical reference) or concurrently on the wave engine's shared
thread pools, with color classes as the natural fan-out unit.  Every
pass is instrumented as a :class:`PassStats` record surfaced through
``result.stats["passes"]``, ``Session.cache_info()`` and
``repro decompose --profile``.
"""

from .passes import Pass, PassStats, PipelineContext
from .pipeline import Pipeline, RetryRule
from .scheduler import SCHEDULES, Scheduler, resolve_schedule

__all__ = [
    "Pass",
    "PassStats",
    "PipelineContext",
    "Pipeline",
    "RetryRule",
    "SCHEDULES",
    "Scheduler",
    "resolve_schedule",
]
